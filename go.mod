module cognitivearm

go 1.24
