// Package cognitivearm is the public façade of the CognitiveArm
// reproduction: an EEG-driven, voice-multiplexed prosthetic-arm system
// (Basit et al., DAC 2025) built entirely in Go on synthetic substrates.
//
// The package re-exports the pipeline (dataset → models → compression →
// closed-loop control) from internal/core and offers a one-call QuickStart
// for the examples. Full substrate access — filters, transports, the
// evolutionary search, the experiment harness — lives in the internal
// packages and is exercised through this façade, the cmd/ tools, and the
// bench suite.
package cognitivearm

import (
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
)

// Re-exported core types: the façade intentionally stays thin so godoc for
// this package reads as the system's user guide.
type (
	// Config sizes a pipeline run (subjects, sessions, window, training).
	Config = core.Config
	// Pipeline is the dataset+training stage of the system.
	Pipeline = core.Pipeline
	// System is a deployed closed-loop instance for one subject.
	System = core.System
	// Action is a decoded mental command (idle / left / right).
	Action = eeg.Action
	// Spec is a model hyperparameter assignment.
	Spec = models.Spec
	// Classifier is the uniform inference interface.
	Classifier = models.Classifier

	// Hub is the concurrent multi-session serving layer: many closed-loop
	// sessions multiplexed over shared models on a few worker shards.
	Hub = serve.Hub
	// HubConfig sizes a serving hub (shards × sessions, tick rate).
	HubConfig = serve.Config
	// ModelRegistry trains or deserialises each classifier once and shares
	// it read-only across the fleet.
	ModelRegistry = serve.Registry
	// SessionConfig describes one session joining the fleet.
	SessionConfig = serve.SessionConfig
	// SessionID identifies an admitted session.
	SessionID = serve.SessionID
	// FleetSnapshot is the aggregated serving-metrics report.
	FleetSnapshot = serve.FleetSnapshot
)

// Action values.
const (
	Idle  = eeg.Idle
	Left  = eeg.Left
	Right = eeg.Right
)

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperConfig returns the paper-protocol-sized configuration.
func PaperConfig() Config { return core.PaperConfig() }

// NewPipeline builds the dataset stage: synthetic acquisition,
// preprocessing, annotation, windowing, normalisation and balancing.
func NewPipeline(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// PaperSpecs returns the paper's four Pareto-optimal model configurations.
func PaperSpecs() []Spec { return models.PaperSpecs() }

// ScaledPaperSpecs returns their CPU-trainable equivalents.
func ScaledPaperSpecs() []Spec { return models.ScaledPaperSpecs() }

// DefaultHubConfig returns the laptop-scale serving configuration.
func DefaultHubConfig() HubConfig { return serve.DefaultConfig() }

// NewModelRegistry creates an empty shared-model registry.
func NewModelRegistry() *ModelRegistry { return serve.NewRegistry() }

// NewHub builds a serving hub over a shared-model registry (nil creates a
// fresh one). See cmd/cogarmd for the daemon around it and cmd/loadgen for
// the benchmark driver.
func NewHub(cfg HubConfig, reg *ModelRegistry) (*Hub, error) { return serve.NewHub(cfg, reg) }

// QuickStart trains a fast Random-Forest decoder for one synthetic subject
// and deploys the full closed loop (EEG board → filters → classifier →
// mode mux → Arduino/servos), ready for Tick-driven control. It is the
// five-line path from nothing to a moving arm.
func QuickStart(seed uint64) (*System, error) {
	cfg := DefaultConfig()
	cfg.SubjectIDs = []int{0}
	cfg.Seed = seed
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	spec := Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	clf, _, err := p.TrainModel(spec)
	if err != nil {
		return nil, err
	}
	return p.Deploy(clf, models.OpsPerInference(spec), 0)
}
