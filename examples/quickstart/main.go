// Quickstart: train a decoder for one synthetic subject, deploy the closed
// loop, think "right", and watch the arm raise.
package main

import (
	"fmt"
	"log"

	"cognitivearm"
	"cognitivearm/internal/arm"
	"cognitivearm/internal/eeg"
)

func main() {
	sys, err := cognitivearm.QuickStart(42)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("CognitiveArm quickstart — subject 0, RF decoder")
	fmt.Printf("classifier: %s (%d params)\n", sys.Classifier.Name(), sys.Classifier.NumParams())

	// The participant imagines moving the right hand.
	sys.Board.SetState(eeg.Right)
	start := sys.Controller.Arduino().Target(arm.ChanArm)
	for i := 0; i < 60; i++ {
		if _, err := sys.Controller.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	end := sys.Controller.Arduino().Target(arm.ChanArm)
	fmt.Printf("imagining RIGHT for 4 s: arm lift %.0f° → %.0f°\n", start, end)

	// Then rests.
	sys.Board.SetState(eeg.Idle)
	for i := 0; i < 30; i++ {
		sys.Controller.Tick()
	}
	fmt.Printf("resting: arm holds at %.0f°\n", sys.Controller.Arduino().Target(arm.ChanArm))
	fmt.Printf("labels emitted: %v\n", sys.Controller.Predictions)
}
