// Voicecontrol: the Fig. 6 scenario — voice keywords multiplex the three
// EEG actions onto different degrees of freedom, ending in a cup grip.
package main

import (
	"fmt"
	"log"

	"cognitivearm"
	"cognitivearm/internal/arm"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/eeg"
)

func main() {
	sys, err := cognitivearm.QuickStart(7)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	synth := audio.NewSynthesizer(7000) // an enrolled speaker
	say := func(w audio.Word) {
		heard := sys.HearCommand(synth.Utter(w, 0.8))
		fmt.Printf("user says %q → mode %s\n", w, sys.Controller.Mode())
		if heard != w {
			fmt.Printf("  (misheard as %q)\n", heard)
		}
	}
	think := func(a eeg.Action, ticks int) {
		sys.Board.SetState(a)
		for i := 0; i < ticks; i++ {
			if _, err := sys.Controller.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		ard := sys.Controller.Arduino()
		fmt.Printf("  thinking %-5v → arm %.0f° elbow %.0f° index %.0f°\n",
			a, ard.Target(arm.ChanArm), ard.Target(arm.ChanElbow), ard.Target(arm.ChanIndex))
	}

	fmt.Println("CognitiveArm voice-multiplexed control (Fig. 6)")
	say(audio.WordArm)
	think(eeg.Right, 45) // raise the arm toward the cup
	say(audio.WordElbow)
	think(eeg.Left, 45) // rotate anticlockwise to align
	say(audio.WordFingers)
	think(eeg.Right, 45) // close the fingers around the cup
	think(eeg.Idle, 20)  // hold

	fmt.Println("cup gripped; final servo targets:")
	for c := arm.Channel(0); c < arm.NumChannels; c++ {
		fmt.Printf("  channel %d: %.0f°\n", c, sys.Controller.Arduino().Target(c))
	}
}
