// Realtime: the full validation protocol of §IV-A5 — twenty closed-loop
// sessions with randomized intents, plus the end-to-end latency breakdown
// on the Jetson Orin Nano device model.
package main

import (
	"fmt"
	"log"

	"cognitivearm"
	"cognitivearm/internal/control"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

func main() {
	sys, err := cognitivearm.QuickStart(11)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("CognitiveArm real-world validation protocol (20 sessions)")
	rng := tensor.NewRNG(5)
	successes := 0
	const sessions = 20
	for s := 0; s < sessions; s++ {
		intents := make([]eeg.Action, 3)
		for i := range intents {
			intents[i] = eeg.Action(rng.Intn(3))
		}
		res, err := control.RunValidationSession(sys.Controller, intents, 40)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !res.Success {
			status = "FAILED"
		}
		fmt.Printf("session %2d: intents %v → %d/%d correct (%s)\n",
			s+1, intents, res.CorrectMoves, res.Intents, status)
		if res.Success {
			successes++
		}
	}
	fmt.Printf("\n%d/%d sessions successful (paper: 19/20)\n", successes, sessions)

	l := sys.Controller.Latency
	fmt.Printf("\nlatency over %d ticks at %d Hz:\n", l.Ticks, control.ClassifyRateHz)
	fmt.Printf("  filtering (measured Go):   %.3f ms/tick\n", 1e3*l.FilterWallSec/float64(l.Ticks))
	fmt.Printf("  inference (measured Go):   %.3f ms/tick\n", 1e3*l.InferenceWallSec/float64(l.Ticks))
	fmt.Printf("  inference (Jetson model):  %.3f ms/tick\n", 1e3*l.EdgeInferenceSec/float64(l.Ticks))
	fmt.Printf("  actuation (modelled):      %.3f ms/tick\n", 1e3*l.ActuationSec/float64(l.Ticks))
	fmt.Printf("  end-to-end (modelled):     %.3f ms/tick (budget %.1f ms)\n",
		1e3*l.PerTick(), 1e3/control.ClassifyRateHz)
}
