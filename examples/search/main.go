// Search: run the evolutionary design-space exploration (Algorithm 1) for
// the CNN family, print the Pareto front, and compress the winner.
package main

import (
	"fmt"
	"log"

	"cognitivearm/internal/compress"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/evo"
	"cognitivearm/internal/experiments"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

func main() {
	sc := experiments.Quick()
	fmt.Println("CognitiveArm evolutionary search (CNN family, quick scale)")

	data := func(window int) ([]dataset.Window, []dataset.Window, error) {
		bySubject, err := dataset.Build(sc.SubjectIDs, 1, dataset.ShortProtocol(sc.SessionSeconds), window, sc.Seed)
		if err != nil {
			return nil, nil, err
		}
		var all []dataset.Window
		for _, id := range sc.SubjectIDs {
			all = append(all, bySubject[id]...)
		}
		dataset.Shuffle(all, tensor.NewRNG(sc.Seed+3))
		cut := len(all) * 8 / 10
		return all[:cut], all[cut:], nil
	}

	cfg := evo.DefaultConfig()
	cfg.PopulationSize = 6
	cfg.Generations = 2
	cfg.Families = []models.Family{models.FamilyCNN}
	cfg.Train = models.TrainOptions{Epochs: 6, BatchSize: 32, Patience: 2}
	cfg.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	res, err := evo.Search(cfg, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPareto front (accuracy vs parameters):")
	fmt.Print(experiments.FrontString(res.Front))
	fmt.Printf("\nselected best model: %s (acc %.3f, %d params)\n",
		res.Best.Spec.ID(), res.Best.Accuracy, res.Best.Params)

	// Compress the winner at the paper's selected 70 % level.
	nn, ok := res.Best.Clf.(*models.NNClassifier)
	if !ok {
		fmt.Println("best model is not a neural network; skipping compression")
		return
	}
	train, val, err := data(res.Best.Spec.WindowSize)
	if err != nil {
		log.Fatal(err)
	}
	pruned, rep, err := compress.Prune(nn, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	compress.FineTunePruned(pruned, train, val, 6, 9)
	fmt.Printf("70%% pruned: sparsity %.2f, accuracy %.3f (dense %.3f)\n",
		rep.AchievedSparsity, models.Accuracy(pruned, val), res.Best.Accuracy)
}
