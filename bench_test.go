// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Each bench
// runs the corresponding experiment at Quick scale and reports the headline
// quantity via b.ReportMetric so `go test -bench` output doubles as the
// reproduction log. cmd/benchtables prints the same results as tables.
package cognitivearm

import (
	"sync"
	"testing"

	"cognitivearm/internal/asr"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/board"
	"cognitivearm/internal/compress"
	"cognitivearm/internal/control"
	"cognitivearm/internal/core"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/edge"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/evo"
	"cognitivearm/internal/experiments"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/signal"
	"cognitivearm/internal/tensor"
)

// BenchmarkFig4TransportComparison measures the LSL-vs-UDP study. Reported
// metrics: LSL sync error and UDP loss (the two decisive axes).
func BenchmarkFig4TransportComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(150, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LSL.SyncErrorMs, "lsl-sync-ms")
		b.ReportMetric(r.UDP.SyncErrorMs, "udp-sync-ms")
		b.ReportMetric(100*(1-r.UDP.DeliveredFrac), "udp-loss-%")
	}
}

// BenchmarkFig5Filtering measures the preprocessing chain and reports the
// 50 Hz suppression and alpha-SNR improvement.
func BenchmarkFig5Filtering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(uint64(i) + 1)
		b.ReportMetric(r.Line50Raw/r.Line50Clean, "line-suppression-x")
		b.ReportMetric(r.SNRClean-r.SNRRaw, "alpha-snr-gain-db")
	}
}

// BenchmarkFig7ASRPareto evaluates the Whisper-family zoo and reports the
// selected model's PCC and runtime.
func BenchmarkFig7ASRPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := asrZoo(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results.PCC, "selected-pcc")
		b.ReportMetric(results.InferenceSec, "selected-rt-s")
	}
}

// BenchmarkFig8EvoSearchCNN runs the per-family evolutionary search (the
// CNN panel of Figure 8) and reports the best model's accuracy and size.
func BenchmarkFig8EvoSearchCNN(b *testing.B) {
	sc := experiments.Quick()
	sc.EvoPopulation, sc.EvoGenerations, sc.Epochs = 4, 1, 4
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		res, err := experiments.FamilySearch(sc, models.FamilyCNN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Best.Accuracy, "best-acc")
		b.ReportMetric(float64(res.Best.Params), "best-params")
	}
}

// BenchmarkFig9ParetoFront merges CNN and RF searches into the global front
// of Figure 9 and reports its size.
func BenchmarkFig9ParetoFront(b *testing.B) {
	sc := experiments.Quick()
	sc.EvoPopulation, sc.EvoGenerations, sc.Epochs = 4, 1, 4
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		results := map[models.Family]*evo.Result{}
		for _, fam := range []models.Family{models.FamilyCNN, models.FamilyRF} {
			r, err := experiments.FamilySearch(sc, fam)
			if err != nil {
				b.Fatal(err)
			}
			results[fam] = r
		}
		front := experiments.GlobalFront(results)
		b.ReportMetric(float64(len(front)), "front-size")
	}
}

// BenchmarkFig10RandomForest sweeps the RF grid (estimators × depth) of
// Figure 10 and reports the best cell.
func BenchmarkFig10RandomForest(b *testing.B) {
	sc := experiments.Quick()
	train, val, err := pooled(sc, 90)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		bestAcc, bestNodes := 0.0, 0
		for _, trees := range []int{20, 50, 100, 200} {
			for _, depth := range []int{6, 10, 20, 0} {
				spec := models.Spec{Family: models.FamilyRF, WindowSize: 90, Trees: trees, MaxDepth: depth}
				clf, res, err := models.Train(spec, train, val, models.TrainOptions{Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.ValAcc > bestAcc {
					bestAcc, bestNodes = res.ValAcc, clf.NumParams()
				}
			}
		}
		b.ReportMetric(bestAcc, "best-acc")
		b.ReportMetric(float64(bestNodes), "best-nodes")
	}
}

// BenchmarkFig11Ensembles sweeps every ensemble combination and reports the
// winner's accuracy and modelled latency.
func BenchmarkFig11Ensembles(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		entries, err := experiments.Fig11(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(entries[0].Accuracy, "best-acc")
		b.ReportMetric(entries[0].InferenceSec, "best-latency-s")
	}
}

// BenchmarkFig12Compression sweeps the pruning levels and int8 modes and
// reports the 70 %-pruned and naive-int8 accuracies.
func BenchmarkFig12Compression(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		entries, err := experiments.Fig12(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			switch e.Name {
			case "prune-70%":
				b.ReportMetric(e.Accuracy, "prune70-acc")
			case "int8-global-naive":
				b.ReportMetric(e.Accuracy, "int8-acc")
				b.ReportMetric(e.InferenceSec, "int8-latency-s")
			}
		}
	}
}

// BenchmarkRealWorldValidation runs the §IV-A5 protocol and reports the
// session success count out of 20.
func BenchmarkRealWorldValidation(b *testing.B) {
	sys, err := QuickStart(11)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	rng := tensor.NewRNG(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		successes := 0
		for s := 0; s < 20; s++ {
			intents := make([]eeg.Action, 3)
			for j := range intents {
				intents[j] = eeg.Action(rng.Intn(3))
			}
			res, err := control.RunValidationSession(sys.Controller, intents, 40)
			if err != nil {
				b.Fatal(err)
			}
			if res.Success {
				successes++
			}
		}
		b.ReportMetric(float64(successes), "sessions-of-20")
	}
}

// BenchmarkHeadline reproduces the §V summary numbers (accuracy, latency
// anchors, LOSO statistics) in one run.
func BenchmarkHeadline(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i) + 1
		r, err := experiments.Headline(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EnsembleAcc, "ensemble-acc")
		b.ReportMetric(r.EnsembleLatencySec, "ensemble-latency-s")
		b.ReportMetric(r.PrunedAcc, "pruned-acc")
		b.ReportMetric(r.QuantAcc, "int8-acc")
		b.ReportMetric(r.LOSOMean, "loso-mean-acc")
	}
}

// --- Ablations (DESIGN.md §4) -------------------------------------------

// BenchmarkAblationWindowSize sweeps the window axis for the RF model.
func BenchmarkAblationWindowSize(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		for _, w := range []int{100, 130, 160, 190} {
			train, val, err := pooled(sc, w)
			if err != nil {
				b.Fatal(err)
			}
			spec := models.Spec{Family: models.FamilyRF, WindowSize: w, Trees: 50, MaxDepth: 12}
			_, res, err := models.Train(spec, train, val, models.TrainOptions{Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ValAcc, "acc-w"+itoa(w))
		}
	}
}

// BenchmarkAblationOptimizers compares the four optimizers on the CNN.
func BenchmarkAblationOptimizers(b *testing.B) {
	sc := experiments.Quick()
	train, val, err := pooled(sc, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, opt := range []string{"adam", "sgd", "rmsprop", "adamw"} {
			spec := models.Spec{Family: models.FamilyCNN, WindowSize: 100, Optimizer: opt, LR: 2e-3,
				Dropout: 0.1, ConvLayers: 1, Filters: 16, Kernel: 5, Stride: 2, Pool: "none"}
			_, res, err := models.Train(spec, train, val, models.TrainOptions{Epochs: 8, BatchSize: 32, Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ValAcc, "acc-"+opt)
		}
	}
}

// BenchmarkAblationFilterOrder compares Butterworth orders on 50 Hz
// suppression.
func BenchmarkAblationFilterOrder(b *testing.B) {
	gen := eeg.NewGenerator(eeg.NewSubject(0), 1)
	seg := gen.Generate(eeg.Idle, 1024)
	raw := seg[eeg.ChannelIndex("C3")]
	for i := 0; i < b.N; i++ {
		for _, order := range []int{2, 5, 9} {
			bp, err := signal.Butterworth(order, 0.5, 45, eeg.SampleRate)
			if err != nil {
				b.Fatal(err)
			}
			clean := bp.FiltFilt(raw)
			ratio := signal.BandPower(raw, eeg.SampleRate, 48, 52) /
				(signal.BandPower(clean, eeg.SampleRate, 48, 52) + 1e-12)
			b.ReportMetric(ratio, "suppress-n"+itoa(order))
		}
	}
}

// BenchmarkAblationNormalization measures per-subject normalisation on/off.
func BenchmarkAblationNormalization(b *testing.B) {
	sc := experiments.Quick()
	for i := 0; i < b.N; i++ {
		for _, normalize := range []bool{true, false} {
			bySubject, err := dataset.Build(sc.SubjectIDs, 1, dataset.ShortProtocol(sc.SessionSeconds), 100, sc.Seed)
			if err != nil {
				b.Fatal(err)
			}
			var all []dataset.Window
			for _, id := range sc.SubjectIDs {
				all = append(all, bySubject[id]...)
			}
			if !normalize {
				// Build already normalises; undo by rebuilding raw windows.
				all = nil
				for _, id := range sc.SubjectIDs {
					rec := dataset.Collect(eeg.NewSubject(id), 0, dataset.ShortProtocol(sc.SessionSeconds), sc.Seed+uint64(id)*101)
					clean, err := dataset.Preprocess(rec)
					if err != nil {
						b.Fatal(err)
					}
					ws, err := dataset.Segment(clean, dataset.DefaultSegment(100))
					if err != nil {
						b.Fatal(err)
					}
					all = append(all, ws...)
				}
			}
			dataset.Shuffle(all, tensor.NewRNG(3))
			cut := len(all) * 8 / 10
			spec := models.Spec{Family: models.FamilyRF, WindowSize: 100, Trees: 50, MaxDepth: 12}
			_, res, err := models.Train(spec, all[:cut], all[cut:], models.TrainOptions{Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			name := "acc-raw"
			if normalize {
				name = "acc-normalized"
			}
			b.ReportMetric(res.ValAcc, name)
		}
	}
}

// BenchmarkAblationVAD measures the ASR resource saving from VAD gating.
func BenchmarkAblationVAD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		active, total := vadDuty(uint64(i) + 1)
		b.ReportMetric(100*active/total, "asr-duty-%")
	}
}

// BenchmarkAblationPruneLevels reports accuracy at every paper prune level.
func BenchmarkAblationPruneLevels(b *testing.B) {
	sc := experiments.Quick()
	train, val, err := pooled(sc, 100)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiments.CompressionSpec(100)
	clf, _, err := models.Train(spec, train, val, models.TrainOptions{Epochs: 12, BatchSize: 32, Patience: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	nn := clf.(*models.NNClassifier)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ratio := range compress.PaperPruneLevels() {
			pruned, _, err := compress.Prune(nn, ratio)
			if err != nil {
				b.Fatal(err)
			}
			if ratio > 0 {
				compress.FineTunePruned(pruned, train, val, 6, uint64(i)+1)
			}
			b.ReportMetric(models.Accuracy(pruned, val), "acc-p"+itoa(int(100*ratio)))
		}
	}
}

// BenchmarkInferenceLatency measures real Go single-window inference time
// for each scaled paper model (the wall-clock complement of the edge model).
func BenchmarkInferenceLatency(b *testing.B) {
	sc := experiments.Quick()
	train, val, err := pooled(sc, 100)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range models.ScaledPaperSpecs() {
		spec.WindowSize = 100
		clf, _, err := models.Train(spec, train, val, models.TrainOptions{Epochs: 2, BatchSize: 32, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.ID(), func(b *testing.B) {
			x := val[0].Data
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clf.Predict(x)
			}
		})
	}
}

// BenchmarkEdgeDeviceModel exercises the analytic Jetson model itself.
func BenchmarkEdgeDeviceModel(b *testing.B) {
	device := edge.JetsonOrinNano()
	w := edge.Workload{MACs: 93_000_000}
	for i := 0; i < b.N; i++ {
		_ = device.Latency(w)
	}
}

// --- Fleet serving (internal/serve) ----------------------------------------

// fleetRegistry lazily trains the one shared decoder every serving bench
// reuses (the registry's whole point), so repeated b.N calibration runs
// don't retrain.
var (
	fleetOnce sync.Once
	fleetReg  *serve.Registry
	fleetPipe *core.Pipeline
	fleetErr  error
)

func fleetState(b *testing.B) (*serve.Registry, *core.Pipeline) {
	fleetOnce.Do(func() {
		cfg := core.DefaultConfig()
		fleetPipe, fleetErr = core.New(cfg)
		if fleetErr != nil {
			return
		}
		fleetReg = serve.NewRegistry()
		spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
		_, _, fleetErr = fleetReg.GetOrBuild("rf-shared", func() (models.Classifier, int64, error) {
			clf, _, err := fleetPipe.TrainModel(spec)
			return clf, models.OpsPerInference(spec), err
		})
		if fleetErr != nil {
			return
		}
		// NN fleet decoder: untrained weights (inference cost is identical and
		// the serving path never looks at accuracy), built once like the RF.
		cnn := models.Spec{Family: models.FamilyCNN, WindowSize: cfg.WindowSize,
			Optimizer: "adam", LR: 1e-3, Dropout: 0.2,
			ConvLayers: 1, Filters: 32, Kernel: 5, Stride: 2, Pool: "none"}
		_, _, fleetErr = fleetReg.GetOrBuild("cnn-shared", func() (models.Classifier, int64, error) {
			net, err := models.BuildNet(cnn, 1)
			if err != nil {
				return nil, 0, err
			}
			return &models.NNClassifier{Net: net, Spec: cnn}, models.OpsPerInference(cnn), nil
		})
	})
	if fleetErr != nil {
		b.Fatal(fleetErr)
	}
	return fleetReg, fleetPipe
}

// benchHub stands up a hub with the shared decoder under modelKey and admits
// the given number of on-demand synthetic-board sessions.
func benchHub(b *testing.B, sessions, shards int, modelKey string) *serve.Hub {
	reg, pipe := fleetState(b)
	hub, err := serve.NewHub(serve.Config{
		Shards:              shards,
		MaxSessionsPerShard: (sessions + shards - 1) / shards,
		TickHz:              control.ClassifyRateHz,
		LatencyWindow:       1024,
	}, reg)
	if err != nil {
		b.Fatal(err)
	}
	subjects := pipe.Config.SubjectIDs
	for i := 0; i < sessions; i++ {
		subject := subjects[i%len(subjects)]
		brd := board.NewSyntheticCyton(eeg.NewSubject(subject), uint64(i)*13+7, false)
		if err := brd.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := hub.Admit(serve.SessionConfig{
			ModelKey: modelKey,
			Source:   brd,
			Norm:     pipe.NormFor(subject),
		}); err != nil {
			b.Fatal(err)
		}
	}
	// Fill every rolling window so the timed region measures steady-state
	// serving, not warmup.
	for i := 0; i < 20; i++ {
		hub.TickAll()
	}
	return hub
}

// fleetSystems lazily builds the independent baseline: 100 QuickStart
// deployments, i.e. one board, one freshly trained decoder and one loop per
// subject — the seed's serving shape.
var (
	systemsOnce sync.Once
	systems     []*System
	systemsErr  error
)

func independentSystems(b *testing.B, n int) []*System {
	systemsOnce.Do(func() {
		for i := 0; i < n; i++ {
			sys, err := QuickStart(uint64(i) + 1)
			if err != nil {
				systemsErr = err
				return
			}
			systems = append(systems, sys)
		}
		// Same steady-state warmup as the hub.
		for i := 0; i < 20; i++ {
			for _, sys := range systems {
				if _, err := sys.Controller.Tick(); err != nil {
					systemsErr = err
					return
				}
			}
		}
	})
	if systemsErr != nil {
		b.Fatal(systemsErr)
	}
	if len(systems) < n {
		b.Fatalf("baseline built for %d sessions, need %d", len(systems), n)
	}
	return systems[:n]
}

// BenchmarkHubThroughput compares one fleet tick of 100 concurrent sessions
// served by the hub (shared decoder, cross-session batching, 4 shards)
// against 100 independent QuickStart loops (per-deploy decoder, sample-major
// Predict per session). ns/op is directly comparable: both sub-benches
// advance all 100 sessions by one classification period per op. The
// independent baseline also pays 100 training runs in setup where the hub
// pays one — the registry's amortisation, visible in setup wall time.
func BenchmarkHubThroughput(b *testing.B) {
	const sessions = 100
	b.Run("hub-batched", func(b *testing.B) {
		hub := benchHub(b, sessions, 4, "rf-shared")
		defer hub.Stop()
		before := hub.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hub.TickAll()
		}
		b.StopTimer()
		after := hub.Snapshot()
		if inf := after.Inferences - before.Inferences; inf > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(inf), "ns/inference")
		}
		b.ReportMetric(after.TickP99Ms, "tick-p99-ms")
	})
	b.Run("independent-loops", func(b *testing.B) {
		sys := independentSystems(b, sessions)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range sys {
				if _, err := s.Controller.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		// Windows are full after warmup: every tick classifies once.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions), "ns/inference")
	})
}

// BenchmarkHubScaling sweeps the sessions × shards grid so the serving
// path's scaling curve sits in the perf log next to the paper benches.
func BenchmarkHubScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, sessions := range []int{64, 256} {
			b.Run("s"+itoa(sessions)+"-sh"+itoa(shards), func(b *testing.B) {
				hub := benchHub(b, sessions, shards, "rf-shared")
				defer hub.Stop()
				before := hub.Snapshot()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hub.TickAll()
				}
				b.StopTimer()
				after := hub.Snapshot()
				secs := b.Elapsed().Seconds()
				if secs > 0 {
					b.ReportMetric(float64(after.Inferences-before.Inferences)/secs, "inferences/s")
				}
			})
		}
	}
}

// BenchmarkNNForwardBatch compares nn's fused batched inference against the
// sequential per-window loop for each NN family of the scaled paper pool, at
// the batch sizes a serving shard actually coalesces. ns/window is directly
// comparable between the -batched and -sequential variants of each pair;
// batched must win from batch ≥ 8 (the acceptance gate for PR 2's tentpole).
func BenchmarkNNForwardBatch(b *testing.B) {
	rng := tensor.NewRNG(7)
	for _, spec := range models.ScaledPaperSpecs() {
		if spec.Family == models.FamilyRF {
			continue
		}
		net, err := models.BuildNet(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		clf := &models.NNClassifier{Net: net, Spec: spec}
		for _, batch := range []int{8, 32} {
			xs := make([]*tensor.Matrix, batch)
			for i := range xs {
				x := tensor.New(spec.WindowSize, eeg.NumChannels)
				for j := range x.Data {
					x.Data[j] = rng.NormFloat64()
				}
				xs[i] = x
			}
			b.Run(spec.Family.String()+"-b"+itoa(batch)+"-batched", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					clf.PredictBatch(xs)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/window")
			})
			b.Run(spec.Family.String()+"-b"+itoa(batch)+"-sequential", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, x := range xs {
						clf.Predict(x)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/window")
			})
		}
	}
}

// BenchmarkHubNNFleet is the CNN twin of BenchmarkHubThroughput's hub arm:
// 100 sessions sharing one CNN decoder, so each shard tick coalesces its
// ready windows into fused batch×feature GEMMs instead of per-window
// forwards. ns/inference is comparable with the RF hub numbers.
func BenchmarkHubNNFleet(b *testing.B) {
	const sessions = 100
	hub := benchHub(b, sessions, 4, "cnn-shared")
	defer hub.Stop()
	before := hub.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.TickAll()
	}
	b.StopTimer()
	after := hub.Snapshot()
	if inf := after.Inferences - before.Inferences; inf > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(inf), "ns/inference")
	}
	b.ReportMetric(after.TickP99Ms, "tick-p99-ms")
}

// --- helpers ---------------------------------------------------------------

// asrZoo runs the Fig. 7 evaluation and returns the selected model's point.
func asrZoo(seed uint64) (asr.ZooResult, error) {
	results, err := asr.EvaluateZoo(1.49e9*25, 10, seed)
	if err != nil {
		return asr.ZooResult{}, err
	}
	return asr.SelectModel(results, 1.0)
}

// vadDuty returns (speech-active frames, total frames) for a mixed
// speech/noise stream — the ASR duty cycle the VAD gate achieves.
func vadDuty(seed uint64) (active, total float64) {
	synth := audio.NewSynthesizer(seed)
	v := audio.NewVAD()
	var wave []float64
	wave = append(wave, synth.Noise(3, 0.01)...)
	wave = append(wave, synth.Utter(audio.WordArm, 0.8)...)
	wave = append(wave, synth.Noise(3, 0.01)...)
	wave = append(wave, synth.Utter(audio.WordFingers, 0.8)...)
	wave = append(wave, synth.Noise(2, 0.01)...)
	segs := v.DetectSegments(wave)
	for _, s := range segs {
		active += float64(s[1] - s[0])
	}
	return active, float64(len(wave) / audio.FrameSize)
}

func pooled(sc experiments.Scale, window int) (train, val []dataset.Window, err error) {
	bySubject, err := dataset.Build(sc.SubjectIDs, 1, dataset.ShortProtocol(sc.SessionSeconds), window, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	var all []dataset.Window
	for _, id := range sc.SubjectIDs {
		all = append(all, bySubject[id]...)
	}
	dataset.Shuffle(all, tensor.NewRNG(sc.Seed+3))
	cut := len(all) * 8 / 10
	return all[:cut], all[cut:], nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
