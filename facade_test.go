package cognitivearm

import (
	"testing"

	"cognitivearm/internal/eeg"
)

func TestQuickStartEndToEnd(t *testing.T) {
	sys, err := QuickStart(42)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Classifier == nil || sys.Controller == nil || sys.Spotter == nil {
		t.Fatal("incomplete system")
	}
	sys.Board.SetState(eeg.Right)
	for i := 0; i < 40; i++ {
		if _, err := sys.Controller.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Controller.Predictions[Right] == 0 {
		t.Fatalf("no right labels emitted: %v", sys.Controller.Predictions)
	}
}

func TestConfigConstructors(t *testing.T) {
	d := DefaultConfig()
	p := PaperConfig()
	if len(p.SubjectIDs) != 5 {
		t.Fatal("paper config should have five subjects")
	}
	if d.WindowSize <= 0 || p.WindowSize <= 0 {
		t.Fatal("window sizes must be positive")
	}
	if len(PaperSpecs()) != 4 || len(ScaledPaperSpecs()) != 4 {
		t.Fatal("four model families expected")
	}
}

func TestPipelineFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubjectIDs = []int{0}
	cfg.SessionSeconds = 24
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, val := p.Pooled()
	if len(train) == 0 || len(val) == 0 {
		t.Fatal("empty pooled split")
	}
}
