package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Self-scrape support (-scrape): loadgen hosts the admin plane in-process
// (-admin, ":0" picks a port) and polls its own /metrics at 1 Hz over real
// HTTP for the run's duration — exercising the exact scrape path an external
// Prometheus would — then prints the per-stage tick breakdown deltas in the
// final report. The numbers answer where a tick's time actually goes (source
// drain vs windowing vs batched inference vs decide) under the generated
// load, not in a microbenchmark.

// scraper polls one /metrics endpoint and retains the first and last parsed
// snapshots; deltas between them cover exactly the driven interval.
type scraper struct {
	url  string
	stop chan struct{}
	done chan struct{}

	mu    sync.Mutex
	first map[string]float64
	last  map[string]float64
	polls int
}

// startScraper begins polling url at the given interval.
func startScraper(url string, every time.Duration) *scraper {
	s := &scraper{url: url, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		s.poll()
		for {
			select {
			case <-s.stop:
				s.poll() // final sample so deltas cover the whole run
				return
			case <-tick.C:
				s.poll()
			}
		}
	}()
	return s
}

func (s *scraper) poll() {
	samples, err := scrapeMetrics(s.url)
	if err != nil {
		log.Printf("loadgen: scrape %s: %v", s.url, err)
		return
	}
	s.mu.Lock()
	if s.first == nil {
		s.first = samples
	}
	s.last = samples
	s.polls++
	s.mu.Unlock()
}

// close stops polling (taking one final sample) and waits for the poller.
func (s *scraper) close() {
	close(s.stop)
	<-s.done
}

// delta returns last − first for one exposition sample key, e.g.
// `cogarm_serve_ticks_total` or
// `cogarm_serve_tick_stage_seconds_sum{stage="drain"}`.
func (s *scraper) delta(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last[key] - s.first[key]
}

// report prints the scraped stage breakdown: per-tick mean wall time of each
// stage and its share of the summed stage time.
func (s *scraper) report() {
	s.mu.Lock()
	polls := s.polls
	s.mu.Unlock()
	ticks := s.delta("cogarm_serve_ticks_total")
	if ticks <= 0 {
		fmt.Printf("\nscrape: no ticks observed across %d polls of %s\n", polls, s.url)
		return
	}
	stages := []string{"drain", "window", "infer", "decide"}
	var total float64
	sums := make([]float64, len(stages))
	for i, st := range stages {
		sums[i] = s.delta(fmt.Sprintf("cogarm_serve_tick_stage_seconds_sum{stage=%q}", st))
		total += sums[i]
	}
	fmt.Printf("\nscraped stage breakdown (%d polls of %s, %d ticks):\n", polls, s.url, uint64(ticks))
	for i, st := range stages {
		share := 0.0
		if total > 0 {
			share = 100 * sums[i] / total
		}
		fmt.Printf("  %-6s %8.2fµs/tick  %5.1f%%\n", st, 1e6*sums[i]/ticks, share)
	}
	if inf := s.delta("cogarm_serve_inferences_total"); inf > 0 {
		fmt.Printf("  whole tick %.2fµs mean, %.2fµs per inference (scraped)\n",
			1e6*s.delta("cogarm_serve_tick_seconds_sum")/ticks,
			1e6*s.delta("cogarm_serve_tick_seconds_sum")/inf)
	}
}

// scrapeMetrics fetches and parses one Prometheus text exposition into
// key → value, keyed by the full sample name including its label set.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}
