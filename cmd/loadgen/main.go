// loadgen benchmarks the CognitiveArm serving hub with M synthetic
// subjects. It answers the capacity question directly: how many concurrent
// closed-loop sessions does one machine sustain, and at what per-inference
// cost?
//
// Three modes:
//
//   - -mode inproc (default): builds its own hub, trains the shared decoder
//     once, admits -sessions board-backed synthetic subjects, and drives
//     shards caller-paced (TickAll) as fast as they will go for -duration —
//     maximum-throughput numbers. With -paced it instead runs the real
//     15 Hz shard loops, which measures headroom rather than ceiling.
//
//   - -mode udp: streams -sessions synthetic subjects at -rate Hz to a
//     running cogarmd (-targets is the comma-separated inlet address list
//     cogarmd printed at startup with -listen).
//
//   - -mode cluster: builds -nodes in-process cluster nodes joined over real
//     loopback TCP, routes -sessions subjects across them by consistent
//     hash, and drives every node's hub flat out for -duration — the
//     multi-node scaling answer. Compare aggregate inferences/s at -nodes 1
//     and -nodes 2 on an otherwise idle machine to see the near-linear
//     scale-out (the model trains once and is shared, so only serving work
//     multiplies). With -kill it becomes a chaos drill: the HA stack runs
//     (warm-standby replication, heartbeats, failure detection), one node is
//     killed mid-drive without drain, and the report shows how long the
//     survivors took to reap it and promote its sessions.
//
// The report includes fleet and per-shard snapshots: sessions, ticks,
// inference throughput, realised batch size, and p50/p99 tick latency.
//
// Example:
//
//	loadgen -sessions 100 -shards 4 -duration 10s
//	loadgen -mode udp -targets 127.0.0.1:40001,127.0.0.1:40002 -duration 30s
//	loadgen -mode cluster -nodes 2 -sessions 200 -duration 10s
//	loadgen -mode cluster -nodes 3 -sessions 90 -duration 20s -kill 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"cognitivearm/internal/board"
	"cognitivearm/internal/cluster"
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
)

func main() {
	var (
		mode          = flag.String("mode", "inproc", "inproc | udp | cluster")
		sessions      = flag.Int("sessions", 100, "concurrent synthetic subjects")
		shards        = flag.Int("shards", 4, "worker shards (inproc)")
		tickHz        = flag.Float64("tick", 15, "session classification rate (Hz)")
		duration      = flag.Duration("duration", 10*time.Second, "drive time")
		paced         = flag.Bool("paced", false, "inproc: run real paced shard loops instead of max-rate TickAll")
		targets       = flag.String("targets", "", "udp: comma-separated inlet addresses from cogarmd -listen")
		rate          = flag.Float64("rate", eeg.SampleRate, "udp: per-subject sample rate (Hz)")
		nodes         = flag.Int("nodes", 2, "cluster: in-process nodes joined over loopback TCP")
		kill          = flag.Duration("kill", 0, "cluster: kill the last node this long into the drive and measure automatic failover (needs -nodes >= 2)")
		seed          = flag.Uint64("seed", 1, "simulation seed")
		admin         = flag.String("admin", "", "host the admin plane in-process at this address (inproc/cluster; \":0\" picks a port)")
		scrape        = flag.Bool("scrape", false, "poll own /metrics at 1 Hz during the run and report the tick-stage breakdown (implies -admin 127.0.0.1:0)")
		kernelThreads = flag.Int("kernel-threads", 0, "workers for parallel batched GEMMs; 0 = derive from GOMAXPROCS, 1 = serial kernels")
		quantize      = flag.Bool("quantize", false, "serve int8/int16 quantized model twins where the calibration agreement gate passes")
	)
	flag.Parse()
	log.SetFlags(log.Ltime)

	adminAddr := *admin
	if *scrape && adminAddr == "" {
		adminAddr = "127.0.0.1:0"
	}
	switch *mode {
	case "inproc":
		runInproc(*sessions, *shards, *kernelThreads, *quantize, *tickHz, *duration, *paced, *seed, adminAddr, *scrape)
	case "udp":
		if adminAddr != "" {
			log.Printf("loadgen: -admin/-scrape apply to inproc and cluster modes (udp mode has no local hub; scrape cogarmd's -admin instead)")
		}
		runUDP(strings.Split(*targets, ","), *sessions, *rate, *duration, *seed)
	case "cluster":
		runCluster(*sessions, *nodes, *shards, *kernelThreads, *tickHz, *duration, *kill, *seed, adminAddr, *scrape)
	default:
		log.Fatalf("loadgen: unknown mode %q", *mode)
	}
}

// startAdmin hosts the admin plane in-process (empty addr = disabled) and,
// when scrape is set, starts the 1 Hz self-scraper against it. The returned
// stop func tears both down (taking the scraper's final sample); the
// returned scraper is nil when scraping is off.
func startAdmin(adminAddr string, scrape bool, hub *serve.Hub, clusterStatus func() any) (*scraper, func()) {
	if adminAddr == "" {
		return nil, func() {}
	}
	srv, bound, err := obs.StartAdmin(adminAddr, obs.AdminOptions{
		Health: hub.Health,
		Status: func() any { return hub.Status("", clusterStatus) },
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	log.Printf("loadgen: admin plane on http://%s", bound)
	var sc *scraper
	if scrape {
		sc = startScraper(fmt.Sprintf("http://%s/metrics", bound), time.Second)
	}
	return sc, func() {
		if sc != nil {
			sc.close()
		}
		srv.Close()
	}
}

func runInproc(sessions, shards, kernelThreads int, quantize bool, tickHz float64, duration time.Duration, paced bool, seed uint64, adminAddr string, scrape bool) {
	log.Printf("loadgen: training shared decoder")
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	pipeline, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	if quantize {
		// Enable before the decoder resolves: quantization applies at build
		// time, never retroactively.
		reg.EnableQuantization(serve.QuantPolicy{})
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	if _, _, err := reg.GetOrBuild("rf-shared", func() (models.Classifier, int64, error) {
		c, _, err := pipeline.TrainModel(spec)
		return c, models.OpsPerInference(spec), err
	}); err != nil {
		log.Fatal(err)
	}

	perShard := (sessions + shards - 1) / shards
	hub, err := serve.NewHub(serve.Config{
		Shards:              shards,
		MaxSessionsPerShard: perShard,
		TickHz:              tickHz,
		LatencyWindow:       2048,
		KernelThreads:       kernelThreads,
		Quantize:            quantize,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < sessions; i++ {
		subject := i % len(cfg.SubjectIDs)
		b := board.NewSyntheticCyton(eeg.NewSubject(subject), seed+uint64(i)*13+7, false)
		if err := b.Start(); err != nil {
			log.Fatal(err)
		}
		if _, err := hub.Admit(serve.SessionConfig{
			ModelKey: "rf-shared",
			Source:   b,
			Norm:     pipeline.NormFor(subject),
		}); err != nil {
			log.Fatalf("loadgen: admit session %d: %v", i, err)
		}
	}
	log.Printf("loadgen: %d sessions on %d shards, driving for %v (paced=%v)", sessions, shards, duration, paced)
	sc, stopAdmin := startAdmin(adminAddr, scrape, hub, nil)

	start := time.Now()
	if paced {
		hub.Start()
		time.Sleep(duration)
	} else {
		deadline := start.Add(duration)
		for time.Now().Before(deadline) {
			hub.TickAll()
		}
	}
	elapsed := time.Since(start)
	// Snapshot before Stop so the report shows the live fleet, not the
	// drained one.
	snap := hub.Snapshot()
	stopAdmin() // final scrape while the counters still cover the run
	hub.Stop()

	fmt.Printf("\n%s\n", snap)
	for _, s := range snap.Shards {
		fmt.Printf("%s\n", s)
	}
	secs := elapsed.Seconds()
	fmt.Printf("\nwall %.2fs  ticks/s %.0f  inferences/s %.0f  samples/s %.0f\n",
		secs, float64(snap.Ticks)/secs, float64(snap.Inferences)/secs, float64(snap.SamplesIn)/secs)
	if snap.Inferences > 0 {
		fmt.Printf("per-inference wall %.2fµs (fleet-wide, incl. ingest+filtering)\n",
			1e6*secs/float64(snap.Inferences))
	}
	if sc != nil {
		sc.report()
	}
}

// runCluster measures multi-node scale-out: -nodes cluster nodes in one
// process (joined over real loopback TCP, exactly the cogarmd -cluster
// shape), sessions routed across them by consistent hash, every hub driven
// caller-paced as fast as it will go. Each node runs its own shards, its own
// registry holding the shared train-once decoder, and its own tick loops —
// the only cross-node traffic is membership and (on join) migration, so
// aggregate throughput scales with nodes until the machine runs out of
// cores.
func runCluster(sessions, nodes, shards, kernelThreads int, tickHz float64, duration, kill time.Duration, seed uint64, adminAddr string, scrape bool) {
	if nodes < 1 {
		log.Fatal("loadgen: -nodes must be >= 1")
	}
	if kill > 0 && nodes < 2 {
		log.Fatal("loadgen: -kill needs -nodes >= 2 (someone has to survive)")
	}
	if kill >= duration {
		kill = 0
	}
	log.Printf("loadgen: training shared decoder (once, for all %d nodes)", nodes)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	pipeline, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	clf, _, err := pipeline.TrainModel(spec)
	if err != nil {
		log.Fatal(err)
	}

	rebind := func(rec serve.RestoredSession) (serve.Source, error) {
		b := board.NewSyntheticCyton(eeg.NewSubject(0), seed+uint64(rec.ID)*13+7, false)
		if err := b.Start(); err != nil {
			return nil, err
		}
		return b, nil
	}
	perShard := (sessions + shards - 1) / shards // full capacity per node: hash skew must never refuse
	var hubs []*serve.Hub
	byID := map[string]*cluster.Node{}
	var ns []*cluster.Node
	for i := 0; i < nodes; i++ {
		reg := serve.NewRegistry()
		reg.GetOrBuild("rf-shared", func() (models.Classifier, int64, error) {
			return clf, models.OpsPerInference(spec), nil
		})
		hub, err := serve.NewHub(serve.Config{
			Shards:              shards,
			MaxSessionsPerShard: perShard,
			TickHz:              tickHz,
			LatencyWindow:       2048,
			KernelThreads:       kernelThreads,
		}, reg)
		if err != nil {
			log.Fatal(err)
		}
		ncfg := cluster.Config{ID: fmt.Sprintf("node-%d", i), Rebind: rebind}
		if kill > 0 {
			// Chaos mode runs the full HA stack: warm-standby replication plus
			// heartbeat-driven failure detection, exactly the cogarmd shape.
			ncfg.Replicas = 1
			ncfg.ReplicateEvery = cluster.DefaultReplicateEvery
			ncfg.HeartbeatEvery = cluster.DefaultHeartbeatEvery
		}
		node, err := cluster.NewNode(ncfg, hub)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		if i > 0 {
			if err := node.Join(ns[0].Addr()); err != nil {
				log.Fatal(err)
			}
		}
		hubs = append(hubs, hub)
		ns = append(ns, node)
		byID[node.ID()] = node
	}

	for i := 0; i < sessions; i++ {
		subject := i % len(cfg.SubjectIDs)
		tag := fmt.Sprintf("subject:%d", i)
		target := ns[0]
		if owner, _, local := ns[0].Owner(tag); !local {
			target = byID[owner]
		}
		b := board.NewSyntheticCyton(eeg.NewSubject(subject), seed+uint64(i)*13+7, false)
		if err := b.Start(); err != nil {
			log.Fatal(err)
		}
		if _, err := target.Admit(serve.SessionConfig{
			ModelKey: "rf-shared",
			Source:   b,
			Norm:     pipeline.NormFor(subject),
			Tag:      tag,
		}); err != nil {
			log.Fatalf("loadgen: admit %s on %s: %v", tag, target.ID(), err)
		}
	}
	for _, n := range ns {
		log.Printf("loadgen: %s", n.Snapshot())
	}
	log.Printf("loadgen: %d sessions across %d nodes, driving for %v", sessions, nodes, duration)
	// The registry and event ring are process-global, so one admin plane
	// covers all in-process nodes; health and cluster status report node 0.
	sc, stopAdmin := startAdmin(adminAddr, scrape, hubs[0], ns[0].Status)

	start := time.Now()
	deadline := start.Add(duration)
	vi := len(hubs) - 1 // chaos victim: the last-joined node
	killCh := make(chan struct{})
	victimDone := make(chan struct{})
	var wg sync.WaitGroup
	for i, hub := range hubs {
		wg.Add(1)
		go func(i int, hub *serve.Hub) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if kill > 0 && i == vi {
					select {
					case <-killCh:
						close(victimDone)
						return
					default:
					}
				}
				hub.TickAll()
			}
			if kill > 0 && i == vi {
				close(victimDone)
			}
		}(i, hub)
	}
	killed := false
	if kill > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(kill)
			lost := hubs[vi].Sessions()
			survivors := 0
			for i, h := range hubs {
				if i != vi {
					survivors += h.Sessions()
				}
			}
			log.Printf("loadgen: chaos: killing %s (%d sessions) without drain", ns[vi].ID(), lost)
			close(killCh)
			<-victimDone
			t0 := time.Now()
			ns[vi].Close()
			hubs[vi].Stop()
			killed = true
			// The survivors' detectors now have to notice the silence, reap
			// the member, and promote its warm replicas — unassisted. Poll the
			// surviving hubs until the fleet is whole again.
			for time.Now().Before(deadline) {
				cur := 0
				for i, h := range hubs {
					if i != vi {
						cur += h.Sessions()
					}
				}
				if cur >= survivors+lost {
					log.Printf("loadgen: chaos: failover complete, %d sessions promoted after %v", lost, time.Since(t0).Round(time.Millisecond))
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			log.Printf("loadgen: chaos: failover incomplete at deadline (raise -duration or lower -suspect)")
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopAdmin() // final scrape while the counters still cover the run

	var totalInf, totalTicks, totalSamples uint64
	for i, hub := range hubs {
		snap := hub.Snapshot()
		if !(killed && i == vi) {
			hub.Stop()
		}
		fmt.Printf("\nnode-%d %s\n", i, snap)
		totalInf += snap.Inferences
		totalTicks += snap.Ticks
		totalSamples += snap.SamplesIn
	}
	secs := elapsed.Seconds()
	fmt.Printf("\naggregate: wall %.2fs  ticks/s %.0f  inferences/s %.0f  samples/s %.0f\n",
		secs, float64(totalTicks)/secs, float64(totalInf)/secs, float64(totalSamples)/secs)
	if totalInf > 0 {
		fmt.Printf("per-inference wall %.2fµs (aggregate across %d nodes)\n", 1e6*secs/float64(totalInf), nodes)
	}
	if sc != nil {
		sc.report()
	}
}

// runUDP streams synthetic EEG to a running cogarmd. Subjects are assigned
// to targets round-robin, so more sessions than targets multiplexes several
// subjects onto one inlet (a stress shape), while sessions == targets is the
// clean one-subject-per-inlet drive.
func runUDP(targets []string, sessions int, rateHz float64, duration time.Duration, seed uint64) {
	var addrs []string
	for _, t := range targets {
		if t = strings.TrimSpace(t); t != "" {
			addrs = append(addrs, t)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("loadgen: -mode udp needs -targets (see cogarmd -listen output)")
	}
	if sessions < len(addrs) {
		sessions = len(addrs)
	}
	clock := stream.NewVirtualClock(0, 0)
	var wg sync.WaitGroup
	var totalSent uint64
	var mu sync.Mutex
	for i := 0; i < sessions; i++ {
		addr := addrs[i%len(addrs)]
		outlet, err := stream.NewUDPOutlet(addr, clock, stream.LinkConfig{Seed: seed + uint64(i)})
		if err != nil {
			log.Fatalf("loadgen: dial %s: %v", addr, err)
		}
		wg.Add(1)
		go func(i int, outlet *stream.UDPOutlet) {
			defer wg.Done()
			defer func() {
				outlet.Close()
				mu.Lock()
				totalSent += outlet.BytesSent
				mu.Unlock()
			}()
			gen := eeg.NewGenerator(eeg.NewSubject(i%5), seed+uint64(i)*31)
			const chunk = 5
			interval := time.Duration(float64(chunk) / rateHz * float64(time.Second))
			tick := time.NewTicker(interval)
			defer tick.Stop()
			deadline := time.Now().Add(duration)
			for time.Now().Before(deadline) {
				<-tick.C
				for j := 0; j < chunk; j++ {
					raw := gen.Next(eeg.Action((i + j) % 3))
					outlet.Push(raw[:])
				}
			}
		}(i, outlet)
	}
	log.Printf("loadgen: streaming %d subjects to %d inlets at %.0f Hz for %v", sessions, len(addrs), rateHz, duration)
	wg.Wait()
	log.Printf("loadgen: done, %d payload bytes sent", totalSent)
}
