// The wal subcommand family queries a daemon's write-ahead log offline —
// no running cogarmd needed, read-only, safe against live or crashed logs:
//
//	cogarm wal verify <dir>                 re-derive every Merkle root
//	cogarm wal dump [-kind k] [-since n] <dir>   print entries as JSON lines
//
// verify recomputes each batch and segment root from the entry payloads and
// compares against the stored seals and footers; a single flipped payload
// byte surfaces as a mismatch on its segment. dump streams the audit trail:
// session records, manifests, models, audit events and prediction decisions
// in sequence order, decoding the fixed-binary kinds in place.
package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/wal"
)

func runWal(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cogarm wal verify|dump [flags] <dir>")
		os.Exit(2)
	}
	switch args[0] {
	case "verify":
		walVerify(args[1:])
	case "dump":
		walDump(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "cogarm wal: unknown verb %q (verify|dump)\n", args[0])
		os.Exit(2)
	}
}

// walVerify prints one report per segment and exits non-zero when any root,
// CRC or framing check fails. A torn tail on the final segment is reported
// but is not a failure: recovery truncates it deterministically on Open.
func walVerify(args []string) {
	fs := flag.NewFlagSet("cogarm wal verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cogarm wal verify <dir>")
		os.Exit(2)
	}
	reports, err := wal.Verify(fs.Arg(0))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(reports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cogarm wal verify: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cogarm wal verify: %d segment(s) clean\n", len(reports))
}

// dumpLine is one WAL entry rendered for humans and jq: the frame envelope
// plus a decoded detail object for the kinds the CLI understands.
type dumpLine struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Segment string `json:"segment"`
	Sealed  bool   `json:"sealed"`
	Bytes   int    `json:"bytes"`
	Detail  any    `json:"detail,omitempty"`
}

func walDump(args []string) {
	fs := flag.NewFlagSet("cogarm wal dump", flag.ExitOnError)
	kindFlag := fs.String("kind", "", "only entries of this kind (session|refs|model|audit|decision)")
	since := fs.Uint64("since", 0, "only entries with seq strictly above this")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cogarm wal dump [-kind k] [-since n] <dir>")
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	n := 0
	err := wal.Dump(fs.Arg(0), func(e wal.Entry) error {
		if e.Seq <= *since {
			return nil
		}
		if *kindFlag != "" && kindName(e.Kind) != *kindFlag {
			return nil
		}
		n++
		return enc.Encode(dumpLine{
			Seq:     e.Seq,
			Kind:    kindName(e.Kind),
			Segment: e.Segment,
			Sealed:  e.Sealed,
			Bytes:   len(e.Data),
			Detail:  decodeDetail(e),
		})
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cogarm wal dump: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cogarm wal dump: %d entries\n", n)
}

func kindName(k wal.Kind) string {
	switch k {
	case wal.KindSession:
		return "session"
	case wal.KindRefs:
		return "refs"
	case wal.KindModel:
		return "model"
	case wal.KindAudit:
		return "audit"
	case wal.KindDecision:
		return "decision"
	default:
		return fmt.Sprintf("kind-%d", k)
	}
}

// decodeDetail renders the kinds the CLI can decode; undecodable payloads
// (future kinds, gob drift) degrade to the envelope alone rather than
// aborting the dump.
func decodeDetail(e wal.Entry) any {
	switch e.Kind {
	case wal.KindSession:
		var rec checkpoint.SessionRecord
		if gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&rec) != nil {
			return nil
		}
		return map[string]any{
			"session": rec.ID, "ver": rec.Ver, "shard": rec.Shard,
			"model": rec.ModelKey, "tag": rec.Tag,
		}
	case wal.KindRefs:
		var man checkpoint.Manifest
		if gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&man) != nil {
			return nil
		}
		return map[string]any{
			"sessions": len(man.Refs), "next_id": man.NextID, "shards": len(man.Shards),
		}
	case wal.KindAudit:
		ev, err := wal.DecodeEvent(e.Data)
		if err != nil {
			return nil
		}
		d := map[string]any{
			"event": ev.Type.String(), "time_ns": ev.Time,
			"shard": ev.Shard, "session": ev.Session,
		}
		if a, b := ev.Type.ArgNames(); a != "" {
			d[a] = ev.A
			if b != "" {
				d[b] = ev.B
			}
		}
		return d
	case wal.KindDecision:
		dec, err := wal.DecodeDecision(e.Data)
		if err != nil {
			return nil
		}
		return map[string]any{
			"session": dec.Session, "ver": dec.Ver,
			"decoded": dec.Decoded, "agreed": dec.Agreed,
		}
	}
	return nil
}
