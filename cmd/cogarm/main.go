// cogarm runs an interactive-style end-to-end demo of the CognitiveArm
// pipeline: it trains a decoder for one subject, then scripts a scenario of
// voice commands and mental tasks, printing the arm's state as it moves.
//
// It also hosts the offline admin verbs — currently the write-ahead-log
// tooling (`cogarm wal verify|dump`, see wal.go).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cognitivearm"
	"cognitivearm/internal/arm"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/eeg"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "wal" {
		runWal(os.Args[2:])
		return
	}
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	fmt.Println("cogarm: CognitiveArm end-to-end demo")
	sys, err := cognitivearm.QuickStart(*seed)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("decoder: %s\n\n", sys.Classifier.Name())

	voice := audio.NewSynthesizer(*seed * 1000) // an enrolled speaker
	script := []struct {
		say   audio.Word
		think eeg.Action
		secs  float64
	}{
		{audio.WordArm, eeg.Right, 3},     // raise the arm
		{audio.Silence, eeg.Idle, 1},      // hold
		{audio.WordElbow, eeg.Right, 2},   // rotate clockwise
		{audio.WordFingers, eeg.Right, 3}, // close the grip
		{audio.Silence, eeg.Idle, 1},      // hold the object
		{audio.WordFingers, eeg.Left, 2},  // release
		{audio.WordArm, eeg.Left, 3},      // lower
	}
	for _, step := range script {
		if step.say != audio.Silence {
			heard := sys.HearCommand(voice.Utter(step.say, 0.8))
			fmt.Printf("[voice] %q → mode %s\n", heard, sys.Controller.Mode())
		}
		sys.Board.SetState(step.think)
		ticks := int(step.secs * 15)
		for i := 0; i < ticks; i++ {
			if _, err := sys.Controller.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		ard := sys.Controller.Arduino()
		fmt.Printf("[think %-5v %.0fs] arm %5.1f° elbow %5.1f° fingers %5.1f°\n",
			step.think, step.secs,
			ard.Angle(arm.ChanArm), ard.Angle(arm.ChanElbow), ard.Angle(arm.ChanIndex))
	}

	l := sys.Controller.Latency
	fmt.Printf("\n%d ticks, mean modelled end-to-end latency %.1f ms (15 Hz budget: 66.7 ms)\n",
		l.Ticks, 1e3*l.PerTick())
	fmt.Printf("labels: %v\n", sys.Controller.Predictions)
}
