package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"cognitivearm/internal/board"
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
)

// The -serve mode: a fixed serving micro-benchmark whose numbers land in
// BENCH_serve.json, so the fleet path's perf trajectory (µs/inference,
// allocs/op, checkpoint latency at 100 sessions) is tracked across PRs by a
// machine-readable artefact instead of buried bench logs.

// serveBenchReport is the schema of BENCH_serve.json.
type serveBenchReport struct {
	Sessions int                        `json:"sessions"`
	Shards   int                        `json:"shards"`
	Models   map[string]serveModelBench `json:"models"`
	Ckpt     serveCkptBench             `json:"checkpoint"`
}

type serveModelBench struct {
	// UsPerInference is measured with telemetry enabled — the production
	// shape; UsPerInferenceBare disables it (serve.Config.DisableTelemetry)
	// so the delta is the measured cost of the instrumentation itself.
	UsPerInference       float64 `json:"us_per_inference"`
	UsPerInferenceBare   float64 `json:"us_per_inference_bare"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	AllocsPerTick        float64 `json:"allocs_per_tick"`
	MeanBatch            float64 `json:"mean_batch"`
}

type serveCkptBench struct {
	FullMs           float64 `json:"full_ms"`
	FullBytes        int64   `json:"full_bytes"`
	IncrementalMs    float64 `json:"incremental_ms"`
	IncrementalBytes int64   `json:"incremental_bytes"`
}

// runServeBench builds a 100-session fleet per decoder family, measures the
// steady-state tick loop, times a full and an incremental checkpoint, and
// writes the report to outPath.
func runServeBench(outPath string) {
	const (
		sessions = 100
		shards   = 4
		warmup   = 25
		ticks    = 150
	)
	cfg := core.DefaultConfig()
	cfg.SubjectIDs = []int{0}
	cfg.SessionSeconds = 24
	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	rfSpec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	if _, _, err := reg.GetOrBuild("rf", func() (models.Classifier, int64, error) {
		clf, _, err := pipe.TrainModel(rfSpec)
		return clf, models.OpsPerInference(rfSpec), err
	}); err != nil {
		log.Fatal(err)
	}
	// Untrained CNN weights serve at identical cost to trained ones.
	cnnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: cfg.WindowSize,
		Optimizer: "adam", LR: 1e-3, Dropout: 0.2, ConvLayers: 1, Filters: 32, Kernel: 5, Stride: 2, Pool: "none"}
	if _, _, err := reg.GetOrBuild("cnn", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(cnnSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: cnnSpec}, models.OpsPerInference(cnnSpec), nil
	}); err != nil {
		log.Fatal(err)
	}

	report := serveBenchReport{Sessions: sessions, Shards: shards, Models: map[string]serveModelBench{}}
	for _, key := range []string{"rf", "cnn"} {
		// Telemetry-off pass first: same fleet shape, instrumentation
		// compiled out of the tick path via the nil-handle guard.
		bareHub, _ := buildServeBenchHub(reg, pipe, key, sessions, shards, true)
		usBare, _, _ := measureServeTicks(bareHub, warmup, ticks)
		bareHub.Stop()

		hub, boards := buildServeBenchHub(reg, pipe, key, sessions, shards, false)
		usOn, allocs, meanBatch := measureServeTicks(hub, warmup, ticks)
		mb := serveModelBench{
			UsPerInference:     usOn,
			UsPerInferenceBare: usBare,
			AllocsPerTick:      allocs,
			MeanBatch:          meanBatch,
		}
		if usBare > 0 {
			mb.TelemetryOverheadPct = 100 * (usOn - usBare) / usBare
		}
		report.Models[key] = mb

		if key == "rf" { // checkpoint timing once, on the trained-model fleet
			root, err := os.MkdirTemp("", "benchckpt")
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			fullDir, err := hub.Checkpoint(root)
			if err != nil {
				log.Fatal(err)
			}
			report.Ckpt.FullMs = float64(time.Since(start).Microseconds()) / 1e3
			report.Ckpt.FullBytes = dirBytes(fullDir)
			// The incremental measure mirrors the churn-proportional claim:
			// 90 of 100 subjects go quiet, 10 keep streaming, so only 10
			// session records are rewritten.
			for _, b := range boards[10:] {
				b.Stop()
			}
			for i := 0; i < 5; i++ {
				hub.TickAll()
			}
			start = time.Now()
			incDir, err := hub.Checkpoint(root)
			if err != nil {
				log.Fatal(err)
			}
			report.Ckpt.IncrementalMs = float64(time.Since(start).Microseconds()) / 1e3
			report.Ckpt.IncrementalBytes = dirBytes(incDir)
			os.RemoveAll(root)
		}
		hub.Stop()
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Serving benchmark (%d sessions, %d shards) ==\n", sessions, shards)
	for _, key := range []string{"rf", "cnn"} {
		mb := report.Models[key]
		fmt.Printf("%-4s %8.1f µs/inference (telemetry on, %+.1f%% vs %.1f bare)  %8.1f allocs/tick  mean batch %.1f\n",
			key, mb.UsPerInference, mb.TelemetryOverheadPct, mb.UsPerInferenceBare, mb.AllocsPerTick, mb.MeanBatch)
	}
	fmt.Printf("checkpoint: full %.1f ms / %d B, incremental %.1f ms / %d B\n",
		report.Ckpt.FullMs, report.Ckpt.FullBytes, report.Ckpt.IncrementalMs, report.Ckpt.IncrementalBytes)
	fmt.Printf("wrote %s\n\n", outPath)
}

// measureServeTicks warms the hub, then times a fixed tick count, returning
// µs/inference, allocs/tick, and the realised mean batch size.
func measureServeTicks(hub *serve.Hub, warmup, ticks int) (usPerInf, allocsPerTick, meanBatch float64) {
	for i := 0; i < warmup; i++ {
		hub.TickAll()
	}
	before := hub.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < ticks; i++ {
		hub.TickAll()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	after := hub.Snapshot()
	inf := after.Inferences - before.Inferences
	allocsPerTick = float64(ms1.Mallocs-ms0.Mallocs) / float64(ticks)
	if inf > 0 {
		usPerInf = float64(elapsed.Microseconds()) / float64(inf)
	}
	if batches := after.Batches - before.Batches; batches > 0 {
		meanBatch = float64(inf) / float64(batches)
	}
	return usPerInf, allocsPerTick, meanBatch
}

func buildServeBenchHub(reg *serve.Registry, pipe *core.Pipeline, modelKey string, sessions, shards int, disableTelemetry bool) (*serve.Hub, []*board.SyntheticCyton) {
	hub, err := serve.NewHub(serve.Config{
		Shards:              shards,
		MaxSessionsPerShard: (sessions + shards - 1) / shards,
		TickHz:              15,
		LatencyWindow:       1024,
		DisableTelemetry:    disableTelemetry,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	boards := make([]*board.SyntheticCyton, 0, sessions)
	for i := 0; i < sessions; i++ {
		brd := board.NewSyntheticCyton(eeg.NewSubject(0), uint64(i)*13+7, false)
		if err := brd.Start(); err != nil {
			log.Fatal(err)
		}
		if _, err := hub.Admit(serve.SessionConfig{ModelKey: modelKey, Source: brd, Norm: pipe.NormFor(0)}); err != nil {
			log.Fatal(err)
		}
		boards = append(boards, brd)
	}
	return hub, boards
}

// dirBytes sums the file sizes directly inside dir.
func dirBytes(dir string) int64 {
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range des {
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
