package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"cognitivearm/internal/board"
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/wal"
)

// The -serve mode: a fixed serving micro-benchmark whose numbers land in
// BENCH_serve.json, so the fleet path's perf trajectory (µs/inference,
// allocs/op, checkpoint latency at 100 sessions) is tracked across PRs by a
// machine-readable artefact instead of buried bench logs.
//
// Telemetry-on and telemetry-off fleets are measured in interleaved repeats
// (alternating order, median of serveBenchRepeats chunks each) so slow drift
// — CPU frequency scaling, cache warmth, background load — cancels instead
// of landing entirely on whichever pass ran second; sequential passes once
// produced a nonsensical negative "telemetry overhead".

// serveBenchReport is the schema of BENCH_serve.json. us_per_inference and
// allocs_per_tick are the benchgate contract (scripts/benchgate.go) and keep
// their meaning: telemetry on, serial kernels.
type serveBenchReport struct {
	Sessions   int                        `json:"sessions"`
	Shards     int                        `json:"shards"`
	GoMaxProcs int                        `json:"gomaxprocs"`
	Models     map[string]serveModelBench `json:"models"`
	Ckpt       serveCkptBench             `json:"checkpoint"`
	Wal        serveWalBench              `json:"wal"`
}

type serveModelBench struct {
	// UsPerInference is measured with telemetry enabled — the production
	// shape; UsPerInferenceBare disables it (serve.Config.DisableTelemetry)
	// so the delta is the measured cost of the instrumentation itself. Both
	// are medians of interleaved repeats on the serial kernel path.
	UsPerInference       float64 `json:"us_per_inference"`
	UsPerInferenceBare   float64 `json:"us_per_inference_bare"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// UsPerInferenceSerial repeats us_per_inference under its explicit name;
	// UsPerInferenceParallel is the same fleet with the kernel pool at
	// KernelThreads workers; UsPerInferenceQuantized serves the int8/int16
	// twin (0 when the model has no quantized form or the gate rejected it).
	UsPerInferenceSerial    float64 `json:"us_per_inference_serial"`
	UsPerInferenceParallel  float64 `json:"us_per_inference_parallel"`
	UsPerInferenceQuantized float64 `json:"us_per_inference_quantized"`
	KernelThreads           int     `json:"kernel_threads"`
	AllocsPerTick           float64 `json:"allocs_per_tick"`
	MeanBatch               float64 `json:"mean_batch"`
}

type serveCkptBench struct {
	FullMs           float64 `json:"full_ms"`
	FullBytes        int64   `json:"full_bytes"`
	IncrementalMs    float64 `json:"incremental_ms"`
	IncrementalBytes int64   `json:"incremental_bytes"`
}

// serveWalBench is the journal column: the amortized per-tick cost of
// capturing, framing, Merkle-sealing, and appending the fleet's mutations
// to the WAL (NoSync — the fsync at the seal is a disk property, not a
// code one), measured on the trained rf fleet at the production cadence of
// one flush per serveBenchChunk ticks (~2 s at 15 Hz).
type serveWalBench struct {
	AppendUsPerTick float64 `json:"append_us_per_tick"`
	BytesPerTick    float64 `json:"bytes_per_tick"`
}

const (
	serveBenchSessions = 100
	serveBenchShards   = 4
	serveBenchWarmup   = 25
	serveBenchRepeats  = 5
	serveBenchChunk    = 30 // ticks per measured chunk
)

// runServeBench builds a 100-session fleet per decoder family, measures the
// steady-state tick loop on the serial, parallel, and quantized paths, times
// a full and an incremental checkpoint, and writes the report to outPath.
func runServeBench(outPath string) {
	cfg := core.DefaultConfig()
	cfg.SubjectIDs = []int{0}
	cfg.SessionSeconds = 24
	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	rfSpec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	if _, _, err := reg.GetOrBuild("rf", func() (models.Classifier, int64, error) {
		clf, _, err := pipe.TrainModel(rfSpec)
		return clf, models.OpsPerInference(rfSpec), err
	}); err != nil {
		log.Fatal(err)
	}
	// Untrained CNN weights serve at identical cost to trained ones.
	cnnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: cfg.WindowSize,
		Optimizer: "adam", LR: 1e-3, Dropout: 0.2, ConvLayers: 1, Filters: 32, Kernel: 5, Stride: 2, Pool: "none"}
	if _, _, err := reg.GetOrBuild("cnn", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(cnnSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: cnnSpec}, models.OpsPerInference(cnnSpec), nil
	}); err != nil {
		log.Fatal(err)
	}

	// A second registry serves the same trained models through their
	// quantized twins (gate at 0.7 on synthetic calibration: the benchmark
	// measures kernel cost, not decoder accuracy).
	qreg := serve.NewRegistry()
	qreg.EnableQuantization(serve.QuantPolicy{MinAgreement: 0.7})
	for _, key := range []string{"rf", "cnn"} {
		clf, macs, ok := reg.Get(key)
		if !ok {
			log.Fatalf("model %q missing", key)
		}
		if _, _, err := qreg.GetOrBuild(key, func() (models.Classifier, int64, error) {
			return clf, macs, nil
		}); err != nil {
			log.Printf("benchtables: %s quantization rejected, quantized column will be 0: %v", key, err)
		}
	}

	parallelThreads := runtime.GOMAXPROCS(0)
	if parallelThreads > serve.MaxAutoKernelThreads {
		parallelThreads = serve.MaxAutoKernelThreads
	}

	report := serveBenchReport{
		Sessions:   serveBenchSessions,
		Shards:     serveBenchShards,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Models:     map[string]serveModelBench{},
	}
	for _, key := range []string{"rf", "cnn"} {
		hubBare, _ := buildServeBenchHub(reg, pipe, key, true, 1)
		hubOn, boards := buildServeBenchHub(reg, pipe, key, false, 1)
		usOn, usBare, allocs, meanBatch := measureInterleaved(hubOn, hubBare)
		hubBare.Stop()

		mb := serveModelBench{
			UsPerInference:       usOn,
			UsPerInferenceBare:   usBare,
			UsPerInferenceSerial: usOn,
			KernelThreads:        parallelThreads,
			AllocsPerTick:        allocs,
			MeanBatch:            meanBatch,
		}
		if usBare > 0 {
			mb.TelemetryOverheadPct = 100 * (usOn - usBare) / usBare
		}

		// Parallel pass: same fleet shape with the kernel pool attached.
		hubPar, _ := buildServeBenchHub(reg, pipe, key, false, parallelThreads)
		mb.UsPerInferenceParallel = measureMedian(hubPar)
		hubPar.Stop()

		// Quantized pass: int8 GEMM (cnn) / int16 forest (rf), serial kernels
		// so the column isolates quantization from threading.
		if _, _, ok := qreg.Get(key); ok {
			hubQ, _ := buildServeBenchHub(qreg, pipe, key, false, 1)
			mb.UsPerInferenceQuantized = measureMedian(hubQ)
			hubQ.Stop()
		}
		report.Models[key] = mb

		if key == "rf" { // checkpoint timing once, on the trained-model fleet
			root, err := os.MkdirTemp("", "benchckpt")
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			fullDir, err := hubOn.Checkpoint(root)
			if err != nil {
				log.Fatal(err)
			}
			report.Ckpt.FullMs = float64(time.Since(start).Microseconds()) / 1e3
			report.Ckpt.FullBytes = dirBytes(fullDir)
			// The incremental measure mirrors the churn-proportional claim:
			// 90 of 100 subjects go quiet, 10 keep streaming, so only 10
			// session records are rewritten.
			for _, b := range boards[10:] {
				b.Stop()
			}
			for i := 0; i < 5; i++ {
				hubOn.TickAll()
			}
			start = time.Now()
			incDir, err := hubOn.Checkpoint(root)
			if err != nil {
				log.Fatal(err)
			}
			report.Ckpt.IncrementalMs = float64(time.Since(start).Microseconds()) / 1e3
			report.Ckpt.IncrementalBytes = dirBytes(incDir)
			os.RemoveAll(root)
		}
		hubOn.Stop()
	}

	report.Wal = measureWalAppend(reg, pipe)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Serving benchmark (%d sessions, %d shards, GOMAXPROCS %d) ==\n",
		serveBenchSessions, serveBenchShards, report.GoMaxProcs)
	for _, key := range []string{"rf", "cnn"} {
		mb := report.Models[key]
		fmt.Printf("%-4s %8.1f µs/inference serial (telemetry %+.1f%% vs %.1f bare)  parallel×%d %8.1f  quantized %8.1f  %5.1f allocs/tick  mean batch %.1f\n",
			key, mb.UsPerInferenceSerial, mb.TelemetryOverheadPct, mb.UsPerInferenceBare,
			mb.KernelThreads, mb.UsPerInferenceParallel, mb.UsPerInferenceQuantized,
			mb.AllocsPerTick, mb.MeanBatch)
	}
	fmt.Printf("checkpoint: full %.1f ms / %d B, incremental %.1f ms / %d B\n",
		report.Ckpt.FullMs, report.Ckpt.FullBytes, report.Ckpt.IncrementalMs, report.Ckpt.IncrementalBytes)
	fmt.Printf("wal append: %.1f µs/tick, %.0f B/tick (flush per %d ticks, NoSync)\n",
		report.Wal.AppendUsPerTick, report.Wal.BytesPerTick, serveBenchChunk)
	fmt.Printf("wrote %s\n\n", outPath)
}

// measureWalAppend builds a fresh rf fleet with a NoSync journal and times
// one Journal.Flush per chunk of ticks, amortizing the flush over the
// ticks it covers. The ticks themselves are excluded from the timer; only
// capture+append+seal is measured.
func measureWalAppend(reg *serve.Registry, pipe *core.Pipeline) serveWalBench {
	hub, boards := buildServeBenchHub(reg, pipe, "rf", false, 1)
	defer hub.Stop()
	defer func() {
		for _, b := range boards {
			b.Stop()
		}
	}()
	dir, err := os.MkdirTemp("", "benchwal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	j, _, err := serve.NewJournal(hub, wal.Options{Dir: dir, NoSync: true, SegmentBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()

	for i := 0; i < serveBenchWarmup; i++ {
		hub.TickAll()
	}
	// The first flush is the full base (every session, the model payload);
	// take it outside the measurement so the chunks see steady-state deltas.
	if _, _, err := j.Flush(); err != nil {
		log.Fatal(err)
	}

	us := make([]float64, 0, serveBenchRepeats)
	var bytesSum float64
	for r := 0; r < serveBenchRepeats; r++ {
		before := j.Status().ActiveBytes
		for i := 0; i < serveBenchChunk; i++ {
			hub.TickAll()
		}
		start := time.Now()
		if _, _, err := j.Flush(); err != nil {
			log.Fatal(err)
		}
		us = append(us, float64(time.Since(start).Nanoseconds())/1e3/serveBenchChunk)
		bytesSum += float64(j.Status().ActiveBytes - before)
	}
	return serveWalBench{
		AppendUsPerTick: median(us),
		BytesPerTick:    bytesSum / float64(serveBenchRepeats*serveBenchChunk),
	}
}

// measureChunk times one fixed chunk of ticks on a warm hub, returning
// µs/inference, allocs/tick, and the realised mean batch size.
func measureChunk(hub *serve.Hub, ticks int) (usPerInf, allocsPerTick, meanBatch float64) {
	before := hub.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < ticks; i++ {
		hub.TickAll()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	after := hub.Snapshot()
	inf := after.Inferences - before.Inferences
	allocsPerTick = float64(ms1.Mallocs-ms0.Mallocs) / float64(ticks)
	if inf > 0 {
		usPerInf = float64(elapsed.Microseconds()) / float64(inf)
	}
	if batches := after.Batches - before.Batches; batches > 0 {
		meanBatch = float64(inf) / float64(batches)
	}
	return usPerInf, allocsPerTick, meanBatch
}

// measureInterleaved warms both hubs, then measures them in alternating
// chunks (order flipping each repeat so drift cancels) and reports the
// median µs/inference of each, plus mean allocs/tick and batch size from the
// telemetry-on hub.
func measureInterleaved(hubOn, hubBare *serve.Hub) (usOn, usBare, allocs, meanBatch float64) {
	for i := 0; i < serveBenchWarmup; i++ {
		hubOn.TickAll()
		hubBare.TickAll()
	}
	ons := make([]float64, 0, serveBenchRepeats)
	bares := make([]float64, 0, serveBenchRepeats)
	var allocSum, batchSum float64
	for r := 0; r < serveBenchRepeats; r++ {
		if r%2 == 0 {
			ub, _, _ := measureChunk(hubBare, serveBenchChunk)
			uo, a, mbatch := measureChunk(hubOn, serveBenchChunk)
			bares, ons = append(bares, ub), append(ons, uo)
			allocSum, batchSum = allocSum+a, batchSum+mbatch
		} else {
			uo, a, mbatch := measureChunk(hubOn, serveBenchChunk)
			ub, _, _ := measureChunk(hubBare, serveBenchChunk)
			bares, ons = append(bares, ub), append(ons, uo)
			allocSum, batchSum = allocSum+a, batchSum+mbatch
		}
	}
	return median(ons), median(bares), allocSum / serveBenchRepeats, batchSum / serveBenchRepeats
}

// measureMedian warms a hub and reports its median chunk µs/inference.
func measureMedian(hub *serve.Hub) float64 {
	for i := 0; i < serveBenchWarmup; i++ {
		hub.TickAll()
	}
	us := make([]float64, 0, serveBenchRepeats)
	for r := 0; r < serveBenchRepeats; r++ {
		u, _, _ := measureChunk(hub, serveBenchChunk)
		us = append(us, u)
	}
	return median(us)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func buildServeBenchHub(reg *serve.Registry, pipe *core.Pipeline, modelKey string, disableTelemetry bool, kernelThreads int) (*serve.Hub, []*board.SyntheticCyton) {
	hub, err := serve.NewHub(serve.Config{
		Shards:              serveBenchShards,
		MaxSessionsPerShard: (serveBenchSessions + serveBenchShards - 1) / serveBenchShards,
		TickHz:              15,
		LatencyWindow:       1024,
		DisableTelemetry:    disableTelemetry,
		KernelThreads:       kernelThreads,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	boards := make([]*board.SyntheticCyton, 0, serveBenchSessions)
	for i := 0; i < serveBenchSessions; i++ {
		brd := board.NewSyntheticCyton(eeg.NewSubject(0), uint64(i)*13+7, false)
		if err := brd.Start(); err != nil {
			log.Fatal(err)
		}
		if _, err := hub.Admit(serve.SessionConfig{ModelKey: modelKey, Source: brd, Norm: pipe.NormFor(0)}); err != nil {
			log.Fatal(err)
		}
		boards = append(boards, brd)
	}
	return hub, boards
}

// dirBytes sums the file sizes directly inside dir.
func dirBytes(dir string) int64 {
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range des {
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
