// benchtables regenerates the paper's tables and figures as text. Use
// -all for everything, or select individual artefacts:
//
//	benchtables -table 1|2|3
//	benchtables -fig 4|5|7|8|9|10|11|12
//	benchtables -headline -validate
//	benchtables -scale full   (reproduction scale; slower)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cognitivearm"
	"cognitivearm/internal/asr"
	"cognitivearm/internal/control"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/evo"
	"cognitivearm/internal/experiments"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

func main() {
	table := flag.Int("table", 0, "print table N (1-3)")
	fig := flag.Int("fig", 0, "regenerate figure N (4,5,7,8,9,10,11,12)")
	headline := flag.Bool("headline", false, "reproduce the §V headline numbers")
	validate := flag.Bool("validate", false, "run the §IV-A5 real-world validation protocol")
	serveBench := flag.Bool("serve", false, "run the 100-session serving benchmark and write -serve-out")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output path for the -serve report")
	all := flag.Bool("all", false, "everything")
	scale := flag.String("scale", "quick", "quick|full experiment scale")
	flag.Parse()

	sc := experiments.Quick()
	if *scale == "full" {
		sc = experiments.Full()
	}

	ran := false
	if *all || *table == 1 {
		printTable1()
		ran = true
	}
	if *all || *table == 3 {
		fmt.Println("== Table III: hyperparameter search space ==")
		fmt.Println(experiments.TableIII())
		ran = true
	}
	if *all || *fig == 4 {
		runFig4(sc)
		ran = true
	}
	if *all || *fig == 5 {
		fmt.Println("== Figure 5: raw vs filtered EEG (channel C3) ==")
		fmt.Println(experiments.Fig5(sc.Seed).String())
		ran = true
	}
	if *all || *fig == 7 {
		runFig7(sc)
		ran = true
	}
	if *all || *fig == 8 || *fig == 9 || *fig == 10 {
		runSearchFigures(sc, *fig, *all)
		ran = true
	}
	if *all || *fig == 11 {
		runFig11(sc)
		ran = true
	}
	if *all || *fig == 12 {
		runFig12(sc)
		ran = true
	}
	if *all || *headline || *table == 2 {
		runHeadline(sc, *all || *table == 2)
		ran = true
	}
	if *all || *validate {
		runValidation()
		ran = true
	}
	if *all || *serveBench {
		runServeBench(*serveOut)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	fmt.Println("== Table I: EMG vs EEG effectiveness ==")
	fmt.Printf("%-22s | %-55s | %s\n", "Condition", "Impact on EMG Use", "EEG as a Solution")
	for _, r := range experiments.TableI() {
		fmt.Printf("%-22s | %-55s | %s\n", r.Condition, r.EMGImpact, r.EEGCase)
	}
	fmt.Println()
}

func runFig4(sc experiments.Scale) {
	fmt.Println("== Figure 4: LSL vs UDP streaming ==")
	r, err := experiments.Fig4(400, sc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.String())
}

func runFig7(sc experiments.Scale) {
	fmt.Println("== Figure 7: ASR model Pareto (PCC vs runtime, marker=VRAM) ==")
	results, err := asr.EvaluateZoo(1.49e9*25, 10, sc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %8s %10s %8s %7s\n", "model", "PCC", "runtime-s", "VRAM-GB", "front")
	for _, r := range results {
		fmt.Printf("%-16s %8.3f %10.3f %8.1f %7v\n", r.Model.Name, r.PCC, r.InferenceSec, r.Model.VRAMGB, r.OnFront)
	}
	sel, err := asr.SelectModel(results, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected: %s (paper selects whisper-small)\n\n", sel.Model.Name)
}

func runSearchFigures(sc experiments.Scale, fig int, all bool) {
	fams := map[int][]models.Family{
		8:  {models.FamilyCNN, models.FamilyLSTM, models.FamilyTransformer},
		10: {models.FamilyRF},
	}
	var run []models.Family
	if all || fig == 9 {
		run = models.Families()
	} else {
		run = fams[fig]
	}
	results := map[models.Family]*evo.Result{}
	for _, fam := range run {
		fmt.Printf("== Figure 8/10: evolutionary search, family %v ==\n", fam)
		res, err := experiments.FamilySearch(sc, fam)
		if err != nil {
			log.Fatal(err)
		}
		results[fam] = res
		fmt.Print(experiments.FrontString(res.Front))
		fmt.Printf("best: %s\n\n", res.Best.Spec.ID())
	}
	if all || fig == 9 {
		fmt.Println("== Figure 9: global Pareto front (all families) ==")
		fmt.Print(experiments.FrontString(experiments.GlobalFront(results)))
		fmt.Println()
	}
}

func runFig11(sc experiments.Scale) {
	fmt.Println("== Figure 11: ensemble combinations (accuracy vs latency) ==")
	entries, err := experiments.Fig11(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-64s %8s %10s\n", "ensemble", "acc", "latency-s")
	for _, e := range entries {
		fmt.Printf("%-64s %8.3f %10.3f\n", e.Name, e.Accuracy, e.InferenceSec)
	}
	fmt.Println()
}

func runFig12(sc experiments.Scale) {
	fmt.Println("== Figure 12: compression sweep (accuracy vs latency) ==")
	entries, err := experiments.Fig12(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %8s %10s %10s\n", "variant", "acc", "latency-s", "sparsity")
	for _, e := range entries {
		fmt.Printf("%-20s %8.3f %10.4f %10.2f\n", e.Name, e.Accuracy, e.InferenceSec, e.Sparsity)
	}
	fmt.Println()
}

func runHeadline(sc experiments.Scale, withTable2 bool) {
	fmt.Println("== §V headline reproduction ==")
	r, err := experiments.Headline(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.String())
	fmt.Println()
	if withTable2 {
		fmt.Println("== Table II: brain-controlled prosthetic arms ==")
		fmt.Printf("%-28s %-12s %-8s %-8s %s\n", "Solution", "Method", "Acc", "Cost", "Scope")
		for _, row := range experiments.TableII(r.EnsembleAcc) {
			fmt.Printf("%-28s %-12s %-8s %-8s %s\n", row.Solution, row.Method, row.Accuracy, row.Cost, row.Scope)
		}
		fmt.Println()
	}
}

func runValidation() {
	fmt.Println("== §IV-A5 real-world validation (20 sessions) ==")
	sys, err := cognitivearm.QuickStart(11)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	rng := tensor.NewRNG(5)
	successes := 0
	for s := 0; s < 20; s++ {
		intents := make([]eeg.Action, 3)
		for i := range intents {
			intents[i] = eeg.Action(rng.Intn(3))
		}
		res, err := control.RunValidationSession(sys.Controller, intents, 40)
		if err != nil {
			log.Fatal(err)
		}
		if res.Success {
			successes++
		}
	}
	fmt.Printf("%d/20 sessions successful (paper: 19/20)\n\n", successes)
}
