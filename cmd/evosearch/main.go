// evosearch runs Algorithm 1 (the evolutionary design-space exploration)
// for one or all model families and prints the Pareto front and the selected
// best model.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cognitivearm/internal/evo"
	"cognitivearm/internal/experiments"
	"cognitivearm/internal/models"
)

func main() {
	family := flag.String("family", "all", "cnn|lstm|transformer|rf|all")
	pop := flag.Int("pop", 8, "population size")
	gens := flag.Int("gens", 3, "generations")
	epochs := flag.Int("epochs", 6, "training epochs per candidate")
	seed := flag.Uint64("seed", 1, "search seed")
	flag.Parse()

	fams := map[string]models.Family{
		"cnn": models.FamilyCNN, "lstm": models.FamilyLSTM,
		"transformer": models.FamilyTransformer, "rf": models.FamilyRF,
	}
	var run []models.Family
	if *family == "all" {
		run = models.Families()
	} else {
		f, ok := fams[strings.ToLower(*family)]
		if !ok {
			log.Fatalf("unknown family %q", *family)
		}
		run = []models.Family{f}
	}

	sc := experiments.Quick()
	sc.EvoPopulation, sc.EvoGenerations, sc.Epochs, sc.Seed = *pop, *gens, *epochs, *seed
	results := map[models.Family]*evo.Result{}
	for _, fam := range run {
		fmt.Printf("== family %v: population %d, %d generations ==\n", fam, *pop, *gens)
		res, err := experiments.FamilySearch(sc, fam)
		if err != nil {
			log.Fatal(err)
		}
		results[fam] = res
		fmt.Print(experiments.FrontString(res.Front))
		fmt.Printf("best: %s (acc %.3f, %d params)\n\n", res.Best.Spec.ID(), res.Best.Accuracy, res.Best.Params)
	}
	if len(run) > 1 {
		fmt.Println("== global Pareto front ==")
		fmt.Print(experiments.FrontString(experiments.GlobalFront(results)))
	}
}
