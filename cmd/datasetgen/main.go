// datasetgen runs the EEG dataset generation and annotation pipeline
// (§III-B) for a set of synthetic subjects and exports the labelled windows
// as CSV (one row per window: subject, label, then per-channel features), or
// prints a summary.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
)

func main() {
	subjects := flag.Int("subjects", 5, "number of synthetic subjects")
	seconds := flag.Float64("seconds", 60, "session length per subject")
	window := flag.Int("window", 190, "window size in samples")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("o", "", "write feature CSV to this path ('' = summary only)")
	flag.Parse()

	ids := make([]int, *subjects)
	for i := range ids {
		ids[i] = i
	}
	bySubject, err := dataset.Build(ids, 1, dataset.ShortProtocol(*seconds), *window, *seed)
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "subject", "windows", "idle", "left", "right")
	for _, id := range ids {
		ws := bySubject[id]
		counts := dataset.ClassCounts(ws)
		fmt.Printf("%-8d %8d %8d %8d %8d\n", id, len(ws),
			counts[eeg.Idle], counts[eeg.Left], counts[eeg.Right])
		total += len(ws)
	}
	fmt.Printf("total: %d windows of %d samples × %d channels\n", total, *window, eeg.NumChannels)

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprint(w, "subject,label")
	for _, ch := range eeg.ChannelNames {
		for _, stat := range []string{"mean", "std", "min", "max", "var"} {
			fmt.Fprintf(w, ",%s_%s", ch, stat)
		}
	}
	fmt.Fprintln(w)
	for _, id := range ids {
		for _, win := range bySubject[id] {
			fmt.Fprintf(w, "%d,%s", id, win.Label)
			for _, v := range dataset.FeatureVector(win) {
				fmt.Fprintf(w, ",%.6g", v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Printf("wrote %s\n", *out)
}
