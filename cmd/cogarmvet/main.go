// Command cogarmvet mechanically enforces cognitivearm's concurrency and
// zero-allocation invariants. It runs two ways:
//
//	cogarmvet ./...                          standalone, whole module
//	go vet -vettool=$(which cogarmvet) ./... as a vet tool (CI form;
//	                                         also covers _test.go files)
//
// Analyzers: zeroalloc (functions annotated //cogarm:zeroalloc must not
// allocate, transitively), atomicfield (no mixed atomic/plain access),
// nolockblock (no blocking ops or nested locks inside mutex critical
// sections), obsguard (every telemetry handle use nil-guarded so
// DisableTelemetry cannot panic), quantsafe (quantized kernels stay within
// their calibrated domains), walsafe (no reads, seeks, or history rewrites
// under a //cogarm:walseg WAL segment lock). See ARCHITECTURE.md "Static invariants"
// for the annotation grammar, and //cogarm:allow <analyzer> -- <reason>
// for sanctioned exceptions.
package main

import (
	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/suite"
)

func main() {
	analysis.Main(suite.Analyzers)
}
