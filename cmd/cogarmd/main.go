// cogarmd is the CognitiveArm serving daemon: one serve.Hub multiplexing
// many concurrent closed-loop EEG sessions over a shared, train-once
// decoder, fed by internal/stream network inlets.
//
// On startup it trains the shared Random-Forest decoder once (the registry
// guarantees exactly one build no matter how many sessions arrive), then
// admits two kinds of sessions:
//
//   - Demo subjects (-subjects N): N synthetic participants streamed
//     in-process over real loopback sockets (-transport udp|lsl), each
//     wandering between mental tasks, so a single binary demonstrates the
//     full network-fed serving path.
//
//   - External inlets (-listen N): N UDP inlets whose addresses are printed
//     on startup; point cmd/loadgen's -mode udp -targets at them to drive
//     the daemon from another process. Sessions that go silent are evicted
//     after -idle-evict ticks.
//
// The daemon prints a fleet snapshot (per-shard and fleet-wide p50/p99 tick
// latency, throughput, batching factor, evictions) every -report interval
// and a final one on shutdown (SIGINT/SIGTERM or -duration).
//
// Example:
//
//	cogarmd -shards 4 -subjects 32 -report 5s
//	cogarmd -listen 8 -idle-evict 150   # then: loadgen -mode udp -targets ...
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

func main() {
	var (
		shards      = flag.Int("shards", 4, "worker shards (tick loops)")
		maxSessions = flag.Int("max-sessions", 256, "admission cap per shard")
		tickHz      = flag.Float64("tick", 15, "classification rate per session (Hz)")
		subjects    = flag.Int("subjects", 8, "in-process demo subjects streamed over loopback")
		listen      = flag.Int("listen", 0, "extra UDP inlets for external streamers (addresses printed)")
		transport   = flag.String("transport", "udp", "demo-subject transport: udp | lsl")
		idleEvict   = flag.Int("idle-evict", 300, "evict a session after this many silent ticks (0 = never)")
		duration    = flag.Duration("duration", 0, "run time (0 = until SIGINT)")
		report      = flag.Duration("report", 5*time.Second, "fleet snapshot interval")
		seed        = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.Printf("cogarmd: training shared decoder (once, for the whole fleet)")
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	pipeline, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 50, MaxDepth: 12}
	// Sessions resolve the classifier from the registry by key at Admit.
	if _, _, err := reg.GetOrBuild("rf-shared", func() (models.Classifier, int64, error) {
		c, res, err := pipeline.TrainModel(spec)
		if err == nil {
			log.Printf("cogarmd: decoder %s ready (val acc %.3f)", c.Name(), res.ValAcc)
		}
		return c, models.OpsPerInference(spec), err
	}); err != nil {
		log.Fatal(err)
	}

	hub, err := serve.NewHub(serve.Config{
		Shards:              *shards,
		MaxSessionsPerShard: *maxSessions,
		TickHz:              *tickHz,
		MaxIdleTicks:        *idleEvict,
		LatencyWindow:       1024,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}

	stopStreaming := make(chan struct{})
	for i := 0; i < *subjects; i++ {
		if err := admitDemoSubject(hub, pipeline, *transport, i, *seed, stopStreaming); err != nil {
			log.Fatalf("cogarmd: demo subject %d: %v", i, err)
		}
	}
	for i := 0; i < *listen; i++ {
		inlet, err := stream.NewUDPInlet(stream.NewVirtualClock(0, 0), 4096)
		if err != nil {
			log.Fatalf("cogarmd: inlet %d: %v", i, err)
		}
		id, err := hub.Admit(serve.SessionConfig{
			ModelKey: "rf-shared",
			Source:   serve.RingSource{Ring: inlet.Ring, Closer: inlet},
			Norm:     pipeline.GlobalStats(),
		})
		if err != nil {
			log.Fatalf("cogarmd: admit inlet %d: %v", i, err)
		}
		fmt.Printf("session %d listening on %s\n", id, inlet.Addr())
	}

	hub.Start()
	log.Printf("cogarmd: serving %d sessions on %d shards at %.0f Hz", hub.Sessions(), *shards, *tickHz)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
	tick := time.NewTicker(*report)
	defer tick.Stop()
loop:
	for {
		select {
		case <-tick.C:
			log.Printf("%s", hub.Snapshot())
		case <-sig:
			log.Printf("cogarmd: signal received, draining")
			break loop
		case <-timeout:
			break loop
		}
	}
	close(stopStreaming)
	// Snapshot before Stop so the final report shows the live fleet.
	final := hub.Snapshot()
	hub.Stop()
	log.Printf("final %s", final)
	for _, s := range final.Shards {
		log.Printf("final %s", s)
	}
}

// admitDemoSubject wires one in-process synthetic participant through a real
// loopback transport into the hub: generator → outlet → socket → inlet ring
// → session. The streaming goroutine paces samples at the EEG rate and
// wanders between mental tasks every few seconds.
func admitDemoSubject(hub *serve.Hub, p *core.Pipeline, transport string, idx int, seed uint64, stop <-chan struct{}) error {
	clock := stream.NewVirtualClock(0, 0)
	var push func(values []float64)
	var cleanup func()
	var ring *stream.Ring
	var closer io.Closer
	switch transport {
	case "udp":
		inlet, err := stream.NewUDPInlet(clock, 4096)
		if err != nil {
			return err
		}
		outlet, err := stream.NewUDPOutlet(inlet.Addr(), clock, stream.LinkConfig{Seed: seed + uint64(idx)})
		if err != nil {
			inlet.Close()
			return err
		}
		push = func(v []float64) { outlet.Push(v) }
		cleanup = func() { outlet.Close() }
		ring, closer = inlet.Ring, inlet
	case "lsl":
		outlet, err := stream.NewLSLOutlet(clock, stream.LinkConfig{Seed: seed + uint64(idx)})
		if err != nil {
			return err
		}
		inlet, err := stream.NewLSLInlet(outlet.Addr(), clock, 4096, 100*time.Millisecond)
		if err != nil {
			outlet.Close()
			return err
		}
		if err := outlet.WaitReady(2 * time.Second); err != nil {
			outlet.Close()
			inlet.Close()
			return err
		}
		push = func(v []float64) { outlet.Push(v) }
		cleanup = func() { outlet.Close() }
		ring, closer = inlet.Ring, inlet
	default:
		return fmt.Errorf("unknown transport %q (udp|lsl)", transport)
	}

	subject := idx % 5 // reuse the synthetic participant pool
	if _, err := hub.Admit(serve.SessionConfig{
		ModelKey: "rf-shared",
		Source:   serve.RingSource{Ring: ring, Closer: closer},
		Norm:     p.NormFor(subject),
	}); err != nil {
		cleanup()
		return err
	}

	go func() {
		defer cleanup()
		gen := eeg.NewGenerator(eeg.NewSubject(subject), seed+uint64(idx)*31)
		rng := tensor.NewRNG(seed + uint64(idx)*97)
		state := eeg.Idle
		// Push in 40 ms chunks (5 samples at 125 Hz) to limit timer churn.
		const chunk = 5
		interval := time.Duration(float64(chunk) / eeg.SampleRate * float64(time.Second))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		sinceSwitch := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for i := 0; i < chunk; i++ {
					raw := gen.Next(state)
					push(raw[:])
				}
				sinceSwitch += chunk
				// Hold each intent ~3 s, then wander.
				if sinceSwitch > int(3*eeg.SampleRate) {
					state = eeg.Action(rng.Intn(3))
					sinceSwitch = 0
				}
			}
		}
	}()
	return nil
}
