// cogarmd is the CognitiveArm serving daemon: one serve.Hub multiplexing
// many concurrent closed-loop EEG sessions over a shared, train-once
// decoder, fed by internal/stream network inlets.
//
// On startup it trains the shared Random-Forest decoder once (the registry
// guarantees exactly one build no matter how many sessions arrive), then
// admits two kinds of sessions:
//
//   - Demo subjects (-subjects N): N synthetic participants streamed
//     in-process over real loopback sockets (-transport udp|lsl), each
//     wandering between mental tasks, so a single binary demonstrates the
//     full network-fed serving path.
//
//   - External inlets (-listen N): N UDP inlets whose addresses are printed
//     on startup; point cmd/loadgen's -mode udp -targets at them to drive
//     the daemon from another process. Sessions that go silent are evicted
//     after -idle-evict ticks.
//
// With -checkpoint-dir the daemon is durable: it persists the entire fleet —
// decoder weights, every session's signal-path state, shard assignment and
// counters — every -checkpoint-every interval and on shutdown, and a
// restarted daemon resumes from the newest valid checkpoint instead of
// retraining. Restored demo subjects get fresh streamers; restored inlet
// sessions get fresh sockets whose new addresses are printed. See
// OPERATIONS.md for the full operations guide and ARCHITECTURE.md for the
// checkpoint format.
//
// With -wal-dir the daemon additionally journals every fleet mutation —
// dirty session records, manifests, model payloads, audit events, prediction
// decisions — to a Merkle-sealed write-ahead log flushed every -wal-every. A
// kill -9 then loses at most one flush interval instead of one checkpoint
// interval: restart replays the sealed WAL tail over the newest checkpoint
// (or over nothing — the WAL alone can rebuild the fleet). Checkpoints taken
// while journaling fence the log and truncate the segments they subsume.
// Inspect a log offline with `cogarm wal verify|dump`.
//
// With -cluster the daemon is one node of a multi-node fleet: it binds an
// inter-node endpoint (the migration endpoint peers stream checkpoint
// records to), joins the members named by -peers, and takes over the
// sessions the consistent-hash ring routes to it — live, mid-window, with
// bitwise-identical subsequent predictions. Each node replicates its dirty
// session records to -replicas ring successors every -replicate-every, and a
// phi-accrual failure detector (tuned by -heartbeat, -suspect, -phi) reaps
// members that go silent: the first live successor promotes its warm replicas
// in place, losing at most one replication interval of decoder state. With
// -drain a terminating daemon first hands its sessions off to the surviving
// members instead of taking them down with it:
//
//	cogarmd -cluster 127.0.0.1:7946 -node-id a -subjects 32
//	cogarmd -cluster 127.0.0.1:7947 -node-id b -subjects 0 -peers 127.0.0.1:7946 -drain
//
// The daemon prints a fleet snapshot (per-shard and fleet-wide p50/p99 tick
// latency, throughput, batching factor, evictions) every -report interval
// and a final one on shutdown (SIGINT/SIGTERM or -duration).
//
// Example:
//
//	cogarmd -shards 4 -subjects 32 -report 5s
//	cogarmd -listen 8 -idle-evict 150   # then: loadgen -mode udp -targets ...
//	cogarmd -subjects 32 -checkpoint-dir /var/lib/cogarmd  # kill -9 safe
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/cluster"
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
	"cognitivearm/internal/wal"
)

func main() {
	var (
		shards        = flag.Int("shards", 0, "worker shards (tick loops); 0 = derive from GOMAXPROCS")
		maxSessions   = flag.Int("max-sessions", 256, "admission cap per shard")
		tickHz        = flag.Float64("tick", 15, "classification rate per session (Hz)")
		subjects      = flag.Int("subjects", 8, "in-process demo subjects streamed over loopback")
		listen        = flag.Int("listen", 0, "extra UDP inlets for external streamers (addresses printed)")
		transport     = flag.String("transport", "udp", "demo-subject transport: udp | lsl")
		idleEvict     = flag.Int("idle-evict", 300, "evict a session after this many silent ticks (0 = never)")
		duration      = flag.Duration("duration", 0, "run time (0 = until SIGINT)")
		report        = flag.Duration("report", 5*time.Second, "fleet snapshot interval")
		seed          = flag.Uint64("seed", 1, "simulation seed")
		ckptDir       = flag.String("checkpoint-dir", "", "fleet checkpoint directory (empty = no persistence)")
		ckptEvery     = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (needs -checkpoint-dir)")
		walDir        = flag.String("wal-dir", "", "write-ahead-log directory (empty = no journaling); with -checkpoint-dir, checkpoints fence and truncate the log")
		walEvery      = flag.Duration("wal-every", 2*time.Second, "journal flush interval — the durability bound a kill -9 can lose (needs -wal-dir)")
		adminAddr     = flag.String("admin", "", "admin-plane HTTP endpoint (/metrics /statusz /healthz /events /debug/pprof); empty = disabled")
		clusterAddr   = flag.String("cluster", "", "inter-node endpoint to bind (e.g. 127.0.0.1:7946); empty = single-node")
		nodeID        = flag.String("node-id", "", "ring identity of this node (defaults to the bound cluster address)")
		peers         = flag.String("peers", "", "comma-separated cluster endpoints of existing members to join")
		drain         = flag.Bool("drain", false, "on shutdown, migrate live sessions to surviving peers before exiting")
		replicas      = flag.Int("replicas", 1, "warm-standby count: ring successors this node replicates its sessions to (0 = no HA)")
		replEvery     = flag.Duration("replicate-every", cluster.DefaultReplicateEvery, "replication interval — the staleness bound a failover can lose")
		heartbeat     = flag.Duration("heartbeat", cluster.DefaultHeartbeatEvery, "peer heartbeat interval (0 = no failure detection)")
		suspect       = flag.Duration("suspect", cluster.DefaultSuspectAfter, "silence floor before a peer may be declared dead")
		phi           = flag.Float64("phi", cluster.DefaultPhiThreshold, "suspicion threshold: silence as a multiple of a peer's mean heartbeat interval")
		kernelThreads = flag.Int("kernel-threads", 0, "workers for parallel batched GEMMs; 0 = derive from GOMAXPROCS, 1 = serial kernels")
		quantize      = flag.Bool("quantize", false, "serve int8/int16 quantized model twins where the calibration agreement gate passes")
		quantGate     = flag.Float64("quantize-min-agreement", 0, "calibration gate: minimum label agreement vs the exact model (0 = default 0.995)")
	)
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	stopStreaming := make(chan struct{})

	rcfg := resumeConfig{
		shards:        *shards,
		maxSessions:   *maxSessions,
		tickHz:        *tickHz,
		subjects:      *subjects,
		listen:        *listen,
		transport:     *transport,
		idleEvict:     *idleEvict,
		seed:          *seed,
		ckptDir:       *ckptDir,
		walDir:        *walDir,
		kernelThreads: *kernelThreads,
		quantize:      *quantize,
		quantGate:     *quantGate,
	}
	hub := resumeOrColdStart(rcfg, stopStreaming)

	hub.Start()
	// Read topology back from the hub: a checkpoint restore serves under the
	// manifest's shards/tick rate, not this invocation's flags.
	hcfg := hub.Config()
	log.Printf("cogarmd: serving %d sessions on %d shards at %.0f Hz", hub.Sessions(), hcfg.Shards, hcfg.TickHz)

	// Journal: every mutation the fleet makes between checkpoints lands in
	// the WAL at -wal-every granularity, sealed under a Merkle root, so a
	// kill -9 loses at most one flush interval and `cogarm wal verify|dump`
	// can audit exactly what the daemon did.
	var journal *serve.Journal
	if *walDir != "" {
		j, rec, err := serve.NewJournal(hub, wal.Options{Dir: *walDir})
		if err != nil {
			log.Fatalf("cogarmd: wal: %v", err)
		}
		journal = j
		defer journal.Close()
		if rec.TruncatedBytes > 0 {
			log.Printf("cogarmd: WAL recovery truncated %d torn bytes (%d unsealed entries dropped) from %s",
				rec.TruncatedBytes, rec.DroppedEntries, rec.TornSegment)
		}
		log.Printf("cogarmd: journaling to %s (%d sealed entries recovered, flush every %v)",
			*walDir, rec.SealedEntries, *walEvery)
	}

	// Cluster mode: bind the inter-node endpoint (the migration endpoint
	// peers stream checkpoint records to) and join any named members. The
	// ring immediately starts routing: joining hands this node the sessions
	// it now owns, live.
	var node *cluster.Node
	if *clusterAddr != "" {
		var err error
		node, err = cluster.NewNode(cluster.Config{
			ID:             *nodeID,
			ListenAddr:     *clusterAddr,
			Logf:           log.Printf,
			Replicas:       *replicas,
			ReplicateEvery: *replEvery,
			HeartbeatEvery: *heartbeat,
			SuspectAfter:   *suspect,
			PhiThreshold:   *phi,
			Rebind: func(rec serve.RestoredSession) (serve.Source, error) {
				return rebindSource(rec, rcfg, stopStreaming)
			},
		}, hub)
		if err != nil {
			log.Fatalf("cogarmd: cluster: %v", err)
		}
		defer node.Close()
		log.Printf("cogarmd: cluster node %s on %s", node.ID(), node.Addr())
		joined := false
		for _, peer := range strings.Split(*peers, ",") {
			if peer = strings.TrimSpace(peer); peer == "" {
				continue
			}
			if err := node.Join(peer); err != nil {
				log.Printf("cogarmd: join via %s failed: %v", peer, err)
				continue
			}
			joined = true
			break // one seed suffices: Join announces to the whole fleet
		}
		if *peers != "" && !joined {
			log.Fatalf("cogarmd: could not join any of -peers %q", *peers)
		}
		log.Printf("cogarmd: %s", node.Snapshot())
	}

	// Admin plane: metrics scrape, status document, health probe, event log
	// and live profiling. Started after cluster setup so /statusz carries the
	// ring view from the first request.
	if *adminAddr != "" {
		var clusterStatus func() any
		if node != nil {
			clusterStatus = node.Status
		}
		srv, bound, err := obs.StartAdmin(*adminAddr, obs.AdminOptions{
			Health: hub.Health,
			Status: func() any {
				doc := hub.Status(*ckptDir, clusterStatus)
				if journal != nil {
					doc.Wal = journal.Status()
				}
				return doc
			},
		})
		if err != nil {
			log.Fatalf("cogarmd: %v", err)
		}
		defer srv.Close()
		log.Printf("cogarmd: admin plane on http://%s (/metrics /statusz /healthz /events /debug/pprof)", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
	tick := time.NewTicker(*report)
	defer tick.Stop()
	var ckptTick <-chan time.Time
	if *ckptDir != "" && *ckptEvery > 0 {
		t := time.NewTicker(*ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}
	var walTick <-chan time.Time
	if journal != nil && *walEvery > 0 {
		t := time.NewTicker(*walEvery)
		defer t.Stop()
		walTick = t.C
	}
loop:
	for {
		select {
		case <-tick.C:
			log.Printf("%s", hub.Snapshot())
			if node != nil {
				log.Printf("%s", node.Snapshot())
			}
		case <-walTick:
			if _, _, err := journal.Flush(); err != nil {
				log.Printf("cogarmd: WAL flush failed: %v", err)
			}
		case <-ckptTick:
			saveCheckpoint(hub, journal, *ckptDir)
		case <-sig:
			log.Printf("cogarmd: signal received, draining")
			break loop
		case <-timeout:
			break loop
		}
	}
	// Hand live sessions to the surviving members before anything stops:
	// the fleet keeps ticking until each session is captured, so subscribers
	// see a migration, not an outage.
	if node != nil && *drain {
		if err := node.Drain(); err != nil {
			log.Printf("cogarmd: drain failed: %v", err)
		}
	}
	// Final checkpoint while the fleet is still live, so a clean shutdown
	// resumes exactly where it stopped. Without a checkpoint directory a
	// final sealed flush serves the same purpose: the WAL alone replays the
	// whole fleet.
	if *ckptDir != "" {
		saveCheckpoint(hub, journal, *ckptDir)
	} else if journal != nil {
		if _, _, err := journal.Flush(); err != nil {
			log.Printf("cogarmd: final WAL flush failed: %v", err)
		}
	}
	close(stopStreaming)
	// Snapshot before Stop so the final report shows the live fleet.
	final := hub.Snapshot()
	hub.Stop()
	log.Printf("final %s", final)
	for _, s := range final.Shards {
		log.Printf("final %s", s)
	}
}

// saveCheckpoint persists the fleet and logs the outcome; a failed
// checkpoint is an operational warning, never fatal to serving. When a
// journal is live the checkpoint goes through it, so the manifest carries
// the WAL fence and the log is truncated behind the new snapshot.
func saveCheckpoint(hub *serve.Hub, j *serve.Journal, dir string) {
	start := time.Now()
	var path string
	var err error
	if j != nil {
		path, err = j.Checkpoint(dir)
	} else {
		path, err = hub.Checkpoint(dir)
	}
	if err != nil {
		log.Printf("cogarmd: checkpoint failed: %v", err)
		return
	}
	log.Printf("cogarmd: checkpointed fleet to %s in %v", path, time.Since(start).Round(time.Millisecond))
}

type resumeConfig struct {
	shards, maxSessions int
	tickHz              float64
	subjects, listen    int
	transport           string
	idleEvict           int
	seed                uint64
	ckptDir             string
	walDir              string
	kernelThreads       int
	quantize            bool
	quantGate           float64
}

// resumeOrColdStart restores the fleet from the newest valid checkpoint
// (plus, with -wal-dir, every sealed WAL entry past the checkpoint's fence)
// when one exists, and otherwise trains the shared decoder and admits the
// configured sessions from scratch.
func resumeOrColdStart(cfg resumeConfig, stopStreaming <-chan struct{}) *serve.Hub {
	rebind := func(rec serve.RestoredSession) (serve.Source, error) {
		return rebindSource(rec, cfg, stopStreaming)
	}
	switch {
	case cfg.walDir != "":
		hub, dir, applied, err := serve.RestoreHubWal(cfg.ckptDir, cfg.walDir, rebind)
		switch {
		case err == nil:
			if dir == "" {
				dir = "WAL only"
			}
			log.Printf("cogarmd: resumed %d sessions from %s + %d WAL entries (no retraining)",
				hub.Sessions(), dir, applied)
			return hub
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			log.Printf("cogarmd: no checkpoint or WAL state, cold start")
		default:
			log.Printf("cogarmd: restore failed (%v), cold start", err)
		}
	case cfg.ckptDir != "":
		hub, dir, err := serve.RestoreHubDir(cfg.ckptDir, rebind)
		switch {
		case err == nil:
			log.Printf("cogarmd: resumed %d sessions from %s (no retraining)", hub.Sessions(), dir)
			return hub
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			log.Printf("cogarmd: no checkpoint in %s, cold start", cfg.ckptDir)
		default:
			log.Printf("cogarmd: restore failed (%v), cold start", err)
		}
	}
	return coldStart(cfg, stopStreaming)
}

// rebindSource reattaches a live source to one restored session using the
// tag cogarmd stamped at admission: demo subjects respawn their synthetic
// streamer over a fresh loopback transport, inlet sessions get a fresh UDP
// socket (its new address is printed). Sessions with unknown tags are
// dropped rather than left permanently silent.
func rebindSource(rec serve.RestoredSession, cfg resumeConfig, stop <-chan struct{}) (serve.Source, error) {
	switch {
	case strings.HasPrefix(rec.Tag, "demo:"):
		parts := strings.Split(rec.Tag, ":")
		if len(parts) != 3 {
			log.Printf("cogarmd: session %d has malformed tag %q, dropping", rec.ID, rec.Tag)
			return nil, nil
		}
		subject, err1 := strconv.Atoi(parts[1])
		idx, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			log.Printf("cogarmd: session %d has malformed tag %q, dropping", rec.ID, rec.Tag)
			return nil, nil
		}
		return demoSource(cfg.transport, subject, idx, cfg.seed, stop)
	case strings.HasPrefix(rec.Tag, "inlet"):
		inlet, err := stream.NewUDPInlet(stream.NewVirtualClock(0, 0), 4096)
		if err != nil {
			return nil, err
		}
		fmt.Printf("session %d listening on %s\n", rec.ID, inlet.Addr())
		return serve.RingSource{Ring: inlet.Ring, Closer: inlet}, nil
	default:
		log.Printf("cogarmd: session %d has unknown tag %q, dropping", rec.ID, rec.Tag)
		return nil, nil
	}
}

// coldStart is the original daemon path: train the shared decoder once and
// admit demo subjects plus external inlets.
func coldStart(cfg resumeConfig, stopStreaming <-chan struct{}) *serve.Hub {
	log.Printf("cogarmd: training shared decoder (once, for the whole fleet)")
	pcfg := core.DefaultConfig()
	pcfg.Seed = cfg.seed
	pipeline, err := core.New(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	if cfg.quantize {
		// Enable before the decoder resolves: the registry quantizes (and
		// gates) models at build time, never retroactively.
		reg.EnableQuantization(serve.QuantPolicy{MinAgreement: cfg.quantGate})
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: pcfg.WindowSize, Trees: 50, MaxDepth: 12}
	// Sessions resolve the classifier from the registry by key at Admit.
	if _, _, err := reg.GetOrBuild("rf-shared", func() (models.Classifier, int64, error) {
		c, res, err := pipeline.TrainModel(spec)
		if err == nil {
			log.Printf("cogarmd: decoder %s ready (val acc %.3f)", c.Name(), res.ValAcc)
		}
		return c, models.OpsPerInference(spec), err
	}); err != nil {
		log.Fatal(err)
	}

	hub, err := serve.NewHub(serve.Config{
		Shards:               cfg.shards,
		MaxSessionsPerShard:  cfg.maxSessions,
		TickHz:               cfg.tickHz,
		MaxIdleTicks:         cfg.idleEvict,
		LatencyWindow:        1024,
		KernelThreads:        cfg.kernelThreads,
		Quantize:             cfg.quantize,
		QuantizeMinAgreement: cfg.quantGate,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < cfg.subjects; i++ {
		subject := i % 5 // reuse the synthetic participant pool
		src, err := demoSource(cfg.transport, subject, i, cfg.seed, stopStreaming)
		if err != nil {
			log.Fatalf("cogarmd: demo subject %d: %v", i, err)
		}
		if _, err := hub.Admit(serve.SessionConfig{
			ModelKey: "rf-shared",
			Source:   src,
			Norm:     pipeline.NormFor(subject),
			Tag:      fmt.Sprintf("demo:%d:%d", subject, i),
		}); err != nil {
			log.Fatalf("cogarmd: admit demo subject %d: %v", i, err)
		}
	}
	for i := 0; i < cfg.listen; i++ {
		inlet, err := stream.NewUDPInlet(stream.NewVirtualClock(0, 0), 4096)
		if err != nil {
			log.Fatalf("cogarmd: inlet %d: %v", i, err)
		}
		id, err := hub.Admit(serve.SessionConfig{
			ModelKey: "rf-shared",
			Source:   serve.RingSource{Ring: inlet.Ring, Closer: inlet},
			Norm:     pipeline.GlobalStats(),
			// Unique per inlet: the tag doubles as the consistent-hash
			// routing key in cluster mode (rebind matches by prefix).
			Tag: fmt.Sprintf("inlet:%d", i),
		})
		if err != nil {
			log.Fatalf("cogarmd: admit inlet %d: %v", i, err)
		}
		fmt.Printf("session %d listening on %s\n", id, inlet.Addr())
	}
	return hub
}

// demoSource wires one in-process synthetic participant through a real
// loopback transport: generator → outlet → socket → inlet ring. The
// streaming goroutine paces samples at the EEG rate and wanders between
// mental tasks every few seconds. The returned source owns the inlet; the
// streamer stops when stop closes or the outlet's peer vanishes.
func demoSource(transport string, subject, idx int, seed uint64, stop <-chan struct{}) (serve.Source, error) {
	clock := stream.NewVirtualClock(0, 0)
	var push func(values []float64)
	var cleanup func()
	var ring *stream.Ring
	var closer io.Closer
	switch transport {
	case "udp":
		inlet, err := stream.NewUDPInlet(clock, 4096)
		if err != nil {
			return nil, err
		}
		outlet, err := stream.NewUDPOutlet(inlet.Addr(), clock, stream.LinkConfig{Seed: seed + uint64(idx)})
		if err != nil {
			inlet.Close()
			return nil, err
		}
		push = func(v []float64) { outlet.Push(v) }
		cleanup = func() { outlet.Close() }
		ring, closer = inlet.Ring, inlet
	case "lsl":
		outlet, err := stream.NewLSLOutlet(clock, stream.LinkConfig{Seed: seed + uint64(idx)})
		if err != nil {
			return nil, err
		}
		inlet, err := stream.NewLSLInlet(outlet.Addr(), clock, 4096, 100*time.Millisecond)
		if err != nil {
			outlet.Close()
			return nil, err
		}
		if err := outlet.WaitReady(2 * time.Second); err != nil {
			outlet.Close()
			inlet.Close()
			return nil, err
		}
		push = func(v []float64) { outlet.Push(v) }
		cleanup = func() { outlet.Close() }
		ring, closer = inlet.Ring, inlet
	default:
		return nil, fmt.Errorf("unknown transport %q (udp|lsl)", transport)
	}

	go func() {
		defer cleanup()
		gen := eeg.NewGenerator(eeg.NewSubject(subject), seed+uint64(idx)*31)
		rng := tensor.NewRNG(seed + uint64(idx)*97)
		state := eeg.Idle
		// Push in 40 ms chunks (5 samples at 125 Hz) to limit timer churn.
		const chunk = 5
		interval := time.Duration(float64(chunk) / eeg.SampleRate * float64(time.Second))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		sinceSwitch := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for i := 0; i < chunk; i++ {
					raw := gen.Next(state)
					push(raw[:])
				}
				sinceSwitch += chunk
				// Hold each intent ~3 s, then wander.
				if sinceSwitch > int(3*eeg.SampleRate) {
					state = eeg.Action(rng.Intn(3))
					sinceSwitch = 0
				}
			}
		}
	}()
	return serve.RingSource{Ring: ring, Closer: closer}, nil
}
