package eeg

import (
	"math"
	"testing"

	"cognitivearm/internal/signal"
)

func TestMontageLayout(t *testing.T) {
	if len(ChannelNames) != NumChannels {
		t.Fatalf("montage has %d names, want %d", len(ChannelNames), NumChannels)
	}
	seen := map[string]bool{}
	for _, n := range ChannelNames {
		if seen[n] {
			t.Fatalf("duplicate electrode %q", n)
		}
		seen[n] = true
	}
	for _, required := range []string{"FP1", "FP2", "C3", "C4", "O1", "O2"} {
		if ChannelIndex(required) < 0 {
			t.Fatalf("montage missing %s", required)
		}
	}
	if ChannelIndex("CZ") != -1 {
		t.Fatal("unknown electrode should return -1")
	}
}

func TestActionString(t *testing.T) {
	if Idle.String() != "idle" || Left.String() != "left" || Right.String() != "right" {
		t.Fatal("action names wrong")
	}
	if Action(9).String() != "Action(9)" {
		t.Fatal("unknown action formatting")
	}
	if len(Actions()) != NumActions {
		t.Fatal("Actions() size mismatch")
	}
}

func TestSubjectReproducibleAndVaried(t *testing.T) {
	a1, a2 := NewSubject(0), NewSubject(0)
	if a1 != a2 {
		t.Fatal("same ID must give identical subject")
	}
	b := NewSubject(1)
	if a1.AlphaHz == b.AlphaHz && a1.ERDDepth == b.ERDDepth {
		t.Fatal("different IDs should differ physiologically")
	}
	for id := 0; id < 5; id++ {
		s := NewSubject(id)
		if s.AlphaHz < 9 || s.AlphaHz > 12 {
			t.Fatalf("subject %d alpha %v out of range", id, s.AlphaHz)
		}
		if s.ERDDepth < 0.55 || s.ERDDepth > 0.85 {
			t.Fatalf("subject %d ERD %v out of range", id, s.ERDDepth)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(NewSubject(0), 42)
	g2 := NewGenerator(NewSubject(0), 42)
	for i := 0; i < 100; i++ {
		if g1.Next(Left) != g2.Next(Left) {
			t.Fatal("same seed must generate identical streams")
		}
	}
	g3 := NewGenerator(NewSubject(0), 43)
	if g1.Next(Left) == g3.Next(Left) {
		t.Fatal("different seeds should diverge")
	}
}

// muPower measures mu-band power over an electrode after preprocessing, the
// quantity motor imagery modulates.
func muPower(t *testing.T, g *Generator, a Action, ch int, alphaHz float64) float64 {
	t.Helper()
	// Skip the ERD ramp-in, then collect 4 s.
	for i := 0; i < int(1.0*SampleRate); i++ {
		g.Next(a)
	}
	n := int(4 * SampleRate)
	seg := g.Generate(a, n)
	pre, err := signal.NewEEGPreprocessor(SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	clean := pre.FilterOffline(seg[ch])
	return signal.BandPower(clean, SampleRate, alphaHz-2, alphaHz+2)
}

func TestERDContrastIsDecodable(t *testing.T) {
	s := NewSubject(0)
	// Right-hand imagery suppresses C3 relative to idle; left suppresses C4.
	idleC3 := muPower(t, NewGenerator(s, 7), Idle, chC3, s.AlphaHz)
	rightC3 := muPower(t, NewGenerator(s, 7), Right, chC3, s.AlphaHz)
	if rightC3 > idleC3*0.8 {
		t.Fatalf("right imagery should suppress C3 mu: idle %v right %v", idleC3, rightC3)
	}
	idleC4 := muPower(t, NewGenerator(s, 7), Idle, chC4, s.AlphaHz)
	leftC4 := muPower(t, NewGenerator(s, 7), Left, chC4, s.AlphaHz)
	if leftC4 > idleC4*0.8 {
		t.Fatalf("left imagery should suppress C4 mu: idle %v left %v", idleC4, leftC4)
	}
	// Lateralisation: during right imagery C4 keeps more mu than C3.
	rightC4 := muPower(t, NewGenerator(s, 7), Right, chC4, s.AlphaHz)
	if rightC3 >= rightC4 {
		t.Fatalf("right imagery lateralisation missing: C3 %v >= C4 %v", rightC3, rightC4)
	}
}

func TestLineNoisePresence(t *testing.T) {
	g := NewGenerator(NewSubject(1), 3)
	seg := g.Generate(Idle, 1024)
	p50 := signal.BandPower(seg[chC3], SampleRate, 48, 52)
	pNear := signal.BandPower(seg[chC3], SampleRate, 40, 44)
	if p50 < 2*pNear {
		t.Fatalf("50 Hz mains should dominate neighbours: %v vs %v", p50, pNear)
	}
}

func TestBlinksAreFrontal(t *testing.T) {
	s := NewSubject(2)
	s.BlinkRateHz = 3 // force frequent blinks
	s.DriftAmp = 0
	g := NewGenerator(s, 9)
	n := int(20 * SampleRate)
	seg := g.Generate(Idle, n)
	frontRange := sliceRange(seg[chFP1])
	occRange := sliceRange(seg[chO1])
	if frontRange < occRange*1.5 {
		t.Fatalf("blinks should inflate frontal range: FP1 %v vs O1 %v", frontRange, occRange)
	}
}

func sliceRange(x []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestGenerateShape(t *testing.T) {
	g := NewGenerator(NewSubject(0), 1)
	seg := g.Generate(Left, 250)
	if len(seg) != NumChannels {
		t.Fatalf("got %d channels", len(seg))
	}
	for c := range seg {
		if len(seg[c]) != 250 {
			t.Fatalf("channel %d has %d samples", c, len(seg[c]))
		}
	}
	if got := g.ElapsedSeconds(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("elapsed %v want 2.0", got)
	}
}

func TestAmplitudesPhysiological(t *testing.T) {
	g := NewGenerator(NewSubject(3), 4)
	seg := g.Generate(Idle, int(10*SampleRate))
	for c := range seg {
		r := signal.RMS(seg[c])
		if r < 1 || r > 200 {
			t.Fatalf("channel %s RMS %v µV outside physiological range", ChannelNames[c], r)
		}
	}
}

func TestERDRampIsSmooth(t *testing.T) {
	s := NewSubject(0)
	s.BlinkRateHz, s.EMGBurstRateHz, s.NoiseAmp, s.LineAmp, s.DriftAmp = 0, 0, 0.01, 0, 0
	g := NewGenerator(s, 5)
	// Warm up idle, then switch to Right; erdC3 should decay smoothly.
	for i := 0; i < 125; i++ {
		g.Next(Idle)
	}
	prev := g.erdC3
	for i := 0; i < 125; i++ {
		g.Next(Right)
		if g.erdC3 > prev+1e-9 {
			t.Fatal("ERD modulation should decrease monotonically toward target")
		}
		prev = g.erdC3
	}
	want := 1 - s.ERDDepth
	if math.Abs(g.erdC3-want) > 0.1 {
		t.Fatalf("after 1 s ERD should approach %v, got %v", want, g.erdC3)
	}
}
