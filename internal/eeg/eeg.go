// Package eeg synthesises 16-channel, 125 Hz EEG with the structure the
// CognitiveArm pipeline was built to handle. It substitutes for the OpenBCI
// UltraCortex Mark IV headset and the paper's five human participants
// (§III-A1, §III-B1): each synthetic subject has its own resting rhythms,
// individual alpha frequency, motor-imagery event-related desynchronisation
// (ERD) depth over the sensorimotor electrodes C3/C4, artifact rates and
// noise floor. Motor imagery of the right hand suppresses the mu/beta rhythm
// over the contralateral (left) hemisphere electrode C3, left-hand imagery
// suppresses C4, and idle leaves both at baseline — the physiological
// contrast every motor-imagery BCI decodes.
package eeg

import (
	"fmt"
	"math"

	"cognitivearm/internal/tensor"
)

// SampleRate is the acquisition rate of the Cyton+Daisy boards (Hz).
const SampleRate = 125.0

// NumChannels is the electrode count of the 16-channel montage.
const NumChannels = 16

// Action is one of the three core mental-task classes the paper classifies.
type Action int

// The three core actions (§III-B1). Idle is the zero value so that an
// uninitialised label is the safe "do nothing" class.
const (
	Idle Action = iota
	Left
	Right
)

// NumActions is the number of core action classes.
const NumActions = 3

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Idle:
		return "idle"
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Actions returns all classes in label order.
func Actions() []Action { return []Action{Idle, Left, Right} }

// ChannelNames lists the 16 electrodes of the 10–20 montage used by the
// paper (Figure 3), in board channel order.
var ChannelNames = []string{
	"FP1", "FP2", "F7", "F3", "F4", "F8",
	"T7", "C3", "C4", "T8",
	"P7", "P3", "P4", "P8",
	"O1", "O2",
}

// ChannelIndex returns the board index of the named electrode, or -1.
func ChannelIndex(name string) int {
	for i, n := range ChannelNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Canonical electrode indices used by the generator and feature code.
var (
	chFP1 = ChannelIndex("FP1")
	chFP2 = ChannelIndex("FP2")
	chC3  = ChannelIndex("C3")
	chC4  = ChannelIndex("C4")
	chT7  = ChannelIndex("T7")
	chT8  = ChannelIndex("T8")
	chO1  = ChannelIndex("O1")
	chO2  = ChannelIndex("O2")
)

// Subject holds the per-participant physiological parameters. Values are in
// microvolts unless noted.
type Subject struct {
	ID int
	// AlphaHz is the individual alpha (mu) peak frequency, 9–12 Hz.
	AlphaHz float64
	// MuAmp is the resting mu-rhythm amplitude over C3/C4.
	MuAmp float64
	// BetaAmp is the resting beta-rhythm amplitude over the motor strip.
	BetaAmp float64
	// OccAlphaAmp is the occipital alpha amplitude over O1/O2.
	OccAlphaAmp float64
	// ERDDepth in [0,1]: fractional mu/beta suppression during imagery over
	// the contralateral electrode. Higher = easier subject.
	ERDDepth float64
	// ERSGain >= 0: fractional ipsilateral enhancement during imagery.
	ERSGain float64
	// NoiseAmp is the broadband background EEG amplitude.
	NoiseAmp float64
	// LineAmp is the 50 Hz mains pickup amplitude.
	LineAmp float64
	// BlinkRateHz is the expected eye-blink rate (events per second).
	BlinkRateHz float64
	// EMGBurstRateHz is the expected temporalis-muscle burst rate.
	EMGBurstRateHz float64
	// DriftAmp scales the slow electrode drift random walk.
	DriftAmp float64
	// CueLatencySec is the subject's reaction delay between the auditory cue
	// and actual imagery onset (§III-B2 transition periods).
	CueLatencySec float64
}

// NewSubject derives a reproducible synthetic participant from an ID. IDs
// 0–4 correspond to the paper's five participants; other IDs extrapolate.
func NewSubject(id int) Subject {
	rng := tensor.NewRNG(uint64(id)*0x9E3779B9 + 1)
	return Subject{
		ID:             id,
		AlphaHz:        9.5 + 1.8*rng.Float64(),
		MuAmp:          12 + 5*rng.Float64(),
		BetaAmp:        6 + 3*rng.Float64(),
		OccAlphaAmp:    10 + 5*rng.Float64(),
		ERDDepth:       0.55 + 0.3*rng.Float64(),
		ERSGain:        0.08 + 0.12*rng.Float64(),
		NoiseAmp:       2.5 + 1.5*rng.Float64(),
		LineAmp:        4 + 4*rng.Float64(),
		BlinkRateHz:    0.15 + 0.2*rng.Float64(),
		EMGBurstRateHz: 0.05 + 0.1*rng.Float64(),
		DriftAmp:       0.4 + 0.4*rng.Float64(),
		CueLatencySec:  0.15 + 0.35*rng.Float64(),
	}
}

// Generator produces a continuous multichannel EEG stream for one subject.
// It is a stateful oscillator bank plus noise processes; call Next once per
// sample period with the subject's current mental state.
type Generator struct {
	Subject Subject
	fs      float64
	rng     *tensor.RNG
	t       int // sample index

	phase      [NumChannels][3]float64 // mu, beta, theta oscillator phases
	drift      [NumChannels]float64    // random-walk electrode drift
	arNoise    [NumChannels]float64    // AR(1) pink-ish background state
	blinkLeft  int                     // samples remaining in current blink
	blinkAmp   float64
	emgLeft    int // samples remaining in current EMG burst
	emgChannel int
	// erdState smooths the ERD modulation so imagery onset has the ~200 ms
	// physiological ramp rather than a step.
	erdC3, erdC4 float64
}

// NewGenerator creates a generator for the subject with an independent,
// reproducible noise stream derived from the seed.
func NewGenerator(s Subject, seed uint64) *Generator {
	g := &Generator{Subject: s, fs: SampleRate, rng: tensor.NewRNG(seed ^ (uint64(s.ID+1) * 0xA24BAED4963EE407))}
	for c := 0; c < NumChannels; c++ {
		for o := 0; o < 3; o++ {
			g.phase[c][o] = 2 * math.Pi * g.rng.Float64()
		}
	}
	g.erdC3, g.erdC4 = 1, 1
	return g
}

// muGain returns the target mu/beta amplitude multipliers for C3 and C4
// under the given imagery state.
func (g *Generator) muGain(a Action) (c3, c4 float64) {
	s := g.Subject
	switch a {
	case Right: // right-hand imagery → contralateral C3 ERD, C4 mild ERS
		return 1 - s.ERDDepth, 1 + s.ERSGain
	case Left: // left-hand imagery → contralateral C4 ERD, C3 mild ERS
		return 1 + s.ERSGain, 1 - s.ERDDepth
	default:
		return 1, 1
	}
}

// Next generates one 16-channel sample (microvolts) for the current mental
// state and advances the internal clock.
//
//cogarm:zeroalloc
func (g *Generator) Next(a Action) [NumChannels]float64 {
	s := g.Subject
	dt := 1 / g.fs
	targetC3, targetC4 := g.muGain(a)
	// ~200 ms exponential approach to the target modulation.
	const tau = 0.2
	alpha := dt / tau
	g.erdC3 += alpha * (targetC3 - g.erdC3)
	g.erdC4 += alpha * (targetC4 - g.erdC4)

	// Oscillator phase increments with small frequency jitter.
	muW := 2 * math.Pi * s.AlphaHz * dt
	betaW := 2 * math.Pi * (2.2 * s.AlphaHz) * dt
	thetaW := 2 * math.Pi * 5.5 * dt
	lineW := 2 * math.Pi * 50 * dt

	// Blink process: Poisson arrivals, ~300 ms half-sine deflection.
	if g.blinkLeft == 0 && g.rng.Float64() < s.BlinkRateHz*dt {
		g.blinkLeft = int(0.3 * g.fs)
		g.blinkAmp = 60 + 40*g.rng.Float64()
	}
	// EMG burst process: ~150 ms of high-frequency noise on one temporal site.
	if g.emgLeft == 0 && g.rng.Float64() < s.EMGBurstRateHz*dt {
		g.emgLeft = int(0.15 * g.fs)
		if g.rng.Float64() < 0.5 {
			g.emgChannel = chT7
		} else {
			g.emgChannel = chT8
		}
	}

	var out [NumChannels]float64
	linePhase := lineW * float64(g.t)
	for c := 0; c < NumChannels; c++ {
		jitter := 1 + 0.01*g.rng.NormFloat64()
		g.phase[c][0] += muW * jitter
		g.phase[c][1] += betaW * jitter
		g.phase[c][2] += thetaW * jitter

		// Background: AR(1) pink-ish noise plus white floor.
		g.arNoise[c] = 0.97*g.arNoise[c] + s.NoiseAmp*0.25*g.rng.NormFloat64()
		v := g.arNoise[c] + 0.6*s.NoiseAmp*g.rng.NormFloat64()

		// Region-specific rhythms.
		switch c {
		case chC3:
			v += s.MuAmp * g.erdC3 * math.Sin(g.phase[c][0])
			v += s.BetaAmp * g.erdC3 * math.Sin(g.phase[c][1])
		case chC4:
			v += s.MuAmp * g.erdC4 * math.Sin(g.phase[c][0])
			v += s.BetaAmp * g.erdC4 * math.Sin(g.phase[c][1])
		case chO1, chO2:
			v += s.OccAlphaAmp * math.Sin(g.phase[c][0])
		case chFP1, chFP2:
			v += 0.5 * s.MuAmp * 0.3 * math.Sin(g.phase[c][2]) // frontal theta
		default:
			v += 0.3 * s.MuAmp * math.Sin(g.phase[c][0]) // volume-conducted alpha
			v += 0.3 * s.BetaAmp * math.Sin(g.phase[c][1])
		}

		// Mains pickup, common across channels with small per-channel gain.
		v += s.LineAmp * (0.8 + 0.05*float64(c%5)) * math.Sin(linePhase)

		// Slow electrode drift random walk.
		g.drift[c] += s.DriftAmp * 0.02 * g.rng.NormFloat64()
		g.drift[c] *= 0.99995
		v += g.drift[c]

		// Blink artifact, frontal-dominant.
		if g.blinkLeft > 0 {
			prog := 1 - float64(g.blinkLeft)/(0.3*g.fs)
			env := math.Sin(math.Pi * prog)
			switch c {
			case chFP1, chFP2:
				v += g.blinkAmp * env
			case ChannelIndex("F3"), ChannelIndex("F4"), ChannelIndex("F7"), ChannelIndex("F8"):
				v += 0.35 * g.blinkAmp * env
			}
		}
		// EMG burst artifact.
		if g.emgLeft > 0 && c == g.emgChannel {
			v += 15 * g.rng.NormFloat64()
		}
		out[c] = v
	}
	if g.blinkLeft > 0 {
		g.blinkLeft--
	}
	if g.emgLeft > 0 {
		g.emgLeft--
	}
	g.t++
	return out
}

// Generate produces n consecutive samples under a fixed mental state,
// returned channel-major: result[ch][i].
func (g *Generator) Generate(a Action, n int) [][]float64 {
	out := make([][]float64, NumChannels)
	for c := range out {
		out[c] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		s := g.Next(a)
		for c := 0; c < NumChannels; c++ {
			out[c][i] = s[c]
		}
	}
	return out
}

// ElapsedSeconds returns how much signal time the generator has produced.
func (g *Generator) ElapsedSeconds() float64 { return float64(g.t) / g.fs }
