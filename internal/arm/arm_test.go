package arm

import (
	"math"
	"testing"
	"testing/quick"

	"cognitivearm/internal/tensor"
)

func TestServoSlewLimit(t *testing.T) {
	s := NewServo(0, 180, 90) // 90 deg/s
	s.SetTarget(180)
	s.Step(0.5)
	// Started at 90 (centre), can move at most 45 degrees in 0.5 s.
	if got := s.Angle(); math.Abs(got-135) > 1e-9 {
		t.Fatalf("angle %v want 135", got)
	}
	s.Step(10)
	if s.Angle() != 180 {
		t.Fatal("should settle exactly at target")
	}
}

func TestServoClampsToRange(t *testing.T) {
	s := NewServo(10, 100, 500)
	s.SetTarget(999)
	s.Step(10)
	if s.Angle() != 100 {
		t.Fatalf("angle %v should clamp to 100", s.Angle())
	}
	s.SetTarget(-50)
	s.Step(10)
	if s.Angle() != 10 {
		t.Fatalf("angle %v should clamp to 10", s.Angle())
	}
}

func TestServoNeverExceedsSlewProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		s := NewServo(0, 180, 60)
		prev := s.Angle()
		for i := 0; i < 200; i++ {
			if rng.Intn(5) == 0 {
				s.SetTarget(180 * rng.Float64())
			}
			dt := 0.01 + 0.05*rng.Float64()
			s.Step(dt)
			if math.Abs(s.Angle()-prev) > 60*dt+1e-9 {
				return false
			}
			if s.Angle() < 0 || s.Angle() > 180 {
				return false
			}
			prev = s.Angle()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var d Decoder
	f := Frame{Channel: ChanElbow, AngleDeg: 123.4}
	b := f.Encode()
	got := d.Feed(b[:])
	if len(got) != 1 {
		t.Fatalf("decoded %d frames", len(got))
	}
	if got[0].Channel != ChanElbow || math.Abs(got[0].AngleDeg-123.4) > 0.05 {
		t.Fatalf("frame %+v", got[0])
	}
}

func TestDecoderResyncAfterCorruption(t *testing.T) {
	var d Decoder
	f1 := Frame{Channel: ChanArm, AngleDeg: 10}.Encode()
	f2 := Frame{Channel: ChanIndex, AngleDeg: 20}.Encode()
	stream := append([]byte{0x00, 0x42}, f1[:]...) // leading garbage
	corrupted := f2
	corrupted[2] ^= 0xFF // break checksum
	stream = append(stream, corrupted[:]...)
	f3 := Frame{Channel: ChanPinky, AngleDeg: 30}.Encode()
	stream = append(stream, f3[:]...)
	got := d.Feed(stream)
	if len(got) != 2 {
		t.Fatalf("want 2 valid frames, got %d", len(got))
	}
	if got[0].Channel != ChanArm || got[1].Channel != ChanPinky {
		t.Fatalf("frames %+v", got)
	}
	if d.Rejected == 0 {
		t.Fatal("corruption should be counted")
	}
}

func TestDecoderHandlesFragmentation(t *testing.T) {
	var d Decoder
	f := Frame{Channel: ChanMiddle, AngleDeg: 45}.Encode()
	var got []Frame
	for _, b := range f {
		got = append(got, d.Feed([]byte{b})...)
	}
	if len(got) != 1 || got[0].Channel != ChanMiddle {
		t.Fatalf("byte-at-a-time decode failed: %+v", got)
	}
}

func TestArduinoDrivesServos(t *testing.T) {
	a := NewArduino()
	f := Frame{Channel: ChanElbow, AngleDeg: 150}.Encode()
	if _, err := a.Write(f[:]); err != nil {
		t.Fatal(err)
	}
	if a.Target(ChanElbow) != 150 {
		t.Fatalf("target %v", a.Target(ChanElbow))
	}
	for i := 0; i < 200; i++ {
		a.Step(0.02)
	}
	if math.Abs(a.Angle(ChanElbow)-150) > 0.1 {
		t.Fatalf("elbow at %v after settling", a.Angle(ChanElbow))
	}
	if !a.Settled(0.1) {
		t.Fatal("arm should be settled")
	}
}

func TestSendPoseReachesAllChannels(t *testing.T) {
	a := NewArduino()
	if err := SendPose(a, PoseHandshake); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		a.Step(0.02)
	}
	for c, want := range PoseHandshake {
		if got := a.Angle(c); math.Abs(got-want) > 0.1 {
			t.Fatalf("channel %d at %v want %v", c, got, want)
		}
	}
}

func TestPosesWithinServoLimits(t *testing.T) {
	a := NewArduino()
	for name, pose := range Poses() {
		if len(pose) != NumChannels {
			t.Fatalf("pose %s covers %d channels, want %d", name, len(pose), NumChannels)
		}
		for c, deg := range pose {
			s := a.servos[c]
			if deg < s.MinDeg || deg > s.MaxDeg {
				t.Fatalf("pose %s channel %d angle %v outside [%v,%v]", name, c, deg, s.MinDeg, s.MaxDeg)
			}
		}
	}
}

func TestCalibrationSweep(t *testing.T) {
	a := NewArduino()
	results := Calibrate(a)
	if len(results) != NumChannels {
		t.Fatalf("calibrated %d channels", len(results))
	}
	for _, r := range results {
		if !r.ReachedMin || !r.ReachedMax {
			t.Fatalf("channel %d failed to reach limits: %+v", r.Channel, r)
		}
		s := a.servos[r.Channel]
		wantTraverse := (s.MaxDeg - s.MinDeg) / s.SlewDegPerSec
		if math.Abs(r.SettleSec-wantTraverse) > 0.1 {
			t.Fatalf("channel %d traverse %v s, model predicts %v s", r.Channel, r.SettleSec, wantTraverse)
		}
	}
	// Calibration must leave servos centred.
	for c := Channel(0); c < NumChannels; c++ {
		s := a.servos[c]
		if math.Abs(s.Angle()-(s.MinDeg+s.MaxDeg)/2) > 0.1 {
			t.Fatalf("channel %d not recentred: %v", c, s.Angle())
		}
	}
}

func TestFingerChannels(t *testing.T) {
	if len(FingerChannels()) != 5 {
		t.Fatal("the paper's hand has five finger servos")
	}
}

func TestFrameEncodeClamps(t *testing.T) {
	b := Frame{Channel: ChanArm, AngleDeg: -10}.Encode()
	var d Decoder
	got := d.Feed(b[:])
	if len(got) != 1 || got[0].AngleDeg != 0 {
		t.Fatalf("negative angle should clamp to 0: %+v", got)
	}
}
