// Package arm models CognitiveArm's actuation chain (§IV-A): a framed serial
// protocol from the edge device to an Arduino emulator, slew-rate-limited
// servo dynamics, the 3-DoF arm (arm lift, elbow rotation, five finger
// servos), a CCPM-style calibration sweep, and the pose library for the
// everyday tasks the paper demonstrates (handshake, cup picking).
package arm

import (
	"fmt"
	"math"
	"sync"
)

// Channel identifies a servo channel on the controller.
type Channel int

// Servo channel map: one lift, one elbow, five fingers (§IV-A: "five
// embedded servo motors controlling finger movements").
const (
	ChanArm     Channel = 0
	ChanElbow   Channel = 1
	ChanThumb   Channel = 2
	ChanIndex   Channel = 3
	ChanMiddle  Channel = 4
	ChanRing    Channel = 5
	ChanPinky   Channel = 6
	NumChannels         = 7
)

// FingerChannels lists the five finger servos.
func FingerChannels() []Channel {
	return []Channel{ChanThumb, ChanIndex, ChanMiddle, ChanRing, ChanPinky}
}

// Servo models one motor: commands set a target; Step slews the shaft toward
// it at a bounded rate within mechanical limits.
type Servo struct {
	MinDeg, MaxDeg float64
	SlewDegPerSec  float64
	angle          float64
	target         float64
}

// NewServo creates a servo centred between its limits.
func NewServo(minDeg, maxDeg, slew float64) *Servo {
	mid := (minDeg + maxDeg) / 2
	return &Servo{MinDeg: minDeg, MaxDeg: maxDeg, SlewDegPerSec: slew, angle: mid, target: mid}
}

// SetTarget commands a position, clamped to the mechanical range.
func (s *Servo) SetTarget(deg float64) {
	if deg < s.MinDeg {
		deg = s.MinDeg
	}
	if deg > s.MaxDeg {
		deg = s.MaxDeg
	}
	s.target = deg
}

// Step advances the shaft by dt seconds of motion.
func (s *Servo) Step(dt float64) {
	maxMove := s.SlewDegPerSec * dt
	d := s.target - s.angle
	if math.Abs(d) <= maxMove {
		s.angle = s.target
		return
	}
	if d > 0 {
		s.angle += maxMove
	} else {
		s.angle -= maxMove
	}
}

// Angle returns the current shaft position.
func (s *Servo) Angle() float64 { return s.angle }

// Target returns the commanded position.
func (s *Servo) Target() float64 { return s.target }

// AtTarget reports whether the shaft is within tol degrees of the target.
func (s *Servo) AtTarget(tol float64) bool { return math.Abs(s.target-s.angle) <= tol }

// Frame is one serial command: set channel to angle. Wire format is 5 bytes:
// [0xA5][channel][angle-hi][angle-lo][checksum], angle in deci-degrees,
// checksum = XOR of bytes 1..3. The sync byte plus checksum let the receiver
// resynchronise after corruption — serial links to hobby controllers glitch.
type Frame struct {
	Channel  Channel
	AngleDeg float64
}

// frameSize is the wire size of one command.
const frameSize = 5

// syncByte marks the start of a frame.
const syncByte = 0xA5

// Encode renders the frame into its 5-byte wire form.
func (f Frame) Encode() [frameSize]byte {
	deci := int(math.Round(f.AngleDeg * 10))
	if deci < 0 {
		deci = 0
	}
	if deci > 65535 {
		deci = 65535
	}
	var b [frameSize]byte
	b[0] = syncByte
	b[1] = byte(f.Channel)
	b[2] = byte(deci >> 8)
	b[3] = byte(deci)
	b[4] = b[1] ^ b[2] ^ b[3]
	return b
}

// Decoder incrementally parses a corrupted byte stream into frames,
// resynchronising on the sync byte and dropping checksum failures.
type Decoder struct {
	buf []byte
	// Decoded counts valid frames; Rejected counts checksum failures.
	Decoded, Rejected int
}

// Feed consumes bytes and returns any complete valid frames.
func (d *Decoder) Feed(data []byte) []Frame {
	d.buf = append(d.buf, data...)
	var out []Frame
	for {
		// Find sync.
		i := 0
		for i < len(d.buf) && d.buf[i] != syncByte {
			i++
		}
		d.buf = d.buf[i:]
		if len(d.buf) < frameSize {
			return out
		}
		b := d.buf[:frameSize]
		if b[1]^b[2]^b[3] == b[4] && int(b[1]) < NumChannels {
			deci := int(b[2])<<8 | int(b[3])
			out = append(out, Frame{Channel: Channel(b[1]), AngleDeg: float64(deci) / 10})
			d.Decoded++
			d.buf = d.buf[frameSize:]
		} else {
			// Corrupted: skip the false sync byte and rescan.
			d.Rejected++
			d.buf = d.buf[1:]
		}
	}
}

// Arduino emulates the microcontroller: it decodes serial frames and drives
// the servo bank. Step advances simulated time.
type Arduino struct {
	mu      sync.Mutex
	dec     Decoder
	servos  [NumChannels]*Servo
	elapsed float64
}

// NewArduino builds the controller with the arm's servo complement.
func NewArduino() *Arduino {
	a := &Arduino{}
	a.servos[ChanArm] = NewServo(0, 120, 90)    // shoulder lift: slow, strong
	a.servos[ChanElbow] = NewServo(0, 180, 120) // elbow rotation
	for _, c := range FingerChannels() {
		a.servos[c] = NewServo(0, 90, 240) // fingers: fast, short throw
	}
	return a
}

// Write implements io.Writer: bytes arriving over the serial link.
func (a *Arduino) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, f := range a.dec.Feed(p) {
		a.servos[f.Channel].SetTarget(f.AngleDeg)
	}
	return len(p), nil
}

// Step advances all servos by dt seconds.
func (a *Arduino) Step(dt float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.servos {
		s.Step(dt)
	}
	a.elapsed += dt
}

// Angle returns a servo's current position.
func (a *Arduino) Angle(c Channel) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.servos[c].Angle()
}

// Target returns a servo's commanded position.
func (a *Arduino) Target(c Channel) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.servos[c].Target()
}

// Stats reports decoder counters (valid, rejected).
func (a *Arduino) Stats() (decoded, rejected int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dec.Decoded, a.dec.Rejected
}

// Settled reports whether every servo reached its target within tol degrees.
func (a *Arduino) Settled(tol float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.servos {
		if !s.AtTarget(tol) {
			return false
		}
	}
	return true
}

// Pose is a full-arm configuration.
type Pose map[Channel]float64

// Pose library for the everyday tasks of Fig. 6.
var (
	PoseRest      = Pose{ChanArm: 60, ChanElbow: 90, ChanThumb: 45, ChanIndex: 45, ChanMiddle: 45, ChanRing: 45, ChanPinky: 45}
	PoseHandshake = Pose{ChanArm: 60, ChanElbow: 90, ChanThumb: 45, ChanIndex: 50, ChanMiddle: 50, ChanRing: 50, ChanPinky: 45}
	PoseCupGrip   = Pose{ChanArm: 45, ChanElbow: 100, ChanThumb: 70, ChanIndex: 75, ChanMiddle: 75, ChanRing: 75, ChanPinky: 70}
	PoseOpenHand  = Pose{ChanArm: 45, ChanElbow: 90, ChanThumb: 0, ChanIndex: 0, ChanMiddle: 0, ChanRing: 0, ChanPinky: 0}
)

// Poses returns the named pose library.
func Poses() map[string]Pose {
	return map[string]Pose{
		"rest":      PoseRest,
		"handshake": PoseHandshake,
		"cup-grip":  PoseCupGrip,
		"open-hand": PoseOpenHand,
	}
}

// SendPose encodes every channel of the pose onto the serial writer.
func SendPose(w interface{ Write([]byte) (int, error) }, p Pose) error {
	for c, deg := range p {
		b := Frame{Channel: c, AngleDeg: deg}.Encode()
		if _, err := w.Write(b[:]); err != nil {
			return fmt.Errorf("arm: send pose: %w", err)
		}
	}
	return nil
}

// CalibrationResult reports one servo's sweep.
type CalibrationResult struct {
	Channel    Channel
	ReachedMin bool
	ReachedMax bool
	SettleSec  float64 // time to traverse min→max at slew limit
}

// Calibrate performs the CCPM-tester-style sweep of §IV-A6: each servo is
// driven to its limits and the traverse time is measured against the slew
// model.
func Calibrate(a *Arduino) []CalibrationResult {
	var out []CalibrationResult
	const dt = 1.0 / 50 // 50 Hz servo tick
	for c := Channel(0); c < NumChannels; c++ {
		s := a.servos[c]
		res := CalibrationResult{Channel: c}
		// Sweep to min.
		s.SetTarget(s.MinDeg)
		for i := 0; i < 5000 && !s.AtTarget(0.01); i++ {
			s.Step(dt)
		}
		res.ReachedMin = s.AtTarget(0.01)
		// Sweep to max, timing it.
		s.SetTarget(s.MaxDeg)
		var t float64
		for i := 0; i < 5000 && !s.AtTarget(0.01); i++ {
			s.Step(dt)
			t += dt
		}
		res.ReachedMax = s.AtTarget(0.01)
		res.SettleSec = t
		// Recentre.
		s.SetTarget((s.MinDeg + s.MaxDeg) / 2)
		for i := 0; i < 5000 && !s.AtTarget(0.01); i++ {
			s.Step(dt)
		}
		out = append(out, res)
	}
	return out
}
