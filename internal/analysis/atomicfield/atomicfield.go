// Package atomicfield enforces all-or-nothing atomicity: once any code in
// a package accesses a struct field (or package-level variable) through
// sync/atomic, every other access to it must be atomic too. A single plain
// load next to atomic adds is exactly the torn-read/lost-update bug class
// PR 6 fixed by hand in the UDP/LSL inlet drop counters before converting
// them to typed atomics — this analyzer makes the conversion mandatory the
// moment the first atomic call appears.
//
// Typed atomics (atomic.Uint64 and friends) are immune by construction and
// the recommended fix; the analyzer's job is catching the mixed state in
// between. Composite-literal keys are exempt (pre-publication
// initialization), and a deliberate pre-goroutine plain access can be
// waived with //cogarm:allow atomicfield -- <reason>.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"cognitivearm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flag non-atomic accesses to fields that are accessed via sync/atomic elsewhere in the package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// First sweep: every &v handed to a sync/atomic function marks v as
	// atomically-accessed.
	atomicVars := map[*types.Var]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := referencedVar(pass.TypesInfo, u.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Second sweep: any use of those variables outside a sync/atomic
	// argument is a racy mixed access.
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			first, tracked := atomicVars[v]
			if !tracked || allowedUse(pass.TypesInfo, id, stack) {
				return true
			}
			pass.Reportf(id.Pos(), "non-atomic access to %s, which is accessed with sync/atomic at %s — every access must be atomic (or migrate to a typed atomic)",
				v.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := analysis.Callee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// referencedVar resolves expr (x.f selector chain or plain ident) to the
// field or package-level variable it denotes.
func referencedVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		if v != nil && v.IsField() {
			return v
		}
		return v
	}
	return nil
}

// allowedUse reports whether the identifier use (whose ancestors are
// stack, outermost first) is legitimate: the address argument of a
// sync/atomic call, or a composite-literal key (initialization before
// publication).
func allowedUse(info *types.Info, id ast.Node, stack []ast.Node) bool {
	child := id
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			child = a.(ast.Expr)
			continue
		case *ast.UnaryExpr:
			if a.Op != token.AND {
				return false
			}
			// &...ident...: fine exactly when handed to sync/atomic.
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok {
					return isAtomicCall(info, call)
				}
			}
			return false
		case *ast.KeyValueExpr:
			// Struct-literal initialization key: foo{dropped: 0}.
			if a.Key == child && i > 0 {
				_, ok := stack[i-1].(*ast.CompositeLit)
				return ok
			}
			return false
		default:
			return false
		}
	}
	return false
}
