// Fixture for atomicfield: every variable passed by address to a
// sync/atomic call must be accessed atomically everywhere.
package af

import "sync/atomic"

type counter struct {
	hits  int64
	other int64
}

var global int64

func atomicOnly(c *counter) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&global, 1)
	_ = atomic.LoadInt64(&c.hits)
}

func mixed(c *counter) {
	c.hits++        // want `atomicfield: non-atomic access to hits`
	_ = c.hits      // want `atomicfield: non-atomic access to hits`
	if global > 0 { // want `atomicfield: non-atomic access to global`
	}
}

func fine(c *counter) {
	// other is never touched atomically, so plain access is fine.
	c.other++
	// Taking the address for another atomic call is fine.
	atomic.StoreInt64(&c.hits, 0)
}

func initialization() counter {
	// Composite-literal keys name fields, they do not read them.
	return counter{hits: 0, other: 1}
}
