package atomicfield_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/atomicfield"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{atomicfield.Analyzer}, "af")
}
