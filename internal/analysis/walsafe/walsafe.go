// Package walsafe enforces the write-ahead log's append-only discipline.
// A sync.Mutex/RWMutex struct field annotated //cogarm:walseg is a WAL
// segment lock: every byte that reaches the active segment is serialized
// under it, and history behind the write cursor is immutable. While such a
// lock is held (from x.Lock()/x.RLock() to the matching unlock in the same
// statement list, or to the end of the scope when the unlock is deferred)
// the analyzer flags:
//
//   - file reads: (*os.File).Read/ReadAt, os.Open, os.ReadFile,
//     io.ReadFull, io.ReadAll — readers (recovery, Dump, Verify) run
//     lock-free over sealed data, never under the segment lock;
//   - position surgery: (*os.File).Seek/WriteAt/Truncate, os.Truncate —
//     the write path only ever appends, so sealed bytes stay bitwise
//     stable under concurrent verification;
//   - os.OpenFile without os.O_APPEND in its flag expression — a segment
//     (re)opened under the lock must be opened for appending.
//
// Unsafe-ness propagates through in-package calls via a fixpoint over
// function bodies, so a helper that hides a Seek one frame down is still
// caught at the lock site. Function literals and go statements are
// independent scopes. The directive must annotate a mutex field; any other
// placement is itself reported. Sanctioned exceptions are waived per line
// with //cogarm:allow walsafe -- <reason>.
package walsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"cognitivearm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "walsafe",
	Doc:  "flag reads, seeks, and history rewrites under a //cogarm:walseg segment lock (append-only WAL discipline)",
	Run:  run,
}

// fileUnsafe are stdlib calls that read a file or rewrite file history —
// both forbidden under a segment lock.
var fileUnsafe = map[string]string{
	"os.(*File).Read":     "reads a WAL file",
	"os.(*File).ReadAt":   "reads a WAL file",
	"os.Open":             "opens a WAL file for reading",
	"os.ReadFile":         "reads a WAL file",
	"io.ReadFull":         "reads a WAL file",
	"io.ReadAll":          "reads a WAL file",
	"os.(*File).Seek":     "moves the write cursor",
	"os.(*File).WriteAt":  "writes at an arbitrary offset",
	"os.(*File).Truncate": "rewrites sealed history",
	"os.Truncate":         "rewrites sealed history",
}

type checker struct {
	pass      *analysis.Pass
	marked    map[*types.Var]bool // //cogarm:walseg-annotated mutex fields
	order     []*types.Func
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		marked:    map[*types.Var]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		summaries: map[*types.Func]string{},
	}
	c.collectMarks()
	if len(c.marked) == 0 {
		return nil // nothing to guard in this package
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.order = append(c.order, fn)
				c.decls[fn] = fd
			}
		}
	}

	// Fixpoint over unsafe summaries: a function is unsafe if its body
	// contains a forbidden file operation or calls an in-package function
	// already known to be unsafe. Declaration order keeps reason chains
	// deterministic.
	for changed := true; changed; {
		changed = false
		for _, fn := range c.order {
			if _, done := c.summaries[fn]; done {
				continue
			}
			var reason string
			c.findUnsafe(c.decls[fn].Body, func(_ token.Pos, r string) {
				if reason == "" {
					reason = r
				}
			})
			if reason != "" {
				c.summaries[fn] = reason
				changed = true
			}
		}
	}

	for _, fn := range c.order {
		body := c.decls[fn].Body
		c.scanList(body.List, nil)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.scanList(lit.Body.List, nil)
			}
			return true
		})
	}
	return nil
}

// collectMarks records every //cogarm:walseg-annotated field and validates
// the directive's placement: it must sit on a named sync.Mutex/RWMutex
// struct field.
func (c *checker) collectMarks() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !analysis.HasDirective(f.Doc, "walseg") {
					continue
				}
				named := analysis.NamedBase(c.pass.TypesInfo.TypeOf(f.Type))
				isMutex := named != nil && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "sync" &&
					(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
				if !isMutex || len(f.Names) == 0 {
					c.pass.Reportf(f.Pos(), "//cogarm:walseg must annotate a named sync.Mutex or sync.RWMutex struct field")
					continue
				}
				for _, name := range f.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.marked[v] = true
					}
				}
			}
			return true
		})
	}
}

// callReason returns why calling call is forbidden under a segment lock,
// or "".
func (c *checker) callReason(call *ast.CallExpr) string {
	obj := analysis.Callee(c.pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	fn = fn.Origin()
	if fn.Pkg() == c.pass.Pkg {
		if r, ok := c.summaries[fn]; ok {
			return fmt.Sprintf("calls %s, which %s", fn.Name(), r)
		}
		return ""
	}
	key := analysis.CalleeKey(fn)
	if r, ok := fileUnsafe[key]; ok {
		return fmt.Sprintf("%s (%s)", r, key)
	}
	if key == "os.OpenFile" && !appendFlagged(call) {
		return "opens a WAL file without os.O_APPEND (os.OpenFile)"
	}
	return ""
}

// appendFlagged reports whether an os.OpenFile call names os.O_APPEND
// anywhere in its flag argument.
func appendFlagged(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "O_APPEND" {
				found = true
			}
		case *ast.Ident:
			if x.Name == "O_APPEND" {
				found = true
			}
		}
		return !found
	})
	return found
}

// findUnsafe walks n — skipping nested function literals and go statements,
// which run outside the current goroutine's locks — and reports every
// forbidden file operation.
func (c *checker) findUnsafe(n ast.Node, report func(token.Pos, string)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case nil:
			return false
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if r := c.callReason(x); r != "" {
				report(x.Lparen, r)
			}
		}
		return true
	})
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock on a walseg-marked mutex
// field reachable through an ident/selector chain, returning the chain
// (the lock's identity for span matching).
func (c *checker) lockOp(call *ast.CallExpr) (ast.Expr, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	fn, ok := analysis.Callee(c.pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	var isLock bool
	switch fn.Name() {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	// The lock expression's final link must select a marked field.
	lockSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	field, ok := c.pass.TypesInfo.Uses[lockSel.Sel].(*types.Var)
	if !ok || !c.marked[field] || analysis.ChainOf(sel.X) == nil {
		return nil, false, false
	}
	return sel.X, isLock, true
}

type heldLock struct {
	expr ast.Expr
	pos  token.Pos
}

// scanList walks a statement list tracking which walseg locks are held.
// Nested blocks get a copy of the held set, so a conditional unlock inside
// an if arm releases the lock for that arm only.
func (c *checker) scanList(list []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if chain, isLock, ok := c.lockOp(call); ok {
					if isLock {
						held = append(held, heldLock{chain, call.Pos()})
					} else {
						held = c.release(held, chain)
					}
					continue
				}
			}
			c.checkHeld(s, held)
		case *ast.DeferStmt:
			if chain, isLock, ok := c.lockOp(s.Call); ok && !isLock {
				_ = chain // deferred unlock: held to end of scope, as modeled
				continue
			}
			c.checkHeld(s.Call, held)
		case *ast.BlockStmt:
			c.scanList(s.List, held)
		case *ast.IfStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Cond, held)
			c.scanList(s.Body.List, held)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				c.scanList(e.List, held)
			case *ast.IfStmt:
				c.scanList([]ast.Stmt{e}, held)
			}
		case *ast.ForStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Cond, held)
			c.checkHeld(s.Post, held)
			c.scanList(s.Body.List, held)
		case *ast.RangeStmt:
			c.checkHeld(s.X, held)
			c.scanList(s.Body.List, held)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					c.scanList(cc.Body, held)
				}
			}
		case *ast.SwitchStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Tag, held)
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						c.checkHeld(e, held)
					}
					c.scanList(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanList(cc.Body, held)
				}
			}
		case *ast.LabeledStmt:
			c.scanList([]ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The goroutine body does not run under this goroutine's locks.
		default:
			c.checkHeld(stmt, held)
		}
	}
}

// checkHeld reports forbidden file operations in n while a walseg lock is
// held.
func (c *checker) checkHeld(n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	c.findUnsafe(n, func(pos token.Pos, reason string) {
		h := held[len(held)-1]
		c.pass.Reportf(pos, "%s while WAL segment lock %s is held (locked at %s) — the write path is append-only",
			reason, types.ExprString(h.expr), c.pass.Fset.Position(h.pos))
	})
}

// release removes the most recent held entry matching chain.
func (c *checker) release(held []heldLock, chain ast.Expr) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if analysis.SameChain(c.pass.TypesInfo, held[i].expr, chain) {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}
