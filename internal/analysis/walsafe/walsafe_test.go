package walsafe_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/walsafe"
)

// TestFixtures covers direct and transitive reads/seeks/rewrites under a
// //cogarm:walseg lock, deferred-unlock spans, conditional release,
// os.OpenFile append-mode checking, unmarked-mutex and lock-free scopes,
// goroutine scoping, directive placement validation, and waivers.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{walsafe.Analyzer},
		"cognitivearm/wsfix")
}
