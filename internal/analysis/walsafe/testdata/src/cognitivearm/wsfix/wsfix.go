// Fixture for walsafe: append-only discipline under //cogarm:walseg
// segment locks — direct and transitive reads/seeks/rewrites, deferred
// unlock spans, conditional release, open-mode checks, unmarked locks,
// goroutine scoping, directive placement, and waivers.
package wsfix

import (
	"io"
	"os"
	"sync"
)

type segLog struct {
	//cogarm:walseg
	mu sync.Mutex
	f  *os.File

	plain sync.Mutex // unmarked: not walsafe's concern
	buf   []byte
}

type badMark struct {
	//cogarm:walseg
	n int // want `walsafe: //cogarm:walseg must annotate a named sync\.Mutex or sync\.RWMutex struct field`
}

func appendFrame(l *segLog, b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(b); err != nil { // sequential append: fine
		return err
	}
	return l.f.Sync() // durability: fine
}

func readBack(l *segLog, b []byte) {
	l.mu.Lock()
	l.f.Read(b)               // want `walsafe: reads a WAL file \(os\.\(\*File\)\.Read\) while WAL segment lock l\.mu is held`
	l.f.Seek(0, io.SeekStart) // want `walsafe: moves the write cursor \(os\.\(\*File\)\.Seek\) while WAL segment lock l\.mu is held`
	l.mu.Unlock()
	l.f.Read(b) // lock released: fine
}

func rewriteHistory(l *segLog) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.WriteAt(l.buf, 0)     // want `walsafe: writes at an arbitrary offset \(os\.\(\*File\)\.WriteAt\) while WAL segment lock l\.mu is held`
	l.f.Truncate(0)           // want `walsafe: rewrites sealed history \(os\.\(\*File\)\.Truncate\) while WAL segment lock l\.mu is held`
	os.Truncate("wal.seg", 0) // want `walsafe: rewrites sealed history \(os\.Truncate\) while WAL segment lock l\.mu is held`
}

func reopen(l *segLog) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, _ := os.OpenFile("wal.seg", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644) // append mode: fine
	_ = a
	b, _ := os.OpenFile("wal.seg", os.O_RDWR, 0o644) // want `walsafe: opens a WAL file without os\.O_APPEND \(os\.OpenFile\) while WAL segment lock l\.mu is held`
	_ = b
	c, _ := os.Open("wal.seg") // want `walsafe: opens a WAL file for reading \(os\.Open\) while WAL segment lock l\.mu is held`
	_ = c
}

// scanTail seeks; calling it under the segment lock is flagged at the
// call site through the in-package fixpoint.
func scanTail(l *segLog) {
	l.f.Seek(0, io.SeekEnd)
}

func transitive(l *segLog) {
	l.mu.Lock()
	scanTail(l) // want `walsafe: calls scanTail, which moves the write cursor \(os\.\(\*File\)\.Seek\) while WAL segment lock l\.mu is held`
	l.mu.Unlock()
}

func conditional(l *segLog, flush bool) {
	l.mu.Lock()
	if flush {
		l.mu.Unlock()
		l.f.Seek(0, io.SeekStart) // released on this arm: fine
		return
	}
	l.mu.Unlock()
}

func unmarkedLock(l *segLog, b []byte) {
	l.plain.Lock()
	l.f.Read(b) // plain mutex, not a segment lock: fine
	l.plain.Unlock()
}

func recovery(l *segLog) {
	// No lock held: recovery reads and truncates the tail freely.
	l.f.Seek(0, io.SeekStart)
	os.Truncate("wal.seg", 0)
}

func goroutineBody(l *segLog, b []byte) {
	l.mu.Lock()
	go func() { l.f.Read(b) }() // runs outside this critical section: fine
	l.mu.Unlock()
}

func waived(l *segLog, b []byte) {
	l.mu.Lock()
	//cogarm:allow walsafe -- fixture: sanctioned read-back for this test
	l.f.Read(b)
	l.mu.Unlock()
}
