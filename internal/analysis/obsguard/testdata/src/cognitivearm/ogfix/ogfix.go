// Fixture for obsguard: every method call on a *obs.Counter/Gauge/
// Histogram/EventRing must be dominated by a nil guard, rooted at a
// //cogarm:obsnonnil accessor, or waived.
package ogfix

import "cognitivearm/internal/obs"

type tel struct {
	hits   *obs.Counter
	depth  *obs.Gauge
	lat    *obs.Histogram
	events *obs.EventRing
}

type server struct {
	tel *tel
}

func unguarded(t *tel) {
	t.hits.Inc() // want `obsguard: telemetry handle t\.hits used without a nil guard`
}

func guarded(t *tel) {
	if t.hits != nil {
		t.hits.Inc()
	}
	if t.lat == nil {
		return
	}
	t.lat.Observe(1) // early return above dominates
}

func holderGuard(s *server) {
	// Checking the holder guards every handle hanging off it.
	if s.tel != nil {
		s.tel.depth.Set(1)
		s.tel.events.Record(1, 0, 0, 0, 0)
	}
	s.tel.hits.Inc() // want `obsguard: telemetry handle s\.tel\.hits used without a nil guard`
}

func elseBranch(t *tel) {
	if t.depth == nil {
		return
	} else {
		t.depth.Set(2)
	}
}

func conjunction(t *tel, busy bool) {
	if busy && t.hits != nil {
		t.hits.Inc()
	}
	if busy || t.hits != nil {
		t.hits.Inc() // want `obsguard: telemetry handle t\.hits used without a nil guard`
	}
}

func accessorRooted() {
	// A chain rooted at a //cogarm:obsnonnil accessor needs no guard,
	// directly or through a single-assignment local.
	obs.Default().Requests().Inc()
	r := obs.Default()
	r.Requests().Add(2)
}

func closureLoses(t *tel) func() {
	if t.hits == nil {
		return nil
	}
	t.hits.Inc() // dominating early return: fine
	return func() {
		// The closure may run after the handle set is swapped out; the
		// enclosing guard does not carry in.
		t.hits.Inc() // want `obsguard: telemetry handle t\.hits used without a nil guard`
	}
}

func waived(t *tel) {
	//cogarm:allow obsguard -- fixture: handle provably set by construction here
	t.hits.Inc()
}
