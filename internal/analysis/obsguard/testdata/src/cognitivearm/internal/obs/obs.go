// Package obs is a fixture stub of the repository's telemetry handles: the
// same import path and type names, with the same deliberately unguarded
// receiver derefs, so obsguard's handle detection resolves against it.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(d uint64) { c.v += d }
func (c *Counter) Load() uint64 { return c.v }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

type EventRing struct{ n int }

func (r *EventRing) Record(kind uint8, shard int, a, b, c uint64) { r.n++ }

var std Registry

// Registry hands out handles; its accessor never returns nil.
type Registry struct {
	requests Counter
}

// Default returns the process-wide registry.
//
//cogarm:obsnonnil
func Default() *Registry { return &std }

// Requests returns a live counter handle.
//
//cogarm:obsnonnil
func (r *Registry) Requests() *Counter { return &r.requests }
