package obsguard_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/obsguard"
)

// TestFixtures runs against a stub of cognitivearm/internal/obs (same
// import path, so handle detection resolves) and covers holder-chain
// guards, early returns, conjunction splitting, obsnonnil accessor roots,
// the closure boundary, and waivers.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{obsguard.Analyzer}, "cognitivearm/ogfix")
}
