// Package obsguard proves the telemetry kill-switch safe: with
// DisableTelemetry, every *obs.Counter/Gauge/Histogram/EventRing handle in
// a holder struct is nil, and the handle methods deliberately do not
// nil-check themselves (they sit on the zero-alloc tick path). So every
// method call on a handle must be dominated by a nil guard:
//
//   - an enclosing `if h != nil { ... }` (or `if h == nil { ... } else`)
//     on the handle or any prefix of its selector chain (the holder),
//   - an earlier `if h == nil { return }` in a dominating statement list,
//   - a receiver chain rooted at a call to a function annotated
//     //cogarm:obsnonnil (the sync.Once accessors — ckptTel, streamTel,
//     clusterTel, obs.Default — that construct on first use and never
//     return nil), directly or through a single-assignment local
//     (t := ckptTel(); t.saves.Inc()).
//
// The obs package itself and _test.go files are exempt; a deliberate
// unguarded use is waived with //cogarm:allow obsguard -- <reason>.
// Annotations on accessors are exported as NonNilFact object facts, so a
// handle fetched through another package's accessor is still recognized.
package obsguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cognitivearm/internal/analysis"
)

// obsPath is the package whose handle types are guarded.
const obsPath = "cognitivearm/internal/obs"

var handleTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"EventRing": true,
}

// NonNilFact marks a function annotated //cogarm:obsnonnil: it never
// returns a nil handle/holder, so values derived from it need no guard.
type NonNilFact struct{}

func (*NonNilFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "obsguard",
	Doc:       "require nil guards on every obs telemetry handle use so DisableTelemetry cannot panic",
	FactTypes: []analysis.Fact{(*NonNilFact)(nil)},
	Run:       run,
}

type checker struct {
	pass    *analysis.Pass
	nonnil  map[*types.Func]bool
	curVars map[types.Object]bool // locals assigned from non-nil accessors
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, nonnil: map[*types.Func]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd.Doc, "obsnonnil") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.nonnil[fn] = true
				pass.ExportObjectFact(fn, &NonNilFact{})
			}
		}
	}
	if pass.Pkg.Path() == obsPath {
		// The handle implementation is allowed to touch its own fields.
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.curVars = map[types.Object]bool{}
	// Locals bound once from a non-nil accessor are trusted roots.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !c.isNonNilCall(call) {
			return true
		}
		if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
			c.curVars[obj] = true
		}
		return true
	})

	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := c.pass.TypesInfo.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return true
		}
		recv := c.pass.TypesInfo.TypeOf(fun.X)
		if recv == nil {
			return true
		}
		if _, ok := recv.Underlying().(*types.Pointer); !ok {
			return true // value handles cannot be nil
		}
		base := analysis.NamedBase(recv)
		if base == nil || base.Obj().Pkg() == nil ||
			base.Obj().Pkg().Path() != obsPath || !handleTypes[base.Obj().Name()] {
			return true
		}
		if !c.guarded(fun.X, n, stack) {
			c.pass.Reportf(fun.X.Pos(),
				"telemetry handle %s used without a nil guard — with DisableTelemetry this panics; wrap in `if %s != nil` or fetch it via a //cogarm:obsnonnil accessor",
				types.ExprString(fun.X), guardTarget(fun.X))
		}
		return true
	})
}

// guardTarget names the thing to nil-check in the diagnostic: the root of
// the receiver chain when there is one, else the receiver itself.
func guardTarget(expr ast.Expr) string {
	if chain := analysis.ChainOf(expr); chain != nil {
		return types.ExprString(chain[0])
	}
	return types.ExprString(expr)
}

// isNonNilCall reports whether call invokes a //cogarm:obsnonnil function.
func (c *checker) isNonNilCall(call *ast.CallExpr) bool {
	fn, ok := analysis.Callee(c.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return false
	}
	fn = fn.Origin() // annotations and facts hang off the generic origin
	if fn.Pkg() == c.pass.Pkg {
		return c.nonnil[fn]
	}
	var f NonNilFact
	return c.pass.ImportObjectFact(fn, &f)
}

// guarded reports whether the receiver expr of a handle call is dominated
// by a nil guard.
func (c *checker) guarded(expr ast.Expr, node ast.Node, stack []ast.Node) bool {
	// Collect the chain prefixes that, if nil-checked, guard this use:
	// s.tel.events → {s.tel.events, s.tel, s}. A chain rooted at a non-nil
	// accessor call (ckptTel().saves) or a trusted local is guarded as is.
	var targets []ast.Expr
	e := ast.Unparen(expr)
	for {
		targets = append(targets, e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.CallExpr:
			return c.isNonNilCall(x)
		case *ast.Ident:
			if obj := c.pass.TypesInfo.ObjectOf(x); obj != nil && c.curVars[obj] {
				return true
			}
			goto scan
		default:
			goto scan
		}
	}
scan:
	// Walk outward through the ancestors looking for a dominating check.
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.IfStmt:
			if within(a.Body, child) && c.condNotNil(a.Cond, targets) {
				return true
			}
			if a.Else != nil && within(a.Else, child) && c.condIsNil(a.Cond, targets) {
				return true
			}
		case *ast.BlockStmt:
			if c.earlyGuard(a.List, child, targets) {
				return true
			}
		case *ast.CaseClause:
			if c.earlyGuard(a.Body, child, targets) {
				return true
			}
		case *ast.CommClause:
			if c.earlyGuard(a.Body, child, targets) {
				return true
			}
		case *ast.FuncLit:
			// A closure may run later, when the guard's condition no longer
			// holds; only guards inside the literal itself count.
			return false
		}
		child = stack[i]
	}
	return false
}

// earlyGuard reports whether a statement before child in list is an
// `if x == nil { return/panic/... }` for one of targets.
func (c *checker) earlyGuard(list []ast.Stmt, child ast.Node, targets []ast.Expr) bool {
	for _, st := range list {
		if st == child {
			return false
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || ifs.Else != nil || !terminates(ifs.Body) {
			continue
		}
		if c.condIsNil(ifs.Cond, targets) {
			return true
		}
	}
	return false
}

// terminates reports whether a block always leaves the enclosing scope.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// condNotNil reports whether cond guarantees some target is non-nil when
// true: a conjunction containing `target != nil`.
func (c *checker) condNotNil(cond ast.Expr, targets []ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LAND:
		return c.condNotNil(b.X, targets) || c.condNotNil(b.Y, targets)
	case token.NEQ:
		return c.nilCompare(b, targets)
	}
	return false
}

// condIsNil reports whether cond is true only when some target is nil: a
// disjunction containing `target == nil`.
func (c *checker) condIsNil(cond ast.Expr, targets []ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LOR:
		return c.condIsNil(b.X, targets) || c.condIsNil(b.Y, targets)
	case token.EQL:
		return c.nilCompare(b, targets)
	}
	return false
}

// nilCompare reports whether b compares one of targets against nil.
func (c *checker) nilCompare(b *ast.BinaryExpr, targets []ast.Expr) bool {
	var other ast.Expr
	if tv, ok := c.pass.TypesInfo.Types[b.Y]; ok && tv.IsNil() {
		other = b.X
	} else if tv, ok := c.pass.TypesInfo.Types[b.X]; ok && tv.IsNil() {
		other = b.Y
	} else {
		return false
	}
	for _, t := range targets {
		if analysis.SameChain(c.pass.TypesInfo, other, t) {
			return true
		}
	}
	return false
}

// within reports whether node n is inside the subtree rooted at root, by
// position.
func within(root ast.Node, n ast.Node) bool {
	return n != nil && root != nil && n.Pos() >= root.Pos() && n.End() <= root.End()
}
