// Package analysistest runs analyzers over golden fixture packages and
// checks their diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract the analyzer tests
// would use under the real framework.
//
// Fixtures live under <testdata>/src/<importpath>/. A fixture package may
// import other fixture packages (resolved from the same tree, analyzed
// first so object facts flow across the boundary, exactly as the vettool
// and standalone drivers propagate them) and the standard library
// (resolved from `go list -export` data). Expectations are written on the
// line they anchor to:
//
//	x := make([]int, n) // want `make allocates`
//
// Each // want clause is a double-quoted or backquoted Go string holding a
// regexp; several clauses may follow one want. Every diagnostic on a line
// must be matched by a clause and every clause must match a diagnostic, so
// fixtures pin both the positive and the negative behaviour of an
// analyzer: deleting it (or breaking its detection) fails the test.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cognitivearm/internal/analysis"
)

// Run loads each fixture package named by paths from testdata/src, runs
// the analyzers over it (dependencies first), and checks diagnostics
// against the // want comments of the named packages. Diagnostics in
// fixture dependencies that are not themselves named are ignored, the same
// way go vet only prints findings for the packages under analysis.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	l := &loader{
		testdata:  testdata,
		fset:      token.NewFileSet(),
		analyzers: analyzers,
		store:     analysis.NewFactStore(),
		units:     map[string]*analysis.Unit{},
		diags:     map[string][]analysis.Diagnostic{},
		loading:   map[string]bool{},
	}
	l.external = importer.ForCompiler(l.fset, "gc", l.exportData)
	for _, path := range paths {
		if _, err := l.load(path); err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
	}
	for _, path := range paths {
		l.check(t, path)
	}
}

type loader struct {
	testdata  string
	fset      *token.FileSet
	analyzers []*analysis.Analyzer
	store     *analysis.FactStore
	units     map[string]*analysis.Unit
	diags     map[string][]analysis.Diagnostic
	loading   map[string]bool
	external  types.Importer
	exports   map[string]string
}

// fixtureDir returns the directory holding fixture package path, or "" if
// the path is not a fixture.
func (l *loader) fixtureDir(path string) string {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// load parses, type-checks, and analyzes one fixture package (and,
// recursively, its fixture dependencies first).
func (l *loader) load(path string) (*types.Package, error) {
	if u, ok := l.units[path]; ok {
		return u.Pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.fixtureDir(path)
	if dir == "" {
		return nil, fmt.Errorf("no fixture directory for %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	files, err := analysis.ParseFiles(l.fset, names)
	if err != nil {
		return nil, err
	}
	unit, err := analysis.TypeCheck(l.fset, path, files, importerFunc(l.importPkg), "")
	if err != nil {
		return nil, err
	}
	diags, err := analysis.RunAnalyzers(unit, l.analyzers, l.store)
	if err != nil {
		return nil, err
	}
	l.units[path] = unit
	l.diags[path] = diags
	return unit.Pkg, nil
}

// importPkg resolves one import during type-checking: fixture packages
// from the testdata tree, everything else from compiler export data.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if l.fixtureDir(path) != "" {
		return l.load(path)
	}
	return l.external.Import(path)
}

// exportData locates export data for a non-fixture import via one cached
// `go list -deps -export` over the whole standard library.
func (l *loader) exportData(path string) (io.ReadCloser, error) {
	if l.exports == nil {
		l.exports = map[string]string{}
		pkgs, err := analysis.ListExportData("std")
		if err != nil {
			return nil, err
		}
		for p, file := range pkgs {
			l.exports[p] = file
		}
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a regexp anchored to a file line.
type want struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

var wantRE = regexp.MustCompile("//[ \t]*want[ \t]+(.*)")

// check compares the collected diagnostics of one package against its
// // want comments.
func (l *loader) check(t *testing.T, path string) {
	t.Helper()
	unit := l.units[path]
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.fset.Position(c.Pos())
				clauses, err := parseClauses(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, cl := range clauses {
					re, err := regexp.Compile(cl)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, cl, err)
						continue
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	for _, d := range l.diags[path] {
		pos := l.fset.Position(d.Pos)
		msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.hit && w.pos.Filename == pos.Filename && w.pos.Line == pos.Line && w.re.MatchString(msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, msg)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
		}
	}
}

// parseClauses splits the tail of a want comment into its quoted regexps.
func parseClauses(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("clause must be a quoted string: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated clause: %q", s)
		}
		raw := s[:end+2]
		clause, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad clause %q: %v", raw, err)
		}
		out = append(out, clause)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no clauses")
	}
	return out, nil
}
