package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the cogarmvet analyzers.

// WalkStack traverses every node of f in depth-first order, calling fn
// with the node and the stack of its ancestors (outermost first, not
// including the node itself). If fn returns false the node's children are
// skipped. It is the stack-carrying walk the analyzers use in place of
// x/tools' inspector.WithStack.
func WalkStack(f ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if !fn(n, stack) {
			return
		}
		stack = append(stack, n)
		for _, c := range childrenOf(n) {
			visit(c)
		}
		stack = stack[:len(stack)-1]
	}
	visit(f)
}

// childrenOf returns n's direct child nodes in source order.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// Callee resolves the statically-known object a call invokes: a function,
// a concrete method, or an interface method. It returns nil for calls of
// function values, builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.Uses[fun].(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if o, ok := sel.Obj().(*types.Func); ok {
				return o
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if o, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return o
		}
	}
	return nil
}

// CalleeKey renders a function object as "pkgpath.Fn" or
// "pkgpath.(T).M" / "pkgpath.(*T).M" — the form the allowlists use.
// Objects without a package (builtins, unsafe) render as their name.
func CalleeKey(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	key := objectKey(obj)
	if strings.HasPrefix(key, "(") {
		return obj.Pkg().Path() + "." + key
	}
	return obj.Pkg().Path() + "." + key
}

// ChainOf decomposes an ident/selector chain (x, x.f, x.f.g, ...) into its
// links, outermost last: ChainOf(x.f.g) = [x, x.f, x.f.g]. It returns nil
// if expr is not a pure chain (a call, index, or other operator appears).
func ChainOf(expr ast.Expr) []ast.Expr {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return []ast.Expr{e}
	case *ast.SelectorExpr:
		base := ChainOf(e.X)
		if base == nil {
			return nil
		}
		return append(base, e)
	}
	return nil
}

// SameChain reports whether a and b are the same ident/selector chain —
// same root object and same field selections, per the type checker's
// resolution rather than source text.
func SameChain(info *types.Info, a, b ast.Expr) bool {
	ea, eb := ast.Unparen(a), ast.Unparen(b)
	switch ea := ea.(type) {
	case *ast.Ident:
		ib, ok := eb.(*ast.Ident)
		if !ok {
			return false
		}
		oa, ob := info.ObjectOf(ea), info.ObjectOf(ib)
		return oa != nil && oa == ob
	case *ast.SelectorExpr:
		sb, ok := eb.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		oa, ob := info.ObjectOf(ea.Sel), info.ObjectOf(sb.Sel)
		return oa != nil && oa == ob && SameChain(info, ea.X, sb.X)
	}
	return false
}

// IsPointerLike reports whether values of t are pointer-shaped — storing
// one in an interface does not heap-allocate.
func IsPointerLike(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		// Slices are three words and do allocate when boxed; exclude.
		_, isSlice := t.(*types.Slice)
		return !isSlice
	case *types.Basic:
		return t.Kind() == types.UnsafePointer
	}
	return false
}

// NamedBase returns the named type at the core of t, unwrapping pointers
// and aliases, or nil.
func NamedBase(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeIs reports whether t (after unwrapping pointers/aliases) is the
// named type pkgPath.name.
func TypeIs(t types.Type, pkgPath, name string) bool {
	n := NamedBase(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
