package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's annotation grammar (normative; ARCHITECTURE.md "Static
// invariants" documents it for humans):
//
//	//cogarm:zeroalloc
//	    On a function, method, or interface method declaration: the
//	    function must perform no steady-state heap allocation, checked by
//	    the zeroalloc analyzer (transitively through its callees).
//
//	//cogarm:obsnonnil
//	    On a function: it never returns a nil telemetry holder, so
//	    obsguard treats handle uses reached through its result as guarded.
//
//	//cogarm:walseg
//	    On a sync.Mutex/RWMutex struct field: it is a WAL segment lock,
//	    and the walsafe analyzer forbids file reads, seeks, and history
//	    rewrites while it is held (append-only discipline).
//
//	//cogarm:allow <analyzer> -- <reason>
//	    On or immediately above an offending line: suppress that
//	    analyzer's diagnostics for the line. The reason is mandatory —
//	    a suppression without one is itself reported.
//
// Directives are ordinary line comments beginning exactly "//cogarm:".

const directivePrefix = "//cogarm:"

// HasDirective reports whether doc carries the named //cogarm: directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			if field := strings.Fields(text); len(field) > 0 && field[0] == name {
				return true
			}
		}
	}
	return false
}

// Suppressions records, per file line, which analyzers the source has
// explicitly waived via //cogarm:allow.
type Suppressions struct {
	fset  *token.FileSet
	lines map[suppKey]bool
}

type suppKey struct {
	file     string
	line     int
	analyzer string
}

// FileSuppressions collects every //cogarm:allow directive in the files.
// A directive suppresses its own line and the line below it, covering
// both trailing-comment and own-line placement. Malformed directives
// (missing analyzer name or missing "-- reason") are reported through
// report so they fail the build instead of silently suppressing nothing.
func FileSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) *Suppressions {
	s := &Suppressions{fset: fset, lines: map[suppKey]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 || fields[0] != "allow" {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "allow"))
				name, reason, found := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				if name == "" || !found || strings.TrimSpace(reason) == "" {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "cogarmvet",
						Message:  "malformed //cogarm:allow: want \"//cogarm:allow <analyzer> -- <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				s.lines[suppKey{pos.Filename, pos.Line, name}] = true
				s.lines[suppKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return s
}

// Allowed reports whether the analyzer's diagnostics are suppressed at pos.
func (s *Suppressions) Allowed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	return s.lines[suppKey{p.Filename, p.Line, analyzer}]
}
