package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
)

// Standalone mode: `cogarmvet ./...` analyzes a whole module in one
// process without the go command's vet orchestration — the developer-loop
// complement to the CI `go vet -vettool` form. `go list -deps -export`
// supplies the package graph in dependency order plus fresh export data,
// so facts flow through an in-memory store instead of vetx files. Only
// packages of the main module are analyzed (dependencies contribute
// export data and, implicitly, nothing else — the repo's invariants live
// in its own sources); test files are covered by the vettool form, which
// receives separate test units from the go command.

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	DepOnly bool
	Error   *struct{ Err string }
}

// RunStandalone analyzes the packages matching patterns, printing
// diagnostics to w, and returns how many were reported.
func RunStandalone(patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return 0, err
	}

	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	store := NewFactStore()
	total := 0
	// -deps lists dependencies before dependents, so facts a package
	// exports are in the store before any importer asks for them. Main-
	// module packages pulled in only as dependencies of the named patterns
	// are still analyzed — their facts feed the named packages — but their
	// diagnostics are not reported, mirroring go vet's VetxOnly units.
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if p.Error != nil {
			return total, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return total, fmt.Errorf("%s: cgo packages are not supported in standalone mode", p.ImportPath)
		}
		var names []string
		for _, f := range p.GoFiles {
			names = append(names, p.Dir+string(os.PathSeparator)+f)
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return total, err
		}
		unit, err := TypeCheck(fset, p.ImportPath, files, imp, "")
		if err != nil {
			return total, err
		}
		diags, err := RunAnalyzers(unit, analyzers, store)
		if err != nil {
			return total, err
		}
		if p.DepOnly {
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	return total, nil
}

// ListExportData maps every package matching patterns (dependencies
// included) to its compiled export data file, via `go list -deps -export`.
// The analysistest harness uses it to resolve fixture imports of the
// standard library.
func ListExportData(patterns ...string) (map[string]string, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

func listPackages(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
