package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` side of cogarmvet: the same
// wire protocol x/tools' unitchecker speaks. For every package unit the go
// command invokes the tool as `cogarmvet <file>.cfg`, where the cfg is a
// JSON description of the unit (sources, import → export-data map, fact
// files of dependencies, where to write this unit's facts). Two special
// invocations precede that: `-V=full` must print a stable tool identity
// (the go command keys its vet result cache on it), and `-flags` must
// describe the tool's flags (we have none).

// Config mirrors the JSON the go command writes for each vet unit. Field
// names and meanings follow cmd/go/internal/work's vetConfig struct —
// unknown fields are ignored, absent ones zero.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path as written → canonical path
	PackageFile               map[string]string // canonical path → export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // canonical path → fact file of dependency
	VetxOnly                  bool              // only facts are wanted (dependency unit)
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the unit described by cfgPath and returns the
// diagnostics. Fact files of dependencies are read, and this unit's facts
// (its own plus re-exported dependency facts) are written to
// cfg.VetxOutput. A type-check failure is reported as an error unless the
// config asks for tolerance (cgo-translated units, units the go command
// knows may not check) — in that case the unit yields no diagnostics and
// an empty fact file, matching unitchecker.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}

	store := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			// A dependency that exported no facts is not an error.
			continue
		}
		err = store.Decode(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("reading facts %s: %w", vetx, err)
		}
	}

	fset := token.NewFileSet()
	diags, err := analyzeUnit(fset, &cfg, analyzers, store)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			diags = nil
		} else {
			return nil, nil, err
		}
	}
	if cfg.VetxOutput != "" {
		if err := writeFacts(cfg.VetxOutput, store); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		diags = nil
	}
	return diags, fset, nil
}

func analyzeUnit(fset *token.FileSet, cfg *Config, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	unit, err := TypeCheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(unit, analyzers, store)
}

func writeFacts(path string, store *FactStore) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printVersion implements -V=full: a single line starting with the tool's
// base name and "version", unique per build (the go command hashes it into
// its vet cache key). The uniqueness comes from a digest of the executable
// itself.
func printVersion(w io.Writer) {
	name := "cogarmvet"
	if exe, err := os.Executable(); err == nil {
		name = filepath.Base(exe)
		h := sha256.New()
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
			fmt.Fprintf(w, "%s version devel buildID=%x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Fprintf(w, "%s version devel\n", name)
}

// Main is the entry point for cmd/cogarmvet: it dispatches between the
// vettool protocol (-V=full, -flags, a .cfg unit) and the standalone
// whole-module mode (package patterns), and exits with go vet's
// conventions — 0 clean, 1 operational error, 2 diagnostics reported.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion(os.Stdout)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool flags; an empty JSON list tells the go command so.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, fset, err := RunUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cogarmvet: %v\n", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			os.Exit(2)
		}
		os.Exit(0)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := RunStandalone(patterns, analyzers, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cogarmvet: %v\n", err)
		os.Exit(1)
	}
	if n > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}
