// Package quantsafe fences the quantization boundary. The int8/int16
// inference twins (tensor.QMatrix weights, tensor.I16Map feature grids) are
// only correct because every float↔quantized conversion goes through the
// tensor kernels, where the calibrated scale, rounding mode, and clamp live
// in one place and the registry's agreement gate can vouch for the result.
// A raw int8(f) or float64(q) anywhere else re-derives that arithmetic ad
// hoc — typically with a different rounding or a stale scale — and produces
// labels the gate never checked.
//
// The analyzer therefore reports any conversion between a float32/float64
// value and an int8/int16 type (either direction, through named types too)
// outside package cognitivearm/internal/tensor. Test files are exempt, and
// a deliberate conversion is waived with //cogarm:allow quantsafe -- <reason>.
package quantsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"cognitivearm/internal/analysis"
)

// tensorPath is the one package allowed to own quantization arithmetic.
const tensorPath = "cognitivearm/internal/tensor"

var Analyzer = &analysis.Analyzer{
	Name: "quantsafe",
	Doc:  "forbid float↔int8/int16 conversions outside internal/tensor so quantization scales stay calibrated and gated",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == tensorPath {
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := basicKind(tv.Type)
			src := basicKind(pass.TypesInfo.TypeOf(call.Args[0]))
			if crossesQuantBoundary(dst, src) {
				pass.Reportf(call.Pos(),
					"%s→%s conversion outside %s: quantization arithmetic (scale, rounding, clamp) belongs to the tensor kernels (QMatrix/I16Map) so the registry's agreement gate covers it; waive with //cogarm:allow quantsafe -- <reason>",
					types.TypeString(pass.TypesInfo.TypeOf(call.Args[0]), types.RelativeTo(pass.Pkg)),
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), tensorPath)
			}
			return true
		})
	}
	return nil
}

// basicKind resolves a type to its underlying basic kind, or
// types.Invalid when it has none (or the type is nil).
func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

// crossesQuantBoundary reports whether a conversion between the two kinds
// mixes a narrow quantized integer with a float, in either direction.
// Untyped constant operands are ignored: int8(1.0) is compile-time
// arithmetic, not a runtime quantization step.
func crossesQuantBoundary(a, b types.BasicKind) bool {
	return (quantInt(a) && floatKind(b)) || (floatKind(a) && quantInt(b))
}

func quantInt(k types.BasicKind) bool {
	return k == types.Int8 || k == types.Int16
}

func floatKind(k types.BasicKind) bool {
	return k == types.Float32 || k == types.Float64
}
