// Stub of cognitivearm/internal/tensor at the real import path: the one
// package exempt from quantsafe. It converts in both directions and must
// produce no diagnostics.
package tensor

// Q is a stand-in for the kernel-owned quantization entry point.
func Q(f float64) int8 {
	return int8(f)
}

// Dq is the matching dequantization stand-in.
func Dq(q int8) float64 {
	return float64(q)
}
