// Fixture for quantsafe: conversions between float32/float64 and
// int8/int16 (either direction, named types included) are forbidden outside
// cognitivearm/internal/tensor unless waived.
package qsfix

import "cognitivearm/internal/tensor"

type level int8 // named type with a quantized underlying kind

func quantizes(f float64, g float32) {
	_ = int8(f)  // want `quantsafe: float64→int8 conversion outside cognitivearm/internal/tensor`
	_ = int16(g) // want `quantsafe: float32→int16 conversion outside cognitivearm/internal/tensor`
	_ = level(f) // want `quantsafe: float64→level conversion outside cognitivearm/internal/tensor`
}

func dequantizes(q int8, w int16, l level) {
	_ = float64(q) // want `quantsafe: int8→float64 conversion outside cognitivearm/internal/tensor`
	_ = float32(w) // want `quantsafe: int16→float32 conversion outside cognitivearm/internal/tensor`
	_ = float64(l) // want `quantsafe: level→float64 conversion outside cognitivearm/internal/tensor`
}

func allowed(f float64, n int, u int32, q int8) {
	_ = int8(n)     // wide int → int8 is a range concern, not quantization
	_ = int32(f)    // float → wide int carries no scale
	_ = float64(n)  // plain counter arithmetic
	_ = float64(u)  // int32 accumulators dequantize freely
	_ = int8(1.0)   // untyped constant: compile-time, not a runtime step
	_ = int(q)      // widening a quantized value without a float is fine
	_ = tensor.Q(f) // the kernel entry point is the sanctioned route
}

func waived(f float64) int8 {
	//cogarm:allow quantsafe -- fixture: deliberate raw conversion under test
	return int8(f)
}
