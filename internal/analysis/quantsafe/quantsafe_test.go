package quantsafe_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/quantsafe"
)

// TestFixtures covers both directions of the float↔int8/int16 fence, named
// types with quantized underlying kinds, the untyped-constant and wide-int
// exclusions, waivers, and — via a stub package at the real tensor import
// path — the internal/tensor exemption (the stub converts freely and must
// produce no diagnostics).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{quantsafe.Analyzer},
		"cognitivearm/qsfix", "cognitivearm/internal/tensor")
}
