// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, sized to what cogarmvet (cmd/cogarmvet)
// needs: named Analyzer passes over one type-checked package at a time,
// position-carrying diagnostics, and serializable per-object facts that
// flow between packages so properties like "this function is verified
// allocation-free" compose across import boundaries.
//
// # Why not golang.org/x/tools itself
//
// The repo builds hermetically from a bare Go toolchain — no module
// downloads, no vendoring — and that zero-dependency discipline is itself
// one of the invariants the vet suite guards. Everything x/tools'
// unitchecker actually does for a vettool (parse the vet config, type-check
// from export data, thread fact files, print diagnostics) is a few hundred
// lines against the standard library's go/* packages, so cogarmvet carries
// its own copy of exactly that. The API shapes here (Analyzer, Pass,
// Diagnostic, Fact) deliberately mirror x/tools so the analyzers could be
// ported to the real framework by changing imports.
//
// Drivers live next door: unit.go implements the `go vet -vettool`
// protocol, standalone.go implements whole-module analysis via
// `go list -export`, and analysistest provides the golden-comment fixture
// harness the analyzer tests use.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -want comments.
	Name string
	// Doc is the one-paragraph description shown by cogarmvet help.
	Doc string
	// FactTypes lists the fact value types this analyzer may export or
	// import. Each must be a pointer to a gob-encodable struct; an
	// analyzer that declares no fact types cannot use facts.
	FactTypes []Fact
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Fact is a serializable datum attached to a package-level object (for
// cogarmvet: functions and methods) by one package's analysis and visible
// to the analyses of importing packages. Implementations must be pointers
// and gob-encodable.
type Fact interface{ AFact() }

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name; drivers fill it in.
	Analyzer string
}

// Pass carries one analyzer's view of one package: syntax, types, and the
// fact store. The driver constructs it; Run inspects and reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// allowed reports whether a //cogarm:allow directive for this analyzer
	// covers pos. The driver wires it up; Report already filters through it,
	// but analyzers with flow-on behavior (zeroalloc pulling callees into
	// its transitive closure) consult it directly via IsAllowed to stop the
	// propagation, not just the message.
	allowed func(pos token.Pos) bool

	store *FactStore
}

// IsAllowed reports whether a suppression directive covers pos for this
// pass's analyzer.
func (p *Pass) IsAllowed(pos token.Pos) bool {
	return p.allowed != nil && p.allowed(pos)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, making it visible to this
// package's importers. obj must belong to the package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.store != nil {
		p.store.export(p.Analyzer, obj, fact)
	}
}

// ImportObjectFact reports whether a fact of ptr's concrete type has been
// attached to obj — by this pass (same package) or by the analysis of the
// package that declares obj — and if so copies it into ptr.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.store == nil {
		return false
	}
	return p.store.lookup(p.Analyzer, obj, ptr)
}
