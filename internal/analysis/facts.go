package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"io"
	"sort"
)

// FactStore holds object facts during a driver run. In the vettool
// protocol one store is loaded from the fact files of the package's
// dependencies (Config.PackageVetx), populated further by the analyzers,
// and written back out (Config.VetxOutput); the standalone and test
// drivers keep a single in-memory store across the whole package graph.
//
// Keys are name-based, not identity-based: a fact is addressed by
// (analyzer, package path, object signature, fact type), where the object
// signature is objectKey's stable rendering ("Fn", "(T).M", "(*T).M").
// That makes a fact written while type-checking a package from source
// resolvable later against the same object re-imported from export data,
// which object identity would not survive.
type FactStore struct {
	m map[factKey][]byte
}

type factKey struct {
	analyzer string
	pkg      string
	obj      string
	typ      string
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	Analyzer string
	Pkg      string
	Obj      string
	Type     string
	Data     []byte
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[factKey][]byte{}} }

// objectKey renders a package-level function or method as a stable
// package-relative signature: "Fn" for functions, "(T).M" / "(*T).M" for
// methods (including interface methods). Non-functions key by bare name.
func objectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return "(" + recvKey(sig.Recv().Type()) + ")." + fn.Name()
}

// recvKey renders a receiver type without its package qualifier.
func recvKey(t types.Type) string {
	switch t := t.(type) {
	case *types.Pointer:
		return "*" + recvKey(t.Elem())
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return recvKey(types.Unalias(t))
	case *types.Interface:
		return "interface"
	default:
		return t.String()
	}
}

func factType(f Fact) string { return fmt.Sprintf("%T", f) }

func (s *FactStore) export(a *Analyzer, obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analysis: encoding %s fact %T: %v", a.Name, fact, err))
	}
	s.m[factKey{a.Name, obj.Pkg().Path(), objectKey(obj), factType(fact)}] = buf.Bytes()
}

func (s *FactStore) lookup(a *Analyzer, obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	data, ok := s.m[factKey{a.Name, obj.Pkg().Path(), objectKey(obj), factType(ptr)}]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(ptr); err != nil {
		panic(fmt.Sprintf("analysis: decoding %s fact %T: %v", a.Name, ptr, err))
	}
	return true
}

// Encode writes every fact in the store to w. Facts imported from
// dependencies are re-exported, so a consumer only needs the fact files of
// its direct imports to see the whole transitive closure.
func (s *FactStore) Encode(w io.Writer) error {
	recs := make([]factRecord, 0, len(s.m))
	for k, v := range s.m {
		recs = append(recs, factRecord{k.analyzer, k.pkg, k.obj, k.typ, v})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	return gob.NewEncoder(w).Encode(recs)
}

// Decode merges the facts serialized in r into the store.
func (s *FactStore) Decode(r io.Reader) error {
	var recs []factRecord
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	for _, rec := range recs {
		s.m[factKey{rec.Analyzer, rec.Pkg, rec.Obj, rec.Type}] = rec.Data
	}
	return nil
}
