package suite_test

import (
	"strings"
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/suite"
)

// TestModuleClean is the meta-test behind the CI gate: the whole module —
// the annotated hot-path set included — must pass every analyzer with zero
// diagnostics. A regression that slips an allocation into a
// //cogarm:zeroalloc kernel, drops a telemetry nil guard, or blocks under
// a shard lock fails here (and in the vettool CI job) before any bench
// notices.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole module; skipped in -short runs")
	}
	var out strings.Builder
	n, err := analysis.RunStandalone([]string{"cognitivearm/..."}, suite.Analyzers, &out)
	if err != nil {
		t.Fatalf("standalone driver: %v", err)
	}
	if n != 0 {
		t.Errorf("module is not vet-clean: %d diagnostics\n%s", n, out.String())
	}
}
