// Package suite is the single registry of cogarmvet analyzers, shared by
// cmd/cogarmvet and the self-check test so the binary and CI can never
// disagree about what is enforced.
package suite

import (
	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/atomicfield"
	"cognitivearm/internal/analysis/nolockblock"
	"cognitivearm/internal/analysis/obsguard"
	"cognitivearm/internal/analysis/quantsafe"
	"cognitivearm/internal/analysis/walsafe"
	"cognitivearm/internal/analysis/zeroalloc"
)

// Analyzers is every invariant cogarmvet enforces, in reporting order.
var Analyzers = []*analysis.Analyzer{
	zeroalloc.Analyzer,
	atomicfield.Analyzer,
	nolockblock.Analyzer,
	obsguard.Analyzer,
	quantsafe.Analyzer,
	walsafe.Analyzer,
}
