package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"runtime"
	"sort"
)

// Unit is one parsed, type-checked package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ParseFiles parses the named Go source files with comments retained
// (annotations live in comments, so every driver must keep them).
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks files as the package at importPath, resolving
// imports through imp. goVersion may be empty ("use the toolchain's
// language version").
func TypeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer, goVersion string) (*Unit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
		// Report only the first error: one cause is enough to explain a
		// failed unit, and later errors are usually cascades.
	}
	pkg, err := cfg.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// RunAnalyzers runs each analyzer over the unit, sharing store for facts,
// and returns the diagnostics sorted by position then message. Diagnostics
// at lines the source waives via //cogarm:allow are dropped here, so every
// analyzer honours suppression identically; malformed suppressions are
// reported as diagnostics of the pseudo-analyzer "cogarmvet".
func RunAnalyzers(u *Unit, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	supp := FileSuppressions(u.Fset, u.Files, func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			store:     store,
		}
		pass.allowed = func(pos token.Pos) bool { return supp.Allowed(a.Name, pos) }
		pass.Report = func(d Diagnostic) {
			if supp.Allowed(a.Name, d.Pos) {
				return
			}
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
