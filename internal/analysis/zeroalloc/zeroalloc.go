// Package zeroalloc rejects heap-allocating constructs in functions
// annotated //cogarm:zeroalloc — the serving stack's hot paths, whose
// steady-state allocation-freedom PRs 5–6 established and whose regression
// the AllocsPerRun benches catch only for the paths they drive. The
// analyzer makes the property structural: every construct the compiler
// must heap-allocate (or that this checker cannot prove it will not) is a
// diagnostic, and the check is transitive — a callee reached from an
// annotated function is held to the same standard, so an edit deep in a
// kernel fails vet rather than the allocation bench.
//
// # What is flagged
//
//   - make, new, slice and map literals, &composite{} (escape-prone)
//   - append whose destination is not the slice it extends (the amortized
//     arena-growth patterns x = append(x, ...), x = append(x[:0], ...)
//     and `return append(dst, ...)` for a parameter-owned dst are allowed)
//   - closures that capture variables, go statements, defer inside loops
//   - string concatenation and string ↔ []byte/[]rune conversions
//   - map writes
//   - boxing a non-pointer-shaped value into an interface (explicit
//     conversions, call arguments — fmt's ...any included — assignments
//     and returns)
//   - method values (x.M used as a value creates a closure)
//   - calls whose target is not verifiably allocation-free: dynamic calls
//     through function values, and calls to functions that are neither
//     annotated //cogarm:zeroalloc (in-package: transitively checked;
//     cross-package: carrying the verified fact), nor on the allowlist of
//     known-clean runtime/stdlib operations
//
// panic's argument subtree is exempt: a panicking tick is fatal, not steady
// state, so the message (typically fmt.Sprintf) may allocate on its way out.
//
// Cold-path exceptions (lazy arena growth, eviction handling) are waived
// line-by-line with //cogarm:allow zeroalloc -- <reason>, which keeps
// every deviation grep-able and reviewed.
package zeroalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"cognitivearm/internal/analysis"
)

// VerifiedFact marks a function whose body the analyzer has checked (or an
// annotated interface method, whose implementations are the checked
// bodies). Importing packages may call fact-carrying functions from their
// own zero-alloc paths.
type VerifiedFact struct{}

func (*VerifiedFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "zeroalloc",
	Doc:       "reject heap-allocating constructs in //cogarm:zeroalloc functions, transitively",
	FactTypes: []analysis.Fact{(*VerifiedFact)(nil)},
	Run:       run,
}

// allowPkgs are packages whose exported functions are wholesale
// allocation-free (pure value math and atomics).
var allowPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"unsafe":      true,
}

// allowFuncs are individually audited stdlib operations that do not
// allocate. Lock operations appear here because zeroalloc is only about
// allocation — blocking under locks is nolockblock's business.
var allowFuncs = map[string]bool{
	"time.Now":                    true,
	"time.Since":                  true,
	"time.(Time).Sub":             true,
	"time.(Time).Unix":            true,
	"time.(Time).UnixNano":        true,
	"time.(Time).IsZero":          true,
	"time.(Time).Before":          true,
	"time.(Time).After":           true,
	"time.(Duration).Nanoseconds": true,
	"time.(Duration).Seconds":     true,
	"sync.(*Mutex).Lock":          true,
	"sync.(*Mutex).Unlock":        true,
	"sync.(*Mutex).TryLock":       true,
	"sync.(*RWMutex).Lock":        true,
	"sync.(*RWMutex).Unlock":      true,
	"sync.(*RWMutex).RLock":       true,
	"sync.(*RWMutex).RUnlock":     true,
	"sync.(*WaitGroup).Add":       true,
	"sync.(*WaitGroup).Done":      true,
	"sync.(*WaitGroup).Wait":      true,
}

type checker struct {
	pass *analysis.Pass
	// cur is the declaration currently being checked.
	cur *ast.FuncDecl
	// decls maps every function object declared in this package to its
	// declaration.
	decls map[*types.Func]*ast.FuncDecl
	// annotated holds the //cogarm:zeroalloc roots (function declarations
	// and interface methods).
	annotated map[*types.Func]bool
	// queued tracks functions scheduled for checking; reason names the
	// annotated root that pulled each transitive callee in.
	queued map[*types.Func]bool
	reason map[*types.Func]string
	list   []*types.Func
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		annotated: map[*types.Func]bool{},
		queued:    map[*types.Func]bool{},
		reason:    map[*types.Func]string{},
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				c.decls[fn] = d
				if analysis.HasDirective(d.Doc, "zeroalloc") {
					c.annotated[fn] = true
				}
			case *ast.GenDecl:
				c.collectInterfaceAnnotations(d)
			}
		}
	}

	for fn := range c.annotated {
		pass.ExportObjectFact(fn, &VerifiedFact{})
		if d := c.decls[fn]; d != nil && d.Body != nil {
			c.enqueue(fn, "")
		}
	}
	// The queue grows as checking discovers same-package callees.
	for i := 0; i < len(c.list); i++ {
		c.check(c.list[i])
	}
	return nil
}

// collectInterfaceAnnotations marks annotated interface methods: calling
// one from a zero-alloc path is legal, the implementations carry the
// obligation (and are themselves annotated at their declarations).
func (c *checker) collectInterfaceAnnotations(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, m := range it.Methods.List {
			if len(m.Names) == 0 {
				continue
			}
			if analysis.HasDirective(m.Doc, "zeroalloc") || analysis.HasDirective(m.Comment, "zeroalloc") {
				if fn, _ := c.pass.TypesInfo.Defs[m.Names[0]].(*types.Func); fn != nil {
					c.annotated[fn] = true
					c.pass.ExportObjectFact(fn, &VerifiedFact{})
				}
			}
		}
	}
}

func (c *checker) enqueue(fn *types.Func, via string) {
	if c.queued[fn] {
		return
	}
	c.queued[fn] = true
	c.reason[fn] = via
	c.list = append(c.list, fn)
	c.pass.ExportObjectFact(fn, &VerifiedFact{})
}

// describe names fn in diagnostics, including how it got onto the
// zero-alloc path if it is not itself annotated.
func (c *checker) describe(fn *types.Func) string {
	key := funcKey(fn)
	if via := c.reason[fn]; via != "" {
		return fmt.Sprintf("%s (on the zero-alloc path via %s)", key, via)
	}
	return key
}

func funcKey(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return "(" + recvString(recv.Type()) + ")." + fn.Name()
	}
	return fn.Name()
}

func recvString(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		return "*" + recvString(p.Elem())
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func (c *checker) check(fn *types.Func) {
	decl := c.decls[fn]
	if decl == nil || decl.Body == nil {
		c.pass.Reportf(fn.Pos(), "zero-alloc function %s has no Go body to verify", c.describe(fn))
		return
	}
	where := c.describe(fn)
	info := c.pass.TypesInfo
	c.cur = decl

	analysis.WalkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(info, n); capt != "" {
				c.pass.Reportf(n.Pos(), "closure captures %s and heap-allocates in %s", capt, where)
			}
			return false // the literal's body runs only via a (flagged) dynamic call
		case *ast.CallExpr:
			if obj := builtinOf(info, n.Fun); obj != nil && obj.Name() == "panic" {
				// A panicking tick is fatal, not steady state: the argument
				// (typically fmt.Sprintf for a shape-mismatch message) may
				// allocate freely on its way out.
				return false
			}
			c.checkCall(n, stack, where)
		case *ast.CompositeLit:
			c.checkCompositeLit(n, stack, where)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.Types[n.X]; ok && isString(t.Type) {
					c.pass.Reportf(n.Pos(), "string concatenation allocates in %s", where)
				}
			}
		case *ast.AssignStmt:
			c.checkAssign(n, where)
		case *ast.ReturnStmt:
			c.checkReturn(n, stack, where)
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in %s", where)
		case *ast.DeferStmt:
			if inLoop(stack) {
				c.pass.Reportf(n.Pos(), "defer inside a loop heap-allocates in %s", where)
			}
		case *ast.SelectorExpr:
			c.checkMethodValue(n, stack, where)
		}
		return true
	})
}

// checkCall classifies one call: builtin, conversion, static call, or
// dynamic call, plus interface boxing of its arguments.
func (c *checker) checkCall(call *ast.CallExpr, stack []ast.Node, where string) {
	info := c.pass.TypesInfo

	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type, where)
		return
	}

	// Builtin?
	if obj := builtinOf(info, call.Fun); obj != nil {
		switch obj.Name() {
		case "make":
			c.pass.Reportf(call.Pos(), "make allocates in %s", where)
		case "new":
			c.pass.Reportf(call.Pos(), "new allocates in %s", where)
		case "append":
			c.checkAppend(call, stack, where)
		case "print", "println":
			c.pass.Reportf(call.Pos(), "%s boxes its arguments and allocates in %s", obj.Name(), where)
		}
		return
	}

	callee := analysis.Callee(info, call)
	if callee == nil {
		c.pass.Reportf(call.Pos(), "call through a function value cannot be verified zero-alloc in %s", where)
	} else {
		c.checkCallee(call, callee.(*types.Func), where)
	}
	c.checkArgBoxing(call, where)
}

func (c *checker) checkCallee(call *ast.CallExpr, fn *types.Func, where string) {
	if fn.Pkg() == nil { // unsafe builtins, error.Error, etc.
		return
	}
	// An allowed call site must also stop transitive propagation, not just
	// the message — the waived callee (a cold fallback like tensor.New on
	// the nil-workspace path) is deliberately outside the zero-alloc closure.
	if c.pass.IsAllowed(call.Pos()) {
		return
	}
	// Instantiated generic methods resolve to fresh objects; declarations,
	// annotations, and facts all hang off the generic origin.
	fn = fn.Origin()
	if fn.Pkg() == c.pass.Pkg {
		if c.annotated[fn] || c.queued[fn] {
			return
		}
		if allowed(fn) {
			return
		}
		if d := c.decls[fn]; d != nil && d.Body != nil {
			c.enqueue(fn, where)
			return
		}
		if isInterfaceMethod(fn) {
			c.pass.Reportf(call.Pos(), "call to interface method %s.%s, which is not annotated //cogarm:zeroalloc, in %s",
				fn.Pkg().Name(), funcKey(fn), where)
			return
		}
		c.pass.Reportf(call.Pos(), "call to %s, which has no Go body to verify, in %s", funcKey(fn), where)
		return
	}
	if allowed(fn) {
		return
	}
	if c.pass.ImportObjectFact(fn, &VerifiedFact{}) {
		return
	}
	c.pass.Reportf(call.Pos(), "call to %s.%s, which is not verified zero-alloc (annotate it //cogarm:zeroalloc or allow this site), in %s",
		fn.Pkg().Path(), funcKey(fn), where)
}

func allowed(fn *types.Func) bool {
	if allowPkgs[fn.Pkg().Path()] {
		return true
	}
	return allowFuncs[analysis.CalleeKey(fn)]
}

func isInterfaceMethod(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// checkAppend allows the amortized arena patterns and flags the rest.
func (c *checker) checkAppend(call *ast.CallExpr, stack []ast.Node, where string) {
	if len(call.Args) == 0 {
		return
	}
	dst := appendBase(call.Args[0])
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) / x = append(x[:0], ...): amortized
			// growth of a reused buffer.
			if len(parent.Lhs) == 1 && analysis.SameChain(c.pass.TypesInfo, parent.Lhs[0], dst) {
				return
			}
		case *ast.ReturnStmt:
			// return append(dst, ...) where dst is a parameter: the
			// caller owns the buffer and its reuse.
			if root, ok := ast.Unparen(dst).(*ast.Ident); ok {
				if v, ok := c.pass.TypesInfo.ObjectOf(root).(*types.Var); ok && c.isParam(v) {
					return
				}
			}
		}
	}
	c.pass.Reportf(call.Pos(), "append outside the x = append(x, ...) reuse pattern allocates in %s", where)
}

// appendBase unwraps append's destination to the reused buffer expression:
// append(x[:0], ...) and append(x[:n], ...) grow x itself.
func appendBase(e ast.Expr) ast.Expr {
	if s, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}

// isParam reports whether v is a parameter of the declaration being
// checked.
func (c *checker) isParam(v *types.Var) bool {
	if c.cur == nil || c.cur.Type.Params == nil {
		return false
	}
	for _, f := range c.cur.Type.Params.List {
		for _, name := range f.Names {
			if c.pass.TypesInfo.Defs[name] == v {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit, stack []ast.Node, where string) {
	t, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch t.Type.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates in %s", where)
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in %s", where)
	default:
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				c.pass.Reportf(lit.Pos(), "&composite literal escapes to the heap in %s", where)
			}
		}
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type, where string) {
	if len(call.Args) != 1 {
		return
	}
	from, ok := c.pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	switch {
	case isString(to) && !isString(from.Type) && !isUntypedConst(from):
		if isByteOrRuneSlice(from.Type) || isRuneOrByte(from.Type) {
			c.pass.Reportf(call.Pos(), "conversion to string allocates in %s", where)
		}
	case isByteOrRuneSlice(to) && isString(from.Type):
		c.pass.Reportf(call.Pos(), "conversion of string to byte/rune slice allocates in %s", where)
	default:
		c.reportBoxing(call.Pos(), to, from.Type, "conversion", where)
	}
}

// checkArgBoxing flags non-pointer-shaped values passed where the callee
// takes an interface (fmt-style ...any included) — each such argument is a
// heap-allocated box.
func (c *checker) checkArgBoxing(call *ast.CallExpr, where string) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice boxes nothing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at, ok := info.Types[arg]
		if !ok {
			continue
		}
		c.reportBoxing(arg.Pos(), pt, at.Type, "argument", where)
	}
}

func (c *checker) checkAssign(n *ast.AssignStmt, where string) {
	info := c.pass.TypesInfo
	for i, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t, ok := info.Types[idx.X]; ok {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					c.pass.Reportf(lhs.Pos(), "map write may allocate in %s", where)
				}
			}
		}
		if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
			lt, ok1 := info.Types[lhs]
			rt, ok2 := info.Types[n.Rhs[i]]
			if ok1 && ok2 {
				c.reportBoxing(n.Rhs[i].Pos(), lt.Type, rt.Type, "assignment", where)
			}
		}
	}
}

func (c *checker) checkReturn(n *ast.ReturnStmt, stack []ast.Node, where string) {
	sig := enclosingSignature(c.pass.TypesInfo, stack)
	if sig == nil && c.cur != nil {
		// The walk is rooted at the body, so a top-level return has no
		// FuncDecl on the stack — use the checked function's signature.
		if fn, ok := c.pass.TypesInfo.Defs[c.cur.Name].(*types.Func); ok {
			sig = fn.Type().(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		if rt, ok := c.pass.TypesInfo.Types[res]; ok {
			c.reportBoxing(res.Pos(), sig.Results().At(i).Type(), rt.Type, "return", where)
		}
	}
}

// checkMethodValue flags x.M used as a value (not immediately called),
// which materializes a bound-method closure.
func (c *checker) checkMethodValue(sel *ast.SelectorExpr, stack []ast.Node, where string) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return
		}
	}
	c.pass.Reportf(sel.Pos(), "method value %s allocates a bound closure in %s", sel.Sel.Name, where)
}

// reportBoxing flags storing a non-pointer-shaped concrete value into an
// interface.
func (c *checker) reportBoxing(pos token.Pos, to, from types.Type, context, where string) {
	if to == nil || from == nil {
		return
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return
	}
	if _, isIface := from.Underlying().(*types.Interface); isIface {
		return
	}
	if analysis.IsPointerLike(from) {
		return
	}
	if b, ok := from.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		if b.Kind() == types.UntypedNil {
			return
		}
	}
	c.pass.Reportf(pos, "%s boxes %s into %s and allocates in %s", context, from, to, where)
}

// capturedVar returns the name of a variable the literal captures from an
// enclosing function, or "" if it captures nothing (a static closure).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		// A variable declared outside the literal but inside some
		// function scope (not package scope) is a capture.
		if v.Pkg() != nil && v.Parent() != v.Pkg().Scope() && !within(lit, v.Pos()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

func builtinOf(info *types.Info, fun ast.Expr) *types.Builtin {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := info.Uses[id].(*types.Builtin)
	return b
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedConst(tv types.TypeAndValue) bool { return tv.Value != nil }

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isRuneOrByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// enclosingSignature finds the signature of the innermost enclosing
// function (decl or literal) on the stack.
func enclosingSignature(info *types.Info, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			if fn, ok := info.Defs[f.Name].(*types.Func); ok {
				return fn.Type().(*types.Signature)
			}
			return nil
		case *ast.FuncLit:
			if tv, ok := info.Types[f]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					return sig
				}
			}
			return nil
		}
	}
	return nil
}
