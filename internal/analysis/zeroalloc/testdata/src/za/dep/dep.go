// Package dep exercises zeroalloc's cross-package facts: Clean carries a
// VerifiedFact, Dirty does not.
package dep

var sink []int

// Clean is verified allocation-free and callable from importers' hot paths.
//
//cogarm:zeroalloc
func Clean(x int) int { return x * 2 }

// Dirty allocates and is not annotated.
func Dirty(n int) []int { return make([]int, n) }
