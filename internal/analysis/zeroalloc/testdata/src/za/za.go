// Fixture for zeroalloc: allocating constructs inside //cogarm:zeroalloc
// functions, the amortized-reuse patterns that are allowed, transitive
// in-package propagation, cross-package facts, and line suppressions.
package za

import "za/dep"

type state struct {
	buf   []int
	m     map[string]int
	iface any
}

//cogarm:zeroalloc
func allocators(s *state, n int) {
	_ = make([]int, n)   // want `zeroalloc: make allocates`
	_ = new(int)         // want `zeroalloc: new allocates`
	_ = []int{1, 2}      // want `zeroalloc: slice literal allocates`
	_ = map[string]int{} // want `zeroalloc: map literal allocates`
	_ = &state{}         // want `zeroalloc: &composite literal escapes`
	s.m["k"] = 1         // want `zeroalloc: map write may allocate`
	go func() {}()       // want `zeroalloc: go statement allocates` `zeroalloc: call through a function value`
	for i := 0; i < n; i++ {
		defer println() // want `zeroalloc: defer inside a loop heap-allocates` `zeroalloc: println boxes its arguments`
	}
}

//cogarm:zeroalloc
func appends(s *state, extra []int, v int) []int {
	s.buf = append(s.buf, v)     // reuse pattern: fine
	s.buf = append(s.buf[:0], v) // truncate-and-refill: fine
	s.buf = append(extra, v)     // want `zeroalloc: append outside the x = append\(x, ...\) reuse pattern`
	return append(extra, v)      // parameter-owned dst: fine
}

//cogarm:zeroalloc
func strsAndBoxes(s *state, a, b string, n int) {
	_ = a + b           // want `zeroalloc: string concatenation allocates`
	_ = []byte(a)       // want `zeroalloc: conversion of string to byte/rune slice allocates`
	_ = string(rune(n)) // want `zeroalloc: conversion to string allocates`
	s.iface = n         // want `zeroalloc: assignment boxes int into any`
	s.iface = &s.buf    // pointers are already pointer-shaped: fine
}

//cogarm:zeroalloc
func dynamic(f func() int, s *state) int {
	g := s.get // want `zeroalloc: method value get allocates a bound closure`
	_ = g
	return f() // want `zeroalloc: call through a function value cannot be verified`
}

func (s *state) get() int { return len(s.buf) }

// helper is pulled onto the zero-alloc path transitively by caller below;
// the diagnostic lands here, naming the root.
func helper(n int) []int {
	return make([]int, n) // want `zeroalloc: make allocates in helper \(on the zero-alloc path via caller\)`
}

//cogarm:zeroalloc
func caller(n int) []int {
	return helper(n)
}

//cogarm:zeroalloc
func crossPackage(x, n int) {
	_ = dep.Clean(x)
	_ = dep.Dirty(n) // want `zeroalloc: call to za/dep.Dirty, which is not verified zero-alloc`
}

//cogarm:zeroalloc
func suppressed(n int) []int {
	//cogarm:allow zeroalloc -- fixture: warm-up path outside steady state
	return make([]int, n)
}

//cogarm:zeroalloc
func panics(n int) {
	if n < 0 {
		// panic's argument subtree may allocate: the tick is already dead.
		panic("bad n: " + string(rune(n)))
	}
}

type fused interface {
	//cogarm:zeroalloc
	Tick() int
}

type raw interface {
	Tick() int
}

//cogarm:zeroalloc
func viaInterface(f fused, r raw) int {
	if f.Tick() > 0 { // annotated interface method: implementations carry the proof
		return r.Tick() // want `zeroalloc: call to interface method za.\(raw\).Tick, which is not annotated`
	}
	return 0
}
