package zeroalloc_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/zeroalloc"
)

// TestFixtures pins the analyzer's positive and negative behaviour: za
// holds the flagged constructs and allowed reuse patterns, za/dep the
// cross-package fact flow (named so its own absence of diagnostics is
// asserted too).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{zeroalloc.Analyzer}, "za", "za/dep")
}
