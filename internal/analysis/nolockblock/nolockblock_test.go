package nolockblock_test

import (
	"testing"

	"cognitivearm/internal/analysis"
	"cognitivearm/internal/analysis/analysistest"
	"cognitivearm/internal/analysis/nolockblock"
)

// TestFixtures covers lock spans (defer-held, per-arm release), direct and
// transitive blocking, cross-package BlocksFact flow (package b), nested
// and re-acquired locks, goroutine scoping, and //cogarm:allow waivers.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{nolockblock.Analyzer},
		"cognitivearm/nlbfix/a", "cognitivearm/nlbfix/b")
}
