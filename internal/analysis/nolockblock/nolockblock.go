// Package nolockblock enforces the repo's leaf-lock discipline: a
// sync.Mutex/RWMutex critical section must not block. While a lock is held
// (from x.Lock()/x.RLock() to the matching x.Unlock()/x.RUnlock() in the
// same statement list, or to the end of the scope when the unlock is
// deferred) the analyzer flags:
//
//   - channel sends, receives, range-over-channel, and selects without a
//     default clause;
//   - calls to functions that (transitively) sleep, wait, or perform I/O —
//     time.Sleep, sync.WaitGroup.Wait, sync.Cond.Wait, anything in net,
//     os, os/exec, or io;
//   - acquiring a second lock (direct, syntactic acquisitions only — a
//     callee taking its own short leaf lock, like shardMetrics under the
//     shard lock, is the sanctioned pattern and is not reported).
//
// Blocking-ness propagates through calls: in-package via a fixpoint over
// function bodies, across packages via BlocksFact object facts, so a
// helper that hides a Close() three frames down is still caught at the
// lock site. Function literals are analyzed as independent scopes — a
// goroutine body does not run under its creator's lock.
//
// Intentional violations (a shutdown path that serializes under a lock by
// design) are waived per line with //cogarm:allow nolockblock -- <reason>.
package nolockblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cognitivearm/internal/analysis"
)

// BlocksFact marks an exported function as potentially blocking, with a
// human-readable reason chain ("calls X, which sleeps").
type BlocksFact struct{ Reason string }

func (*BlocksFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "nolockblock",
	Doc:       "flag blocking operations and nested lock acquisitions inside mutex critical sections",
	FactTypes: []analysis.Fact{(*BlocksFact)(nil)},
	Run:       run,
}

// leafBlockers are stdlib calls that block by themselves.
var leafBlockers = map[string]string{
	"time.Sleep":             "sleeps",
	"sync.(*WaitGroup).Wait": "waits on a WaitGroup",
	"sync.(*Cond).Wait":      "waits on a Cond",
}

// nonBlockingOS are os-package calls that only touch the process's own
// state, not the filesystem.
var nonBlockingOS = map[string]bool{
	"os.Getenv":          true,
	"os.LookupEnv":       true,
	"os.Environ":         true,
	"os.Getpid":          true,
	"os.Getppid":         true,
	"os.Getuid":          true,
	"os.Geteuid":         true,
	"os.Getgid":          true,
	"os.Getegid":         true,
	"os.Getpagesize":     true,
	"os.IsNotExist":      true,
	"os.IsExist":         true,
	"os.IsPermission":    true,
	"os.IsTimeout":       true,
	"os.IsPathSeparator": true,
	"os.TempDir":         true,
}

func blockingPkg(path string) bool {
	switch {
	case path == "net" || strings.HasPrefix(path, "net/"):
		return true
	case path == "os" || path == "os/exec":
		return true
	case path == "io":
		return true
	}
	return false
}

type checker struct {
	pass      *analysis.Pass
	order     []*types.Func // declaration order, for deterministic fixpoint
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		summaries: map[*types.Func]string{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.order = append(c.order, fn)
			c.decls[fn] = fd
		}
	}

	// Fixpoint over blocking summaries: a function blocks if its body
	// contains a blocking construct or calls something already known to
	// block. Declaration-order iteration keeps the reported reason chains
	// deterministic across runs (go vet caches on output).
	for changed := true; changed; {
		changed = false
		for _, fn := range c.order {
			if _, done := c.summaries[fn]; done {
				continue
			}
			var reason string
			c.findBlocking(c.decls[fn].Body, func(_ token.Pos, r string) {
				if reason == "" {
					reason = r
				}
			})
			if reason != "" {
				c.summaries[fn] = reason
				changed = true
			}
		}
	}
	for _, fn := range c.order {
		if r, ok := c.summaries[fn]; ok {
			pass.ExportObjectFact(fn, &BlocksFact{Reason: r})
		}
	}

	// Lock-span pass: every function body and every function literal is an
	// independent scope (a closure does not run under its creator's lock).
	for _, fn := range c.order {
		body := c.decls[fn].Body
		c.scanList(body.List, nil)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.scanList(lit.Body.List, nil)
			}
			return true
		})
	}
	return nil
}

// callReason returns why calling call would block, or "".
func (c *checker) callReason(call *ast.CallExpr) string {
	obj := analysis.Callee(c.pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	fn = fn.Origin() // summaries and facts hang off the generic origin
	if fn.Pkg() == c.pass.Pkg {
		if r, ok := c.summaries[fn]; ok {
			return fmt.Sprintf("calls %s, which %s", fn.Name(), r)
		}
		return ""
	}
	key := analysis.CalleeKey(fn)
	if r, ok := leafBlockers[key]; ok {
		return r
	}
	path := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// An interface method says nothing by itself: hash.Hash64 promotes
		// io.Writer.Write but writes to memory. Attribute the call to the
		// package that declared the interface the receiver is typed as —
		// io.Closer is I/O, hash.Hash64 is not.
		path = ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if n := analysis.NamedBase(c.pass.TypesInfo.TypeOf(sel.X)); n != nil && n.Obj().Pkg() != nil {
				path = n.Obj().Pkg().Path()
			}
		}
	}
	if blockingPkg(path) && !nonBlockingOS[key] {
		return fmt.Sprintf("performs I/O (%s)", key)
	}
	// Blocking summaries propagate only within this module. Under go vet
	// the analyzer also visits the stdlib, whose deepest chains bottom out
	// in runtime scheduling (mallocgc can start a GC cycle that signals
	// its mark workers over a channel) — importing those facts would mark
	// essentially every function blocking. Stdlib behaviour is captured by
	// the curated leafBlockers/blockingPkg lists above instead.
	if moduleLocal(fn.Pkg().Path()) {
		var f BlocksFact
		if c.pass.ImportObjectFact(fn, &f) {
			return fmt.Sprintf("calls %s, which %s", key, f.Reason)
		}
	}
	return ""
}

// moduleLocal reports whether path is part of this repository's module.
func moduleLocal(path string) bool {
	return path == "cognitivearm" || strings.HasPrefix(path, "cognitivearm/")
}

// findBlocking walks n — skipping nested function literals and go
// statements, whose bodies run outside the current goroutine's locks — and
// reports every blocking construct.
func (c *checker) findBlocking(n ast.Node, report func(token.Pos, string)) {
	if n == nil {
		return
	}
	var inspect func(ast.Node)
	walk := func(n ast.Node) bool {
		switch x := n.(type) {
		case nil:
			return false
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			report(x.Arrow, "sends on a channel")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.OpPos, "receives from a channel")
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(x.For, "ranges over a channel")
				}
			}
		case *ast.SelectStmt:
			if !hasDefault(x) {
				report(x.Select, "waits in a select with no default")
			}
			// Clause bodies still execute here; the comm operations
			// themselves are covered by the select-level report (or are
			// non-blocking when a default exists).
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						inspect(st)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if r := c.callReason(x); r != "" {
				report(x.Lparen, r)
			}
		}
		return true
	}
	inspect = func(n ast.Node) { ast.Inspect(n, walk) }
	inspect(n)
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

type lockKind int

const (
	opNone lockKind = iota
	opLock
	opUnlock
)

// lockOp recognizes x.Lock()/RLock()/Unlock()/RUnlock() on a
// sync.Mutex/RWMutex reachable through a plain ident/selector chain, and
// returns the chain (the lock's identity for span matching).
func (c *checker) lockOp(call *ast.CallExpr) (ast.Expr, lockKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	fn, ok := analysis.Callee(c.pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, opNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, opNone
	}
	recv := analysis.NamedBase(sig.Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return nil, opNone
	}
	var kind lockKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone
	}
	if analysis.ChainOf(sel.X) == nil {
		return nil, opNone
	}
	return sel.X, kind
}

type heldLock struct {
	expr ast.Expr
	pos  token.Pos
}

// scanList walks a statement list tracking which locks are held. Nested
// blocks get a copy of the held set, so a conditional unlock inside an if
// arm releases the lock for that arm only.
func (c *checker) scanList(list []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if chain, op := c.lockOp(call); chain != nil {
					switch op {
					case opLock:
						c.reportNested(call, chain, held)
						held = append(held, heldLock{chain, call.Pos()})
					case opUnlock:
						held = c.release(held, chain)
					}
					continue
				}
			}
			c.checkHeld(s, held)
		case *ast.DeferStmt:
			if chain, op := c.lockOp(s.Call); chain != nil && op == opUnlock {
				// Deferred unlock: the lock stays held to the end of the
				// scope, which is already how the span is modeled.
				continue
			}
			c.checkHeld(s.Call, held)
		case *ast.BlockStmt:
			c.scanList(s.List, held)
		case *ast.IfStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Cond, held)
			c.scanList(s.Body.List, held)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				c.scanList(e.List, held)
			case *ast.IfStmt:
				c.scanList([]ast.Stmt{e}, held)
			}
		case *ast.ForStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Cond, held)
			c.checkHeld(s.Post, held)
			c.scanList(s.Body.List, held)
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						c.reportHeld(s.For, "ranges over a channel", held)
					}
				}
				c.checkHeld(s.X, held)
			}
			c.scanList(s.Body.List, held)
		case *ast.SelectStmt:
			if len(held) > 0 && !hasDefault(s) {
				c.reportHeld(s.Select, "waits in a select with no default", held)
			}
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					c.scanList(cc.Body, held)
				}
			}
		case *ast.SwitchStmt:
			c.checkHeld(s.Init, held)
			c.checkHeld(s.Tag, held)
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						c.checkHeld(e, held)
					}
					c.scanList(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c.scanList(cc.Body, held)
				}
			}
		case *ast.LabeledStmt:
			c.scanList([]ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// Spawning is non-blocking and the goroutine body does not hold
			// this goroutine's locks.
		default:
			c.checkHeld(stmt, held)
		}
	}
}

// checkHeld reports blocking constructs in n when at least one lock is held.
func (c *checker) checkHeld(n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	c.findBlocking(n, func(pos token.Pos, reason string) {
		c.reportHeld(pos, reason, held)
	})
}

func (c *checker) reportHeld(pos token.Pos, reason string, held []heldLock) {
	h := held[len(held)-1]
	c.pass.Reportf(pos, "%s while %s is held (locked at %s)",
		reason, types.ExprString(h.expr), c.pass.Fset.Position(h.pos))
}

// reportNested flags acquiring a lock while another is already held.
func (c *checker) reportNested(call *ast.CallExpr, chain ast.Expr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	for _, h := range held {
		if analysis.SameChain(c.pass.TypesInfo, h.expr, chain) {
			c.pass.Reportf(call.Pos(), "re-acquires %s, already held (locked at %s) — self-deadlock",
				types.ExprString(chain), c.pass.Fset.Position(h.pos))
			return
		}
	}
	h := held[len(held)-1]
	c.pass.Reportf(call.Pos(), "acquires %s while %s is held (locked at %s) — nested locks risk deadlock; keep critical sections leaf-only",
		types.ExprString(chain), types.ExprString(h.expr), c.pass.Fset.Position(h.pos))
}

// release removes the most recent held entry matching chain. An unlock of
// something not currently held (a conditional-path release) is ignored.
func (c *checker) release(held []heldLock, chain ast.Expr) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if analysis.SameChain(c.pass.TypesInfo, held[i].expr, chain) {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}
