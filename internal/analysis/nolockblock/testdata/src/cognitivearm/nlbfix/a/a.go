// Fixture for nolockblock: blocking operations and nested lock
// acquisitions inside mutex critical sections, including transitive
// in-package chains, cross-package facts, defer-held spans, and waivers.
package a

import (
	"net"
	"sync"
	"time"

	"cognitivearm/nlbfix/b"
)

type guarded struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	other sync.Mutex
	ch    chan int
	n     int
}

func direct(g *guarded) {
	g.mu.Lock()
	g.ch <- 1                    // want `nolockblock: sends on a channel while g\.mu is held`
	<-g.ch                       // want `nolockblock: receives from a channel while g\.mu is held`
	time.Sleep(time.Millisecond) // want `nolockblock: sleeps while g\.mu is held`
	g.mu.Unlock()
	<-g.ch // lock released: fine
}

func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	<-g.ch // want `nolockblock: receives from a channel while g\.mu is held`
	return g.n
}

func nested(g *guarded) {
	g.mu.Lock()
	g.other.Lock() // want `nolockblock: acquires g\.other while g\.mu is held`
	g.other.Unlock()
	g.mu.Lock() // want `nolockblock: re-acquires g\.mu, already held .* self-deadlock`
	g.mu.Unlock()
}

func conditional(g *guarded, flush bool) {
	g.rw.RLock()
	if flush {
		g.rw.RUnlock()
		<-g.ch // released on this arm: fine
		return
	}
	g.rw.RUnlock()
}

// sleepy blocks transitively; the in-package summary names the chain.
func sleepy() { time.Sleep(time.Second) }

func transitive(g *guarded) {
	g.mu.Lock()
	sleepy() // want `nolockblock: calls sleepy, which sleeps while g\.mu is held`
	g.mu.Unlock()
}

func crossPackage(g *guarded) {
	g.mu.Lock()
	_ = b.Fast(1) // verified non-blocking: fine
	b.Slow()      // want `nolockblock: calls cognitivearm/nlbfix/b\.Slow, which calls nap, which sleeps while g\.mu is held`
	g.mu.Unlock()
}

func goroutineBody(g *guarded) {
	g.mu.Lock()
	// The goroutine runs outside this critical section.
	go func() { <-g.ch }()
	g.mu.Unlock()
}

func waived(g *guarded) {
	g.mu.Lock()
	//cogarm:allow nolockblock -- fixture: documented single-waiter handoff
	<-g.ch
	g.mu.Unlock()
}

// links mirrors the replica-link shape: a conn registry guarded by a mutex.
// Writing to the network while holding it stalls every other linker behind
// one slow peer.
type links struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

func shipUnderLock(l *links, buf []byte) {
	l.mu.Lock()
	for _, c := range l.conns {
		c.Write(buf) // want `nolockblock: performs I/O .* while l\.mu is held`
	}
	l.mu.Unlock()
}

func shipOutsideLock(l *links, id string, buf []byte) error {
	l.mu.Lock()
	c := l.conns[id]
	l.mu.Unlock()
	if c == nil {
		return nil
	}
	_, err := c.Write(buf) // lock released: fine
	return err
}

func selectDefault(g *guarded) {
	g.mu.Lock()
	select { // non-blocking poll: fine
	case v := <-g.ch:
		g.n = v
	default:
	}
	select { // want `nolockblock: waits in a select with no default while g\.mu is held`
	case v := <-g.ch:
		g.n = v
	}
	g.mu.Unlock()
}
