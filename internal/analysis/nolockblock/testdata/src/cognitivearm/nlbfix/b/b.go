// Package b exercises nolockblock's cross-package BlocksFact: Slow blocks
// (transitively, through nap), Fast does not.
package b

import "time"

// Slow blocks: it sleeps via nap.
func Slow() { nap() }

func nap() { time.Sleep(time.Millisecond) }

// Fast is pure computation.
func Fast(x int) int { return x + 1 }
