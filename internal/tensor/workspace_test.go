package tensor

import "testing"

// TestWorkspaceRecyclesBuckets: after a Reset, identically sized requests
// must come back on the same backing arrays — the property the zero-alloc
// steady state rests on.
func TestWorkspaceRecyclesBuckets(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Floats(100)
	m := ws.Uninit(7, 9)
	is := ws.Ints(33)
	ws.Reset()
	b := ws.Floats(100)
	m2 := ws.Uninit(7, 9)
	is2 := ws.Ints(33)
	if &a[0] != &b[0] {
		t.Fatal("float slice not recycled across Reset")
	}
	if &m.Data[0] != &m2.Data[0] {
		t.Fatal("matrix backing not recycled across Reset")
	}
	if m != m2 {
		t.Fatal("matrix header not recycled across Reset")
	}
	if &is[0] != &is2[0] {
		t.Fatal("int slice not recycled across Reset")
	}
}

// TestWorkspaceZeroing: Floats/Ints/Zeros must be zero even when the bucket
// hands back dirty memory from the previous cycle.
func TestWorkspaceZeroing(t *testing.T) {
	ws := NewWorkspace()
	f := ws.Floats(16)
	for i := range f {
		f[i] = 1e9
	}
	z := ws.Zeros(2, 4)
	z.Fill(7)
	i := ws.Ints(5)
	for j := range i {
		i[j] = -1
	}
	ws.Reset()
	for _, v := range ws.Floats(16) {
		if v != 0 {
			t.Fatal("Floats returned dirty memory")
		}
	}
	for _, v := range ws.Zeros(2, 4).Data {
		if v != 0 {
			t.Fatal("Zeros returned dirty memory")
		}
	}
	for _, v := range ws.Ints(5) {
		if v != 0 {
			t.Fatal("Ints returned dirty memory")
		}
	}
}

// TestWorkspaceNilFallback: a nil workspace must behave exactly like plain
// allocation everywhere it is accepted.
func TestWorkspaceNilFallback(t *testing.T) {
	var ws *Workspace
	ws.Reset() // must not panic
	if f := ws.Floats(3); len(f) != 3 {
		t.Fatal("nil Floats")
	}
	if m := ws.Zeros(2, 2); m.Rows != 2 || m.Cols != 2 || m.Data[3] != 0 {
		t.Fatal("nil Zeros")
	}
	if m := ws.Uninit(2, 2); m.Rows != 2 || len(m.Data) != 4 {
		t.Fatal("nil Uninit")
	}
	if v := ws.View(1, 2, []float64{1, 2}); v.At(0, 1) != 2 {
		t.Fatal("nil View")
	}
	if r := ws.FloatRows(2); len(r) != 2 {
		t.Fatal("nil FloatRows")
	}
	if ms := ws.Matrices(2); len(ms) != 2 {
		t.Fatal("nil Matrices")
	}
}

// TestStackSplitWSMatchUnpooled: the WS variants must produce the exact
// values and view structure of Stack/SplitRows.
func TestStackSplitWSMatchUnpooled(t *testing.T) {
	rng := NewRNG(3)
	xs := make([]*Matrix, 4)
	for i := range xs {
		xs[i] = New(3, 5)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.NormFloat64()
		}
	}
	ws := NewWorkspace()
	want := Stack(xs)
	got := StackWS(ws, xs)
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("StackWS shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("StackWS data[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	wantViews := SplitRows(want, 3)
	gotViews := SplitRowsWS(ws, got, 3)
	if len(gotViews) != len(wantViews) {
		t.Fatalf("SplitRowsWS returned %d views, want %d", len(gotViews), len(wantViews))
	}
	for i := range wantViews {
		for j := range wantViews[i].Data {
			if wantViews[i].Data[j] != gotViews[i].Data[j] {
				t.Fatalf("view %d data %d mismatch", i, j)
			}
		}
	}
	// Views must share the stacked storage (no copy).
	gotViews[0].Data[0] = 42
	if got.Data[0] != 42 {
		t.Fatal("SplitRowsWS views must alias the source matrix")
	}
}

// TestWorkspaceSteadyStateAllocs pins the core promise: a repeated,
// identically shaped cycle through every getter allocates nothing after the
// first pass.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace()
	xs := make([]*Matrix, 8)
	for i := range xs {
		xs[i] = New(10, 4)
	}
	cycle := func() {
		ws.Reset()
		ws.Floats(100)
		ws.Ints(17)
		ws.FloatRows(9)
		ws.Matrices(5)
		ws.Zeros(6, 6)
		m := StackWS(ws, xs)
		SplitRowsWS(ws, m, 10)
	}
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state workspace cycle allocates %.1f times per run, want 0", avg)
	}
}
