package tensor

import "math/bits"

// Workspace is the reusable scratch arena behind allocation-free steady-state
// inference: every temporary a batched kernel needs — stacked input matrices,
// GEMM destinations, SplitRows view headers, feature rows, label slices —
// comes out of size-bucketed free lists instead of the heap, and one explicit
// Reset at the top of the next tick recycles all of it.
//
// Buckets are power-of-two capacity classes. Get paths pop a free slice of the
// right class (or allocate one that the pool then keeps), so after a warm-up
// tick in which every class the workload touches has been populated, the hot
// path performs zero heap allocations. There is deliberately no sync.Pool and
// no lock: a Workspace is single-owner state (one per serving shard, reset at
// tick boundaries), and the GC-driven emptying of sync.Pool is exactly the
// steady-state refill churn this type exists to avoid.
//
// Ownership contract: everything obtained from a Workspace — matrices, their
// backing data, slices, SplitRowsWS views — is valid only until the next
// Reset. Callers that need a value to outlive the cycle must copy it out.
// Reset must only be called when no value from the previous cycle is still
// referenced. A nil *Workspace is valid everywhere one is accepted and simply
// falls back to plain heap allocation, so `nil` selects the unpooled path and
// pooled-vs-unpooled outputs can be compared bitwise.
type Workspace struct {
	f64  wsPool[float64]
	ints wsPool[int]
	i8   wsPool[int8]
	i16  wsPool[int16]
	rows wsPool[[]float64]
	mats wsPool[*Matrix]

	// hdrs owns every Matrix header the workspace has ever handed out, in
	// 32-header chunks; hoff is the bump cursor reset each cycle.
	hdrs []*Matrix
	hoff int

	// pool is the shared GEMM worker pool large products dispatch onto. It is
	// owned by the hub, not the workspace: Reset leaves it attached, and a nil
	// pool (the default) keeps every kernel serial.
	pool *Pool
}

// SetPool attaches the kernel pool GEMMs dispatched through this workspace
// may use. Safe on a nil workspace (no-op: the unpooled path is serial).
//
//cogarm:zeroalloc
func (ws *Workspace) SetPool(p *Pool) {
	if ws != nil {
		ws.pool = p
	}
}

// Pool reports the attached kernel pool; nil workspace or no attachment means
// nil, i.e. serial.
func (ws *Workspace) Pool() *Pool {
	if ws == nil {
		return nil
	}
	return ws.pool
}

// NewWorkspace returns an empty workspace. Buckets fill lazily as kernels
// request scratch.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles every outstanding slice and header for the next cycle. It
// never frees memory: the high-water footprint of one cycle is retained so
// the next identical cycle allocates nothing.
//
//cogarm:zeroalloc
func (ws *Workspace) Reset() {
	if ws == nil {
		return
	}
	ws.f64.reset()
	ws.ints.reset()
	ws.i8.reset()
	ws.i16.reset()
	ws.rows.reset()
	ws.mats.reset()
	ws.hoff = 0
}

// Floats returns a zeroed float64 slice of length n, valid until Reset.
//
//cogarm:zeroalloc
func (ws *Workspace) Floats(n int) []float64 {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([]float64, n)
	}
	s := ws.f64.get(n)
	clear(s)
	return s
}

// Ints returns a zeroed int slice of length n, valid until Reset.
//
//cogarm:zeroalloc
func (ws *Workspace) Ints(n int) []int {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([]int, n)
	}
	s := ws.ints.get(n)
	clear(s)
	return s
}

// Int8s returns a zeroed int8 slice of length n, valid until Reset — the
// quantized kernels' activation scratch.
//
//cogarm:zeroalloc
func (ws *Workspace) Int8s(n int) []int8 {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([]int8, n)
	}
	s := ws.i8.get(n)
	clear(s)
	return s
}

// Int16s returns a zeroed int16 slice of length n, valid until Reset — the
// quantized forest's feature scratch.
//
//cogarm:zeroalloc
func (ws *Workspace) Int16s(n int) []int16 {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([]int16, n)
	}
	s := ws.i16.get(n)
	clear(s)
	return s
}

// FloatRows returns a nil-initialised [][]float64 of length n, valid until
// Reset — the row-pointer table batched feature extraction fills in.
//
//cogarm:zeroalloc
func (ws *Workspace) FloatRows(n int) [][]float64 {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([][]float64, n)
	}
	s := ws.rows.get(n)
	clear(s)
	return s
}

// Matrices returns a nil-initialised []*Matrix of length n, valid until
// Reset — the per-window output table of a batched kernel.
//
//cogarm:zeroalloc
func (ws *Workspace) Matrices(n int) []*Matrix {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return make([]*Matrix, n)
	}
	s := ws.mats.get(n)
	clear(s)
	return s
}

// Zeros returns a zero-filled rows×cols matrix valid until Reset — the
// workspace analogue of New, for accumulators that rely on zero initial
// contents (e.g. LSTM hidden/cell state).
//
//cogarm:zeroalloc
func (ws *Workspace) Zeros(rows, cols int) *Matrix {
	m := ws.Uninit(rows, cols)
	clear(m.Data)
	return m
}

// Uninit returns a rows×cols matrix with unspecified contents, valid until
// Reset. Callers must overwrite every element (or hand it to a kernel that
// does, like MatMul's dst path, which zeroes before accumulating).
//
//cogarm:zeroalloc
func (ws *Workspace) Uninit(rows, cols int) *Matrix {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return New(rows, cols)
	}
	h := ws.header()
	h.Rows, h.Cols = rows, cols
	h.Data = ws.f64.get(rows * cols)
	return h
}

// View wraps data (length must equal rows*cols) in a workspace-owned header
// without copying — the pooled analogue of FromSlice.
//
//cogarm:zeroalloc
func (ws *Workspace) View(rows, cols int, data []float64) *Matrix {
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		return FromSlice(rows, cols, data)
	}
	if len(data) != rows*cols {
		panic("tensor: workspace View length mismatch")
	}
	h := ws.header()
	h.Rows, h.Cols = rows, cols
	h.Data = data
	return h
}

// header hands out the next pooled Matrix header, growing the header store in
// chunks so steady state touches only the bump cursor.
func (ws *Workspace) header() *Matrix {
	if ws.hoff == len(ws.hdrs) {
		//cogarm:allow zeroalloc -- chunked header growth is retained at high-water mark; steady state only bumps the cursor
		chunk := make([]Matrix, 32)
		for i := range chunk {
			ws.hdrs = append(ws.hdrs, &chunk[i])
		}
	}
	h := ws.hdrs[ws.hoff]
	ws.hoff++
	return h
}

// StackWS is Stack with the output drawn from ws (nil ws = Stack).
//
//cogarm:zeroalloc
func StackWS(ws *Workspace, xs []*Matrix) *Matrix {
	if len(xs) == 0 {
		panic("tensor: Stack of empty batch")
	}
	r, c := xs[0].Rows, xs[0].Cols
	out := ws.Uninit(len(xs)*r, c)
	for i, x := range xs {
		if x.Rows != r || x.Cols != c {
			panic("tensor: Stack shape mismatch")
		}
		copy(out.Data[i*r*c:(i+1)*r*c], x.Data)
	}
	return out
}

// SplitRowsWS is SplitRows with the view headers and the view table drawn
// from ws (nil ws = SplitRows). The views share m's storage either way.
//
//cogarm:zeroalloc
func SplitRowsWS(ws *Workspace, m *Matrix, rowsPer int) []*Matrix {
	if rowsPer < 1 || m.Rows%rowsPer != 0 {
		panic("tensor: SplitRows does not divide rows")
	}
	n := m.Rows / rowsPer
	out := ws.Matrices(n)
	per := rowsPer * m.Cols
	for i := range out {
		out[i] = ws.View(rowsPer, m.Cols, m.Data[i*per:(i+1)*per])
	}
	return out
}

// wsPool is one element type's size-bucketed free list. Class c holds slices
// of capacity exactly 1<<c; get pops (or makes) one and remembers it in used,
// reset moves used back to free. The bookkeeping slices themselves amortise
// to zero allocations once their capacity matches the cycle's demand.
type wsPool[T any] struct {
	free [48][][]T
	used [][]T
}

func (p *wsPool[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
	var s []T
	if l := len(p.free[c]); l > 0 {
		s = p.free[c][l-1][:n]
		p.free[c] = p.free[c][:l-1]
	} else {
		//cogarm:allow zeroalloc -- bucket warm-up: the pool keeps this slice, so a warm cycle never reaches here
		s = make([]T, n, 1<<c)
	}
	p.used = append(p.used, s)
	return s
}

func (p *wsPool[T]) reset() {
	for i, s := range p.used {
		c := bits.TrailingZeros(uint(cap(s))) // cap is exactly 1<<c
		//cogarm:allow zeroalloc -- returns the slice to its free-list bucket; bucket capacity amortises to the cycle's demand
		p.free[c] = append(p.free[c], s[:0])
		p.used[i] = nil
	}
	p.used = p.used[:0]
}
