package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the batched-GEMM fast path behind nn's fused inference: a
// cache-blocked (Mc×Kc×Nc) kernel over a packed B panel, split row-panel-wise
// across a persistent worker pool for large batch×feature products, with an
// optional fused epilogue (bias add + ReLU) applied while each row panel is
// still cache-hot.
//
// Bitwise contract: every path here produces output bitwise-identical to
// MatMulBatched followed by AddRowVector(bias) followed by a ReLU clamp.
// Three properties guarantee it regardless of blocking or thread count:
//   - per-output-element accumulation order stays k-ascending (Kc blocks are
//     visited in ascending order and packing B only relocates values),
//   - row panels split on 4-row quad boundaries, so the 4-row micro-kernel
//     grouping — including its whole-quad zero skip — matches the serial
//     kernel exactly, and
//   - the epilogue applies per element after that element's accumulation is
//     complete, exactly as the separate bias/ReLU passes would.
// Serial, blocked and parallel results are therefore interchangeable, which
// keeps checkpoints, replication and migration bitwise-exact no matter how
// many kernel threads a node runs.

// Blocking parameters. Kc×Nc float64s is the packed-B working set streamed by
// the inner kernel (256×64×8 = 128 KiB, L2-resident on everything we target);
// the M dimension is blocked implicitly by the per-thread row panels.
const (
	gemmKc = 256
	gemmNc = 64
)

// gemmParallelMinOps is the crossover below which GEMM stays on the serial
// micro-kernel: M·K·N multiply-accumulates must amortise one pool rendezvous
// (two atomics, up to threads−1 buffered channel sends and a WaitGroup wait —
// measured at ~1–2 µs end to end). At 1<<18 MACs the serial kernel already
// spends ≥~60 µs, so dispatch overhead is <5% even in the worst case, while
// per-window latency for small products never regresses. The CNN fleet's
// im2col product (B·T' ≈ 2300 rows × K·Cin ≈ 40 × 32 filters ≈ 3M MACs)
// clears the bar comfortably.
const gemmParallelMinOps = 1 << 18

// Epilogue is the fused post-op a GEMM applies to each output row panel while
// it is still cache-hot: dst[i][j] += Bias[j] (when Bias is non-nil), then a
// ReLU clamp (v <= 0 → 0) when ReLU is set. Element-wise it is exactly
// AddRowVector followed by nn's inference ReLU, so fused and unfused paths
// are bitwise-identical.
type Epilogue struct {
	Bias []float64
	ReLU bool
}

// none reports whether the epilogue is a no-op.
func (ep Epilogue) none() bool { return ep.Bias == nil && !ep.ReLU }

// GEMM computes dst = a·b, then applies ep. dst may be nil (heap-allocated)
// and must not alias a or b. Small products run the serial 4-row micro-kernel
// (MatMulBatched) plus an epilogue pass; products past the crossover run the
// cache-blocked packed-B kernel, split across ws's kernel pool when one is
// attached (see Workspace.SetPool). Output is bitwise-identical on every
// path.
//
//cogarm:zeroalloc
func GEMM(ws *Workspace, dst, a, b *Matrix, ep Epilogue) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: gemm shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, b.Cols)
	} else if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: gemm dst shape mismatch")
	}
	if ep.Bias != nil && len(ep.Bias) != dst.Cols {
		panic(fmt.Sprintf("tensor: gemm epilogue bias length %d != cols %d", len(ep.Bias), dst.Cols))
	}
	pool := ws.Pool()
	panels := gemmPanelCount(a.Rows, a.Cols, b.Cols, pool.Threads())
	if panels <= 1 {
		MatMulBatched(dst, a, b)
		applyEpilogue(dst, 0, dst.Rows, ep)
		return dst
	}
	packed := packB(ws, b)
	pool.gemm(dst, a, packed, ep, panels)
	return dst
}

// MatMulBatchedWS is MatMulBatched with workspace-aware dispatch: products
// past the crossover run the blocked kernel on ws's kernel pool, everything
// else stays serial. Results are bitwise-identical to MatMulBatched.
//
//cogarm:zeroalloc
func MatMulBatchedWS(ws *Workspace, dst, a, b *Matrix) *Matrix {
	return GEMM(ws, dst, a, b, Epilogue{})
}

// gemmPanelCount picks how many row panels to split m rows into: 1 (serial)
// below the crossover, else up to threads panels with at least one 4-row quad
// each.
func gemmPanelCount(m, k, n, threads int) int {
	if threads < 2 {
		return 1
	}
	if int64(m)*int64(k)*int64(n) < gemmParallelMinOps {
		return 1
	}
	quads := m / 4
	if quads < 2 {
		return 1
	}
	if threads > quads {
		threads = quads
	}
	return threads
}

// packB lays b out in the block-panel order the blocked kernel streams it:
// for each Nc column block, the Kc×nc sub-panels stacked row-major. When b
// has at most Nc columns that layout coincides with b's own row-major
// storage, so the hot serving shapes (Cout ≤ 64) skip the copy entirely and
// the kernel reads b.Data in place.
//
//cogarm:zeroalloc
func packB(ws *Workspace, b *Matrix) []float64 {
	if b.Cols <= gemmNc {
		return b.Data
	}
	var packed []float64
	if ws == nil {
		//cogarm:allow zeroalloc -- nil workspace selects the unpooled heap path by contract
		packed = make([]float64, b.Rows*b.Cols)
	} else {
		packed = ws.f64.get(b.Rows * b.Cols)
	}
	off := 0
	for jc := 0; jc < b.Cols; jc += gemmNc {
		nc := min(gemmNc, b.Cols-jc)
		for k := 0; k < b.Rows; k++ {
			row := b.Row(k)
			copy(packed[off:off+nc], row[jc:jc+nc])
			off += nc
		}
	}
	return packed
}

// gemmPanel runs the blocked kernel over dst rows [i0, i1): zero the panel,
// accumulate jc/kc blocks from the packed B panel with the same 4-row quad
// micro-kernel (and whole-quad zero skip) as MatMulBatched, then apply the
// epilogue while the panel is hot. i0 is always quad-aligned; only the last
// panel owns the <4-row tail, which runs the same single-row loop as the
// serial kernel.
//
//cogarm:zeroalloc
func gemmPanel(dst, a *Matrix, packed []float64, ep Epilogue, i0, i1 int) {
	k, n := a.Cols, dst.Cols
	for i := i0; i < i1; i++ {
		clear(dst.Row(i))
	}
	for jc := 0; jc < n; jc += gemmNc {
		nc := min(gemmNc, n-jc)
		base := jc * k
		for kc := 0; kc < k; kc += gemmKc {
			kr := min(gemmKc, k-kc)
			pb := packed[base+kc*nc:]
			i := i0
			for ; i+4 <= i1; i += 4 {
				a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
				d0 := dst.Row(i)[jc : jc+nc]
				d1 := dst.Row(i + 1)[jc : jc+nc]
				d2 := dst.Row(i + 2)[jc : jc+nc]
				d3 := dst.Row(i + 3)[jc : jc+nc]
				for kk := 0; kk < kr; kk++ {
					c0, c1, c2, c3 := a0[kc+kk], a1[kc+kk], a2[kc+kk], a3[kc+kk]
					if c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0 {
						continue
					}
					brow := pb[kk*nc : kk*nc+nc]
					for j, bv := range brow {
						d0[j] += c0 * bv
						d1[j] += c1 * bv
						d2[j] += c2 * bv
						d3[j] += c3 * bv
					}
				}
			}
			for ; i < i1; i++ {
				arow := a.Row(i)
				drow := dst.Row(i)[jc : jc+nc]
				for kk := 0; kk < kr; kk++ {
					aik := arow[kc+kk]
					if aik == 0 {
						continue
					}
					brow := pb[kk*nc : kk*nc+nc]
					for j, bv := range brow {
						drow[j] += aik * bv
					}
				}
			}
		}
	}
	applyEpilogue(dst, i0, i1, ep)
}

// applyEpilogue applies ep to dst rows [i0, i1) in place: bias add, then ReLU
// clamp. Element order matches AddRowVector + a separate clamp pass exactly.
//
//cogarm:zeroalloc
func applyEpilogue(dst *Matrix, i0, i1 int, ep Epilogue) {
	if ep.none() {
		return
	}
	for i := i0; i < i1; i++ {
		row := dst.Row(i)
		if ep.Bias != nil {
			for j := range row {
				row[j] += ep.Bias[j]
			}
		}
		if ep.ReLU {
			for j, v := range row {
				if v <= 0 {
					row[j] = 0
				}
			}
		}
	}
}

// Pool is a persistent set of GEMM worker goroutines shared by every shard of
// a serving hub. One pool serves any number of concurrent callers: a caller
// splits its product into row panels, keeps panel 0 for itself, queues the
// rest, then helps drain the shared queue (running other callers' panels too)
// until its own call completes — so threads stay busy even when callers
// outnumber workers, and a lone caller loses nothing. A nil *Pool is valid
// everywhere and means "serial" (Threads() == 1).
type Pool struct {
	threads int
	tasks   chan gemmTask

	mu   sync.Mutex
	free []*gemmCall

	closeOnce sync.Once
}

// gemmTask hands one row panel of one call to whichever executor dequeues it.
// It is a plain value on a buffered channel: dispatch allocates nothing.
type gemmTask struct {
	c     *gemmCall
	panel int32
}

// gemmCall is the per-dispatch rendezvous, pooled on a free list so steady
// state reuses warm objects. pending counts unfinished panels (all panels,
// caller's own included); wg counts only the queued ones the caller must wait
// out after the queue drains.
type gemmCall struct {
	dst, a  *Matrix
	packed  []float64
	ep      Epilogue
	nPanels int32
	pending atomic.Int32
	wg      sync.WaitGroup
}

// NewPool starts a pool with the given total parallelism, caller included:
// threads−1 worker goroutines are spawned, since the calling goroutine always
// executes panels itself. threads < 2 returns nil — the valid serial pool.
func NewPool(threads int) *Pool {
	if threads < 2 {
		return nil
	}
	p := &Pool{threads: threads, tasks: make(chan gemmTask, 4*threads)}
	for i := 0; i < threads-1; i++ {
		go p.worker()
	}
	return p
}

// Threads reports the pool's total parallelism including the caller; a nil
// pool is serial.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Close stops the workers. Idempotent; safe on nil. Callers must have
// quiesced: a GEMM in flight during Close panics the pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.tasks) })
}

// worker executes queued panels until the pool closes.
func (p *Pool) worker() {
	for t := range p.tasks {
		t.c.run(t.panel)
		t.c.wg.Done()
	}
}

// gemm dispatches one blocked product across panels row panels (panels >= 2).
// The caller runs panel 0, helps drain the queue, then waits out whatever is
// still in flight.
//
//cogarm:zeroalloc
func (p *Pool) gemm(dst, a *Matrix, packed []float64, ep Epilogue, panels int) {
	c := p.getCall()
	c.dst, c.a, c.packed, c.ep = dst, a, packed, ep
	c.nPanels = int32(panels)
	c.pending.Store(int32(panels))
	c.wg.Add(panels - 1)
	for i := int32(1); i < int32(panels); i++ {
		p.tasks <- gemmTask{c: c, panel: i}
	}
	c.run(0)
help:
	for c.pending.Load() > 0 {
		select {
		case t := <-p.tasks:
			t.c.run(t.panel)
			t.c.wg.Done()
		default:
			// Queue empty but panels still in flight with other executors:
			// nothing left to steal, wait them out.
			break help
		}
	}
	c.wg.Wait()
	p.putCall(c)
}

// run executes one panel of the call.
//
//cogarm:zeroalloc
func (c *gemmCall) run(panel int32) {
	i0, i1 := c.panelRange(panel)
	gemmPanel(c.dst, c.a, c.packed, c.ep, i0, i1)
	c.pending.Add(-1)
}

// panelRange maps a panel index to its quad-aligned row range. Whole 4-row
// quads are distributed as evenly as possible; the last panel also owns the
// <4-row tail.
func (c *gemmCall) panelRange(panel int32) (int, int) {
	rows := c.dst.Rows
	quads := rows / 4
	n := int(c.nPanels)
	per, rem := quads/n, quads%n
	pi := int(panel)
	qs := pi*per + min(pi, rem)
	qe := qs + per
	if pi < rem {
		qe++
	}
	i0, i1 := qs*4, qe*4
	if pi == n-1 {
		i1 = rows
	}
	return i0, i1
}

// getCall pops a pooled rendezvous (or warms one up).
//
//cogarm:zeroalloc
func (p *Pool) getCall() *gemmCall {
	p.mu.Lock()
	if l := len(p.free); l > 0 {
		c := p.free[l-1]
		p.free = p.free[:l-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	//cogarm:allow zeroalloc -- free-list warm-up; putCall retains every call object, so steady state always pops
	return &gemmCall{}
}

// putCall returns a finished rendezvous to the free list, dropping its matrix
// and workspace references so pooled call objects never pin a shard's arena
// across ticks.
//
//cogarm:zeroalloc
func (p *Pool) putCall(c *gemmCall) {
	c.dst, c.a, c.packed, c.ep = nil, nil, nil, Epilogue{}
	p.mu.Lock()
	//cogarm:allow zeroalloc -- free-list growth is retained at its high-water mark; steady state appends into existing capacity
	p.free = append(p.free, c)
	p.mu.Unlock()
}
