package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2)=%v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row shares storage: got %v", row[2])
	}
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("Row must alias the matrix storage")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(nil, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEqual(c.Data[i], w, 1e-12) {
			t.Fatalf("c[%d]=%v want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulReuseDst(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	dst := New(2, 2)
	dst.Fill(99) // MatMul must zero it first
	MatMul(dst, a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if !almostEqual(dst.Data[i], w, 1e-12) {
			t.Fatalf("dst[%d]=%v want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(nil, New(2, 3), New(2, 3))
}

// TestTransposedMatMulsAgree checks MatMulTransA/B against explicit Transpose.
func TestTransposedMatMulsAgree(t *testing.T) {
	rng := NewRNG(42)
	a := New(4, 6)
	b := New(5, 6)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MatMulTransB(nil, a, b)
	want := MatMul(nil, a, Transpose(b))
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("MatMulTransB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	c := New(4, 5)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got2 := MatMulTransA(nil, a, c) // aᵀ(4x6)ᵀ·c(4x5) = 6x5
	want2 := MatMul(nil, Transpose(a), c)
	for i := range want2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i], 1e-9) {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := New(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := Transpose(Transpose(m))
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := Add(nil, a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add got %v", got)
	}
	if got := Sub(nil, b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub got %v", got)
	}
	if got := Mul(nil, a, b).Data; got[1] != 10 {
		t.Fatalf("Mul got %v", got)
	}
	// In-place aliasing.
	Add(a, a, b)
	if a.Data[0] != 5 {
		t.Fatalf("aliased Add got %v", a.Data)
	}
}

func TestScaleAndFill(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, -2, 4})
	Scale(m, 0.5)
	if m.Data[1] != -1 || m.Data[2] != 2 {
		t.Fatalf("Scale got %v", m.Data)
	}
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatalf("Fill got %v", m.Data)
		}
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	AddRowVector(m, []float64{10, 20, 30})
	if m.At(0, 0) != 11 || m.At(1, 2) != 36 {
		t.Fatalf("AddRowVector got %v", m.Data)
	}
	sums := make([]float64, 3)
	ColSums(sums, m)
	if sums[0] != 11+14 || sums[2] != 33+36 {
		t.Fatalf("ColSums got %v", sums)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(10)
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 10
		}
		dst := make([]float64, n)
		Softmax(dst, src)
		var sum float64
		for _, v := range dst {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableUnderLargeInputs(t *testing.T) {
	src := []float64{1000, 1001, 1002}
	dst := make([]float64, 3)
	Softmax(dst, src)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax not stable: %v", dst)
		}
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax ordering broken: %v", dst)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Fatal("empty argmax should be -1")
	}
	if got := Argmax([]float64{1, 3, 3, 2}); got != 1 {
		t.Fatalf("ties should pick first: got %d", got)
	}
}

func TestMeanStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(v), 5, 1e-12) {
		t.Fatalf("mean=%v", Mean(v))
	}
	if !almostEqual(Std(v), 2, 1e-12) {
		t.Fatalf("std=%v", Std(v))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty mean/std should be 0")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("dot")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("norm")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(123)
	for i := 0; i < 10000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	rng := NewRNG(5)
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(99)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

func TestXavierHeInitRanges(t *testing.T) {
	rng := NewRNG(11)
	m := New(10, 10)
	XavierInit(m, 10, 10, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier out of range: %v (limit %v)", v, limit)
		}
	}
	HeInit(m, 10, rng)
	if Std(m.Data) < 0.2 {
		t.Fatalf("he init degenerate: std=%v", Std(m.Data))
	}
}
