package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used for
// weight initialisation and data synthesis. It is reproducible across runs
// and platforms, unlike math/rand's global state, which matters for
// regenerating the paper's tables bit-for-bit.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. A zero seed is remapped to a fixed non-zero value
// because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
//
//cogarm:zeroalloc
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
//
//cogarm:zeroalloc
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
//cogarm:zeroalloc
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
//
//cogarm:zeroalloc
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator stream; used to give each synthetic
// subject / model its own reproducible randomness.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// XavierInit fills m with Xavier/Glorot-uniform values for a layer with the
// given fan-in and fan-out.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *RNG) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// HeInit fills m with He-normal values for ReLU-family layers.
func HeInit(m *Matrix, fanIn int, rng *RNG) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}
