package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randMatrix fills a matrix with a mix of normal values, exact zeros (to
// exercise the quad zero-skip) and negatives (to exercise the ReLU clamp).
func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(5) {
		case 0:
			m.Data[i] = 0
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// reference computes the unfused serial baseline: MatMulBatched, then
// AddRowVector, then a ReLU clamp — the exact composition GEMM must match
// bitwise on every path.
func reference(a, b *Matrix, ep Epilogue) *Matrix {
	dst := MatMulBatched(nil, a, b)
	if ep.Bias != nil {
		AddRowVector(dst, ep.Bias)
	}
	if ep.ReLU {
		for i, v := range dst.Data {
			if v <= 0 {
				dst.Data[i] = 0
			}
		}
	}
	return dst
}

func assertBitwise(t *testing.T, want, got *Matrix, label string) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: element %d differs: got %v want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// gemmShapes covers the odd-shape corners the blocked/parallel kernel must
// get right: rows not divisible by 4, fewer columns than one Nc block, more
// than one Nc/Kc block, single rows, and empty products.
var gemmShapes = []struct{ m, k, n int }{
	{0, 7, 5},
	{1, 1, 1},
	{3, 9, 2},       // all-tail rows
	{4, 16, 8},      // exactly one quad
	{5, 300, 3},     // quad + tail, K spans two Kc blocks
	{7, 40, 32},     // serving head shape, tail rows
	{8, 2325, 32},   // CNN im2col K, two quads
	{25, 130, 64},   // cols == one full Nc block
	{64, 257, 65},   // K and N both one past a block boundary
	{130, 600, 150}, // multi-panel, multi-block in every dimension
	{257, 2325, 32}, // large M, odd tail
}

func TestGEMMBitwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := NewPool(4)
	defer pool.Close()
	for _, sh := range gemmShapes {
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		bias := make([]float64, sh.n)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}
		for _, ep := range []Epilogue{{}, {Bias: bias}, {Bias: bias, ReLU: true}, {ReLU: true}} {
			want := reference(a, b, ep)
			label := fmt.Sprintf("%dx%dx%d bias=%v relu=%v", sh.m, sh.k, sh.n, ep.Bias != nil, ep.ReLU)

			// Serial, no workspace.
			assertBitwise(t, want, GEMM(nil, nil, a, b, ep), label+" serial")

			// Pooled workspace without a kernel pool.
			ws := NewWorkspace()
			assertBitwise(t, want, GEMM(ws, ws.Uninit(sh.m, sh.n), a, b, ep), label+" ws")
			ws.Reset()

			// Kernel pool attached: large shapes dispatch parallel.
			ws.SetPool(pool)
			assertBitwise(t, want, GEMM(ws, ws.Uninit(sh.m, sh.n), a, b, ep), label+" parallel")
			ws.Reset()
		}
	}
}

// TestGEMMBlockedKernelDirect forces the blocked/packed kernel (bypassing the
// crossover) so small shapes exercise it too.
func TestGEMMBlockedKernelDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range gemmShapes {
		if sh.m == 0 {
			continue // panelRange needs >= 1 quad; GEMM never dispatches empty products
		}
		a := randMatrix(rng, sh.m, sh.k)
		b := randMatrix(rng, sh.k, sh.n)
		want := reference(a, b, Epilogue{})
		dst := New(sh.m, sh.n)
		packed := packB(nil, b)
		gemmPanel(dst, a, packed, Epilogue{}, 0, sh.m)
		assertBitwise(t, want, dst, fmt.Sprintf("blocked %dx%dx%d", sh.m, sh.k, sh.n))
	}
}

func TestMatMulBatchedWS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 100, 300)
	b := randMatrix(rng, 300, 40)
	want := MatMulBatched(nil, a, b)
	ws := NewWorkspace()
	pool := NewPool(3)
	defer pool.Close()
	ws.SetPool(pool)
	got := MatMulBatchedWS(ws, ws.Uninit(100, 40), a, b)
	assertBitwise(t, want, got, "MatMulBatchedWS")
}

// TestPoolConcurrentCallers hammers one pool from more callers than it has
// threads — the shards-share-one-pool serving topology — and checks every
// result bitwise. Run with -race in CI.
func TestPoolConcurrentCallers(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(4))
	const callers = 8
	type job struct {
		a, b *Matrix
		want *Matrix
	}
	jobs := make([]job, callers)
	for i := range jobs {
		m := 64 + 4*i
		a := randMatrix(rng, m, 500)
		b := randMatrix(rng, 500, 24)
		jobs[i] = job{a: a, b: b, want: reference(a, b, Epilogue{})}
	}
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			ws := NewWorkspace()
			ws.SetPool(pool)
			for iter := 0; iter < 50; iter++ {
				got := GEMM(ws, ws.Uninit(j.a.Rows, j.b.Cols), j.a, j.b, Epilogue{})
				for k := range j.want.Data {
					if got.Data[k] != j.want.Data[k] {
						errs <- fmt.Errorf("element %d differs under concurrency", k)
						return
					}
				}
				ws.Reset()
			}
		}(jobs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPoolNilAndClose(t *testing.T) {
	var p *Pool
	if p.Threads() != 1 {
		t.Fatalf("nil pool Threads = %d, want 1", p.Threads())
	}
	p.Close() // must not panic
	if NewPool(1) != nil || NewPool(0) != nil {
		t.Fatal("NewPool(<2) must return the nil serial pool")
	}
	q := NewPool(2)
	if q.Threads() != 2 {
		t.Fatalf("Threads = %d, want 2", q.Threads())
	}
	q.Close()
	q.Close() // idempotent
}

func TestGEMMCrossover(t *testing.T) {
	if n := gemmPanelCount(4, 4, 4, 8); n != 1 {
		t.Fatalf("tiny product must stay serial, got %d panels", n)
	}
	if n := gemmPanelCount(2400, 40, 32, 4); n != 4 {
		t.Fatalf("CNN fleet product should use all threads, got %d panels", n)
	}
	if n := gemmPanelCount(2400, 40, 32, 1); n != 1 {
		t.Fatalf("serial pool must stay serial, got %d panels", n)
	}
	// Panels never outnumber quads.
	if n := gemmPanelCount(9, 60000, 60000, 8); n > 2 {
		t.Fatalf("9 rows = 2 quads, got %d panels", n)
	}
}

func BenchmarkGEMMSerial(b *testing.B) {
	benchmarkGEMM(b, nil)
}

func BenchmarkGEMMParallel2(b *testing.B) {
	pool := NewPool(2)
	defer pool.Close()
	benchmarkGEMM(b, pool)
}

func BenchmarkGEMMParallel4(b *testing.B) {
	pool := NewPool(4)
	defer pool.Close()
	benchmarkGEMM(b, pool)
}

func benchmarkGEMM(b *testing.B, pool *Pool) {
	rng := rand.New(rand.NewSource(5))
	// The CNN fleet's im2col product shape: (25 windows × 93 steps) × 40 × 32.
	a := randMatrix(rng, 2325, 40)
	w := randMatrix(rng, 40, 32)
	bias := make([]float64, 32)
	ws := NewWorkspace()
	ws.SetPool(pool)
	dst := New(a.Rows, w.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GEMM(ws, dst, a, w, Epilogue{Bias: bias, ReLU: true})
	}
}
