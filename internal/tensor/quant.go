package tensor

import (
	"fmt"
	"math"
)

// This file holds every float↔int8/int16 conversion kernel in the module.
// The quantsafe analyzer (cmd/cogarmvet) enforces that boundary: quantized
// consumers in internal/nn and internal/rf traffic exclusively in already-
// quantized values plus the helpers below, so scale handling — the part that
// silently corrupts accuracy when it drifts — is reviewable in one place.

// QMatrix is an int8-quantized weight matrix for y = x·W products, stored
// transposed (Out rows of In weights each) so the integer dot product streams
// one contiguous int8 row per output channel. Quantization is symmetric
// per output row: W[k][j] ≈ Data[j][k] · Scales[j], Scales[j] =
// maxabs(column j)/127. An all-zero column gets scale 0 and an all-zero row.
type QMatrix struct {
	In, Out int
	Data    []int8    // Out×In, row-major, row j = column j of the source
	Scales  []float32 // per-output-row dequantization scale
}

// QuantizeWeights quantizes an In×Out f64 weight matrix (the layout
// nn.Dense/Conv1D store) into a transposed int8 QMatrix. Done once at model
// load; inference never touches the f64 weights again.
func QuantizeWeights(w *Matrix) *QMatrix {
	q := &QMatrix{
		In:     w.Rows,
		Out:    w.Cols,
		Data:   make([]int8, w.Rows*w.Cols),
		Scales: make([]float32, w.Cols),
	}
	for j := 0; j < w.Cols; j++ {
		maxabs := 0.0
		for k := 0; k < w.Rows; k++ {
			if a := math.Abs(w.At(k, j)); a > maxabs {
				maxabs = a
			}
		}
		if maxabs == 0 {
			continue // scale 0, all-zero row
		}
		q.Scales[j] = float32(maxabs / 127)
		inv := 127 / maxabs
		row := q.Data[j*q.In : (j+1)*q.In]
		for k := 0; k < w.Rows; k++ {
			row[k] = int8(math.Round(w.At(k, j) * inv))
		}
	}
	return q
}

// MatMulQ computes dst = x·Wᵀq with int8×int8→int32 arithmetic and a fused
// epilogue: each x row is quantized symmetrically on the fly (per-row scale
// maxabs/127), dotted against every int8 weight row with int32 accumulation
// (safe to In ≈ 130k), then dequantized as acc·xscale·wscale before bias and
// ReLU apply. dst may be nil. The result approximates GEMM(x, W) — callers
// gate it behind an agreement check against the exact f64 path.
//
//cogarm:zeroalloc
func MatMulQ(ws *Workspace, dst, x *Matrix, q *QMatrix, ep Epilogue) *Matrix {
	if x.Cols != q.In {
		panic(fmt.Sprintf("tensor: matmulQ shape mismatch %dx%d · (%dx%d)ᵀ", x.Rows, x.Cols, q.Out, q.In))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(x.Rows, q.Out)
	} else if dst.Rows != x.Rows || dst.Cols != q.Out {
		panic("tensor: matmulQ dst shape mismatch")
	}
	if ep.Bias != nil && len(ep.Bias) != q.Out {
		panic(fmt.Sprintf("tensor: matmulQ epilogue bias length %d != cols %d", len(ep.Bias), q.Out))
	}
	xq := ws.Int8s(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		maxabs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxabs {
				maxabs = a
			}
		}
		var xscale, inv float64
		if maxabs > 0 {
			xscale = maxabs / 127
			inv = 127 / maxabs
		}
		for k, v := range row {
			xq[k] = int8(math.Round(v * inv))
		}
		drow := dst.Row(i)
		for j := 0; j < q.Out; j++ {
			wrow := q.Data[j*q.In : (j+1)*q.In]
			var acc int32
			for k, xv := range xq {
				acc += int32(xv) * int32(wrow[k])
			}
			v := float64(acc) * xscale * float64(q.Scales[j])
			if ep.Bias != nil {
				v += ep.Bias[j]
			}
			if ep.ReLU && v <= 0 {
				v = 0
			}
			drow[j] = v
		}
	}
	return dst
}

// I16Map is a monotone affine float64→int16 mapping over [Lo, Hi], used to
// quantize decision-forest thresholds and feature values onto the same grid.
// Monotonicity (floor of an increasing affine map, then a monotone clamp)
// guarantees v <= t implies Quantize(v) <= Quantize(t), so a quantized
// traversal can only diverge from the f64 tree on near-tie comparisons —
// one-sided error the accuracy gate measures.
type I16Map struct {
	Lo    float64
	Scale float64 // quantization steps per unit; 0 maps everything to 0
}

// NewI16Map builds the mapping for values observed in [lo, hi]. A degenerate
// range (hi <= lo) maps every value to 0, which compares equal everywhere —
// correct for a feature whose thresholds are all identical.
func NewI16Map(lo, hi float64) I16Map {
	if !(hi > lo) {
		return I16Map{Lo: lo}
	}
	// Spread the observed range across most of the int16 domain, leaving
	// headroom so out-of-range values clamp without wrapping.
	return I16Map{Lo: lo, Scale: 60000 / (hi - lo)}
}

// Quantize maps a float64 value onto the int16 grid: floor, then clamp.
//
//cogarm:zeroalloc
func (m I16Map) Quantize(v float64) int16 {
	if m.Scale == 0 {
		return 0
	}
	q := math.Floor((v - m.Lo) * m.Scale)
	q -= 30000
	if q < math.MinInt16 {
		return math.MinInt16
	}
	if q > math.MaxInt16 {
		return math.MaxInt16
	}
	return int16(q)
}

// QuantizeRow quantizes src into dst (same length) through per-column maps.
//
//cogarm:zeroalloc
func QuantizeRowI16(dst []int16, src []float64, maps []I16Map) {
	if len(dst) != len(src) || len(src) != len(maps) {
		panic("tensor: QuantizeRowI16 length mismatch")
	}
	for i, v := range src {
		dst[i] = maps[i].Quantize(v)
	}
}
