package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w := randMatrix(rng, 40, 32)
	// One all-zero column: must get scale 0 without poisoning neighbours.
	for k := 0; k < w.Rows; k++ {
		w.Set(k, 5, 0)
	}
	q := QuantizeWeights(w)
	if q.In != 40 || q.Out != 32 {
		t.Fatalf("bad dims %dx%d", q.Out, q.In)
	}
	if q.Scales[5] != 0 {
		t.Fatalf("all-zero column scale = %v, want 0", q.Scales[5])
	}
	for j := 0; j < w.Cols; j++ {
		scale := float64(q.Scales[j])
		for k := 0; k < w.Rows; k++ {
			got := float64(q.Data[j*q.In+k]) * scale
			want := w.At(k, j)
			// Symmetric int8: error bounded by half a quantization step.
			if math.Abs(got-want) > scale/2+1e-12 {
				t.Fatalf("w[%d][%d]: dequant %v vs %v (scale %v)", k, j, got, want, scale)
			}
		}
	}
}

func TestMatMulQApproximatesGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(rng, 25, 40)
	w := randMatrix(rng, 40, 8)
	bias := make([]float64, 8)
	for j := range bias {
		bias[j] = rng.NormFloat64()
	}
	ep := Epilogue{Bias: bias, ReLU: true}
	exact := GEMM(nil, nil, x, w, ep)
	q := QuantizeWeights(w)
	got := MatMulQ(nil, nil, x, q, ep)
	// int8×int8 keeps ~2 decimal digits on unit-scale data; argmax agreement
	// is what the serving gate checks, but here bound the raw error too.
	for i := 0; i < exact.Rows; i++ {
		if Argmax(got.Row(i)) != Argmax(exact.Row(i)) {
			t.Fatalf("row %d argmax diverged: %v vs %v", i, got.Row(i), exact.Row(i))
		}
		for j, want := range exact.Row(i) {
			if math.Abs(got.Row(i)[j]-want) > 0.15 {
				t.Fatalf("row %d col %d: quantized %v vs exact %v", i, j, got.Row(i)[j], want)
			}
		}
	}
	// Workspace path matches the unpooled path bitwise.
	ws := NewWorkspace()
	got2 := MatMulQ(ws, ws.Uninit(25, 8), x, q, ep)
	assertBitwise(t, got, got2, "MatMulQ ws")
}

func TestMatMulQZeroRow(t *testing.T) {
	x := New(2, 6) // all zeros
	w := randMatrix(rand.New(rand.NewSource(12)), 6, 3)
	q := QuantizeWeights(w)
	bias := []float64{1, -2, 3}
	out := MatMulQ(nil, nil, x, q, Epilogue{Bias: bias})
	for i := 0; i < 2; i++ {
		for j, b := range bias {
			if out.At(i, j) != b {
				t.Fatalf("zero input row must pass bias through, got %v", out.Row(i))
			}
		}
	}
}

func TestI16MapMonotone(t *testing.T) {
	m := NewI16Map(-3, 7)
	prev := m.Quantize(-10)
	for v := -10.0; v <= 12; v += 0.01 {
		q := m.Quantize(v)
		if q < prev {
			t.Fatalf("Quantize not monotone at %v: %d < %d", v, q, prev)
		}
		prev = q
	}
	// v <= t must imply q(v) <= q(t) — direct spot check across the clamp.
	pairs := [][2]float64{{-100, -3}, {-3, -2.999}, {0, 0}, {6.999, 7}, {7, 100}}
	for _, p := range pairs {
		if m.Quantize(p[0]) > m.Quantize(p[1]) {
			t.Fatalf("order violated for %v", p)
		}
	}
	// Degenerate range maps everything to 0.
	d := NewI16Map(5, 5)
	if d.Quantize(-1) != 0 || d.Quantize(99) != 0 {
		t.Fatal("degenerate map must be constant 0")
	}
}

func TestQuantizeRowI16(t *testing.T) {
	maps := []I16Map{NewI16Map(0, 1), NewI16Map(-1, 1), NewI16Map(2, 2)}
	src := []float64{0.5, 0, 7}
	dst := make([]int16, 3)
	QuantizeRowI16(dst, src, maps)
	for i := range src {
		if dst[i] != maps[i].Quantize(src[i]) {
			t.Fatalf("col %d mismatch", i)
		}
	}
}
