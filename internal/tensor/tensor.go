// Package tensor provides the minimal dense linear-algebra substrate used by
// the CognitiveArm deep-learning stack. It implements row-major float64
// matrices with the handful of kernels (matmul, transpose, broadcast ops,
// im2col-style unfolding) required by the Dense, Conv1D, LSTM and attention
// layers in internal/nn.
//
// The package is deliberately small and allocation-conscious: all hot kernels
// accept destination buffers so the training loop can reuse memory across
// steps.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialised Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length must equal rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
//
//cogarm:zeroalloc
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
//
//cogarm:zeroalloc
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a sub-slice (shared storage).
//
//cogarm:zeroalloc
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to zero in place.
//
//cogarm:zeroalloc
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
//
//cogarm:zeroalloc
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// String implements fmt.Stringer with a compact shape-prefixed rendering.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul computes dst = a·b. dst may be nil, in which case a fresh matrix is
// allocated. dst must not alias a or b.
//
//cogarm:zeroalloc
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: matmul dst shape mismatch")
		}
		dst.Zero()
	}
	// ikj loop order: stream through b rows for cache locality.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				drow[j] += aik * brow[j]
			}
		}
	}
	return dst
}

// MatMulBatched computes dst = a·b with a four-row micro-kernel: each row of
// b is streamed once per four rows of a, so index arithmetic, bounds checks
// and b-row loads amortise across four accumulator rows. This is the GEMM
// behind nn's fused batched inference, where a stacks many windows and the
// per-row kernel of MatMul leaves that reuse on the table. Accumulation
// order per output element is identical to MatMul (k-ascending); the only
// representable difference is the sign of exact zeros, because zero inputs
// are only skipped when a whole column block is zero.
//
//cogarm:zeroalloc
func MatMulBatched(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: matmul dst shape mismatch")
		}
		dst.Zero()
	}
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		for k := 0; k < a.Cols; k++ {
			c0, c1, c2, c3 := a0[k], a1[k], a2[k], a3[k]
			if c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				d0[j] += c0 * bv
				d1[j] += c1 * bv
				d2[j] += c2 * bv
				d3[j] += c3 * bv
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
	return dst
}

// MatMulTransB computes dst = a·bᵀ without materialising the transpose.
//
//cogarm:zeroalloc
func MatMulTransB(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, b.Rows)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Rows {
			panic("tensor: matmulTransB dst shape mismatch")
		}
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
	return dst
}

// MatMulTransA computes dst = aᵀ·b without materialising the transpose.
//
//cogarm:zeroalloc
func MatMulTransA(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic("tensor: matmulTransA dst shape mismatch")
		}
		dst.Zero()
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += aki * brow[j]
			}
		}
	}
	return dst
}

// Stack concatenates same-shape matrices row-wise into one (len(xs)·Rows)×Cols
// matrix — the batch-major layout the nn batched-inference kernels feed to a
// single fused GEMM instead of one small matmul per window.
func Stack(xs []*Matrix) *Matrix {
	if len(xs) == 0 {
		panic("tensor: Stack of empty batch")
	}
	r, c := xs[0].Rows, xs[0].Cols
	out := New(len(xs)*r, c)
	for i, x := range xs {
		if x.Rows != r || x.Cols != c {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, r, c))
		}
		copy(out.Data[i*r*c:], x.Data)
	}
	return out
}

// SplitRows slices m into m.Rows/rowsPer consecutive views of rowsPer rows
// each, sharing m's storage (no copy) — the inverse of Stack for handing a
// fused kernel's output back to per-window consumers.
func SplitRows(m *Matrix, rowsPer int) []*Matrix {
	if rowsPer < 1 || m.Rows%rowsPer != 0 {
		panic(fmt.Sprintf("tensor: SplitRows %d does not divide %d rows", rowsPer, m.Rows))
	}
	n := m.Rows / rowsPer
	out := make([]*Matrix, n)
	per := rowsPer * m.Cols
	for i := range out {
		out[i] = FromSlice(rowsPer, m.Cols, m.Data[i*per:(i+1)*per])
	}
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Add computes dst = a + b element-wise. dst may alias a or b or be nil.
//
//cogarm:zeroalloc
func Add(dst, a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, a.Cols)
	}
	checkSameShape("Add dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub computes dst = a − b element-wise. dst may alias a or b or be nil.
//
//cogarm:zeroalloc
func Sub(dst, a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, a.Cols)
	}
	checkSameShape("Sub dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Mul computes dst = a ⊙ b (Hadamard product). dst may alias a or b or be nil.
//
//cogarm:zeroalloc
func Mul(dst, a, b *Matrix) *Matrix {
	checkSameShape("Mul", a, b)
	if dst == nil {
		//cogarm:allow zeroalloc -- nil dst selects the unpooled heap path by contract
		dst = New(a.Rows, a.Cols)
	}
	checkSameShape("Mul dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale multiplies every element of m by s in place and returns m.
//
//cogarm:zeroalloc
func Scale(m *Matrix, s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector adds vector v (length Cols) to every row of m in place.
//
//cogarm:zeroalloc
func AddRowVector(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums accumulates the column sums of m into dst (length Cols).
//
//cogarm:zeroalloc
func ColSums(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: ColSums dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			dst[j] += row[j]
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
//
//cogarm:zeroalloc
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
//
//cogarm:zeroalloc
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Softmax writes the softmax of src into dst (same length). It is numerically
// stabilised by subtracting the maximum.
//
//cogarm:zeroalloc
func Softmax(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Softmax length mismatch")
	}
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		u := 1.0 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRows applies Softmax to each row of m in place.
//
//cogarm:zeroalloc
func SoftmaxRows(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		Softmax(row, row)
	}
}

// Argmax returns the index of the maximum element of v (first on ties), or -1
// for an empty slice.
//
//cogarm:zeroalloc
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Mean returns the arithmetic mean of v (0 for empty input).
//
//cogarm:zeroalloc
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
