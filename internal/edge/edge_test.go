package edge

import (
	"testing"
	"time"

	"cognitivearm/internal/models"
)

func TestPrecisionOrdering(t *testing.T) {
	d := JetsonOrinNano()
	w := Workload{MACs: 5_000_000}
	fp32 := d.Latency(Workload{MACs: w.MACs, Precision: FP32})
	fp16 := d.Latency(Workload{MACs: w.MACs, Precision: FP16})
	int8 := d.Latency(Workload{MACs: w.MACs, Precision: INT8})
	if !(int8 < fp16 && fp16 < fp32) {
		t.Fatalf("precision ordering broken: int8=%v fp16=%v fp32=%v", int8, fp16, fp32)
	}
}

func TestSparsityHelpsModestly(t *testing.T) {
	d := JetsonOrinNano()
	dense := d.Latency(Workload{MACs: 10_000_000})
	sparse := d.Latency(Workload{MACs: 10_000_000, Sparsity: 0.7})
	if sparse >= dense {
		t.Fatal("sparsity should reduce latency")
	}
	// But nowhere near the theoretical 3.3×: kernels only partially exploit it.
	if float64(dense)/float64(sparse) > 1.5 {
		t.Fatalf("sparsity speedup unrealistically large: %v vs %v", dense, sparse)
	}
}

func TestOverheadDominatesTinyModels(t *testing.T) {
	d := JetsonOrinNano()
	tiny := d.Latency(Workload{MACs: 100})
	if tiny < time.Duration(d.OverheadSec*float64(time.Second)) {
		t.Fatal("latency below fixed overhead")
	}
}

// TestPaperHeadlineLatencies checks the §V anchor points: the CNN+Transformer
// ensemble lands near 0.075 s, its 70 %-pruned variant near 0.071 s, and the
// int8 variant near 0.036 s on the Jetson profile.
func TestPaperHeadlineLatencies(t *testing.T) {
	d := JetsonOrinNano()
	specs := models.PaperSpecs()
	var macs int64
	for _, s := range specs {
		if s.Family == models.FamilyCNN || s.Family == models.FamilyTransformer {
			macs += models.OpsPerInference(s)
		}
	}
	ens := d.Latency(Workload{MACs: macs}).Seconds()
	pruned := d.Latency(Workload{MACs: macs, Sparsity: 0.7}).Seconds()
	quant := d.Latency(Workload{MACs: macs, Precision: INT8}).Seconds()
	if ens < 0.06 || ens > 0.09 {
		t.Fatalf("ensemble latency %.4f s, paper reports 0.075 s", ens)
	}
	if pruned >= ens {
		t.Fatalf("pruned (%v) should beat dense (%v)", pruned, ens)
	}
	if pruned < 0.06 || pruned > 0.08 {
		t.Fatalf("pruned latency %.4f s, paper reports 0.071 s", pruned)
	}
	if quant < 0.025 || quant > 0.05 {
		t.Fatalf("int8 latency %.4f s, paper reports 0.036 s", quant)
	}
}

func TestSustainedRateAndDeadline(t *testing.T) {
	d := JetsonOrinNano()
	// The paper classifies at 15 Hz; a small CNN must sustain that.
	cnn := models.PaperSpecs()[0]
	w := Workload{MACs: models.OpsPerInference(cnn)}
	if rate := d.SustainedRateHz(w); rate < 15 {
		t.Fatalf("CNN sustains only %.1f Hz, need 15", rate)
	}
	if !d.MeetsDeadline(w, time.Second/15) {
		t.Fatal("CNN should meet the 15 Hz deadline")
	}
	huge := Workload{MACs: 10_000_000_000}
	if d.MeetsDeadline(huge, time.Second/15) {
		t.Fatal("10 GMAC cannot meet 15 Hz on a Jetson Orin Nano profile")
	}
}

func TestEnergyScalesWithLatency(t *testing.T) {
	d := JetsonOrinNano()
	small := d.EnergyJ(Workload{MACs: 1_000_000})
	big := d.EnergyJ(Workload{MACs: 100_000_000})
	if big <= small {
		t.Fatal("more compute must cost more energy")
	}
}

func TestTrainingHostIsFaster(t *testing.T) {
	jetson, a6000 := JetsonOrinNano(), RTXA6000()
	w := Workload{MACs: 50_000_000}
	if a6000.Latency(w) >= jetson.Latency(w) {
		t.Fatal("the A6000 should be much faster than the Jetson")
	}
}

func TestPrecisionString(t *testing.T) {
	if FP32.String() != "fp32" || INT8.String() != "int8" || Precision(9).String() == "" {
		t.Fatal("precision names")
	}
}
