// Package edge models the embedded deployment target. The paper runs
// inference on an NVIDIA Jetson Orin Nano and trains on an RTX A6000; this
// package substitutes an analytic device model: latency is computed from a
// model's multiply-accumulate count, precision, sparsity and a per-device
// efficiency profile, plus a fixed runtime overhead. Profiles are calibrated
// so the paper's headline numbers fall out of the paper's model sizes
// (ensemble 0.075 s, 70 %-pruned 0.071 s, int8 0.036 s — §V), preserving the
// orderings and ratios Figure 11/12 depend on.
package edge

import (
	"fmt"
	"time"
)

// Precision of the deployed weights.
type Precision int

// Supported precisions.
const (
	FP32 Precision = iota
	FP16
	INT8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Device is an analytic latency/energy profile.
type Device struct {
	Name string
	// MACsPerSec is effective fp32 multiply-accumulate throughput for the
	// small-batch, small-model regime of real-time EEG inference (far below
	// datasheet peak).
	MACsPerSec float64
	// OverheadSec is fixed per-inference runtime cost (kernel launches,
	// memory transfers, framework dispatch).
	OverheadSec float64
	// PrecisionSpeedup scales throughput per precision.
	PrecisionSpeedup map[Precision]float64
	// SparsitySpeedupAt70 is the measured speedup factor at 70 % sparsity
	// (structured-sparse kernels do not reach the theoretical 3.3×).
	SparsitySpeedupAt70 float64
	// IdlePowerW and PowerPerMACW model energy: E = t·(idle + util power).
	IdlePowerW   float64
	ActivePowerW float64
}

// JetsonOrinNano returns the deployment profile used throughout the paper's
// evaluation.
func JetsonOrinNano() Device {
	return Device{
		Name:        "jetson-orin-nano",
		MACsPerSec:  1.49e9, // effective small-batch GEMV throughput
		OverheadSec: 0.012,
		PrecisionSpeedup: map[Precision]float64{
			FP32: 1.0,
			FP16: 1.7,
			INT8: 2.6,
		},
		SparsitySpeedupAt70: 1.06,
		IdlePowerW:          4.0,
		ActivePowerW:        10.0,
	}
}

// RTXA6000 returns the training-host profile (used for training-time
// estimates only; the paper trains on this GPU).
func RTXA6000() Device {
	return Device{
		Name:        "rtx-a6000",
		MACsPerSec:  4.5e9,
		OverheadSec: 0.002,
		PrecisionSpeedup: map[Precision]float64{
			FP32: 1.0, FP16: 2.0, INT8: 3.4,
		},
		SparsitySpeedupAt70: 1.1,
		IdlePowerW:          25,
		ActivePowerW:        250,
	}
}

// Workload describes one inference call.
type Workload struct {
	MACs      int64
	Precision Precision
	// Sparsity is the fraction of weights that are zero (0–1); kernels
	// exploit only part of it.
	Sparsity float64
}

// Latency returns the modelled single-inference latency.
func (d Device) Latency(w Workload) time.Duration {
	speed := d.MACsPerSec
	if f, ok := d.PrecisionSpeedup[w.Precision]; ok {
		speed *= f
	}
	// Sparsity speedup interpolates linearly between 1× at 0 % and the
	// profiled factor at 70 %, saturating beyond.
	sp := 1.0
	if w.Sparsity > 0 {
		frac := w.Sparsity / 0.7
		if frac > 1.3 {
			frac = 1.3
		}
		sp = 1 + (d.SparsitySpeedupAt70-1)*frac
	}
	sec := d.OverheadSec + float64(w.MACs)/(speed*sp)
	return time.Duration(sec * float64(time.Second))
}

// EnergyJ returns the modelled per-inference energy in joules.
func (d Device) EnergyJ(w Workload) float64 {
	t := d.Latency(w).Seconds()
	return t * d.ActivePowerW
}

// SustainedRateHz is the maximum classification rate the device sustains for
// this workload (the control loop targets 15 Hz — §IV-A3).
func (d Device) SustainedRateHz(w Workload) float64 {
	t := d.Latency(w).Seconds()
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// MeetsDeadline reports whether the workload fits a periodic deadline.
func (d Device) MeetsDeadline(w Workload, period time.Duration) bool {
	return d.Latency(w) <= period
}
