package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3)
	// 8 correct, 2 wrong
	for i := 0; i < 8; i++ {
		cm.Add(i%3, i%3)
	}
	cm.Add(0, 1)
	cm.Add(2, 0)
	if got := cm.Accuracy(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	rec := cm.PerClassRecall()
	if rec[0] != 3.0/4 {
		t.Fatalf("class 0 recall %v", rec[0])
	}
	if !strings.Contains(cm.String(), "actual") {
		t.Fatal("String should render header")
	}
}

func TestConfusionEmpty(t *testing.T) {
	if NewConfusionMatrix(3).Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMeanStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("mean %v", Mean(v))
	}
	// sample std uses n-1
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(SampleStd(v)-want) > 1e-12 {
		t.Fatalf("std %v want %v", SampleStd(v), want)
	}
	if SampleStd([]float64{1}) != 0 {
		t.Fatal("single-element std should be 0")
	}
}

func TestPairedTTestIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	tstat, p, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tstat != 0 || p != 1 {
		t.Fatalf("identical samples: t=%v p=%v", tstat, p)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	a := []float64{0.90, 0.91, 0.89, 0.92, 0.90}
	b := []float64{0.60, 0.62, 0.58, 0.61, 0.59}
	tstat, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tstat < 10 {
		t.Fatalf("t statistic %v too small for this separation", tstat)
	}
	if p > 0.01 {
		t.Fatalf("p-value %v should be significant", p)
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// diffs = [1,2,3]: mean 2, sd 1, t = 2/(1/sqrt(3)) = 3.4641
	a := []float64{2, 4, 6}
	b := []float64{1, 2, 3}
	tstat, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tstat-3.4641016) > 1e-5 {
		t.Fatalf("t=%v want 3.4641", tstat)
	}
	// two-sided p for t=3.464, df=2 is ~0.0742
	if math.Abs(p-0.0742) > 0.005 {
		t.Fatalf("p=%v want ~0.0742", p)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single pair should error")
	}
}

func TestConfidenceInterval(t *testing.T) {
	v := []float64{0.9, 0.88, 0.92, 0.91, 0.89}
	lo, hi := ConfidenceInterval(v, 0.91)
	mu := Mean(v)
	if lo >= mu || hi <= mu {
		t.Fatalf("interval [%v,%v] should straddle mean %v", lo, hi, mu)
	}
	lo95, hi95 := ConfidenceInterval(v, 0.95)
	if hi95-lo95 <= hi-lo {
		t.Fatal("95% interval should be wider than 91%")
	}
	l, h := ConfidenceInterval([]float64{5}, 0.95)
	if l != 5 || h != 5 {
		t.Fatal("single sample interval should collapse")
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.959964, 0.025: -1.959964, 0.95: 1.644854}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Fatalf("quantile(%v)=%v want %v", p, got, want)
		}
	}
}

func TestStudentTCDFSanity(t *testing.T) {
	if got := studentTCDF(0, 5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF(0)=%v", got)
	}
	// t=2.015, df=5 → 0.95 (one-sided critical value)
	if got := studentTCDF(2.015, 5); math.Abs(got-0.95) > 0.002 {
		t.Fatalf("CDF(2.015, df=5)=%v want ~0.95", got)
	}
	if studentTCDF(10, 5) < 0.999 {
		t.Fatal("extreme t should be ~1")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	c := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(a, c)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation: r=%v", r)
	}
	if _, err := Pearson(a, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("constant input should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("short input should error")
	}
}

func TestVarianceReduction(t *testing.T) {
	if got := VarianceReduction([]float64{1, 1, 1}, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("reduction %v", got)
	}
	if VarianceReduction([]float64{0, 0}, 0) != 0 {
		t.Fatal("degenerate case should be 0")
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	v := []float64{5, 1, 3, 2, 4} // unsorted on purpose; input must not be mutated
	if got := Percentile(v, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := Percentile(v, 1); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	// Linear interpolation: p25 of 1..5 sits at index 1 exactly.
	if got := Percentile(v, 0.25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
	if got := Percentile([]float64{10, 20}, 0.75); got != 17.5 {
		t.Fatalf("p75 of {10,20} = %v, want 17.5", got)
	}
	if v[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
	if got := PercentileSorted([]float64{1, 2, 3, 4, 5}, 0.99); got != 4.96 {
		t.Fatalf("p99 = %v, want 4.96", got)
	}
}
