// Package metrics provides the statistical machinery of the paper's §V-A:
// accuracy with confusion matrices, mean/stddev across subjects, paired
// t-tests, confidence intervals, and the Pearson correlation coefficient
// used to score ASR transcription quality (Fig. 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	M       [][]int
}

// NewConfusionMatrix creates a k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	return &ConfusionMatrix{Classes: k, M: m}
}

// Add records one (actual, predicted) pair.
func (c *ConfusionMatrix) Add(actual, predicted int) {
	c.M[actual][predicted]++
}

// Accuracy returns the overall fraction correct.
func (c *ConfusionMatrix) Accuracy() float64 {
	var correct, total int
	for i := range c.M {
		for j, n := range c.M[i] {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall for every class (NaN-free: empty classes
// report 0).
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i := range c.M {
		var rowTotal int
		for _, n := range c.M[i] {
			rowTotal += n
		}
		if rowTotal > 0 {
			out[i] = float64(c.M[i][i]) / float64(rowTotal)
		}
	}
	return out
}

// String renders the matrix with row=actual, col=predicted.
func (c *ConfusionMatrix) String() string {
	s := "actual\\pred"
	for j := 0; j < c.Classes; j++ {
		s += fmt.Sprintf("\t%d", j)
	}
	s += "\n"
	for i := range c.M {
		s += fmt.Sprintf("%d", i)
		for _, n := range c.M[i] {
			s += fmt.Sprintf("\t%d", n)
		}
		s += "\n"
	}
	return s
}

// Mean returns the arithmetic mean.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// SampleStd returns the Bessel-corrected sample standard deviation.
func SampleStd(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// Percentile returns the p-quantile (p in [0,1]) of v with linear
// interpolation between order statistics — the estimator behind the serving
// fleet's p50/p99 tick-latency snapshots. The input is not modified.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for inputs already in ascending order,
// avoiding the copy+sort when the caller computes several quantiles from one
// sample set.
func PercentileSorted(sorted []float64, p float64) float64 {
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// PairedTTest computes the paired t statistic and two-sided p-value for two
// matched samples (e.g. two models' per-subject accuracies, §V-A). It
// returns an error for fewer than two pairs or mismatched lengths.
func PairedTTest(a, b []float64) (tstat, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("metrics: paired samples differ in length (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, 0, fmt.Errorf("metrics: need at least 2 pairs, got %d", n)
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	sd := SampleStd(diffs)
	if sd == 0 {
		if Mean(diffs) == 0 {
			return 0, 1, nil
		}
		return math.Inf(1), 0, nil
	}
	tstat = Mean(diffs) / (sd / math.Sqrt(float64(n)))
	p = 2 * (1 - studentTCDF(math.Abs(tstat), float64(n-1)))
	return tstat, p, nil
}

// studentTCDF evaluates the Student-t CDF via the regularised incomplete
// beta function.
func studentTCDF(t, df float64) float64 {
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// regIncBeta computes the regularised incomplete beta I_x(a,b) using the
// continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const eps = 1e-14
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			num = -((a + float64(m)) * (a + b + float64(m)) * x) / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ConfidenceInterval returns the mean ± half-width interval at the given
// confidence level (e.g. 0.91 as in §V-A) using the normal approximation.
func ConfidenceInterval(v []float64, level float64) (lo, hi float64) {
	mu := Mean(v)
	if len(v) < 2 {
		return mu, mu
	}
	se := SampleStd(v) / math.Sqrt(float64(len(v)))
	z := normQuantile(0.5 + level/2)
	return mu - z*se, mu + z*se
}

// normQuantile is the standard normal inverse CDF (Acklam's approximation).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Pearson returns the Pearson correlation coefficient between two
// equal-length samples — the PCC score of the ASR study (Fig. 7).
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, fmt.Errorf("metrics: pearson needs two equal samples of length >= 2")
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0, fmt.Errorf("metrics: pearson undefined for constant input")
	}
	return num / math.Sqrt(da*db), nil
}

// VarianceReduction quantifies how much an ensemble's prediction variance
// shrinks relative to the mean variance of its members (§V-A "variance
// reduction was analyzed").
func VarianceReduction(memberVars []float64, ensembleVar float64) float64 {
	mv := Mean(memberVars)
	if mv == 0 {
		return 0
	}
	return 1 - ensembleVar/mv
}
