package ensemble

import (
	"math"
	"testing"

	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// fixedClf is a stub classifier returning constant probabilities.
type fixedClf struct {
	probs  []float64
	params int
	window int
	name   string
}

func (f *fixedClf) Predict(x *tensor.Matrix) int     { return tensor.Argmax(f.probs) }
func (f *fixedClf) Probs(x *tensor.Matrix) []float64 { return append([]float64(nil), f.probs...) }
func (f *fixedClf) NumParams() int                   { return f.params }
func (f *fixedClf) WindowSize() int                  { return f.window }
func (f *fixedClf) Name() string                     { return f.name }

func TestNewRequiresMembers(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty ensemble should error")
	}
}

func TestSoftVotingAverages(t *testing.T) {
	a := &fixedClf{probs: []float64{0.8, 0.1, 0.1}, params: 10, window: 4, name: "a"}
	b := &fixedClf{probs: []float64{0.2, 0.7, 0.1}, params: 20, window: 4, name: "b"}
	e, err := New(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 2)
	p := e.Probs(x)
	want := []float64{0.5, 0.4, 0.1}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("probs %v want %v", p, want)
		}
	}
	if e.Predict(x) != 0 {
		t.Fatalf("predict %d", e.Predict(x))
	}
	if e.NumParams() != 30 {
		t.Fatalf("params %d", e.NumParams())
	}
}

func TestEnsembleOutvotesBadMember(t *testing.T) {
	good1 := &fixedClf{probs: []float64{0.1, 0.8, 0.1}, window: 4, name: "g1"}
	good2 := &fixedClf{probs: []float64{0.2, 0.6, 0.2}, window: 4, name: "g2"}
	bad := &fixedClf{probs: []float64{0.6, 0.2, 0.2}, window: 4, name: "bad"}
	e, _ := New(good1, good2, bad)
	if e.Predict(tensor.New(4, 2)) != 1 {
		t.Fatal("majority should win soft vote")
	}
}

func TestWindowSizeIsMax(t *testing.T) {
	a := &fixedClf{probs: []float64{1, 0}, window: 90, name: "a"}
	b := &fixedClf{probs: []float64{1, 0}, window: 190, name: "b"}
	e, _ := New(a, b)
	if e.WindowSize() != 190 {
		t.Fatalf("window %d", e.WindowSize())
	}
}

func TestMemberInputSlicing(t *testing.T) {
	x := tensor.New(6, 2)
	for i := 0; i < 6; i++ {
		x.Set(i, 0, float64(i))
	}
	v := memberInput(x, 3)
	if v.Rows != 3 || v.At(0, 0) != 3 || v.At(2, 0) != 5 {
		t.Fatalf("trailing slice wrong: %+v", v.Data)
	}
	if memberInput(x, 6) != x {
		t.Fatal("exact size should return the same matrix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short input should panic")
		}
	}()
	memberInput(x, 10)
}

func TestCombinations(t *testing.T) {
	pool := []models.Classifier{
		&fixedClf{probs: []float64{1, 0}, window: 4, name: "a"},
		&fixedClf{probs: []float64{1, 0}, window: 4, name: "b"},
		&fixedClf{probs: []float64{1, 0}, window: 4, name: "c"},
		&fixedClf{probs: []float64{1, 0}, window: 4, name: "d"},
	}
	combos := Combinations(pool)
	// C(4,2)+C(4,3)+C(4,4) = 6+4+1 = 11
	if len(combos) != 11 {
		t.Fatalf("combinations %d want 11", len(combos))
	}
	names := map[string]bool{}
	for _, e := range combos {
		if len(e.Members) < 2 {
			t.Fatal("singleton leaked into combinations")
		}
		if names[e.Name()] {
			t.Fatalf("duplicate combination %s", e.Name())
		}
		names[e.Name()] = true
	}
}
