package ensemble

import (
	"bytes"
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/tensor"
)

// TestEnsembleSaveLoadRoundTrip exercises the codec this package registers
// with models: a mixed NN+forest ensemble serialises as its members and
// reassembles with bitwise-identical soft votes.
func TestEnsembleSaveLoadRoundTrip(t *testing.T) {
	const window = 40
	nnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: window, Optimizer: "adam", LR: 1e-3,
		ConvLayers: 1, Filters: 4, Kernel: 5, Stride: 2, Pool: "none"}
	net, err := models.BuildNet(nnSpec, 13)
	if err != nil {
		t.Fatal(err)
	}
	cnn := &models.NNClassifier{Net: net, Spec: nnSpec}

	rng := tensor.NewRNG(21)
	nFeats := len(featVec(window, rng))
	X := make([][]float64, 80)
	y := make([]int, len(X))
	for i := range X {
		X[i] = make([]float64, nFeats)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = i % eeg.NumActions
	}
	forest, err := rf.Fit(X, y, eeg.NumActions, rf.Config{Trees: 5, MaxDepth: 4, MinSamplesSplit: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rfc := &models.RFClassifier{Forest: forest, Spec: models.Spec{Family: models.FamilyRF, WindowSize: window, Trees: 5, MaxDepth: 4}}

	orig, err := New(cnn, rfc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := models.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ens, ok := loaded.(*Ensemble)
	if !ok {
		t.Fatalf("loaded %T, want *Ensemble", loaded)
	}
	if len(ens.Members) != 2 {
		t.Fatalf("%d members after round trip, want 2", len(ens.Members))
	}
	if ens.Name() != orig.Name() {
		t.Fatalf("name %q, want %q", ens.Name(), orig.Name())
	}
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(window, eeg.NumChannels)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		p1, p2 := orig.Probs(x), ens.Probs(x)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("ensemble probs diverge after round trip: %v vs %v", p1, p2)
			}
		}
	}
}

// featVec returns a representative feature vector so the test forest is fit
// over the same dimensionality RFClassifier extracts at predict time.
func featVec(window int, rng *tensor.RNG) []float64 {
	x := tensor.New(window, eeg.NumChannels)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return dataset.FeatureVector(dataset.Window{Data: x})
}
