// Package ensemble implements the soft-voting model combinations of
// §III-C1/§V: any subset of the trained CNN/LSTM/Transformer/RF classifiers
// averages its members' class probabilities. The paper's Figure 11 sweeps
// every combination and selects CNN+Transformer as the accuracy/latency
// sweet spot.
package ensemble

import (
	"fmt"
	"sort"
	"strings"

	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// Ensemble soft-votes over member classifiers. Members may expect different
// window sizes; each member sees the trailing slice of the input window that
// matches its expected length, so the ensemble's WindowSize is the maximum.
type Ensemble struct {
	Members []models.Classifier
}

// init plugs Ensemble into the generic models.Save/Load format: an ensemble
// serialises as its members (recursively), and deserialises by reassembling
// them with New. Importing this package — directly or blank — is what makes
// checkpointed ensembles loadable.
func init() {
	models.RegisterEnsembleCodec(models.EnsembleCodec{
		Members: func(c models.Classifier) ([]models.Classifier, bool) {
			e, ok := c.(*Ensemble)
			if !ok {
				return nil, false
			}
			return e.Members, true
		},
		Build: func(members []models.Classifier) (models.Classifier, error) {
			return New(members...)
		},
	})
}

// New creates an ensemble. At least one member is required.
func New(members ...models.Classifier) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: needs at least one member")
	}
	return &Ensemble{Members: members}, nil
}

// memberInput returns the view of x sized for member m: the most recent
// m.WindowSize() rows.
func memberInput(x *tensor.Matrix, want int) *tensor.Matrix {
	if x.Rows == want {
		return x
	}
	if x.Rows < want {
		panic(fmt.Sprintf("ensemble: input has %d rows, member needs %d", x.Rows, want))
	}
	start := x.Rows - want
	return tensor.FromSlice(want, x.Cols, x.Data[start*x.Cols:])
}

// Probs implements models.Classifier.
func (e *Ensemble) Probs(x *tensor.Matrix) []float64 {
	var out []float64
	for _, m := range e.Members {
		p := m.Probs(memberInput(x, m.WindowSize()))
		if out == nil {
			out = make([]float64, len(p))
		}
		for i := range p {
			out[i] += p[i]
		}
	}
	inv := 1 / float64(len(e.Members))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Predict implements models.Classifier.
func (e *Ensemble) Predict(x *tensor.Matrix) int {
	return tensor.Argmax(e.Probs(x))
}

// NumParams implements models.Classifier (sum of members).
func (e *Ensemble) NumParams() int {
	total := 0
	for _, m := range e.Members {
		total += m.NumParams()
	}
	return total
}

// WindowSize implements models.Classifier: the largest member requirement.
func (e *Ensemble) WindowSize() int {
	w := 0
	for _, m := range e.Members {
		if mw := m.WindowSize(); mw > w {
			w = mw
		}
	}
	return w
}

// Name implements models.Classifier.
func (e *Ensemble) Name() string {
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Name()
	}
	sort.Strings(names)
	return "ensemble{" + strings.Join(names, "+") + "}"
}

// Combinations enumerates every subset of the pool with at least two members
// — the candidate set of Figure 11. Member order within a combination
// follows pool order; the subset bitmask is returned alongside for labelling.
func Combinations(pool []models.Classifier) []*Ensemble {
	var out []*Ensemble
	n := len(pool)
	for mask := 1; mask < 1<<n; mask++ {
		if popcount(mask) < 2 {
			continue
		}
		var members []models.Classifier
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, pool[i])
			}
		}
		e, _ := New(members...)
		out = append(out, e)
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
