// Package evo implements the paper's evolutionary design-space exploration
// (§III-C2, Algorithm 1): a population of model specs evolves under
// tournament selection, crossover and mutation; fitness balances normalised
// validation accuracy against normalised parameter count; the final
// generation yields a Pareto front and a best-model rule with an accuracy
// threshold α.
package evo

import (
	"fmt"
	"sort"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// Config mirrors Algorithm 1's inputs.
type Config struct {
	PopulationSize int
	Generations    int
	CrossoverRate  float64
	MutationRate   float64
	TournamentSize int
	// AccuracyWeight / ParamsWeight are w_A and w_P in the fitness score.
	AccuracyWeight float64
	ParamsWeight   float64
	// AccuracyThreshold is α for best-model selection.
	AccuracyThreshold float64
	// Families restricts the search to given families (nil = all).
	Families []models.Family
	// Train controls the per-candidate training budget.
	Train models.TrainOptions
	Seed  uint64
	// Logf, when set, receives per-generation progress lines.
	Logf func(string, ...any)
}

// DefaultConfig returns a CPU-scale configuration of Algorithm 1.
func DefaultConfig() Config {
	return Config{
		PopulationSize:    10,
		Generations:       4,
		CrossoverRate:     0.6,
		MutationRate:      0.35,
		TournamentSize:    3,
		AccuracyWeight:    0.7,
		ParamsWeight:      0.3,
		AccuracyThreshold: 0.85,
		Train:             models.TrainOptions{Epochs: 5, BatchSize: 32, Patience: 2},
		Seed:              1,
	}
}

// Candidate is one evaluated genome.
type Candidate struct {
	Spec     models.Spec
	Accuracy float64
	Params   int
	Fitness  float64
	Clf      models.Classifier
}

// SearchSpace defines the hyperparameter axes of Table III.
type SearchSpace struct {
	WindowSizes   []int
	LearningRates []float64
	Dropouts      []float64

	// CNN axes
	ConvLayers    []int
	Filters       []int
	Kernels       []int
	Strides       []int
	Pools         []string
	CNNOptimizers []string

	// LSTM axes
	LSTMLayers     []int
	Hidden         []int
	LSTMOptimizers []string

	// Transformer axes
	TFLayers []int
	Heads    []int
	DModels  []int
	FFDims   []int

	// RF axes
	Trees     []int
	MaxDepths []int
}

// PaperSearchSpace reproduces Table III. Widths are the paper's; note the
// compute caveat in DESIGN.md (pure-Go training favours the smaller end).
func PaperSearchSpace() SearchSpace {
	return SearchSpace{
		WindowSizes:    []int{100, 130, 160, 190, 200},
		LearningRates:  []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5},
		Dropouts:       []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		ConvLayers:     []int{1, 2, 3, 4},
		Filters:        []int{8, 16, 32},
		Kernels:        []int{3, 5},
		Strides:        []int{1, 2},
		Pools:          []string{"none", "max", "avg"},
		CNNOptimizers:  []string{"adam", "sgd"},
		LSTMLayers:     []int{1, 2, 3},
		Hidden:         []int{64, 128, 256},
		LSTMOptimizers: []string{"adam", "rmsprop"},
		TFLayers:       []int{2, 3, 4, 6},
		Heads:          []int{2, 4, 8},
		DModels:        []int{64, 128, 256},
		FFDims:         []int{128, 256, 512},
		Trees:          []int{100, 200, 300, 400, 500},
		MaxDepths:      []int{10, 20, 30, 0},
	}
}

// FastSearchSpace is the compute-scaled space used by tests and default
// benches: identical axes, smaller widths.
func FastSearchSpace() SearchSpace {
	s := PaperSearchSpace()
	s.WindowSizes = []int{100, 130, 160, 190}
	s.LearningRates = []float64{3e-3, 1e-3}
	s.ConvLayers = []int{1, 2}
	s.Filters = []int{4, 8, 16, 32}
	s.Hidden = []int{8, 16, 32}
	s.LSTMLayers = []int{1, 2}
	s.TFLayers = []int{1, 2}
	s.Heads = []int{2, 4}
	s.DModels = []int{16, 32}
	s.FFDims = []int{32, 64}
	s.Trees = []int{20, 50, 100, 200}
	s.MaxDepths = []int{6, 10, 20, 0}
	return s
}

func pickInt(rng *tensor.RNG, v []int) int       { return v[rng.Intn(len(v))] }
func pickF(rng *tensor.RNG, v []float64) float64 { return v[rng.Intn(len(v))] }
func pickS(rng *tensor.RNG, v []string) string   { return v[rng.Intn(len(v))] }

// RandomSpec samples one genome of the given family from the space.
func (sp SearchSpace) RandomSpec(f models.Family, rng *tensor.RNG) models.Spec {
	s := models.Spec{Family: f, WindowSize: pickInt(rng, sp.WindowSizes)}
	switch f {
	case models.FamilyCNN:
		s.Optimizer = pickS(rng, sp.CNNOptimizers)
		s.LR = pickF(rng, sp.LearningRates)
		s.Dropout = pickF(rng, sp.Dropouts)
		s.ConvLayers = pickInt(rng, sp.ConvLayers)
		s.Filters = pickInt(rng, sp.Filters)
		s.Kernel = pickInt(rng, sp.Kernels)
		s.Stride = pickInt(rng, sp.Strides)
		s.Pool = pickS(rng, sp.Pools)
	case models.FamilyLSTM:
		s.Optimizer = pickS(rng, sp.LSTMOptimizers)
		s.LR = pickF(rng, sp.LearningRates)
		s.Dropout = pickF(rng, sp.Dropouts)
		s.LSTMLayers = pickInt(rng, sp.LSTMLayers)
		s.Hidden = pickInt(rng, sp.Hidden)
	case models.FamilyTransformer:
		s.Optimizer = "adamw"
		s.LR = pickF(rng, sp.LearningRates)
		s.Dropout = pickF(rng, sp.Dropouts)
		s.TFLayers = pickInt(rng, sp.TFLayers)
		s.Heads = pickInt(rng, sp.Heads)
		// DModel must divide by heads.
		for {
			s.DModel = pickInt(rng, sp.DModels)
			if s.DModel%s.Heads == 0 {
				break
			}
		}
		s.FFDim = pickInt(rng, sp.FFDims)
	case models.FamilyRF:
		s.Trees = pickInt(rng, sp.Trees)
		s.MaxDepth = pickInt(rng, sp.MaxDepths)
	}
	return s
}

// Mutate re-samples one random axis of the spec.
func (sp SearchSpace) Mutate(s models.Spec, rng *tensor.RNG) models.Spec {
	out := s
	switch s.Family {
	case models.FamilyCNN:
		switch rng.Intn(8) {
		case 0:
			out.WindowSize = pickInt(rng, sp.WindowSizes)
		case 1:
			out.LR = pickF(rng, sp.LearningRates)
		case 2:
			out.Dropout = pickF(rng, sp.Dropouts)
		case 3:
			out.ConvLayers = pickInt(rng, sp.ConvLayers)
		case 4:
			out.Filters = pickInt(rng, sp.Filters)
		case 5:
			out.Kernel = pickInt(rng, sp.Kernels)
		case 6:
			out.Stride = pickInt(rng, sp.Strides)
		case 7:
			out.Pool = pickS(rng, sp.Pools)
		}
	case models.FamilyLSTM:
		switch rng.Intn(5) {
		case 0:
			out.WindowSize = pickInt(rng, sp.WindowSizes)
		case 1:
			out.LR = pickF(rng, sp.LearningRates)
		case 2:
			out.Dropout = pickF(rng, sp.Dropouts)
		case 3:
			out.LSTMLayers = pickInt(rng, sp.LSTMLayers)
		case 4:
			out.Hidden = pickInt(rng, sp.Hidden)
		}
	case models.FamilyTransformer:
		switch rng.Intn(6) {
		case 0:
			out.WindowSize = pickInt(rng, sp.WindowSizes)
		case 1:
			out.LR = pickF(rng, sp.LearningRates)
		case 2:
			out.Dropout = pickF(rng, sp.Dropouts)
		case 3:
			out.TFLayers = pickInt(rng, sp.TFLayers)
		case 4:
			for {
				h := pickInt(rng, sp.Heads)
				if out.DModel%h == 0 {
					out.Heads = h
					break
				}
			}
		case 5:
			out.FFDim = pickInt(rng, sp.FFDims)
		}
	case models.FamilyRF:
		if rng.Intn(2) == 0 {
			out.Trees = pickInt(rng, sp.Trees)
		} else {
			out.MaxDepth = pickInt(rng, sp.MaxDepths)
		}
		if rng.Intn(3) == 0 {
			out.WindowSize = pickInt(rng, sp.WindowSizes)
		}
	}
	return out
}

// Crossover mixes two same-family parents field-wise (uniform crossover).
// Cross-family pairs return parent a unchanged.
func Crossover(a, b models.Spec, rng *tensor.RNG) models.Spec {
	if a.Family != b.Family {
		return a
	}
	c := a
	flip := func() bool { return rng.Intn(2) == 0 }
	if flip() {
		c.WindowSize = b.WindowSize
	}
	if flip() {
		c.LR = b.LR
	}
	if flip() {
		c.Dropout = b.Dropout
	}
	if flip() {
		c.Optimizer = b.Optimizer
	}
	switch a.Family {
	case models.FamilyCNN:
		if flip() {
			c.ConvLayers = b.ConvLayers
		}
		if flip() {
			c.Filters = b.Filters
		}
		if flip() {
			c.Kernel = b.Kernel
		}
		if flip() {
			c.Stride = b.Stride
		}
		if flip() {
			c.Pool = b.Pool
		}
	case models.FamilyLSTM:
		if flip() {
			c.LSTMLayers = b.LSTMLayers
		}
		if flip() {
			c.Hidden = b.Hidden
		}
	case models.FamilyTransformer:
		if flip() {
			c.TFLayers = b.TFLayers
		}
		if flip() {
			c.FFDim = b.FFDim
		}
		if flip() && c.DModel%b.Heads == 0 {
			c.Heads = b.Heads
		}
		if flip() && b.DModel%c.Heads == 0 {
			c.DModel = b.DModel
		}
	case models.FamilyRF:
		if flip() {
			c.Trees = b.Trees
		}
		if flip() {
			c.MaxDepth = b.MaxDepth
		}
	}
	return c
}

// Fitness computes the paper's scoring function over a population:
// S = wA·(A−minA)/(maxA−minA) − wP·(P−minP)/(maxP−minP).
func Fitness(pop []Candidate, wA, wP float64) {
	if len(pop) == 0 {
		return
	}
	minA, maxA := pop[0].Accuracy, pop[0].Accuracy
	minP, maxP := float64(pop[0].Params), float64(pop[0].Params)
	for _, c := range pop[1:] {
		if c.Accuracy < minA {
			minA = c.Accuracy
		}
		if c.Accuracy > maxA {
			maxA = c.Accuracy
		}
		p := float64(c.Params)
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	rangeA, rangeP := maxA-minA, maxP-minP
	for i := range pop {
		var na, np float64
		if rangeA > 0 {
			na = (pop[i].Accuracy - minA) / rangeA
		}
		if rangeP > 0 {
			np = (float64(pop[i].Params) - minP) / rangeP
		}
		pop[i].Fitness = wA*na - wP*np
	}
}

// ParetoFront returns the non-dominated candidates (maximise accuracy,
// minimise params), sorted by ascending parameter count.
func ParetoFront(pop []Candidate) []Candidate {
	var front []Candidate
	for i, c := range pop {
		dominated := false
		for j, d := range pop {
			if i == j {
				continue
			}
			if d.Accuracy > c.Accuracy && d.Params <= c.Params {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Params != front[j].Params {
			return front[i].Params < front[j].Params
		}
		return front[i].Accuracy > front[j].Accuracy
	})
	return front
}

// BestModel applies the paper's selection rule: the smallest Pareto model
// meeting the accuracy threshold α, else the most accurate one.
func BestModel(front []Candidate, alpha float64) (Candidate, error) {
	if len(front) == 0 {
		return Candidate{}, fmt.Errorf("evo: empty Pareto front")
	}
	best := -1
	for i, c := range front {
		if c.Accuracy >= alpha {
			if best < 0 || c.Params < front[best].Params {
				best = i
			}
		}
	}
	if best >= 0 {
		return front[best], nil
	}
	best = 0
	for i, c := range front {
		if c.Accuracy > front[best].Accuracy {
			best = i
		}
	}
	return front[best], nil
}

// Result bundles a finished search.
type Result struct {
	Population []Candidate // final generation, evaluated
	History    [][]Candidate
	Front      []Candidate
	Best       Candidate
}

// Search runs Algorithm 1. Windows must be labelled data grouped per window
// size: the provided builder is invoked lazily the first time a window size
// is needed, letting the search sweep the window axis without precomputing
// every segmentation.
func Search(cfg Config, data func(windowSize int) (train, val []dataset.Window, err error)) (*Result, error) {
	if cfg.PopulationSize < 2 {
		return nil, fmt.Errorf("evo: population size %d too small", cfg.PopulationSize)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	space := FastSearchSpace()
	families := cfg.Families
	if len(families) == 0 {
		families = models.Families()
	}
	rng := tensor.NewRNG(cfg.Seed + 0xEE0)
	cache := map[int][2][]dataset.Window{}
	getData := func(w int) ([]dataset.Window, []dataset.Window, error) {
		if d, ok := cache[w]; ok {
			return d[0], d[1], nil
		}
		tr, va, err := data(w)
		if err != nil {
			return nil, nil, err
		}
		cache[w] = [2][]dataset.Window{tr, va}
		return tr, va, nil
	}

	evaluate := func(s models.Spec) (Candidate, error) {
		tr, va, err := getData(s.WindowSize)
		if err != nil {
			return Candidate{}, err
		}
		opt := cfg.Train
		opt.Seed = rng.Uint64()
		clf, res, err := models.Train(s, tr, va, opt)
		if err != nil {
			return Candidate{}, err
		}
		return Candidate{Spec: s, Accuracy: res.ValAcc, Params: clf.NumParams(), Clf: clf}, nil
	}

	// Initial population: round-robin over families for coverage.
	pop := make([]Candidate, 0, cfg.PopulationSize)
	for i := 0; i < cfg.PopulationSize; i++ {
		f := families[i%len(families)]
		spec := space.RandomSpec(f, rng)
		c, err := evaluate(spec)
		if err != nil {
			// Invalid genome (e.g. collapsing conv stack): resample.
			i--
			continue
		}
		pop = append(pop, c)
	}

	res := &Result{}
	for g := 0; g < cfg.Generations; g++ {
		Fitness(pop, cfg.AccuracyWeight, cfg.ParamsWeight)
		res.History = append(res.History, append([]Candidate(nil), pop...))
		logf("generation %d: best fitness %.3f", g, maxFitness(pop))

		next := make([]Candidate, 0, cfg.PopulationSize)
		// Elitism: carry the single fittest genome forward unchanged.
		next = append(next, fittest(pop))
		for len(next) < cfg.PopulationSize {
			p1 := tournament(pop, cfg.TournamentSize, rng)
			child := p1.Spec
			if rng.Float64() < cfg.CrossoverRate {
				p2 := tournament(pop, cfg.TournamentSize, rng)
				child = Crossover(child, p2.Spec, rng)
			}
			if rng.Float64() < cfg.MutationRate {
				child = space.Mutate(child, rng)
			}
			c, err := evaluate(child)
			if err != nil {
				continue
			}
			next = append(next, c)
		}
		pop = next
	}
	Fitness(pop, cfg.AccuracyWeight, cfg.ParamsWeight)
	res.Population = pop
	res.Front = ParetoFront(pop)
	best, err := BestModel(res.Front, cfg.AccuracyThreshold)
	if err != nil {
		return nil, err
	}
	res.Best = best
	return res, nil
}

func maxFitness(pop []Candidate) float64 {
	best := pop[0].Fitness
	for _, c := range pop[1:] {
		if c.Fitness > best {
			best = c.Fitness
		}
	}
	return best
}

func fittest(pop []Candidate) Candidate {
	best := pop[0]
	for _, c := range pop[1:] {
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

func tournament(pop []Candidate, k int, rng *tensor.RNG) Candidate {
	if k < 1 {
		k = 1
	}
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}
