package evo

import (
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

func TestFitnessNormalisation(t *testing.T) {
	pop := []Candidate{
		{Accuracy: 0.9, Params: 1000},
		{Accuracy: 0.5, Params: 100},
		{Accuracy: 0.7, Params: 550},
	}
	Fitness(pop, 0.7, 0.3)
	// Highest accuracy but largest params: 0.7·1 − 0.3·1 = 0.4
	if diff := pop[0].Fitness - 0.4; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("fitness[0]=%v want 0.4", pop[0].Fitness)
	}
	// Lowest accuracy, smallest params: 0 − 0 = 0
	if pop[1].Fitness != 0 {
		t.Fatalf("fitness[1]=%v want 0", pop[1].Fitness)
	}
}

func TestFitnessDegenerate(t *testing.T) {
	pop := []Candidate{{Accuracy: 0.5, Params: 10}, {Accuracy: 0.5, Params: 10}}
	Fitness(pop, 0.7, 0.3)
	for _, c := range pop {
		if c.Fitness != 0 {
			t.Fatalf("identical population should have zero fitness, got %v", c.Fitness)
		}
	}
	Fitness(nil, 1, 1) // must not panic
}

func TestParetoFront(t *testing.T) {
	pop := []Candidate{
		{Accuracy: 0.9, Params: 1000},  // front
		{Accuracy: 0.8, Params: 100},   // front
		{Accuracy: 0.7, Params: 500},   // dominated by (0.8, 100)
		{Accuracy: 0.95, Params: 5000}, // front
		{Accuracy: 0.6, Params: 100},   // dominated by (0.8, 100)
	}
	front := ParetoFront(pop)
	if len(front) != 3 {
		t.Fatalf("front size %d want 3: %+v", len(front), front)
	}
	// Sorted by params ascending.
	for i := 1; i < len(front); i++ {
		if front[i].Params < front[i-1].Params {
			t.Fatal("front not sorted by params")
		}
	}
	// No member dominates another.
	for i, a := range front {
		for j, b := range front {
			if i != j && b.Accuracy > a.Accuracy && b.Params <= a.Params {
				t.Fatal("dominated candidate on front")
			}
		}
	}
}

func TestBestModelRule(t *testing.T) {
	front := []Candidate{
		{Accuracy: 0.80, Params: 100},
		{Accuracy: 0.88, Params: 500},
		{Accuracy: 0.93, Params: 2000},
	}
	// α=0.85: smallest meeting it is the 500-param model.
	best, err := BestModel(front, 0.85)
	if err != nil || best.Params != 500 {
		t.Fatalf("best %+v err %v", best, err)
	}
	// α=0.99 unreachable: fall back to most accurate.
	best, _ = BestModel(front, 0.99)
	if best.Params != 2000 {
		t.Fatalf("fallback best %+v", best)
	}
	if _, err := BestModel(nil, 0.5); err == nil {
		t.Fatal("empty front should error")
	}
}

func TestCrossoverSameFamilyFieldsComeFromParents(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := models.Spec{Family: models.FamilyCNN, WindowSize: 100, LR: 1e-3, ConvLayers: 1, Filters: 8, Kernel: 3, Stride: 1, Pool: "none", Optimizer: "adam", Dropout: 0.1}
	b := models.Spec{Family: models.FamilyCNN, WindowSize: 190, LR: 3e-3, ConvLayers: 2, Filters: 32, Kernel: 5, Stride: 2, Pool: "avg", Optimizer: "sgd", Dropout: 0.5}
	for i := 0; i < 50; i++ {
		c := Crossover(a, b, rng)
		if c.WindowSize != a.WindowSize && c.WindowSize != b.WindowSize {
			t.Fatal("crossover invented a window size")
		}
		if c.Filters != a.Filters && c.Filters != b.Filters {
			t.Fatal("crossover invented a filter count")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("crossover produced invalid spec: %v", err)
		}
	}
}

func TestCrossoverCrossFamilyIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := models.Spec{Family: models.FamilyCNN, WindowSize: 100, ConvLayers: 1, Filters: 8, Kernel: 3, Stride: 1, Pool: "none", Optimizer: "adam", LR: 1e-3}
	b := models.Spec{Family: models.FamilyRF, WindowSize: 90, Trees: 100}
	if got := Crossover(a, b, rng); got != a {
		t.Fatal("cross-family crossover should return parent a")
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	rng := tensor.NewRNG(5)
	space := FastSearchSpace()
	for _, f := range models.Families() {
		s := space.RandomSpec(f, rng)
		for i := 0; i < 100; i++ {
			s = space.Mutate(s, rng)
			if s.Family != f {
				t.Fatal("mutation changed family")
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("mutation produced invalid spec: %v (%+v)", err, s)
			}
		}
	}
}

func TestRandomSpecValid(t *testing.T) {
	rng := tensor.NewRNG(6)
	for _, space := range []SearchSpace{PaperSearchSpace(), FastSearchSpace()} {
		for _, f := range models.Families() {
			for i := 0; i < 30; i++ {
				s := space.RandomSpec(f, rng)
				if err := s.Validate(); err != nil {
					t.Fatalf("random spec invalid: %v (%+v)", err, s)
				}
			}
		}
	}
}

// TestSearchEndToEnd runs a miniature Algorithm 1 on real synthetic EEG and
// checks the structural invariants of the result.
func TestSearchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("evolutionary search is expensive")
	}
	bySubject, err := dataset.Build([]int{0, 1}, 1, dataset.ShortProtocol(32), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := func(windowSize int) ([]dataset.Window, []dataset.Window, error) {
		by, err := dataset.Build([]int{0, 1}, 1, dataset.ShortProtocol(32), windowSize, 7)
		if err != nil {
			return nil, nil, err
		}
		var all []dataset.Window
		for _, ws := range by {
			all = append(all, ws...)
		}
		dataset.Shuffle(all, tensor.NewRNG(1))
		cut := len(all) * 8 / 10
		return all[:cut], all[cut:], nil
	}
	_ = bySubject
	cfg := DefaultConfig()
	cfg.PopulationSize = 6
	cfg.Generations = 2
	cfg.Train = models.TrainOptions{Epochs: 3, BatchSize: 32}
	cfg.Families = []models.Family{models.FamilyCNN, models.FamilyRF}
	res, err := Search(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != cfg.PopulationSize {
		t.Fatalf("population %d want %d", len(res.Population), cfg.PopulationSize)
	}
	if len(res.History) != cfg.Generations {
		t.Fatalf("history %d want %d", len(res.History), cfg.Generations)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	if res.Best.Clf == nil {
		t.Fatal("best model has no trained classifier")
	}
	// Front must be non-dominated within the final population.
	for _, f := range res.Front {
		for _, c := range res.Population {
			if c.Accuracy > f.Accuracy && c.Params <= f.Params {
				t.Fatalf("front member dominated: %+v by %+v", f.Spec.ID(), c.Spec.ID())
			}
		}
	}
}

func TestSearchRejectsTinyPopulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopulationSize = 1
	if _, err := Search(cfg, nil); err == nil {
		t.Fatal("population of 1 should error")
	}
}
