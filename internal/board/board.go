// Package board is the data-acquisition layer of CognitiveArm, modelled on
// BrainFlow's board-agnostic design (§III-A1): every headset is a Board with
// a uniform streaming interface, and sessions pump samples into ring buffers
// on their own goroutine. The only board shipped here is the synthetic
// Cyton+Daisy (16 channels, 125 Hz) backed by the internal/eeg generator,
// the substitution for the OpenBCI UltraCortex Mark IV hardware.
package board

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/stream"
)

// Info describes a board's fixed capabilities.
type Info struct {
	Name         string
	Channels     int
	SampleRateHz float64
	ChannelNames []string
}

// Board is the uniform acquisition interface (BrainFlow's BoardShim role).
type Board interface {
	// Info returns the board's capabilities.
	Info() Info
	// Start begins streaming into the internal buffer.
	Start() error
	// Stop halts streaming. The board may be restarted.
	Stop() error
	// Read drains up to max buffered samples (oldest first). max <= 0 drains
	// everything.
	Read(max int) []stream.Sample
	// SetState tells simulated boards which mental task the "participant" is
	// performing. Hardware boards would ignore this.
	SetState(a eeg.Action)
}

// SyntheticCyton simulates the 16-channel Cyton+Daisy stack. Realtime mode
// paces samples at 125 Hz wall-clock; otherwise samples are produced on
// demand as fast as Read is called, which is what training-data generation
// and benchmarks want.
type SyntheticCyton struct {
	subject eeg.Subject
	seed    uint64

	mu       sync.Mutex
	gen      *eeg.Generator
	state    eeg.Action
	running  bool
	realtime bool
	ring     *stream.Ring
	seq      uint64
	stop     chan struct{}
	wg       sync.WaitGroup
	clock    *stream.VirtualClock
}

// NewSyntheticCyton creates a simulated board for the given subject. When
// realtime is true, Start launches a pacing goroutine at 125 Hz.
func NewSyntheticCyton(subject eeg.Subject, seed uint64, realtime bool) *SyntheticCyton {
	return &SyntheticCyton{
		subject:  subject,
		seed:     seed,
		gen:      eeg.NewGenerator(subject, seed),
		realtime: realtime,
		ring:     stream.NewRing(4096),
		stop:     make(chan struct{}),
		clock:    stream.NewVirtualClock(0, 0),
	}
}

// Info implements Board.
func (b *SyntheticCyton) Info() Info {
	return Info{
		Name:         "synthetic-cyton-daisy",
		Channels:     eeg.NumChannels,
		SampleRateHz: eeg.SampleRate,
		ChannelNames: append([]string(nil), eeg.ChannelNames...),
	}
}

// SetState implements Board.
func (b *SyntheticCyton) SetState(a eeg.Action) {
	b.mu.Lock()
	b.state = a
	b.mu.Unlock()
}

// State returns the current simulated mental task.
func (b *SyntheticCyton) State() eeg.Action {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Start implements Board.
func (b *SyntheticCyton) Start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.running {
		return fmt.Errorf("board: already streaming")
	}
	b.running = true
	b.stop = make(chan struct{})
	if b.realtime {
		b.wg.Add(1)
		go b.pace()
	}
	return nil
}

// Stop implements Board.
func (b *SyntheticCyton) Stop() error {
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return fmt.Errorf("board: not streaming")
	}
	b.running = false
	close(b.stop)
	b.mu.Unlock()
	b.wg.Wait()
	return nil
}

func (b *SyntheticCyton) pace() {
	defer b.wg.Done()
	tick := time.NewTicker(time.Duration(float64(time.Second) / eeg.SampleRate))
	defer tick.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-tick.C:
			b.produce(1)
		}
	}
}

// produce generates n samples into the ring under the current state.
func (b *SyntheticCyton) produce(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < n; i++ {
		raw := b.gen.Next(b.state)
		vals := make([]float64, eeg.NumChannels)
		copy(vals, raw[:])
		b.ring.Push(stream.Sample{Seq: b.seq, Timestamp: b.clock.Now(), Values: vals})
		b.seq++
	}
}

// ReadInto is the allocation-free variant of Read used by the serving shard
// (serve.ReaderInto): samples are appended to dst, and in on-demand mode the
// synthesiser recycles the Values buffers sitting in dst's spare capacity
// from the previous call. The returned samples — including their Values —
// are therefore valid only until the next ReadInto with the same dst; the
// shard consumes them within the tick, which is the contract.
//
//cogarm:zeroalloc
func (b *SyntheticCyton) ReadInto(dst []stream.Sample, max int) []stream.Sample {
	b.mu.Lock()
	if b.running && !b.realtime && max > 0 && b.ring.Len() == 0 {
		// Fast path: synthesise straight into dst, bypassing the ring the
		// samples would only transit within this call anyway. Value buffers
		// are scavenged from dst[len:cap] — exactly the slots this append
		// sequence is about to overwrite.
		defer b.mu.Unlock()
		spare := dst[:cap(dst)]
		for i := 0; i < max; i++ {
			var vals []float64
			if len(dst) < len(spare) && cap(spare[len(dst)].Values) >= eeg.NumChannels {
				vals = spare[len(dst)].Values[:eeg.NumChannels]
			} else {
				//cogarm:allow zeroalloc -- scavenge miss: first pass over a fresh dst warms the Values buffers that later calls recycle
				vals = make([]float64, eeg.NumChannels)
			}
			raw := b.gen.Next(b.state)
			copy(vals, raw[:])
			dst = append(dst, stream.Sample{Seq: b.seq, Timestamp: b.clock.Now(), Values: vals})
			b.seq++
		}
		return dst
	}
	b.mu.Unlock()
	if max <= 0 {
		//cogarm:allow zeroalloc -- max <= 0 is the drain-everything compat path, not the per-tick read
		return append(dst, b.Read(max)...)
	}
	// Buffered leftovers (or realtime pacing): drain the ring re-using dst's
	// slots; on-demand mode tops the ring up first, as Read would.
	b.mu.Lock()
	if b.running && !b.realtime {
		b.mu.Unlock()
		//cogarm:allow zeroalloc -- on-demand ring top-up allocates per-sample Values; the fast path above bypasses it
		b.produce(max)
	} else {
		b.mu.Unlock()
	}
	return b.ring.PopNInto(dst, max)
}

// Read implements Board. In non-realtime mode it synthesises max samples on
// demand (max must then be positive).
func (b *SyntheticCyton) Read(max int) []stream.Sample {
	b.mu.Lock()
	running, realtime := b.running, b.realtime
	b.mu.Unlock()
	if running && !realtime && max > 0 {
		b.produce(max)
	}
	if max <= 0 {
		return b.ring.Drain()
	}
	out := make([]stream.Sample, 0, max)
	for len(out) < max {
		s, ok := b.ring.Pop()
		if !ok {
			break
		}
		out = append(out, s)
	}
	return out
}

// registry implements BrainFlow's board-id lookup so callers stay
// board-agnostic.
var (
	regMu    sync.Mutex
	registry = map[string]func(subject eeg.Subject, seed uint64, realtime bool) Board{}
)

// Register adds a board constructor under a name. It panics on duplicates,
// which would indicate two drivers claiming the same board.
func Register(name string, ctor func(subject eeg.Subject, seed uint64, realtime bool) Board) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("board: duplicate registration for " + name)
	}
	registry[name] = ctor
}

// New instantiates a registered board by name.
func New(name string, subject eeg.Subject, seed uint64, realtime bool) (Board, error) {
	regMu.Lock()
	ctor, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("board: unknown board %q (have %v)", name, Names())
	}
	return ctor(subject, seed, realtime), nil
}

// Names lists the registered boards in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("synthetic-cyton-daisy", func(subject eeg.Subject, seed uint64, realtime bool) Board {
		return NewSyntheticCyton(subject, seed, realtime)
	})
}
