package board

import (
	"testing"
	"time"

	"cognitivearm/internal/eeg"
)

func TestInfoShape(t *testing.T) {
	b := NewSyntheticCyton(eeg.NewSubject(0), 1, false)
	info := b.Info()
	if info.Channels != 16 || info.SampleRateHz != 125 {
		t.Fatalf("info %+v", info)
	}
	if len(info.ChannelNames) != 16 {
		t.Fatalf("channel names %v", info.ChannelNames)
	}
}

func TestOnDemandRead(t *testing.T) {
	b := NewSyntheticCyton(eeg.NewSubject(0), 1, false)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	b.SetState(eeg.Left)
	got := b.Read(250)
	if len(got) != 250 {
		t.Fatalf("read %d samples, want 250", len(got))
	}
	for i, s := range got {
		if s.Seq != uint64(i) {
			t.Fatalf("sequence gap at %d: %d", i, s.Seq)
		}
		if len(s.Values) != 16 {
			t.Fatalf("sample %d has %d channels", i, len(s.Values))
		}
	}
}

func TestStartStopStateMachine(t *testing.T) {
	b := NewSyntheticCyton(eeg.NewSubject(1), 2, false)
	if err := b.Stop(); err == nil {
		t.Fatal("stopping a stopped board should error")
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err == nil {
		t.Fatal("double start should error")
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatalf("restart should work: %v", err)
	}
	b.Stop()
}

func TestRealtimePacing(t *testing.T) {
	b := NewSyntheticCyton(eeg.NewSubject(0), 3, true)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	got := b.Read(0)
	// 200 ms at 125 Hz ≈ 25 samples; allow generous scheduling slack.
	if len(got) < 10 || len(got) > 60 {
		t.Fatalf("realtime pacing produced %d samples in 200 ms", len(got))
	}
}

func TestSetStateAffectsSignal(t *testing.T) {
	b := NewSyntheticCyton(eeg.NewSubject(0), 4, false)
	b.Start()
	defer b.Stop()
	b.SetState(eeg.Right)
	if b.State() != eeg.Right {
		t.Fatal("state not stored")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == "synthetic-cyton-daisy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("builtin board missing from registry: %v", names)
	}
	b, err := New("synthetic-cyton-daisy", eeg.NewSubject(0), 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Info().Name != "synthetic-cyton-daisy" {
		t.Fatal("wrong board constructed")
	}
	if _, err := New("no-such-board", eeg.NewSubject(0), 5, false); err == nil {
		t.Fatal("unknown board should error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("synthetic-cyton-daisy", nil)
}
