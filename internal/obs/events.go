package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType names one lifecycle event class. Events are fixed-size structs —
// the type plus two generic int64 arguments whose meaning is per-type (see
// ArgNames) — so recording one never allocates.
type EventType uint8

const (
	evInvalid EventType = iota
	// EvAdmit: a session joined the fleet (Session, Shard).
	EvAdmit
	// EvRefuseFull: an admission was refused at the static capacity cap.
	EvRefuseFull
	// EvRefuseOverload: an admission was refused by p99 backpressure.
	EvRefuseOverload
	// EvEvict: a session left the fleet (Session, Shard).
	EvEvict
	// EvCheckpointFull: a full checkpoint was written (bytes, dur_ns).
	EvCheckpointFull
	// EvCheckpointIncremental: an incremental checkpoint was written
	// (bytes, dur_ns).
	EvCheckpointIncremental
	// EvCheckpointLoad: a checkpoint was loaded (sessions, 0).
	EvCheckpointLoad
	// EvMigrateIn: sessions arrived from a peer (sessions, 0).
	EvMigrateIn
	// EvMigrateOut: sessions were handed to a peer (sessions, 0).
	EvMigrateOut
	// EvJoin: this node joined a fleet (members, 0).
	EvJoin
	// EvLeave: a member left the ring (members, 0).
	EvLeave
	// EvDrain: this node drained its sessions away (members, 0).
	EvDrain
	// EvInletDrop: a network inlet discarded a malformed frame.
	EvInletDrop
	// EvReap: the failure detector removed an unresponsive member (members, 0).
	EvReap
	// EvFailover: replica sessions of a dead member were promoted to live
	// serving here (sessions, 0).
	EvFailover
	// EvWalTruncate: WAL recovery cut a torn tail back to the last sealed
	// batch boundary (bytes, entries dropped).
	EvWalTruncate
	evSentinel // keep last
)

var eventNames = [...]string{
	EvAdmit:                 "admit",
	EvRefuseFull:            "refuse_full",
	EvRefuseOverload:        "refuse_overload",
	EvEvict:                 "evict",
	EvCheckpointFull:        "checkpoint_full",
	EvCheckpointIncremental: "checkpoint_incremental",
	EvCheckpointLoad:        "checkpoint_load",
	EvMigrateIn:             "migrate_in",
	EvMigrateOut:            "migrate_out",
	EvJoin:                  "join",
	EvLeave:                 "leave",
	EvDrain:                 "drain",
	EvInletDrop:             "inlet_drop",
	EvReap:                  "reap",
	EvFailover:              "failover",
	EvWalTruncate:           "wal_truncate",
}

// argNames maps each type's A/B arguments to JSON field names; an empty name
// omits the argument from rendered events.
var argNames = [...][2]string{
	EvCheckpointFull:        {"bytes", "dur_ns"},
	EvCheckpointIncremental: {"bytes", "dur_ns"},
	EvCheckpointLoad:        {"sessions", ""},
	EvMigrateIn:             {"sessions", ""},
	EvMigrateOut:            {"sessions", ""},
	EvJoin:                  {"members", ""},
	EvLeave:                 {"members", ""},
	EvDrain:                 {"members", ""},
	EvReap:                  {"members", ""},
	EvFailover:              {"sessions", ""},
	EvWalTruncate:           {"bytes", "entries"},
	evSentinel:              {},
}

// String returns the stable wire name of the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "unknown"
}

// ArgNames returns the JSON field names of the type's A and B arguments
// (empty string = argument unused).
func (t EventType) ArgNames() (a, b string) {
	if int(t) < len(argNames) {
		return argNames[t][0], argNames[t][1]
	}
	return "", ""
}

// Event is one recorded lifecycle event. Shard is -1 when not applicable;
// Session is 0 when not applicable. A and B are per-type arguments (see the
// EventType constants).
type Event struct {
	Seq     uint64
	Time    int64 // unix nanoseconds
	Type    EventType
	Shard   int32
	Session uint64
	A, B    int64
}

// Default ring geometry: 1024 retained events across 8 stripes keeps the
// stripe mutexes effectively uncontended at any realistic event rate while
// bounding the ring to ~64 KB.
const (
	DefaultEventCapacity = 1024
	DefaultEventStripes  = 8
)

// eventStripe is one independently locked segment of the ring.
type eventStripe struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // events ever written to this stripe
}

// EventRing is a bounded, lock-striped ring of lifecycle events. Record
// distributes writers across stripes by a global sequence counter, so
// concurrent recorders rarely share a mutex; when a stripe wraps, its oldest
// event is overwritten and counted in Overwritten — bounded loss, never a
// blocked writer and never growth.
type EventRing struct {
	stripes     []eventStripe
	seq         atomic.Uint64
	overwritten atomic.Uint64
}

// NewEventRing builds a ring retaining up to capacity events across the
// given number of stripes (both floored to sane minimums).
func NewEventRing(capacity, stripes int) *EventRing {
	if stripes < 1 {
		stripes = 1
	}
	if capacity < stripes {
		capacity = stripes
	}
	per := (capacity + stripes - 1) / stripes
	r := &EventRing{stripes: make([]eventStripe, stripes)}
	for i := range r.stripes {
		r.stripes[i].buf = make([]Event, per)
	}
	return r
}

// Record appends one event. It is safe for concurrent use and performs no
// heap allocations; cost is one atomic add plus one uncontended (striped)
// mutex acquisition.
//
//cogarm:zeroalloc
func (r *EventRing) Record(t EventType, shard int, session uint64, a, b int64) {
	seq := r.seq.Add(1)
	st := &r.stripes[seq%uint64(len(r.stripes))]
	now := time.Now().UnixNano()
	st.mu.Lock()
	slot := &st.buf[st.n%uint64(len(st.buf))]
	if st.n >= uint64(len(st.buf)) {
		r.overwritten.Add(1)
	}
	st.n++
	slot.Seq = seq
	slot.Time = now
	slot.Type = t
	slot.Shard = int32(shard)
	slot.Session = session
	slot.A = a
	slot.B = b
	st.mu.Unlock()
}

// Recorded returns how many events have ever been recorded.
func (r *EventRing) Recorded() uint64 { return r.seq.Load() }

// Overwritten returns how many events have been lost to ring wrap — the
// bounded-loss accounting a scraper reads next to the events themselves.
func (r *EventRing) Overwritten() uint64 { return r.overwritten.Load() }

// Snapshot appends every retained event to dst in ascending Seq order and
// returns it. The copy is per-stripe consistent; events recorded while the
// snapshot walks other stripes may or may not appear, exactly like any
// monitoring read of a live system.
func (r *EventRing) Snapshot(dst []Event) []Event {
	start := len(dst)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n := st.n
		if n > uint64(len(st.buf)) {
			n = uint64(len(st.buf))
		}
		for j := uint64(0); j < n; j++ {
			dst = append(dst, st.buf[j])
		}
		st.mu.Unlock()
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].Seq < tail[j].Seq })
	return dst
}
