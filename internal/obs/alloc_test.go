package obs

import (
	"testing"
)

// TestHotPathAllocFree is the core zero-alloc guarantee: every operation a
// serving tick performs against the telemetry layer must stay off the heap.
func TestHotPathAllocFree(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "")
	g := reg.Gauge("alloc_gauge", "")
	h := reg.Histogram("alloc_seconds", "", DurationBounds())
	ring := NewEventRing(64, 4)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(17) }},
		{"Gauge.Set", func() { g.Set(3.5) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(2.5e-4) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(1500) }},
		{"EventRing.Record", func() { ring.Record(EvAdmit, 1, 2, 3, 4) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DurationBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkEventRingRecord(b *testing.B) {
	ring := NewEventRing(DefaultEventCapacity, DefaultEventStripes)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ring.Record(EvAdmit, 1, 2, 0, 0)
		}
	})
}
