package obs

import (
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_total", "help", L("k", "v"))
	b := reg.Counter("test_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("test_total", "help", L("k", "other"))
	if c == a {
		t.Fatal("different label value must be a distinct series")
	}
	a.Add(3)
	b.Inc()
	if got := a.Value(); got != 4 {
		t.Fatalf("shared series value = %d, want 4", got)
	}
	if c.Value() != 0 {
		t.Fatal("distinct series must not share state")
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("canon_total", "", L("b", "2"), L("a", "1"))
	b := reg.Counter("canon_total", "", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("conflict_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter family must panic")
		}
	}()
	reg.Gauge("conflict_total", "")
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad metric name", func() { reg.Counter("9bad", "") })
	mustPanic("bad label name", func() { reg.Counter("ok_total", "", L("9bad", "v")) })
	mustPanic("duplicate label", func() { reg.Counter("ok_total", "", L("a", "1"), L("a", "2")) })
	// Colons are legal in metric names, and label values are unrestricted.
	reg.Counter("ns:ok_total", "", L("a", `any "value"\n at all`))
}

func TestGaugeArithmetic(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	g.Set(2.5)
	g.Add(1.25)
	g.Dec()
	if got := g.Value(); got != 2.75 {
		t.Fatalf("gauge = %v, want 2.75", got)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one registry")
	}
	if DefaultEvents() != DefaultEvents() {
		t.Fatal("DefaultEvents must return one ring")
	}
}
