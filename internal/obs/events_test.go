package obs

import (
	"testing"
)

func TestEventRingRecordAndSnapshot(t *testing.T) {
	r := NewEventRing(64, 4)
	r.Record(EvAdmit, 2, 7, 0, 0)
	r.Record(EvEvict, 2, 7, 0, 0)
	r.Record(EvCheckpointFull, -1, 0, 4096, 1_000_000)
	evs := r.Snapshot(nil)
	if len(evs) != 3 {
		t.Fatalf("snapshot holds %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("snapshot must be sorted by sequence")
		}
	}
	if evs[0].Type != EvAdmit || evs[0].Shard != 2 || evs[0].Session != 7 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[2].A != 4096 || evs[2].B != 1_000_000 {
		t.Fatalf("checkpoint args = %d,%d", evs[2].A, evs[2].B)
	}
	if r.Recorded() != 3 || r.Overwritten() != 0 {
		t.Fatalf("recorded=%d overwritten=%d", r.Recorded(), r.Overwritten())
	}
}

func TestEventRingBoundedLoss(t *testing.T) {
	const capacity = 32
	r := NewEventRing(capacity, 4)
	const n = 100
	for i := 0; i < n; i++ {
		r.Record(EvAdmit, 0, uint64(i), 0, 0)
	}
	if r.Recorded() != n {
		t.Fatalf("recorded = %d, want %d", r.Recorded(), n)
	}
	if r.Overwritten() != n-capacity {
		t.Fatalf("overwritten = %d, want %d", r.Overwritten(), n-capacity)
	}
	evs := r.Snapshot(nil)
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	// The retained window is the newest events, one per surviving slot.
	for _, e := range evs {
		if e.Seq <= n-capacity {
			t.Fatalf("event seq %d should have been overwritten", e.Seq)
		}
	}
}

func TestEventTypeNames(t *testing.T) {
	cases := map[EventType]string{
		EvAdmit:                 "admit",
		EvRefuseFull:            "refuse_full",
		EvRefuseOverload:        "refuse_overload",
		EvEvict:                 "evict",
		EvCheckpointFull:        "checkpoint_full",
		EvCheckpointIncremental: "checkpoint_incremental",
		EvCheckpointLoad:        "checkpoint_load",
		EvMigrateIn:             "migrate_in",
		EvMigrateOut:            "migrate_out",
		EvJoin:                  "join",
		EvLeave:                 "leave",
		EvDrain:                 "drain",
		EvInletDrop:             "inlet_drop",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if a, b := EvCheckpointFull.ArgNames(); a != "bytes" || b != "dur_ns" {
		t.Fatalf("checkpoint args named %q,%q", a, b)
	}
	if a, _ := EvMigrateIn.ArgNames(); a != "sessions" {
		t.Fatalf("migrate arg named %q", a)
	}
}
