package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 2, 10, 11, 1e9} {
		h.Observe(v)
	}
	got := h.BucketCounts(nil)
	want := []uint64{2, 2, 2, 2} // ≤0.1: {0.05, 0.1}; ≤1: {0.5, 1}; ≤10: {2, 10}; +Inf: {11, 1e9}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-(0.05+0.1+0.5+1+2+10+11+1e9)) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(DurationBounds())
	h.ObserveDuration(1500) // 1.5µs
	if h.Count() != 1 {
		t.Fatal("duration observation lost")
	}
	if got := h.Sum(); math.Abs(got-1.5e-6) > 1e-12 {
		t.Fatalf("sum = %v, want 1.5e-6", got)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing factor must panic")
		}
	}()
	ExponentialBounds(1, 1, 4)
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds must panic")
		}
	}()
	newHistogram([]float64{1, 1})
}
