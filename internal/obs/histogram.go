package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency/size histogram built for hot paths:
// Observe is lock-free and allocation-free — a binary search over the
// immutable bounds slice, two atomic adds, and a CAS loop for the float sum.
// Buckets are chosen at registration (log-scale by convention, see
// ExponentialBounds) and never change, so readers and writers share nothing
// mutable but the atomics.
//
// Snapshot-consistency note: a scrape that races writers may observe a sum,
// count and bucket set from slightly different instants. Each value is
// individually consistent and monotone, which is exactly the guarantee
// Prometheus counters need; cross-field skew of a few observations is
// inherent to lock-free collection and irrelevant at scrape cadence.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
//
//cogarm:zeroalloc
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the final slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration given in nanoseconds as seconds — the
// convention every *_seconds histogram in the stack uses.
//
//cogarm:zeroalloc
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
// Callers must not modify the returned slice.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts appends the per-bucket (non-cumulative) counts, one per bound
// plus the +Inf overflow, to dst and returns it.
func (h *Histogram) BucketCounts(dst []uint64) []uint64 {
	for i := range h.buckets {
		dst = append(dst, h.buckets[i].Load())
	}
	return dst
}

// ExponentialBounds returns n upper bounds starting at start and multiplying
// by factor — the log-scale ladders the stack's histograms use.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBounds needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBounds is the default latency ladder: 1 µs to ~8.4 s in
// doubling buckets — wide enough for a microsecond-scale tick stage and a
// multi-second stalled checkpoint in the same shape.
func DurationBounds() []float64 { return ExponentialBounds(1e-6, 2, 24) }

// SizeBounds is the default size/count ladder: 1 to 2048 in doubling
// buckets (batch sizes, record counts).
func SizeBounds() []float64 { return ExponentialBounds(1, 2, 12) }
