package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentScrapeUnderLoad hammers every metric kind from many writers
// while a reader scrapes the registry and snapshots the event ring. Run with
// -race this doubles as the data-race workout for the lock-free paths.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	reg := NewRegistry()
	ring := NewEventRing(256, 8)
	c := reg.Counter("race_total", "", L("w", "shared"))
	g := reg.Gauge("race_gauge", "")
	h := reg.Histogram("race_seconds", "", DurationBounds())

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.ObserveDuration(int64(i + 1))
				ring.Record(EvAdmit, w, uint64(i), 0, 0)
				if i%100 == 0 {
					// Concurrent registration of the same series must stay
					// idempotent under contention.
					reg.Counter("race_total", "", L("w", "shared")).Inc()
				}
			}
		}(w)
	}

	// Scrapers run concurrently with the writers.
	var scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				ring.Snapshot(nil)
			}
		}()
	}

	close(start)
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	extra := writers * perWriter / 100 // the idempotent re-registrations
	if got := c.Value(); got != uint64(writers*perWriter+extra) {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter+extra)
	}
	if got := h.Count(); got != uint64(writers*perWriter) {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := ring.Recorded(); got != uint64(writers*perWriter) {
		t.Fatalf("ring recorded = %d, want %d", got, writers*perWriter)
	}
	if got, want := g.Value(), float64(writers*perWriter); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}
