package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWriteTextGolden pins the exposition output byte-for-byte: family
// ordering by name, series ordering by canonical label key, HELP and label
// escaping, cumulative le buckets ending at +Inf, and the _sum/_count pair.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()

	// Registration order is deliberately scrambled: output must sort by name.
	reg.Gauge("test_sessions", "Live sessions.").Set(12)
	reg.Counter("test_requests_total", `Requests with a \ backslash and
newline in help.`, L("code", "200")).Add(7)
	reg.Counter("test_requests_total", `Requests with a \ backslash and
newline in help.`, L("code", "500")).Inc()
	// Series order is by canonical label key, not registration order; label
	// values take escaping.
	reg.Gauge("test_temperature", "", L("site", `lab "A"`), L("unit", "c")).Set(-3.25)
	reg.Gauge("test_temperature", "", L("site", `lab\B`), L("unit", "c")).Set(0.5)
	reg.GaugeFunc("test_uptime_seconds", "Seconds up.", func() float64 { return 42.5 })

	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, L("op", "tick"))
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 3} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "expo.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to write it)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteTextHistogramCumulative checks the le-bucket math independently of
// the golden bytes: buckets must be cumulative and +Inf must equal _count.
func TestWriteTextHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cum_seconds", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 1.7, 99} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`cum_seconds_bucket{le="1"} 1`,
		`cum_seconds_bucket{le="2"} 3`,
		`cum_seconds_bucket{le="+Inf"} 4`,
		`cum_seconds_count 4`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}
