package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// The admin plane: one http.ServeMux exposing the telemetry core to
// operators and machines —
//
//	/metrics  Prometheus text exposition v0.0.4 of the registry
//	/statusz  caller-supplied JSON status document (fleet, ring, checkpoints)
//	/healthz  200/503 from the caller's health probe
//	/events   the lifecycle event ring as JSON, oldest first
//	/debug/pprof/*  net/http/pprof live profiling
//
// cogarmd binds it behind -admin; loadgen can host it in-process and scrape
// itself. The mux is also the future failure detector's probe surface:
// peers poll /healthz.

// AdminOptions configures an admin mux. Zero-value fields fall back to the
// process-global registry/ring and to trivially healthy/empty documents.
type AdminOptions struct {
	// Registry is scraped at /metrics (Default() when nil).
	Registry *Registry
	// Events is rendered at /events (DefaultEvents() when nil).
	Events *EventRing
	// Health is probed at /healthz: nil error = 200 "ok", non-nil = 503 with
	// the error text. A nil func is always healthy.
	Health func() error
	// Status builds the /statusz document; the result is JSON-marshalled.
	// A nil func serves an empty object.
	Status func() any
}

// AdminMux builds the admin-plane handler. Process-wide runtime metrics
// (goroutines, heap, GC, uptime) are registered on the target registry as
// scrape-time gauges.
func AdminMux(opts AdminOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	events := opts.Events
	if events == nil {
		events = DefaultEvents()
	}
	RegisterProcessMetrics(reg)
	registerEventMetrics(reg, events)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Health != nil {
			if err := opts.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		var doc any = struct{}{}
		if opts.Status != nil {
			doc = opts.Status()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(renderEvents(events))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartAdmin binds addr, serves the admin mux on it in a background
// goroutine, and returns the server (for Shutdown/Close) and the bound
// address — pass ":0"-style addresses to let the kernel pick a port.
func StartAdmin(addr string, opts AdminOptions) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: AdminMux(opts)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// EventJSON is the wire shape of one /events entry.
type EventJSON struct {
	Seq     uint64           `json:"seq"`
	Time    string           `json:"time"`
	Type    string           `json:"type"`
	Shard   *int32           `json:"shard,omitempty"`
	Session uint64           `json:"session,omitempty"`
	Args    map[string]int64 `json:"args,omitempty"`
}

// EventsJSON is the /events response document.
type EventsJSON struct {
	// Recorded counts events ever recorded; Overwritten counts events lost
	// to ring wrap (bounded loss). Events holds the retained window, oldest
	// first.
	Recorded    uint64      `json:"recorded"`
	Overwritten uint64      `json:"overwritten"`
	Events      []EventJSON `json:"events"`
}

// renderEvents snapshots the ring into the JSON document.
func renderEvents(ring *EventRing) EventsJSON {
	evs := ring.Snapshot(nil)
	doc := EventsJSON{
		Recorded:    ring.Recorded(),
		Overwritten: ring.Overwritten(),
		Events:      make([]EventJSON, 0, len(evs)),
	}
	for _, e := range evs {
		ej := EventJSON{
			Seq:     e.Seq,
			Time:    time.Unix(0, e.Time).UTC().Format(time.RFC3339Nano),
			Type:    e.Type.String(),
			Session: e.Session,
		}
		if e.Shard >= 0 {
			sh := e.Shard
			ej.Shard = &sh
		}
		aName, bName := e.Type.ArgNames()
		if aName != "" || bName != "" {
			ej.Args = map[string]int64{}
			if aName != "" {
				ej.Args[aName] = e.A
			}
			if bName != "" {
				ej.Args[bName] = e.B
			}
		}
		doc.Events = append(doc.Events, ej)
	}
	return doc
}

// registerEventMetrics exposes the ring's bounded-loss accounting on the
// scrape surface.
func registerEventMetrics(reg *Registry, ring *EventRing) {
	reg.GaugeFunc("cogarm_events_recorded_total",
		"Lifecycle events recorded since process start.",
		func() float64 { return float64(ring.Recorded()) })
	reg.GaugeFunc("cogarm_events_overwritten_total",
		"Lifecycle events lost to event-ring wrap (bounded loss).",
		func() float64 { return float64(ring.Overwritten()) })
}

var processStart = time.Now()

// memStatsCache rate-limits runtime.ReadMemStats: a scrape hitting several
// heap gauges pays one read, and a 1 Hz scraper cannot perturb the serving
// path with stop-the-world stats reads.
type memStatsCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > 500*time.Millisecond {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
	}
	return &c.ms
}

// RegisterProcessMetrics registers process-wide runtime gauges (uptime,
// goroutines, heap, GC) on reg. It is idempotent per registry.
func RegisterProcessMetrics(reg *Registry) {
	cache := &memStatsCache{}
	reg.GaugeFunc("cogarm_process_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return time.Since(processStart).Seconds() })
	reg.GaugeFunc("cogarm_go_goroutines",
		"Live goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("cogarm_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(cache.get().HeapAlloc) })
	reg.GaugeFunc("cogarm_go_heap_sys_bytes",
		"Heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return float64(cache.get().HeapSys) })
	reg.GaugeFunc("cogarm_go_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(cache.get().NumGC) })
	reg.GaugeFunc("cogarm_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause (runtime.MemStats.PauseTotalNs).",
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
}
