// Package obs is CognitiveArm's telemetry core: process-wide counters,
// gauges, latency histograms and a bounded ring of structured lifecycle
// events, built entirely on the standard library and designed around the
// serving stack's arena discipline — recording a metric on the shard tick
// path performs zero heap allocations and takes no locks.
//
// # Design
//
//   - Counter and Gauge are single atomics. Histogram is a fixed set of
//     log-scale buckets updated with atomic adds (bucket lookup is a binary
//     search over a small immutable bounds slice) plus a CAS-maintained
//     float64 sum — lock-free, allocation-free, safe under any number of
//     concurrent writers and readers.
//
//   - Registry names and owns metrics. Registration is idempotent: asking
//     for an existing name+labels returns the same metric, so independent
//     subsystems (several hubs in one test binary, every inlet of a daemon)
//     share one process-global series instead of colliding. Conflicting
//     re-registration (same name, different type) panics — that is a
//     programming error, not an operational condition.
//
//   - EventRing (events.go) records structured lifecycle events — admissions,
//     refusals, evictions, checkpoints with bytes+duration, migrations,
//     membership changes, inlet frame drops — into a fixed, lock-striped ring
//     with bounded loss: when the ring wraps, the oldest events are
//     overwritten and counted, never blocking a writer.
//
//   - WriteText (expo.go) renders the registry in the Prometheus text
//     exposition format v0.0.4; AdminMux (admin.go) serves it at /metrics
//     next to /statusz, /healthz, /events and net/http/pprof.
//
// The package-global Default registry and DefaultEvents ring are what the
// serving stack instruments itself against; tests that need isolation build
// their own NewRegistry/NewEventRing.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration. Values are free-form (escaped at exposition); names must
// match the Prometheus label grammar.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is usable but
// unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//cogarm:zeroalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//cogarm:zeroalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
//
//cogarm:zeroalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by delta (CAS loop; lock-free).
//
//cogarm:zeroalloc
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
//
//cogarm:zeroalloc
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//cogarm:zeroalloc
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates families; a name maps to exactly one kind.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance within a family.
type series struct {
	labels []Label // sorted by name
	key    string  // canonical label signature
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry names and owns metrics and renders them for scraping. All methods
// are safe for concurrent use; registration takes the registry lock, but
// updating a registered metric never does.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

var (
	defaultOnce   sync.Once
	defaultReg    *Registry
	defaultEvents *EventRing
)

func initDefaults() {
	defaultReg = NewRegistry()
	defaultEvents = NewEventRing(DefaultEventCapacity, DefaultEventStripes)
}

// Default returns the process-global registry the serving stack instruments
// itself against. It never returns nil.
//
//cogarm:obsnonnil
func Default() *Registry {
	defaultOnce.Do(initDefaults)
	return defaultReg
}

// DefaultEvents returns the process-global lifecycle event ring. It never
// returns nil.
//
//cogarm:obsnonnil
func DefaultEvents() *EventRing {
	defaultOnce.Do(initDefaults)
	return defaultEvents
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// labelKey canonicalises a sorted label set into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register resolves (or creates) the series for name+labels, enforcing name
// validity and kind consistency. build constructs a fresh series body.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func(*series)) *series {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	for i, l := range ls {
		if !labelNameRe.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l.Name))
		}
		if i > 0 && ls[i-1].Name == l.Name {
			panic(fmt.Sprintf("obs: metric %q: duplicate label %q", name, l.Name))
		}
	}
	key := labelKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fams == nil {
		r.fams = map[string]*family{}
	}
	fam, ok := r.fams[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		r.fams[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	if s, ok := fam.byKey[key]; ok {
		return s
	}
	s := &series{labels: ls, key: key}
	build(s)
	fam.byKey[key] = s
	fam.series = append(fam.series, s)
	sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].key < fam.series[j].key })
	return s
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func(s *series) { s.ctr = &Counter{} })
	return s.ctr
}

// Gauge returns the gauge registered under name+labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time
// (runtime stats, uptime, ring membership). Re-registering the same
// name+labels keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, func(s *series) { s.fn = fn })
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given bucket upper bounds on first use (a final +Inf bucket is
// implicit). Re-registering the same name+labels returns the existing
// histogram; its original bounds win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func(s *series) { s.hist = newHistogram(bounds) })
	return s.hist
}

// famView is an immutable exposition snapshot of one family: the series
// slice is copied under the registry lock so a concurrent registration can
// never be observed mid-append. GaugeFunc callbacks run outside the lock.
type famView struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// sortedFamilies snapshots the families in name order for exposition.
func (r *Registry) sortedFamilies() []famView {
	r.mu.Lock()
	out := make([]famView, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, famView{
			name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
