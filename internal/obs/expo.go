package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition format v0.0.4, hand-rolled on the standard
// library. The format is small and fully specified: per family a # HELP and
// # TYPE line, then one sample line per series; histograms expand into
// cumulative le-bucket samples plus _sum and _count. Label values and help
// text are escaped; families render in name order and series in canonical
// label order, so output is deterministic — which is what the golden-file
// test pins.

// ContentType is the HTTP Content-Type of WriteText output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered metric in Prometheus text exposition
// format v0.0.4.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.sortedFamilies() {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.kind.String())
		bw.WriteByte('\n')
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				writeSample(bw, fam.name, "", s.labels, "", "", formatUint(s.ctr.Value()))
			case kindGauge:
				writeSample(bw, fam.name, "", s.labels, "", "", formatFloat(s.gauge.Value()))
			case kindGaugeFunc:
				writeSample(bw, fam.name, "", s.labels, "", "", formatFloat(s.fn()))
			case kindHistogram:
				writeHistogram(bw, fam.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative le buckets ending
// at +Inf, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(bw, name, "_bucket", s.labels, "le", formatFloat(bound), formatUint(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(bw, name, "_bucket", s.labels, "le", "+Inf", formatUint(cum))
	writeSample(bw, name, "_sum", s.labels, "", "", formatFloat(h.Sum()))
	writeSample(bw, name, "_count", s.labels, "", "", formatUint(h.Count()))
}

// writeSample renders one line: name[suffix]{labels...[,extraName="extraVal"]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, extraName, extraVal, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraVal))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes backslash, double quote and newline in label values.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
