package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func adminGet(t *testing.T, mux *http.ServeMux, path string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestAdminMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_total", "").Add(3)
	mux := AdminMux(AdminOptions{Registry: reg, Events: NewEventRing(16, 2)})
	resp, body := adminGet(t, mux, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	for _, want := range []string{
		"admin_test_total 3\n",
		"cogarm_go_goroutines",         // process metrics registered by AdminMux
		"cogarm_events_recorded_total", // ring accounting registered by AdminMux
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, body)
		}
	}
}

func TestAdminHealthz(t *testing.T) {
	var failing atomic.Bool
	mux := AdminMux(AdminOptions{
		Registry: NewRegistry(),
		Events:   NewEventRing(16, 2),
		Health: func() error {
			if failing.Load() {
				return errors.New("shard 1 overloaded")
			}
			return nil
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy probe status %d, want 200", resp.StatusCode)
	}

	failing.Store(true)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy probe status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "shard 1 overloaded") {
		t.Fatalf("503 body %q should carry the probe error", body)
	}
}

func TestAdminStatuszRoundTrip(t *testing.T) {
	type doc struct {
		Name     string  `json:"name"`
		Sessions int     `json:"sessions"`
		P99Ms    float64 `json:"p99_ms"`
	}
	want := doc{Name: "node-a", Sessions: 42, P99Ms: 1.75}
	mux := AdminMux(AdminOptions{
		Registry: NewRegistry(),
		Events:   NewEventRing(16, 2),
		Status:   func() any { return want },
	})
	resp, body := adminGet(t, mux, "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got doc
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("statusz is not valid JSON: %v\n%s", err, body)
	}
	if got != want {
		t.Fatalf("round trip %+v, want %+v", got, want)
	}
}

func TestAdminEventsEndpoint(t *testing.T) {
	ring := NewEventRing(16, 2)
	ring.Record(EvAdmit, 3, 11, 0, 0)
	ring.Record(EvCheckpointFull, -1, 0, 2048, 5_000_000)
	mux := AdminMux(AdminOptions{Registry: NewRegistry(), Events: ring})
	resp, body := adminGet(t, mux, "/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc EventsJSON
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("events JSON: %v\n%s", err, body)
	}
	if doc.Recorded != 2 || doc.Overwritten != 0 || len(doc.Events) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	admit := doc.Events[0]
	if admit.Type != "admit" || admit.Shard == nil || *admit.Shard != 3 || admit.Session != 11 {
		t.Fatalf("admit event = %+v", admit)
	}
	ckpt := doc.Events[1]
	if ckpt.Type != "checkpoint_full" || ckpt.Shard != nil {
		t.Fatalf("checkpoint event = %+v", ckpt)
	}
	if ckpt.Args["bytes"] != 2048 || ckpt.Args["dur_ns"] != 5_000_000 {
		t.Fatalf("checkpoint args = %v", ckpt.Args)
	}
}

func TestAdminPprofIndex(t *testing.T) {
	mux := AdminMux(AdminOptions{Registry: NewRegistry(), Events: NewEventRing(16, 2)})
	resp, body := adminGet(t, mux, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index should list profiles")
	}
}

func TestStartAdminBindsAndServes(t *testing.T) {
	srv, addr, err := StartAdmin("127.0.0.1:0", AdminOptions{
		Registry: NewRegistry(),
		Events:   NewEventRing(16, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
