package signal

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Design errors returned by the filter constructors.
var (
	errBadOrder = fmt.Errorf("signal: filter order must be >= 1")
	errBadBand  = fmt.Errorf("signal: band edges must satisfy 0 < low < high < fs/2")
	errBadFreq  = fmt.Errorf("signal: frequency must lie in (0, fs/2)")
)

// Butterworth designs an order-n analog Butterworth low-pass prototype and
// transforms it into a digital band-pass filter with edges [lowHz, highHz] at
// sample rate fsHz using the band-pass transform followed by the bilinear
// transform. The result has 2n poles realised as n biquad sections.
//
// CognitiveArm uses n = 9, low = 0.5 Hz, high = 45 Hz at fs = 125 Hz
// (paper §III-A3).
func Butterworth(n int, lowHz, highHz, fsHz float64) (*Cascade, error) {
	if n < 1 {
		return nil, errBadOrder
	}
	if !(0 < lowHz && lowHz < highHz && highHz < fsHz/2) {
		return nil, errBadBand
	}
	// Pre-warped analog edge frequencies for the bilinear transform with
	// s = (z-1)/(z+1) (i.e. T = 2).
	w1 := math.Tan(math.Pi * lowHz / fsHz)
	w2 := math.Tan(math.Pi * highHz / fsHz)
	w0 := math.Sqrt(w1 * w2) // analog centre
	bw := w2 - w1            // analog bandwidth

	// Unit-cutoff Butterworth low-pass prototype poles (left half-plane).
	proto := make([]complex128, n)
	for k := 0; k < n; k++ {
		theta := math.Pi * float64(2*k+n+1) / float64(2*n)
		proto[k] = cmplx.Exp(complex(0, theta))
	}

	// Low-pass → band-pass: each prototype pole p yields two poles solving
	// s² − (bw·p)s + w0² = 0.
	poles := make([]complex128, 0, 2*n)
	for _, p := range proto {
		bp := complex(bw, 0) * p
		disc := cmplx.Sqrt(bp*bp - complex(4*w0*w0, 0))
		poles = append(poles, (bp+disc)/2, (bp-disc)/2)
	}

	// Bilinear transform: z = (1+s)/(1-s). Analog zeros are n at s=0 and n at
	// s=∞, mapping to n digital zeros at z=+1 and n at z=−1; each biquad gets
	// one of each, i.e. numerator z² − 1.
	zPoles := make([]complex128, len(poles))
	for i, s := range poles {
		zPoles[i] = (1 + s) / (1 - s)
	}

	// Pair poles into conjugate biquads. Poles come out in conjugate pairs by
	// construction (adjacent entries for real-axis symmetry); sort-free
	// pairing: match each pole with its conjugate.
	sections := make([]Biquad, 0, n)
	used := make([]bool, len(zPoles))
	for i := range zPoles {
		if used[i] {
			continue
		}
		used[i] = true
		p1 := zPoles[i]
		// find the closest conjugate partner
		best, bestDist := -1, math.Inf(1)
		for j := i + 1; j < len(zPoles); j++ {
			if used[j] {
				continue
			}
			d := cmplx.Abs(zPoles[j] - cmplx.Conj(p1))
			if d < bestDist {
				best, bestDist = j, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("signal: internal pole pairing failure")
		}
		used[best] = true
		p2 := zPoles[best]
		// (z−p1)(z−p2) = z² − (p1+p2)z + p1·p2; coefficients are real up to
		// rounding for conjugate pairs.
		a1 := -real(p1 + p2)
		a2 := real(p1 * p2)
		sections = append(sections, Biquad{B0: 1, B1: 0, B2: -1, A1: a1, A2: a2})
	}

	c := NewCascade(sections...)
	// Normalise so the gain at the digital centre frequency is exactly 1.
	fc := math.Sqrt(lowHz * highHz)
	g := c.GainAt(fc, fsHz)
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return nil, fmt.Errorf("signal: degenerate design (gain %v at %v Hz)", g, fc)
	}
	scale := math.Pow(1/g, 1/float64(len(c.Sections)))
	for i := range c.Sections {
		c.Sections[i].B0 *= scale
		c.Sections[i].B1 *= scale
		c.Sections[i].B2 *= scale
	}
	if !c.Stable() {
		return nil, fmt.Errorf("signal: unstable design for n=%d band=[%g,%g] fs=%g", n, lowHz, highHz, fsHz)
	}
	return c, nil
}

// Notch designs a single-biquad notch filter at freqHz with the given quality
// factor (RBJ audio-EQ cookbook form). CognitiveArm uses 50 Hz, Q = 30 to
// suppress powerline interference.
func Notch(freqHz, q, fsHz float64) (*Cascade, error) {
	if !(0 < freqHz && freqHz < fsHz/2) {
		return nil, errBadFreq
	}
	if q <= 0 {
		return nil, fmt.Errorf("signal: notch Q must be positive")
	}
	w0 := 2 * math.Pi * freqHz / fsHz
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	b := Biquad{
		B0: 1 / a0,
		B1: -2 * cosw / a0,
		B2: 1 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}
	return NewCascade(b), nil
}

// GainAt evaluates the cascade's magnitude response at freqHz for sample rate
// fsHz by direct evaluation on the unit circle.
func (c *Cascade) GainAt(freqHz, fsHz float64) float64 {
	w := 2 * math.Pi * freqHz / fsHz
	z := cmplx.Exp(complex(0, w))
	zi := 1 / z
	h := complex(1, 0)
	for _, q := range c.Sections {
		num := complex(q.B0, 0) + complex(q.B1, 0)*zi + complex(q.B2, 0)*zi*zi
		den := complex(1, 0) + complex(q.A1, 0)*zi + complex(q.A2, 0)*zi*zi
		h *= num / den
	}
	return cmplx.Abs(h)
}

// EEGPreprocessor bundles the paper's preprocessing chain: Butterworth
// band-pass (order, low, high) followed by a notch. It processes one channel;
// use one instance per channel for streaming multichannel data.
type EEGPreprocessor struct {
	Bandpass *Cascade
	Notch    *Cascade
}

// NewEEGPreprocessor constructs the chain used throughout CognitiveArm:
// a 9th-order 0.5–45 Hz Butterworth band-pass and a 50 Hz, Q=30 notch.
func NewEEGPreprocessor(fsHz float64) (*EEGPreprocessor, error) {
	bp, err := Butterworth(9, 0.5, 45, fsHz)
	if err != nil {
		return nil, fmt.Errorf("bandpass design: %w", err)
	}
	nf, err := Notch(50, 30, fsHz)
	if err != nil {
		return nil, fmt.Errorf("notch design: %w", err)
	}
	return &EEGPreprocessor{Bandpass: bp, Notch: nf}, nil
}

// Process filters one streaming sample (causal path used in the real-time
// control loop).
//
//cogarm:zeroalloc
func (p *EEGPreprocessor) Process(x float64) float64 {
	return p.Notch.Process(p.Bandpass.Process(x))
}

// Reset clears all filter state.
func (p *EEGPreprocessor) Reset() {
	p.Bandpass.Reset()
	p.Notch.Reset()
}

// FilterOffline applies the chain with zero-phase filtering, the variant used
// during dataset preparation where future samples are available.
func (p *EEGPreprocessor) FilterOffline(src []float64) []float64 {
	return p.Notch.FiltFilt(p.Bandpass.FiltFilt(src))
}

// State exports the delay state of the whole chain (band-pass sections first,
// then notch) so a resumed stream continues bit-for-bit where it left off.
func (p *EEGPreprocessor) State() []float64 {
	return append(p.Bandpass.State(), p.Notch.State()...)
}

// SetState restores delay state previously exported by State.
func (p *EEGPreprocessor) SetState(state []float64) error {
	nb := 2 * len(p.Bandpass.Sections)
	if len(state) != nb+2*len(p.Notch.Sections) {
		return fmt.Errorf("preprocessor state has %d values, want %d",
			len(state), nb+2*len(p.Notch.Sections))
	}
	if err := p.Bandpass.SetState(state[:nb]); err != nil {
		return err
	}
	return p.Notch.SetState(state[nb:])
}
