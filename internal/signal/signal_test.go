package signal

import (
	"math"
	"testing"
	"testing/quick"
)

const fs = 125.0

func sine(freq, fsHz float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / fsHz)
	}
	return x
}

func TestButterworthDesignValid(t *testing.T) {
	c, err := Butterworth(9, 0.5, 45, fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Order(); got != 18 {
		t.Fatalf("band-pass order = %d, want 18 (2×9)", got)
	}
	if !c.Stable() {
		t.Fatal("design must be stable")
	}
}

func TestButterworthGainShape(t *testing.T) {
	c, err := Butterworth(9, 0.5, 45, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Unity-ish in the passband centre.
	fc := math.Sqrt(0.5 * 45)
	if g := c.GainAt(fc, fs); math.Abs(g-1) > 1e-6 {
		t.Fatalf("centre gain = %v, want 1", g)
	}
	if g := c.GainAt(10, fs); g < 0.9 {
		t.Fatalf("alpha-band gain = %v, want near 1", g)
	}
	if g := c.GainAt(55, fs); g > 0.05 {
		t.Fatalf("stop-band gain at 55 Hz = %v, want tiny", g)
	}
	if g := c.GainAt(0.05, fs); g > 0.05 {
		t.Fatalf("drift gain at 0.05 Hz = %v, want tiny", g)
	}
	// Monotone-ish rolloff beyond the edge.
	if c.GainAt(50, fs) > c.GainAt(46, fs)+1e-9 {
		t.Fatal("gain should roll off past the upper edge")
	}
}

func TestButterworthBadArgs(t *testing.T) {
	cases := []struct {
		n      int
		lo, hi float64
	}{
		{0, 1, 40}, {-1, 1, 40}, {4, 0, 40}, {4, 50, 40}, {4, 1, 70}, {4, 40, 40},
	}
	for _, c := range cases {
		if _, err := Butterworth(c.n, c.lo, c.hi, fs); err == nil {
			t.Fatalf("expected error for n=%d band=[%g,%g]", c.n, c.lo, c.hi)
		}
	}
}

func TestButterworthStableAcrossOrders(t *testing.T) {
	f := func(raw uint8) bool {
		n := 1 + int(raw)%12
		c, err := Butterworth(n, 0.5, 45, fs)
		return err == nil && c.Stable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNotchKillsTargetOnly(t *testing.T) {
	c, err := Notch(50, 30, fs)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.GainAt(50, fs); g > 1e-6 {
		t.Fatalf("notch gain at 50 Hz = %v, want ~0", g)
	}
	if g := c.GainAt(45, fs); g < 0.8 {
		t.Fatalf("gain at 45 Hz = %v, want near 1 (narrow notch)", g)
	}
	if g := c.GainAt(10, fs); g < 0.99 {
		t.Fatalf("gain at 10 Hz = %v, want ≈1", g)
	}
}

func TestNotchBadArgs(t *testing.T) {
	if _, err := Notch(0, 30, fs); err == nil {
		t.Fatal("freq 0 must error")
	}
	if _, err := Notch(70, 30, fs); err == nil {
		t.Fatal("freq above Nyquist must error")
	}
	if _, err := Notch(50, 0, fs); err == nil {
		t.Fatal("Q 0 must error")
	}
}

func TestFilterRemovesPowerline(t *testing.T) {
	n := 1024
	clean := sine(10, fs, n)
	noisy := make([]float64, n)
	line := sine(50, fs, n)
	for i := range noisy {
		noisy[i] = clean[i] + 2*line[i]
	}
	pre, err := NewEEGPreprocessor(fs)
	if err != nil {
		t.Fatal(err)
	}
	out := pre.FilterOffline(noisy)
	before := BandPower(noisy, fs, 48, 52)
	after := BandPower(out, fs, 48, 52)
	if after > before/100 {
		t.Fatalf("50 Hz power only reduced from %v to %v", before, after)
	}
	// Alpha content survives.
	alphaIn := BandPower(noisy, fs, 8, 12)
	alphaOut := BandPower(out, fs, 8, 12)
	if alphaOut < alphaIn*0.5 {
		t.Fatalf("alpha power destroyed: %v -> %v", alphaIn, alphaOut)
	}
}

func TestStreamingMatchesBatchFilter(t *testing.T) {
	c, err := Butterworth(4, 1, 40, fs)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(10, fs, 200)
	batch := c.Filter(x)
	c.Reset()
	for i, v := range x {
		if got := c.Process(v); math.Abs(got-batch[i]) > 1e-12 {
			t.Fatalf("sample %d: streaming %v vs batch %v", i, got, batch[i])
		}
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	c, err := Butterworth(4, 1, 40, fs)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(10, fs, 512)
	y := c.FiltFilt(x)
	if len(y) != len(x) {
		t.Fatalf("length changed: %d vs %d", len(y), len(x))
	}
	// Zero-phase: cross-correlation peak at zero lag.
	bestLag, bestCorr := 0, math.Inf(-1)
	for lag := -5; lag <= 5; lag++ {
		var c float64
		for i := 100; i < 400; i++ {
			c += x[i] * y[i+lag]
		}
		if c > bestCorr {
			bestCorr, bestLag = c, lag
		}
	}
	if bestLag != 0 {
		t.Fatalf("FiltFilt introduced %d samples of lag", bestLag)
	}
}

func TestFiltFiltEmptyAndShort(t *testing.T) {
	c, _ := Butterworth(2, 1, 40, fs)
	if out := c.FiltFilt(nil); out != nil {
		t.Fatal("nil input should give nil output")
	}
	out := c.FiltFilt([]float64{1, 2, 3})
	if len(out) != 3 {
		t.Fatalf("short input length mangled: %d", len(out))
	}
}

func TestBiquadStability(t *testing.T) {
	stable := Biquad{B0: 1, A1: -1.6, A2: 0.8}
	if !stable.Stable() {
		t.Fatal("known-stable biquad reported unstable")
	}
	unstable := Biquad{B0: 1, A1: 0, A2: 1.2}
	if unstable.Stable() {
		t.Fatal("pole outside unit circle reported stable")
	}
}

func TestFFTKnownSpike(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	freq := 8
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(freq)*float64(i)/float64(n)), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= n/2; k++ {
		mag := math.Hypot(real(x[k]), imag(x[k]))
		if k == freq {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d magnitude %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", k, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rngState := seed | 1
		next := func() float64 {
			rngState ^= rngState << 13
			rngState ^= rngState >> 7
			rngState ^= rngState << 17
			return float64(int64(rngState))/float64(1<<62) - 0
		}
		x := make([]complex128, 128)
		orig := make([]complex128, 128)
		for i := range x {
			x[i] = complex(next(), 0)
			orig[i] = x[i]
		}
		if FFT(x) != nil {
			return false
		}
		if IFFT(x) != nil {
			return false
		}
		for i := range x {
			if math.Abs(real(x[i])-real(orig[i])) > 1e-6*(1+math.Abs(real(orig[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTNonPow2Errors(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestPSDPeakLocation(t *testing.T) {
	x := sine(20, fs, 512)
	freqs, power := PSD(x, fs)
	best := 0
	for k := range power {
		if power[k] > power[best] {
			best = k
		}
	}
	if math.Abs(freqs[best]-20) > 1 {
		t.Fatalf("PSD peak at %v Hz, want ~20", freqs[best])
	}
}

func TestBandPowerPartition(t *testing.T) {
	x := sine(10, fs, 1024)
	alpha := BandPower(x, fs, 8, 13)
	beta := BandPower(x, fs, 13, 30)
	if alpha < 10*beta {
		t.Fatalf("10 Hz tone: alpha %v should dominate beta %v", alpha, beta)
	}
}

func TestSNRImprovesWithFiltering(t *testing.T) {
	n := 1024
	x := make([]float64, n)
	alpha := sine(10, fs, n)
	line := sine(50, fs, n)
	for i := range x {
		x[i] = alpha[i] + 3*line[i]
	}
	pre, _ := NewEEGPreprocessor(fs)
	y := pre.FilterOffline(x)
	if SNR(y, fs, 8, 13) <= SNR(x, fs, 8, 13) {
		t.Fatalf("filtering should improve alpha SNR: before %v after %v",
			SNR(x, fs, 8, 13), SNR(y, fs, 8, 13))
	}
}

func TestStandardBandsCoverPassband(t *testing.T) {
	bands := StandardBands()
	if bands[0].LowHz != 0.5 || bands[len(bands)-1].HighHz != 45 {
		t.Fatalf("bands should span the 0.5–45 Hz passband: %+v", bands)
	}
	for i := 1; i < len(bands); i++ {
		if bands[i].LowHz != bands[i-1].HighHz {
			t.Fatalf("bands must tile contiguously: %+v", bands)
		}
	}
}

func TestArtifactCleanerRepairsBlink(t *testing.T) {
	n := 500
	x := sine(10, fs, n)
	// Inject a blink: large slow bump over 30 samples.
	for i := 200; i < 230; i++ {
		x[i] += 40
	}
	cl := NewArtifactCleaner()
	cl.DriftWindow = 0 // isolate the blink logic
	y, rep := cl.Clean(x)
	if rep.BlinksRepaired == 0 {
		t.Fatal("blink not detected")
	}
	for i := 205; i < 225; i++ {
		if math.Abs(y[i]) > 10 {
			t.Fatalf("blink not repaired at %d: %v", i, y[i])
		}
	}
}

func TestArtifactCleanerRemovesDrift(t *testing.T) {
	n := 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5*math.Sin(2*math.Pi*10*float64(i)/fs) + 0.02*float64(i)
	}
	cl := NewArtifactCleaner()
	y, rep := cl.Clean(x)
	if !rep.DriftRemoved {
		t.Fatal("drift removal should run by default")
	}
	// After drift removal the tail should no longer sit ~20 above zero.
	tailMean := 0.0
	for i := n - 100; i < n; i++ {
		tailMean += y[i]
	}
	tailMean /= 100
	if math.Abs(tailMean) > 1 {
		t.Fatalf("drift not removed, tail mean %v", tailMean)
	}
}

func TestArtifactCleanerNoFalsePositivesOnCleanSignal(t *testing.T) {
	x := sine(10, fs, 500)
	cl := NewArtifactCleaner()
	cl.DriftWindow = 0
	_, rep := cl.Clean(x)
	if rep.BlinksRepaired != 0 || rep.SamplesClamped != 0 {
		t.Fatalf("clean sine triggered repairs: %+v", rep)
	}
}

func TestArtifactCleanerEmptyInput(t *testing.T) {
	cl := NewArtifactCleaner()
	out, rep := cl.Clean(nil)
	if len(out) != 0 || rep.BlinksRepaired != 0 {
		t.Fatal("empty input should be a no-op")
	}
}

func TestQuickMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{9, 8, 7, 6, 5, 4, 3, 2, 1}, 5},
	}
	for _, c := range cases {
		if got := quickMedian(append([]float64(nil), c.in...)); got != c.want {
			t.Fatalf("median(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestRobustStatsResistOutliers(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	x[50] = 1e6
	med, rstd := robustStats(x)
	if math.Abs(med) > 1 || rstd > 5 {
		t.Fatalf("robust stats blew up: med=%v rstd=%v", med, rstd)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("empty RMS should be 0")
	}
	if got := RMS([]float64{3, -3, 3, -3}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RMS=%v want 3", got)
	}
}
