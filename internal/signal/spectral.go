package signal

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley–Tukey FFT of x. len(x) must be a
// power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("signal: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT in place. len(x) must be a power of two.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PSD estimates the one-sided power spectral density of x sampled at fsHz
// using a Hann-windowed periodogram, zero-padded to the next power of two.
// It returns the frequency bins and the corresponding power values
// (units²/Hz). Both slices have length nfft/2+1.
func PSD(x []float64, fsHz float64) (freqs, power []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	nfft := nextPow2(n)
	buf := make([]complex128, nfft)
	var winPow float64
	den := float64(n - 1)
	if den == 0 {
		den = 1
	}
	for i := 0; i < n; i++ {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/den))
		buf[i] = complex(x[i]*w, 0)
		winPow += w * w
	}
	if err := FFT(buf); err != nil {
		return nil, nil
	}
	half := nfft/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	scale := 1 / (fsHz * winPow)
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) * fsHz / float64(nfft)
		p := cmplx.Abs(buf[k])
		p = p * p * scale
		if k != 0 && k != nfft/2 {
			p *= 2 // fold negative frequencies
		}
		power[k] = p
	}
	return freqs, power
}

// BandPower integrates the PSD of x over [lowHz, highHz] via the trapezoid
// rule, returning the total in-band power.
func BandPower(x []float64, fsHz, lowHz, highHz float64) float64 {
	freqs, power := PSD(x, fsHz)
	var total float64
	for k := 1; k < len(freqs); k++ {
		f0, f1 := freqs[k-1], freqs[k]
		if f1 < lowHz || f0 > highHz {
			continue
		}
		total += 0.5 * (power[k-1] + power[k]) * (f1 - f0)
	}
	return total
}

// Band names the canonical EEG frequency bands used in reporting.
type Band struct {
	Name          string
	LowHz, HighHz float64
}

// StandardBands returns the delta/theta/alpha/beta/gamma partition the paper
// refers to (the band-pass retains delta through beta).
func StandardBands() []Band {
	return []Band{
		{"delta", 0.5, 4},
		{"theta", 4, 8},
		{"alpha", 8, 13},
		{"beta", 13, 30},
		{"gamma", 30, 45},
	}
}

// SNR computes the signal-to-noise ratio in dB, defining "signal" as power
// inside [lowHz, highHz] and "noise" as power outside it (up to Nyquist).
func SNR(x []float64, fsHz, lowHz, highHz float64) float64 {
	inBand := BandPower(x, fsHz, lowHz, highHz)
	total := BandPower(x, fsHz, 0, fsHz/2)
	noise := total - inBand
	if noise <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(inBand/noise)
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
