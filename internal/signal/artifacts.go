package signal

import "math"

// ArtifactReport summarises what the artifact-removal pass found and fixed in
// one channel, mirroring BrainFlow's signal-cleaning utilities the paper
// relies on (§III-A3).
type ArtifactReport struct {
	BlinksRepaired int // high-amplitude low-frequency excursions (eye blinks)
	SamplesClamped int // isolated spikes clamped to the local envelope
	DriftRemoved   bool
}

// ArtifactCleaner removes the common EEG artifacts the paper lists: eye
// blinks (large slow deflections), muscle/motion spikes, and slow electrode
// drift. Thresholds are expressed in multiples of the channel's robust
// standard deviation so the cleaner adapts to per-subject amplitude.
type ArtifactCleaner struct {
	// BlinkSigma is the detection threshold for blink-like excursions, in
	// robust standard deviations (default 4).
	BlinkSigma float64
	// SpikeSigma is the clamping threshold for isolated spikes (default 6).
	SpikeSigma float64
	// DriftWindow is the moving-average window (samples) subtracted to remove
	// drift; 0 disables drift removal.
	DriftWindow int
}

// NewArtifactCleaner returns a cleaner with the defaults used throughout the
// pipeline (tuned for 125 Hz EEG).
func NewArtifactCleaner() *ArtifactCleaner {
	return &ArtifactCleaner{BlinkSigma: 4, SpikeSigma: 6, DriftWindow: 125}
}

// Clean repairs artifacts in x, returning a new slice and a report. The input
// is not modified.
func (a *ArtifactCleaner) Clean(x []float64) ([]float64, ArtifactReport) {
	out := make([]float64, len(x))
	copy(out, x)
	var rep ArtifactReport
	if len(x) == 0 {
		return out, rep
	}
	if a.DriftWindow > 1 {
		removeDrift(out, a.DriftWindow)
		rep.DriftRemoved = true
	}
	med, rstd := robustStats(out)
	if rstd == 0 {
		return out, rep
	}
	// Blink repair: find contiguous runs exceeding BlinkSigma and linearly
	// interpolate across them.
	thr := a.BlinkSigma * rstd
	i := 0
	for i < len(out) {
		if math.Abs(out[i]-med) <= thr {
			i++
			continue
		}
		j := i
		for j < len(out) && math.Abs(out[j]-med) > thr {
			j++
		}
		// Runs longer than ~40 ms are blink-like; interpolate them.
		if j-i >= 3 {
			left := med
			if i > 0 {
				left = out[i-1]
			}
			right := med
			if j < len(out) {
				right = out[j]
			}
			for k := i; k < j; k++ {
				t := float64(k-i+1) / float64(j-i+1)
				out[k] = left + t*(right-left)
			}
			rep.BlinksRepaired++
		}
		i = j
	}
	// Spike clamp: isolated samples beyond SpikeSigma.
	clamp := a.SpikeSigma * rstd
	for k := range out {
		d := out[k] - med
		if d > clamp {
			out[k] = med + clamp
			rep.SamplesClamped++
		} else if d < -clamp {
			out[k] = med - clamp
			rep.SamplesClamped++
		}
	}
	return out, rep
}

// removeDrift subtracts a centred moving average of the given window from x
// in place.
func removeDrift(x []float64, window int) {
	n := len(x)
	if n == 0 {
		return
	}
	half := window / 2
	prefix := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	base := make([]float64, n)
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		base[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	for i := range x {
		x[i] -= base[i]
	}
}

// robustStats returns the median and a robust standard deviation estimate
// (1.4826 × median absolute deviation).
func robustStats(x []float64) (median, rstd float64) {
	if len(x) == 0 {
		return 0, 0
	}
	median = quickMedian(append([]float64(nil), x...))
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - median)
	}
	rstd = 1.4826 * quickMedian(dev)
	return median, rstd
}

// quickMedian selects the median in expected O(n) via quickselect. It
// modifies its argument.
func quickMedian(v []float64) float64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	k := n / 2
	lo, hi := 0, n-1
	for lo < hi {
		p := partition(v, lo, hi)
		switch {
		case p == k:
			lo, hi = k, k
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	if n%2 == 1 {
		return v[k]
	}
	// even length: average with the max of the lower half
	maxLower := v[0]
	for i := 1; i < k; i++ {
		if v[i] > maxLower {
			maxLower = v[i]
		}
	}
	return (v[k] + maxLower) / 2
}

func partition(v []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// median-of-three pivot to dodge adversarial orderings
	if v[mid] < v[lo] {
		v[mid], v[lo] = v[lo], v[mid]
	}
	if v[hi] < v[lo] {
		v[hi], v[lo] = v[lo], v[hi]
	}
	if v[hi] < v[mid] {
		v[hi], v[mid] = v[mid], v[hi]
	}
	pivot := v[mid]
	v[mid], v[hi] = v[hi], v[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if v[j] < pivot {
			v[i], v[j] = v[j], v[i]
			i++
		}
	}
	v[i], v[hi] = v[hi], v[i]
	return i
}
