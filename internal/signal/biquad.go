// Package signal implements the DSP substrate of CognitiveArm: IIR filter
// design (Butterworth band-pass, notch), zero-phase filtering, FFT-based
// spectral analysis, and EEG artifact detection/repair. It mirrors the
// preprocessing stage the paper performs with BrainFlow (§III-A3): a 9th-order
// Butterworth band-pass retaining 0.5–45 Hz and a 50 Hz notch with Q = 30.
package signal

import "fmt"

// Biquad is a single second-order IIR section in direct form II transposed:
//
//	y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]
//
// with a0 normalised to 1.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	z1, z2     float64 // DF2T state
}

// Process filters a single sample through the section.
//
//cogarm:zeroalloc
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the section's internal state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// Stable reports whether both poles lie strictly inside the unit circle,
// using the triangle stability conditions for a real biquad.
func (q *Biquad) Stable() bool {
	return q.A2 < 1 && q.A2 > -1 && q.A1 < 1+q.A2 && q.A1 > -(1+q.A2)
}

// Cascade is a chain of biquad sections applied in series, the standard
// numerically-robust realisation of high-order IIR filters.
type Cascade struct {
	Sections []Biquad
}

// NewCascade builds a cascade from the given sections (copied).
func NewCascade(sections ...Biquad) *Cascade {
	c := &Cascade{Sections: make([]Biquad, len(sections))}
	copy(c.Sections, sections)
	return c
}

// Process filters one sample through all sections in order.
//
//cogarm:zeroalloc
func (c *Cascade) Process(x float64) float64 {
	for i := range c.Sections {
		x = c.Sections[i].Process(x)
	}
	return x
}

// Reset clears the state of every section.
func (c *Cascade) Reset() {
	for i := range c.Sections {
		c.Sections[i].Reset()
	}
}

// State exports the internal DF2T delay state of every section as a flat
// [z1, z2, z1, z2, ...] slice. Together with the (immutable) coefficients it
// fully determines the cascade's future output, which is what a streaming
// checkpoint needs to resume a causal filter mid-signal.
func (c *Cascade) State() []float64 {
	out := make([]float64, 0, 2*len(c.Sections))
	for i := range c.Sections {
		out = append(out, c.Sections[i].z1, c.Sections[i].z2)
	}
	return out
}

// SetState restores delay state previously exported by State. The slice
// length must be exactly 2 per section.
func (c *Cascade) SetState(state []float64) error {
	if len(state) != 2*len(c.Sections) {
		return fmt.Errorf("signal: cascade state has %d values, want %d", len(state), 2*len(c.Sections))
	}
	for i := range c.Sections {
		c.Sections[i].z1 = state[2*i]
		c.Sections[i].z2 = state[2*i+1]
	}
	return nil
}

// Stable reports whether every section is stable.
func (c *Cascade) Stable() bool {
	for i := range c.Sections {
		if !c.Sections[i].Stable() {
			return false
		}
	}
	return true
}

// Order returns the filter order (2 per section).
func (c *Cascade) Order() int { return 2 * len(c.Sections) }

// Filter applies the cascade to src, writing into a new slice. The cascade
// state is reset first, so repeated calls are independent.
func (c *Cascade) Filter(src []float64) []float64 {
	c.Reset()
	out := make([]float64, len(src))
	for i, x := range src {
		out[i] = c.Process(x)
	}
	return out
}

// FiltFilt applies the cascade forward and backward for zero-phase filtering
// (the offline variant used during dataset preparation; the real-time path
// uses causal Filter). Edge transients are reduced by reflecting ~3× the
// filter order of samples at each end.
func (c *Cascade) FiltFilt(src []float64) []float64 {
	n := len(src)
	if n == 0 {
		return nil
	}
	pad := 3 * c.Order()
	if pad >= n {
		pad = n - 1
	}
	ext := make([]float64, 0, n+2*pad)
	for i := pad; i >= 1; i-- { // odd reflection of the head
		ext = append(ext, 2*src[0]-src[i])
	}
	ext = append(ext, src...)
	for i := n - 2; i >= n-1-pad && i >= 0; i-- { // odd reflection of the tail
		ext = append(ext, 2*src[n-1]-src[i])
	}
	fwd := c.Filter(ext)
	reverse(fwd)
	bwd := c.Filter(fwd)
	reverse(bwd)
	out := make([]float64, n)
	copy(out, bwd[pad:pad+n])
	return out
}

func reverse(v []float64) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// String renders the cascade coefficients, one section per line.
func (c *Cascade) String() string {
	s := ""
	for i, q := range c.Sections {
		s += fmt.Sprintf("section %d: b=[%.6g %.6g %.6g] a=[1 %.6g %.6g]\n",
			i, q.B0, q.B1, q.B2, q.A1, q.A2)
	}
	return s
}
