// Package core assembles the full CognitiveArm system of Figure 2: dataset
// generation over the synthetic participant pool, model training (single
// models or the paper's CNN+Transformer ensemble), compression, and the
// deployment of a closed-loop controller with voice-command mode switching —
// one façade over every substrate package.
package core

import (
	"fmt"

	"cognitivearm/internal/asr"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/board"
	"cognitivearm/internal/compress"
	"cognitivearm/internal/control"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/edge"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/ensemble"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// Config sizes a pipeline run. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// SubjectIDs are the synthetic participants (the paper uses five).
	SubjectIDs []int
	// Sessions per subject (the paper uses three).
	Sessions int
	// SessionSeconds is the length of one collection session.
	SessionSeconds float64
	// WindowSize is the classifier input length in samples.
	WindowSize int
	// Train controls the per-model training budget.
	Train models.TrainOptions
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration: two short sessions for
// three subjects, enough for ~85–95 % within-distribution accuracy in a few
// seconds of CPU training.
func DefaultConfig() Config {
	return Config{
		SubjectIDs:     []int{0, 1, 2},
		Sessions:       1,
		SessionSeconds: 48,
		WindowSize:     100,
		Train:          models.TrainOptions{Epochs: 10, BatchSize: 32, Patience: 4, Seed: 1},
		Seed:           1,
	}
}

// PaperConfig mirrors the paper's protocol sizes (five subjects, three
// sessions, five minutes each). Training the full pool at this size takes
// minutes to hours of CPU; use for the full reproduction runs.
func PaperConfig() Config {
	return Config{
		SubjectIDs:     []int{0, 1, 2, 3, 4},
		Sessions:       3,
		SessionSeconds: 300,
		WindowSize:     190,
		Train:          models.TrainOptions{Epochs: 8, BatchSize: 64, Patience: 3, Seed: 1},
		Seed:           1,
	}
}

// Pipeline is a configured CognitiveArm instance.
type Pipeline struct {
	Config Config
	// BySubject holds the processed windows per subject.
	BySubject map[int][]dataset.Window
	// Stats holds per-subject normalisation constants (for live control).
	Stats map[int]dataset.Stats
}

// New builds the dataset stage of the pipeline (acquisition → preprocessing
// → annotation → windows → normalisation → balancing).
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.SubjectIDs) == 0 || cfg.Sessions < 1 {
		return nil, fmt.Errorf("core: need at least one subject and session")
	}
	proto := dataset.ShortProtocol(cfg.SessionSeconds)
	p := &Pipeline{Config: cfg, BySubject: map[int][]dataset.Window{}, Stats: map[int]dataset.Stats{}}
	rng := tensor.NewRNG(cfg.Seed)
	for _, id := range cfg.SubjectIDs {
		subj := eeg.NewSubject(id)
		var all []dataset.Window
		for s := 0; s < cfg.Sessions; s++ {
			rec := dataset.Collect(subj, s, proto, cfg.Seed+uint64(id)*101+uint64(s))
			clean, err := dataset.Preprocess(rec)
			if err != nil {
				return nil, fmt.Errorf("core: preprocess subject %d: %w", id, err)
			}
			ws, err := dataset.Segment(clean, dataset.DefaultSegment(cfg.WindowSize))
			if err != nil {
				return nil, fmt.Errorf("core: segment subject %d: %w", id, err)
			}
			all = append(all, ws...)
		}
		st := dataset.ComputeStats(all)
		dataset.Normalize(all, st)
		p.Stats[id] = st
		p.BySubject[id] = dataset.Balance(all, rng.Fork())
	}
	return p, nil
}

// GlobalStats returns normalisation constants averaged across every trained
// subject — the serving-time fallback for subjects outside the pool, where
// no per-subject calibration exists yet. Averaging per-subject means and
// stds is an approximation of pooled statistics, but the per-channel scales
// it preserves are what the live filter chain needs.
func (p *Pipeline) GlobalStats() dataset.Stats {
	var out dataset.Stats
	n := 0.0
	for _, id := range p.Config.SubjectIDs {
		st, ok := p.Stats[id]
		if !ok || len(st.Mean) == 0 {
			continue
		}
		if out.Mean == nil {
			out.Mean = make([]float64, len(st.Mean))
			out.Std = make([]float64, len(st.Std))
		}
		for ch := range st.Mean {
			out.Mean[ch] += st.Mean[ch]
			out.Std[ch] += st.Std[ch]
		}
		n++
	}
	if n > 0 {
		for ch := range out.Mean {
			out.Mean[ch] /= n
			out.Std[ch] /= n
		}
	}
	return out
}

// NormFor returns subject id's normalisation stats, falling back to
// GlobalStats for subjects the pipeline never trained on — the admission
// path of the serving hub, which must accept arbitrary subject IDs.
func (p *Pipeline) NormFor(id int) dataset.Stats {
	if st, ok := p.Stats[id]; ok {
		return st
	}
	return p.GlobalStats()
}

// Pooled returns all subjects' windows shuffled together with an 80:20
// train/val split (the within-distribution evaluation).
func (p *Pipeline) Pooled() (train, val []dataset.Window) {
	var all []dataset.Window
	for _, id := range p.Config.SubjectIDs {
		all = append(all, p.BySubject[id]...)
	}
	rng := tensor.NewRNG(p.Config.Seed + 7)
	dataset.Shuffle(all, rng)
	cut := len(all) * 8 / 10
	return all[:cut], all[cut:]
}

// LOSO returns the leave-one-subject-out folds (§III-D1).
func (p *Pipeline) LOSO() []dataset.Split {
	return dataset.LOSO(p.BySubject, tensor.NewRNG(p.Config.Seed+13))
}

// TrainModel fits one spec on the pooled split.
func (p *Pipeline) TrainModel(spec models.Spec) (models.Classifier, models.Result, error) {
	if spec.WindowSize != p.Config.WindowSize {
		return nil, models.Result{}, fmt.Errorf("core: spec window %d != pipeline window %d",
			spec.WindowSize, p.Config.WindowSize)
	}
	train, val := p.Pooled()
	return models.Train(spec, train, val, p.Config.Train)
}

// System is a deployed CognitiveArm: trained classifier, voice channel and
// closed-loop controller for one subject.
type System struct {
	Classifier models.Classifier
	Controller *control.Controller
	Spotter    *asr.Spotter
	VAD        *audio.VAD
	Board      board.Board
}

// Deploy wires a trained classifier into a live controller for subjectID.
func (p *Pipeline) Deploy(clf models.Classifier, macs int64, subjectID int) (*System, error) {
	st, ok := p.Stats[subjectID]
	if !ok {
		return nil, fmt.Errorf("core: subject %d not in pipeline", subjectID)
	}
	b := board.NewSyntheticCyton(eeg.NewSubject(subjectID), p.Config.Seed+0xB0A4D, false)
	if err := b.Start(); err != nil {
		return nil, err
	}
	ctrl, err := control.New(control.Config{
		Board:         b,
		Classifier:    clf,
		Norm:          st,
		Device:        edge.JetsonOrinNano(),
		InferenceMACs: macs,
	})
	if err != nil {
		b.Stop()
		return nil, err
	}
	return &System{
		Classifier: clf,
		Controller: ctrl,
		Spotter:    asr.NewSpotter(p.Config.Seed),
		VAD:        audio.NewVAD(),
		Board:      b,
	}, nil
}

// Close stops the system's acquisition stream.
func (s *System) Close() error { return s.Board.Stop() }

// HearCommand runs the voice path end-to-end: VAD gates the audio, and if
// speech is present the spotter's keyword switches the controller mode. It
// returns the recognised word.
func (s *System) HearCommand(wave []float64) audio.Word {
	if len(s.VAD.DetectSegments(wave)) == 0 {
		return audio.Silence
	}
	word, _ := s.Spotter.Recognize(wave)
	s.Controller.HandleVoice(word)
	return word
}

// TrainPaperEnsemble trains the scaled equivalents of the paper's four
// Pareto-optimal models on the pooled split and returns the CNN+Transformer
// soft-voting ensemble of §V plus all four members. Specs are re-windowed to
// the pipeline's window size.
func (p *Pipeline) TrainPaperEnsemble() (*ensemble.Ensemble, []models.Classifier, error) {
	var pool []models.Classifier
	var cnnTF []models.Classifier
	for _, spec := range models.ScaledPaperSpecs() {
		spec.WindowSize = p.Config.WindowSize
		clf, _, err := p.TrainModel(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("core: train %s: %w", spec.ID(), err)
		}
		pool = append(pool, clf)
		if spec.Family == models.FamilyCNN || spec.Family == models.FamilyTransformer {
			cnnTF = append(cnnTF, clf)
		}
	}
	ens, err := ensemble.New(cnnTF...)
	if err != nil {
		return nil, nil, err
	}
	return ens, pool, nil
}

// CompressBest applies the paper's §III-E recipe to an NN classifier:
// 70 % global pruning (the selected operating point) and reports before/after
// accuracy on val.
func (p *Pipeline) CompressBest(clf *models.NNClassifier, val []dataset.Window) (pruned *models.NNClassifier, baseAcc, prunedAcc float64, err error) {
	baseAcc = models.Accuracy(clf, val)
	pruned, _, err = compress.Prune(clf, 0.7)
	if err != nil {
		return nil, 0, 0, err
	}
	prunedAcc = models.Accuracy(pruned, val)
	return pruned, baseAcc, prunedAcc, nil
}
