package core

import (
	"testing"

	"cognitivearm/internal/audio"
	"cognitivearm/internal/control"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.SubjectIDs = []int{0, 1}
	cfg.SessionSeconds = 32
	cfg.Train.Epochs = 6
	return cfg
}

func TestNewBuildsBalancedDataset(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.BySubject) != 2 {
		t.Fatalf("subjects %d", len(p.BySubject))
	}
	for id, ws := range p.BySubject {
		if len(ws) == 0 {
			t.Fatalf("subject %d has no windows", id)
		}
		if _, ok := p.Stats[id]; !ok {
			t.Fatalf("subject %d missing stats", id)
		}
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
}

func TestPooledSplit(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, val := p.Pooled()
	if len(train) == 0 || len(val) == 0 {
		t.Fatal("empty split")
	}
	ratio := float64(len(train)) / float64(len(train)+len(val))
	if ratio < 0.75 || ratio > 0.85 {
		t.Fatalf("train ratio %v", ratio)
	}
}

func TestLOSOFoldsMatchSubjects(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	folds := p.LOSO()
	if len(folds) != 2 {
		t.Fatalf("folds %d", len(folds))
	}
}

func TestTrainModelWindowMismatch(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: 190, Trees: 10}
	if _, _, err := p.TrainModel(spec); err == nil {
		t.Fatal("window mismatch should error")
	}
}

func TestEndToEndDeployAndControl(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: 100, Trees: 40, MaxDepth: 12}
	clf, res, err := p.TrainModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAcc < 0.7 {
		t.Fatalf("val acc %v", res.ValAcc)
	}
	sys, err := p.Deploy(clf, models.OpsPerInference(spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Voice: switch to fingers mode through the full audio path.
	synth := audio.NewSynthesizer(p.Config.Seed)
	word := sys.HearCommand(synth.Utter(audio.WordFingers, 0.8))
	if word != audio.WordFingers {
		t.Fatalf("voice path recognised %v", word)
	}
	if sys.Controller.Mode() != control.ModeFingers {
		t.Fatal("mode not switched")
	}
	// Silence must not change the mode.
	if w := sys.HearCommand(synth.Noise(0.5, 0.01)); w != audio.Silence {
		t.Fatalf("noise produced %v", w)
	}

	// EEG: run one validation session.
	resSess, err := control.RunValidationSession(sys.Controller,
		[]eeg.Action{eeg.Right, eeg.Idle}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if resSess.CorrectMoves == 0 {
		t.Fatal("closed loop produced no correct moves")
	}
}

func TestDeployUnknownSubject(t *testing.T) {
	p, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := models.Spec{Family: models.FamilyRF, WindowSize: 100, Trees: 5}
	clf, _, err := p.TrainModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy(clf, 1, 99); err == nil {
		t.Fatal("unknown subject should error")
	}
}

func TestTrainPaperEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	cfg := smallConfig()
	cfg.SessionSeconds = 48
	cfg.Train.Epochs = 10
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ens, pool, err := p.TrainPaperEnsemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 4 {
		t.Fatalf("pool %d", len(pool))
	}
	if len(ens.Members) != 2 {
		t.Fatalf("ensemble members %d (want CNN+Transformer)", len(ens.Members))
	}
	_, val := p.Pooled()
	if acc := models.Accuracy(ens, val); acc < 0.4 {
		t.Fatalf("ensemble accuracy %v below sanity floor", acc)
	}
}
