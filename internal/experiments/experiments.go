// Package experiments regenerates every table and figure of the paper's
// evaluation. Each ExpN function runs the corresponding workload end-to-end
// on the synthetic substrates and returns a printable result whose *shape*
// (orderings, ratios, crossovers) is asserted against the paper in
// EXPERIMENTS.md; cmd/benchtables and the root bench suite are thin callers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cognitivearm/internal/compress"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/edge"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/ensemble"
	"cognitivearm/internal/evo"
	"cognitivearm/internal/metrics"
	"cognitivearm/internal/models"
	"cognitivearm/internal/signal"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

// Scale sizes an experiment run: Quick for tests/benches, Full for the
// reproduction runs recorded in EXPERIMENTS.md.
type Scale struct {
	SubjectIDs     []int
	SessionSeconds float64
	Epochs         int
	EvoPopulation  int
	EvoGenerations int
	Seed           uint64
}

// Quick returns the CI-sized scale.
func Quick() Scale {
	return Scale{SubjectIDs: []int{0, 1, 2}, SessionSeconds: 48, Epochs: 12,
		EvoPopulation: 6, EvoGenerations: 2, Seed: 1}
}

// Full returns the reproduction scale used for EXPERIMENTS.md.
func Full() Scale {
	return Scale{SubjectIDs: []int{0, 1, 2, 3, 4}, SessionSeconds: 96, Epochs: 12,
		EvoPopulation: 12, EvoGenerations: 4, Seed: 1}
}

// buildPooled constructs a pooled train/val split at the given window size.
func buildPooled(sc Scale, window int) (train, val []dataset.Window, err error) {
	bySubject, err := dataset.Build(sc.SubjectIDs, 1, dataset.ShortProtocol(sc.SessionSeconds), window, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	var all []dataset.Window
	for _, id := range sc.SubjectIDs {
		all = append(all, bySubject[id]...)
	}
	dataset.Shuffle(all, tensor.NewRNG(sc.Seed+3))
	cut := len(all) * 8 / 10
	return all[:cut], all[cut:], nil
}

// ---------------------------------------------------------------------------
// Table I — EMG vs EEG suitability (qualitative, from the paper).

// TableIRow is one condition of Table I.
type TableIRow struct {
	Condition string
	EMGImpact string
	EEGCase   string
}

// TableI returns the paper's qualitative comparison verbatim.
func TableI() []TableIRow {
	return []TableIRow{
		{"ALS", "Muscle atrophy limits residual EMG signals", "EEG-based BCI can interpret brain signals directly"},
		{"Spinal Cord Injury", "Loss of voluntary muscle control below the injury", "EEG can bypass muscle control pathways"},
		{"Brainstem Stroke", "Severe loss of motor control (locked-in syndrome)", "EEG can control assistive devices using brain signals"},
		{"Multiple Sclerosis", "Muscle spasticity and weakness reduce EMG effectiveness", "EEG can offer more reliable control options"},
		{"Muscular Dystrophies", "Progressive muscle degeneration limits EMG utility", "EEG allows control through brain signals"},
	}
}

// ---------------------------------------------------------------------------
// Table II — comparison of brain-controlled prosthetic arms, with our row
// measured from the pipeline.

// TableIIRow is one system of Table II.
type TableIIRow struct {
	Solution string
	Method   string
	Accuracy string
	Cost     string
	Scope    string
}

// TableII returns the literature rows plus CognitiveArm's measured row.
// measuredAcc should come from Headline().
func TableII(measuredAcc float64) []TableIIRow {
	rows := []TableIIRow{
		{"Ali et al. [22]", "EEG-based", "Mod.", "Low", "Limited real-time use"},
		{"Chinbat & Lin [23]", "EEG-based", "Mod.", "High", "Limited real-time use"},
		{"Beyrouthy et al. [24]", "EEG-based", "Mod.", "High", "Power-intensive, limited use"},
		{"Lonsdale et al. [25]", "EEG + sEMG", "High", "Mod.", "High resource demand"},
		{"Zhang et al. [26]", "EEG + EoG", "80%", "Mod.", "Simple movements, user-dependent"},
		{"Vilela & Hochberg [27]", "EEG-based", "High", "High", "Invasive solution"},
		{"MindArm [28]", "EEG-based", "87.5%", "Low", "Affordable, modular"},
		{"LIBRA NeuroLimb [29]", "EEG + sEMG", "High", "Low", "Designed for developing regions"},
		{"BeBionic [30]", "sEMG-based", "High", "£30k", "More grips, fine motor control"},
		{"LUKE Arm [31]", "sEMG-based", "High", "$50k+", "Powered joints, fine motor control"},
		{"i-Limb [32]", "sEMG-based", "High", "$40-50k", "Multi-articulating, customizable"},
		{"Michelangelo [33]", "sEMG-based", "High", "$50k+", "Advanced control, multiple grips"},
		{"Shadow Hand [34]", "sEMG-based", "High", "$65k+", "High dexterity, advanced robotics"},
	}
	rows = append(rows, TableIIRow{
		"CognitiveArm (this repro)", "EEG-based",
		fmt.Sprintf("%.0f%%", 100*measuredAcc), "$500", "3 DoF, efficient implementation",
	})
	return rows
}

// ---------------------------------------------------------------------------
// Table III — the hyperparameter search space, printed from the evo package
// so the table can never drift from the code.

// TableIII renders the search space rows.
func TableIII() string {
	sp := evo.PaperSearchSpace()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %-28s | %-22s | %s\n", "Model", "Architecture axes", "Hyperparameters", "Optimizers")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 100))
	fmt.Fprintf(&b, "%-12s | units %v, layers %v | window %v, dropout %v | %v\n",
		"LSTM", sp.Hidden, sp.LSTMLayers, sp.WindowSizes, sp.Dropouts, []string{"Adam", "RMSProp"})
	fmt.Fprintf(&b, "%-12s | conv layers %v, filters %v | kernels %v, strides %v, pool %v | %v\n",
		"CNN", sp.ConvLayers, sp.Filters, sp.Kernels, sp.Strides, sp.Pools, []string{"Adam", "SGD"})
	fmt.Fprintf(&b, "%-12s | trees %v | depth %v (0 = None), features mean/std/min/max/var | %s\n",
		"RandomForest", sp.Trees, sp.MaxDepths, "N/A (non-gradient)")
	fmt.Fprintf(&b, "%-12s | layers %v, heads %v | d_model %v, ff %v, dropout %v | %s\n",
		"Transformer", sp.TFLayers, sp.Heads, sp.DModels, sp.FFDims, sp.Dropouts, "AdamW")
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — LSL vs UDP.

// Fig4Result carries both transports' metrics and scores.
type Fig4Result struct {
	LSL, UDP stream.TransportMetrics
}

// Fig4 runs the transport comparison at the paper's operating point.
func Fig4(samples int, seed uint64) (Fig4Result, error) {
	cfg := stream.DefaultComparisonConfig()
	if samples > 0 {
		cfg.Samples = samples
	}
	cfg.Link.Seed = seed
	lsl, udp, err := stream.RunComparison(cfg)
	return Fig4Result{LSL: lsl, UDP: udp}, err
}

// String renders the radar-chart axes as a table.
func (r Fig4Result) String() string {
	axes := []string{"latency", "sample_rate", "synchronization", "low_jitter", "reliability", "bandwidth_efficiency"}
	ls, us := r.LSL.Scores(), r.UDP.Scores()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", r.LSL, r.UDP)
	fmt.Fprintf(&b, "%-22s %6s %6s\n", "axis (0-10)", "LSL", "UDP")
	for _, a := range axes {
		fmt.Fprintf(&b, "%-22s %6.1f %6.1f\n", a, ls[a], us[a])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 5 — raw vs filtered EEG.

// Fig5Result reports band powers and SNR before/after preprocessing.
type Fig5Result struct {
	Bands       []signal.Band
	RawPower    []float64
	CleanPower  []float64
	Line50Raw   float64
	Line50Clean float64
	SNRRaw      float64
	SNRClean    float64
}

// Fig5 filters one channel of synthetic EEG and reports the spectra.
func Fig5(seed uint64) Fig5Result {
	gen := eeg.NewGenerator(eeg.NewSubject(0), seed)
	seg := gen.Generate(eeg.Idle, int(8*eeg.SampleRate))
	raw := seg[eeg.ChannelIndex("C3")]
	pre, err := signal.NewEEGPreprocessor(eeg.SampleRate)
	if err != nil {
		panic(err) // design of fixed constants cannot fail
	}
	clean := pre.FilterOffline(raw)
	res := Fig5Result{Bands: signal.StandardBands()}
	for _, band := range res.Bands {
		res.RawPower = append(res.RawPower, signal.BandPower(raw, eeg.SampleRate, band.LowHz, band.HighHz))
		res.CleanPower = append(res.CleanPower, signal.BandPower(clean, eeg.SampleRate, band.LowHz, band.HighHz))
	}
	res.Line50Raw = signal.BandPower(raw, eeg.SampleRate, 48, 52)
	res.Line50Clean = signal.BandPower(clean, eeg.SampleRate, 48, 52)
	res.SNRRaw = signal.SNR(raw, eeg.SampleRate, 8, 13)
	res.SNRClean = signal.SNR(clean, eeg.SampleRate, 8, 13)
	return res
}

// String renders the band table.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "band", "raw µV²", "filtered µV²")
	for i, band := range r.Bands {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f\n", band.Name, r.RawPower[i], r.CleanPower[i])
	}
	fmt.Fprintf(&b, "%-8s %12.2f %12.2f\n", "50Hz", r.Line50Raw, r.Line50Clean)
	fmt.Fprintf(&b, "alpha SNR: %.1f dB raw → %.1f dB filtered\n", r.SNRRaw, r.SNRClean)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 8/9/10 — evolutionary search and Pareto fronts.

// FamilySearch runs the per-family evolutionary search of Figure 8 and
// returns the result (Figure 9 is the union of the fronts; Figure 10 is the
// RF slice).
func FamilySearch(sc Scale, fam models.Family) (*evo.Result, error) {
	cfg := evo.DefaultConfig()
	cfg.PopulationSize = sc.EvoPopulation
	cfg.Generations = sc.EvoGenerations
	cfg.Families = []models.Family{fam}
	// Sequence models cost an order of magnitude more per epoch than the
	// CNN/RF; halve their per-candidate budget so a search sweep stays
	// proportionate (the paper pays this difference in GPU-hours instead).
	epochs := sc.Epochs
	if fam == models.FamilyLSTM || fam == models.FamilyTransformer {
		epochs = maxIntExp(3, sc.Epochs/2)
	}
	cfg.Train = models.TrainOptions{Epochs: epochs, BatchSize: 32, Patience: 2}
	cfg.Seed = sc.Seed + uint64(fam)*17
	data := func(window int) ([]dataset.Window, []dataset.Window, error) {
		return buildPooled(sc, window)
	}
	return evo.Search(cfg, data)
}

func maxIntExp(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FrontString renders a Pareto front for reporting.
func FrontString(cands []evo.Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %10s %8s\n", "model", "params", "val acc")
	for _, c := range cands {
		fmt.Fprintf(&b, "%-36s %10d %8.3f\n", c.Spec.ID(), c.Params, c.Accuracy)
	}
	return b.String()
}

// GlobalFront merges per-family populations into the Figure 9 front.
func GlobalFront(results map[models.Family]*evo.Result) []evo.Candidate {
	var all []evo.Candidate
	for _, r := range results {
		all = append(all, r.Population...)
	}
	return evo.ParetoFront(all)
}

// ---------------------------------------------------------------------------
// Figure 11 — ensemble combinations.

// Fig11Entry is one ensemble's measured point.
type Fig11Entry struct {
	Name         string
	Accuracy     float64
	InferenceSec float64
	Params       int
}

// Fig11 trains scaled versions of the four paper models and evaluates every
// ensemble combination's accuracy and modelled Jetson latency.
func Fig11(sc Scale) ([]Fig11Entry, error) {
	window := 100
	train, val, err := buildPooled(sc, window)
	if err != nil {
		return nil, err
	}
	device := edge.JetsonOrinNano()
	var pool []models.Classifier
	macs := map[string]int64{}
	for _, spec := range models.ScaledPaperSpecs() {
		spec.WindowSize = window
		clf, _, err := models.Train(spec, train, val, models.TrainOptions{
			Epochs: sc.Epochs, BatchSize: 32, Patience: 3, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		pool = append(pool, clf)
		macs[clf.Name()] = models.OpsPerInference(spec)
	}
	var out []Fig11Entry
	for _, ens := range ensemble.Combinations(pool) {
		var totalMACs int64
		for _, m := range ens.Members {
			totalMACs += macs[m.Name()]
		}
		out = append(out, Fig11Entry{
			Name:         ens.Name(),
			Accuracy:     models.Accuracy(ens, val),
			InferenceSec: device.Latency(edge.Workload{MACs: totalMACs}).Seconds(),
			Params:       ens.NumParams(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Accuracy > out[j].Accuracy })
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 12 — compression sweep.

// Fig12Entry is one compression operating point.
type Fig12Entry struct {
	Name         string
	Accuracy     float64
	InferenceSec float64
	Params       int
	Sparsity     float64
}

// CompressionSpec returns the compression-study network: the paper prunes
// its selected (heavily over-parameterized) ensemble; the equivalent here is
// a wide GAP-CNN with ~10× the capacity the task needs, which is what gives
// 70 % pruning its "nearly free" character.
func CompressionSpec(window int) models.Spec {
	return models.Spec{Family: models.FamilyCNN, WindowSize: window, Optimizer: "adam", LR: 2e-3,
		Dropout: 0.2, ConvLayers: 1, Filters: 128, Kernel: 5, Stride: 2, Pool: "none"}
}

// Fig12 trains the compression CNN, sweeps the paper's pruning levels (with
// the standard prune→fine-tune recipe) and both int8 calibration modes, and
// reports accuracy vs modelled latency.
func Fig12(sc Scale) ([]Fig12Entry, error) {
	window := 100
	train, val, err := buildPooled(sc, window)
	if err != nil {
		return nil, err
	}
	spec := CompressionSpec(window)
	clf, _, err := models.Train(spec, train, val, models.TrainOptions{
		Epochs: sc.Epochs + 4, BatchSize: 32, Patience: 5, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	nn := clf.(*models.NNClassifier)
	device := edge.JetsonOrinNano()
	macs := models.OpsPerInference(spec)
	var out []Fig12Entry
	for _, ratio := range compress.PaperPruneLevels() {
		pruned, rep, err := compress.Prune(nn, ratio)
		if err != nil {
			return nil, err
		}
		if ratio > 0 {
			compress.FineTunePruned(pruned, train, val, 10, sc.Seed+uint64(100*ratio))
		}
		out = append(out, Fig12Entry{
			Name:         fmt.Sprintf("prune-%.0f%%", 100*ratio),
			Accuracy:     models.Accuracy(pruned, val),
			InferenceSec: device.Latency(edge.Workload{MACs: macs, Sparsity: rep.AchievedSparsity}).Seconds(),
			Params:       pruned.NumParams(),
			Sparsity:     rep.AchievedSparsity,
		})
	}
	calib := val
	if len(calib) > 20 {
		calib = calib[:20]
	}
	for mode, name := range map[compress.QuantMode]string{
		compress.PerTensor:   "int8-per-tensor",
		compress.GlobalNaive: "int8-global-naive",
	} {
		q, err := compress.QuantizeWithActivations(nn, mode, calib)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12Entry{
			Name:         name,
			Accuracy:     models.Accuracy(q, val),
			InferenceSec: device.Latency(edge.Workload{MACs: macs, Precision: edge.INT8}).Seconds(),
			Params:       q.NumParams(),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §V headline: the selected models, their accuracy, and statistics.

// HeadlineResult gathers the §V summary numbers.
type HeadlineResult struct {
	// PerModel maps spec ID → (pooled val accuracy, params).
	PerModel map[string]evo.Candidate
	// EnsembleAcc is the CNN+Transformer ensemble's pooled accuracy.
	EnsembleAcc float64
	// EnsembleLatencySec is the modelled Jetson latency of the paper-size
	// ensemble (CNN + Transformer at full width).
	EnsembleLatencySec float64
	PrunedAcc          float64
	PrunedLatencySec   float64
	QuantAcc           float64
	QuantLatencySec    float64
	// LOSO statistics across held-out subjects for the ensemble.
	LOSOMean, LOSOStd float64
	CI91Lo, CI91Hi    float64
	WallTime          time.Duration
}

// Headline reproduces the §V numbers at the given scale.
func Headline(sc Scale) (*HeadlineResult, error) {
	start := time.Now()
	window := 100
	train, val, err := buildPooled(sc, window)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{PerModel: map[string]evo.Candidate{}}
	opts := models.TrainOptions{Epochs: sc.Epochs, BatchSize: 32, Patience: 3, Seed: sc.Seed}

	var members []models.Classifier
	for _, spec := range models.ScaledPaperSpecs() {
		spec.WindowSize = window
		clf, r, err := models.Train(spec, train, val, opts)
		if err != nil {
			return nil, err
		}
		res.PerModel[spec.ID()] = evo.Candidate{Spec: spec, Accuracy: r.ValAcc, Params: clf.NumParams(), Clf: clf}
		if spec.Family == models.FamilyCNN || spec.Family == models.FamilyTransformer {
			members = append(members, clf)
		}
	}
	ens, err := ensemble.New(members...)
	if err != nil {
		return nil, err
	}
	res.EnsembleAcc = models.Accuracy(ens, val)

	// Latency anchors use the PAPER-size CNN+Transformer MACs (the models the
	// Jetson actually ran), per the edge-model calibration.
	var paperMACs int64
	for _, s := range models.PaperSpecs() {
		if s.Family == models.FamilyCNN || s.Family == models.FamilyTransformer {
			paperMACs += models.OpsPerInference(s)
		}
	}
	device := edge.JetsonOrinNano()
	res.EnsembleLatencySec = device.Latency(edge.Workload{MACs: paperMACs}).Seconds()
	res.PrunedLatencySec = device.Latency(edge.Workload{MACs: paperMACs, Sparsity: 0.7}).Seconds()
	res.QuantLatencySec = device.Latency(edge.Workload{MACs: paperMACs, Precision: edge.INT8}).Seconds()

	// Compression accuracy on the wide compression CNN (prune → fine-tune,
	// §III-E1; naive int8 with activation quantization, §III-E2).
	cSpec := CompressionSpec(window)
	cClf, _, err := models.Train(cSpec, train, val, models.TrainOptions{
		Epochs: sc.Epochs + 4, BatchSize: 32, Patience: 5, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	cNN := cClf.(*models.NNClassifier)
	pruned, _, err := compress.Prune(cNN, 0.7)
	if err != nil {
		return nil, err
	}
	compress.FineTunePruned(pruned, train, val, 10, sc.Seed+70)
	res.PrunedAcc = models.Accuracy(pruned, val)
	calib := val
	if len(calib) > 20 {
		calib = calib[:20]
	}
	quant, err := compress.QuantizeWithActivations(cNN, compress.GlobalNaive, calib)
	if err != nil {
		return nil, err
	}
	res.QuantAcc = models.Accuracy(quant, val)

	// LOSO cross-subject statistics (ensemble retrained per fold).
	bySubject, err := dataset.Build(sc.SubjectIDs, 1, dataset.ShortProtocol(sc.SessionSeconds), window, sc.Seed)
	if err != nil {
		return nil, err
	}
	var accs []float64
	for _, fold := range dataset.LOSO(bySubject, tensor.NewRNG(sc.Seed+5)) {
		var foldMembers []models.Classifier
		for _, spec := range models.ScaledPaperSpecs() {
			if spec.Family != models.FamilyCNN && spec.Family != models.FamilyTransformer {
				continue
			}
			spec.WindowSize = window
			clf, _, err := models.Train(spec, fold.Train, fold.Val, opts)
			if err != nil {
				return nil, err
			}
			foldMembers = append(foldMembers, clf)
		}
		foldEns, err := ensemble.New(foldMembers...)
		if err != nil {
			return nil, err
		}
		accs = append(accs, models.Accuracy(foldEns, fold.Test))
	}
	res.LOSOMean = metrics.Mean(accs)
	res.LOSOStd = metrics.SampleStd(accs)
	res.CI91Lo, res.CI91Hi = metrics.ConfidenceInterval(accs, 0.91)
	res.WallTime = time.Since(start)
	return res, nil
}

// String renders the headline summary.
func (r *HeadlineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %10s %8s\n", "model", "params", "val acc")
	var ids []string
	for id := range r.PerModel {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		c := r.PerModel[id]
		fmt.Fprintf(&b, "%-36s %10d %8.3f\n", id, c.Params, c.Accuracy)
	}
	fmt.Fprintf(&b, "CNN+Transformer ensemble: acc %.3f, modelled latency %.3f s (paper: 0.91, 0.075 s)\n",
		r.EnsembleAcc, r.EnsembleLatencySec)
	fmt.Fprintf(&b, "70%% pruned: acc %.3f, latency %.3f s (paper: 0.901, 0.071 s)\n",
		r.PrunedAcc, r.PrunedLatencySec)
	fmt.Fprintf(&b, "int8 naive: acc %.3f, latency %.3f s (paper: 0.385, 0.036 s)\n",
		r.QuantAcc, r.QuantLatencySec)
	fmt.Fprintf(&b, "LOSO: %.3f ± %.3f (91%% CI [%.3f, %.3f])\n", r.LOSOMean, r.LOSOStd, r.CI91Lo, r.CI91Hi)
	fmt.Fprintf(&b, "wall time: %v\n", r.WallTime.Round(time.Millisecond))
	return b.String()
}
