package experiments

import (
	"strings"
	"testing"

	"cognitivearm/internal/evo"
	"cognitivearm/internal/models"
)

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Condition == "" || r.EMGImpact == "" || r.EEGCase == "" {
			t.Fatalf("incomplete row %+v", r)
		}
	}
}

func TestTableIIIncludesOurRow(t *testing.T) {
	rows := TableII(0.9)
	last := rows[len(rows)-1]
	if !strings.Contains(last.Solution, "CognitiveArm") {
		t.Fatalf("last row %+v", last)
	}
	if last.Accuracy != "90%" {
		t.Fatalf("measured accuracy formatted as %q", last.Accuracy)
	}
	if len(rows) != 14 {
		t.Fatalf("Table II rows %d", len(rows))
	}
}

func TestTableIIIMentionsAllFamilies(t *testing.T) {
	s := TableIII()
	for _, fam := range []string{"LSTM", "CNN", "RandomForest", "Transformer"} {
		if !strings.Contains(s, fam) {
			t.Fatalf("Table III missing %s:\n%s", fam, s)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(1)
	// 50 Hz line must collapse by orders of magnitude.
	if r.Line50Clean > r.Line50Raw/100 {
		t.Fatalf("50 Hz power %v → %v; want ≥100× reduction", r.Line50Raw, r.Line50Clean)
	}
	// Alpha band must survive.
	alphaIdx := 2
	if r.Bands[alphaIdx].Name != "alpha" {
		t.Fatal("band order changed")
	}
	if r.CleanPower[alphaIdx] < r.RawPower[alphaIdx]*0.3 {
		t.Fatalf("alpha destroyed: %v → %v", r.RawPower[alphaIdx], r.CleanPower[alphaIdx])
	}
	if r.SNRClean <= r.SNRRaw {
		t.Fatalf("SNR should improve: %v → %v", r.SNRRaw, r.SNRClean)
	}
	if !strings.Contains(r.String(), "alpha") {
		t.Fatal("render missing bands")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.LSL.SyncErrorMs >= r.UDP.SyncErrorMs {
		t.Fatalf("LSL sync %.2f ms should beat UDP %.2f ms", r.LSL.SyncErrorMs, r.UDP.SyncErrorMs)
	}
	if r.UDP.BandwidthEfficiency <= r.LSL.BandwidthEfficiency {
		t.Fatal("UDP should win bandwidth efficiency")
	}
	if !strings.Contains(r.String(), "reliability") {
		t.Fatal("render missing axes")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four models")
	}
	sc := Quick()
	entries, err := Fig11(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 {
		t.Fatalf("ensemble combinations %d want 11", len(entries))
	}
	// Entries are accuracy-sorted; all latencies positive.
	for i, e := range entries {
		if e.InferenceSec <= 0 {
			t.Fatalf("entry %d latency %v", i, e.InferenceSec)
		}
		if i > 0 && e.Accuracy > entries[i-1].Accuracy {
			t.Fatal("entries not sorted by accuracy")
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the CNN")
	}
	sc := Quick()
	entries, err := Fig12(sc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig12Entry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	dense := byName["prune-0%"]
	p70 := byName["prune-70%"]
	quant := byName["int8-global-naive"]
	if dense.Accuracy < 0.6 {
		t.Skipf("baseline too weak at quick scale: %v", dense.Accuracy)
	}
	// The Figure 12 shape: 70% pruning nearly free, naive int8 fast but
	// destructive, and int8 latency is the lowest of all points.
	if p70.Accuracy < dense.Accuracy-0.15 {
		t.Fatalf("70%% pruning dropped too much: %v → %v", dense.Accuracy, p70.Accuracy)
	}
	if quant.InferenceSec >= p70.InferenceSec {
		t.Fatal("int8 should be faster than pruned fp32")
	}
	if quant.Accuracy > dense.Accuracy {
		t.Fatal("naive int8 should not beat the dense baseline")
	}
}

func TestFamilySearchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("evolutionary search")
	}
	sc := Quick()
	sc.EvoPopulation, sc.EvoGenerations, sc.Epochs = 4, 1, 3
	res, err := FamilySearch(sc, models.FamilyRF)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if !strings.Contains(FrontString(res.Front), "rf-") {
		t.Fatal("front should contain RF specs")
	}
	global := GlobalFront(map[models.Family]*evo.Result{models.FamilyRF: res})
	if len(global) == 0 {
		t.Fatal("global front empty")
	}
}
