package models

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

// quantWindows builds synthetic labelled windows with a per-class mean shift
// strong enough for a small forest or CNN to learn decisively.
func quantWindows(rng *rand.Rand, n, rows int) []dataset.Window {
	out := make([]dataset.Window, n)
	for i := range out {
		cls := rng.Intn(eeg.NumActions)
		m := tensor.New(rows, eeg.NumChannels)
		for j := range m.Data {
			m.Data[j] = rng.NormFloat64() + 1.5*float64(cls)
		}
		out[i] = dataset.Window{Data: m, Label: eeg.Action(cls)}
	}
	return out
}

func calibFrom(ws []dataset.Window) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, len(ws))
	for i := range ws {
		xs[i] = ws[i].Data
	}
	return xs
}

func TestQuantizeRF(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	train := quantWindows(rng, 240, 30)
	spec := Spec{Family: FamilyRF, WindowSize: 30, Trees: 25, MaxDepth: 8}
	clf, _, err := Train(spec, train, nil, TrainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	calib := calibFrom(quantWindows(rng, 80, 30))
	qc, err := Quantize(clf, QuantOptions{MinAgreement: 0.95, Calibration: calib})
	if err != nil {
		t.Fatal(err)
	}
	if qc.Agreement < 0.95 {
		t.Fatalf("gate passed but Agreement=%.4f", qc.Agreement)
	}
	if qc.NumParams() != clf.NumParams() || qc.Name() != clf.Name() {
		t.Fatalf("quantized identity diverged from base: %s/%d vs %s/%d",
			qc.Name(), qc.NumParams(), clf.Name(), clf.NumParams())
	}
	// The WS batched path and per-window Predict agree with each other.
	ws := tensor.NewWorkspace()
	got := qc.PredictBatchWS(ws, calib, nil)
	for i, x := range calib {
		if p := qc.Predict(x); p != got[i] {
			t.Fatalf("window %d: Predict %d != PredictBatchWS %d", i, p, got[i])
		}
	}
}

func TestQuantizeCNNAndSerializeBase(t *testing.T) {
	spec := Spec{Family: FamilyCNN, WindowSize: 40, Optimizer: "adam", LR: 1e-3,
		ConvLayers: 1, Filters: 8, Kernel: 5, Stride: 2, Pool: "none"}
	net, err := BuildNet(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	clf := &NNClassifier{Net: net, Spec: spec}
	qc, err := Quantize(clf, QuantOptions{MinAgreement: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if qc.Agreement < 0.9 {
		t.Fatalf("gate passed but Agreement=%.4f", qc.Agreement)
	}

	// Saving a quantized classifier persists the exact base weights: the
	// round-tripped model predicts identically to the base, not the twin.
	var buf bytes.Buffer
	if err := Save(&buf, qc); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	calib := CalibrationWindows(16, spec.WindowSize, eeg.NumChannels, 9)
	for i, x := range calib {
		if back.Predict(x) != clf.Predict(x) {
			t.Fatalf("window %d: round-tripped model diverged from base", i)
		}
	}
}

func TestQuantizeUnsupportedFamilies(t *testing.T) {
	spec := Spec{Family: FamilyLSTM, WindowSize: 20, Optimizer: "adam", LR: 1e-3,
		LSTMLayers: 1, Hidden: 8}
	net, err := BuildNet(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(&NNClassifier{Net: net, Spec: spec}, QuantOptions{}); !errors.Is(err, ErrQuantUnsupported) {
		t.Fatalf("LSTM: got %v, want ErrQuantUnsupported", err)
	}
	if _, err := Quantize(dummyClassifier{}, QuantOptions{}); !errors.Is(err, ErrQuantUnsupported) {
		t.Fatalf("unknown type: got %v, want ErrQuantUnsupported", err)
	}
}

// misscaledDense is a quantized twin with deliberately corrupted QMatrix
// scales: one output row's scale is inflated 8×, so that class's logit
// dominates and labels flip. The calibration gate must reject it.
type misscaledDense struct {
	in, out int
	q       *tensor.QMatrix
	bias    []float64
}

func (m misscaledDense) Predict(x *tensor.Matrix) int {
	y := tensor.MatMulQ(nil, nil, x, m.q, tensor.Epilogue{Bias: m.bias})
	return tensor.Argmax(y.Data)
}
func (m misscaledDense) Probs(x *tensor.Matrix) []float64 { return nil }
func (m misscaledDense) NumParams() int                   { return m.in * m.out }
func (m misscaledDense) WindowSize() int                  { return 1 }
func (m misscaledDense) Name() string                     { return "misscaled" }

type dummyClassifier struct{}

func (dummyClassifier) Predict(*tensor.Matrix) int     { return 0 }
func (dummyClassifier) Probs(*tensor.Matrix) []float64 { return nil }
func (dummyClassifier) NumParams() int                 { return 0 }
func (dummyClassifier) WindowSize() int                { return 10 }
func (dummyClassifier) Name() string                   { return "dummy" }

// TestQuantizeGateRejectsMisscaled corrupts a QMatrix's per-row scales and
// checks the calibration gate refuses the twin.
func TestQuantizeGateRejectsMisscaled(t *testing.T) {
	rng := tensor.NewRNG(13)
	in, out := 12, eeg.NumActions
	w := tensor.New(in, out)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	bias := make([]float64, out)
	base := &linearClassifier{w: w, bias: bias}

	q := tensor.QuantizeWeights(w)
	q.Scales[0] *= 8 // deliberate mis-scale: class 0's logits inflate 8×
	twin := misscaledDense{in: in, out: out, q: q, bias: bias}

	qc := &QuantizedClassifier{Base: base, Quant: twin}
	calib := CalibrationWindows(64, 1, in, 17)
	err := qc.Validate(calib, 0.995)
	if err == nil {
		t.Fatalf("gate accepted a mis-scaled QMatrix (agreement %.4f)", qc.Agreement)
	}
	if qc.Agreement >= 0.995 {
		t.Fatalf("mis-scaled agreement %.4f implausibly high", qc.Agreement)
	}

	// Sanity: the same weights without corruption pass the gate.
	good := &QuantizedClassifier{Base: base,
		Quant: misscaledDense{in: in, out: out, q: tensor.QuantizeWeights(w), bias: bias}}
	if err := good.Validate(calib, 0.9); err != nil {
		t.Fatalf("uncorrupted twin rejected: %v", err)
	}
}

// linearClassifier is the exact f64 counterpart of misscaledDense.
type linearClassifier struct {
	w    *tensor.Matrix
	bias []float64
}

func (c *linearClassifier) Predict(x *tensor.Matrix) int {
	y := tensor.MatMulBatched(nil, x, c.w)
	tensor.AddRowVector(y, c.bias)
	return tensor.Argmax(y.Data)
}
func (c *linearClassifier) Probs(*tensor.Matrix) []float64 { return nil }
func (c *linearClassifier) NumParams() int                 { return len(c.w.Data) }
func (c *linearClassifier) WindowSize() int                { return 1 }
func (c *linearClassifier) Name() string                   { return "linear" }
