package models

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	train, val := smallData(t, 50)
	spec := Spec{Family: FamilyCNN, WindowSize: 50, Optimizer: "adam", LR: 2e-3,
		Dropout: 0.1, ConvLayers: 1, Filters: 8, Kernel: 5, Stride: 2, Pool: "none"}
	clf, _, err := Train(spec, train, val, TrainOptions{Epochs: 3, BatchSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := clf.(*NNClassifier)

	var buf bytes.Buffer
	if err := SaveNN(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec != orig.Spec {
		t.Fatalf("spec mangled: %+v vs %+v", loaded.Spec, orig.Spec)
	}
	if loaded.NumParams() != orig.NumParams() {
		t.Fatal("parameter count changed")
	}
	// Identical predictions on every validation window.
	for _, w := range val {
		if orig.Predict(w.Data) != loaded.Predict(w.Data) {
			t.Fatal("loaded model predicts differently")
		}
	}
	// And bit-identical probabilities.
	p1, p2 := orig.Probs(val[0].Data), loaded.Probs(val[0].Data)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("probabilities differ: %v vs %v", p1, p2)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadNN(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage input should error")
	}
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage input should error via generic Load too")
	}
}

func TestSaveLoadRandomForest(t *testing.T) {
	train, val := smallData(t, 50)
	spec := Spec{Family: FamilyRF, WindowSize: 50, Trees: 10, MaxDepth: 6}
	clf, _, err := Train(spec, train, val, TrainOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, clf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rfc, ok := loaded.(*RFClassifier)
	if !ok {
		t.Fatalf("loaded %T, want *RFClassifier", loaded)
	}
	if rfc.Spec != spec {
		t.Fatalf("spec mangled: %+v", rfc.Spec)
	}
	if rfc.NumParams() != clf.NumParams() {
		t.Fatal("forest node count changed across the round trip")
	}
	for _, w := range val {
		if clf.Predict(w.Data) != rfc.Predict(w.Data) {
			t.Fatal("loaded forest predicts differently")
		}
		p1, p2 := clf.Probs(w.Data), rfc.Probs(w.Data)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("forest probabilities differ: %v vs %v", p1, p2)
			}
		}
	}
}

// TestLoadRejectsMangledForest pins the validation path: a structurally
// damaged forest payload must fail Load instead of producing a classifier
// that panics at predict time.
func TestLoadRejectsMangledForest(t *testing.T) {
	train, val := smallData(t, 50)
	clf, _, err := Train(Spec{Family: FamilyRF, WindowSize: 50, Trees: 3, MaxDepth: 4}, train, val, TrainOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := toSaved(clf)
	if err != nil {
		t.Fatal(err)
	}
	sc.Forest.Trees[0].Left[0] = 1 << 20
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("mangled forest payload accepted")
	}
}

func TestSaveLoadAllNNFamilies(t *testing.T) {
	train, val := smallData(t, 50)
	specs := []Spec{
		{Family: FamilyLSTM, WindowSize: 50, Optimizer: "adam", LR: 3e-3, Dropout: 0.1, LSTMLayers: 1, Hidden: 8},
		{Family: FamilyTransformer, WindowSize: 50, Optimizer: "adamw", LR: 1e-3, Dropout: 0.1, TFLayers: 1, Heads: 2, DModel: 8, FFDim: 16},
	}
	for _, spec := range specs {
		clf, _, err := Train(spec, train, val, TrainOptions{Epochs: 1, BatchSize: 32, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveNN(&buf, clf.(*NNClassifier)); err != nil {
			t.Fatalf("%s: %v", spec.ID(), err)
		}
		loaded, err := LoadNN(&buf)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID(), err)
		}
		for _, w := range val[:3] {
			if clf.Predict(w.Data) != loaded.Predict(w.Data) {
				t.Fatalf("%s: divergent predictions after round trip", spec.ID())
			}
		}
	}
}
