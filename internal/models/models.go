// Package models defines CognitiveArm's classifier zoo (Table III): CNN,
// LSTM and Transformer networks built on internal/nn, plus the Random Forest
// on internal/rf, all behind one Classifier interface so the evolutionary
// search, ensembling, compression and the control loop can treat them
// uniformly.
package models

import (
	"fmt"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/nn"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/tensor"
)

// Family enumerates the model families of the paper's pool.
type Family int

// The four families (§III-C1).
const (
	FamilyCNN Family = iota
	FamilyLSTM
	FamilyTransformer
	FamilyRF
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyCNN:
		return "cnn"
	case FamilyLSTM:
		return "lstm"
	case FamilyTransformer:
		return "transformer"
	case FamilyRF:
		return "rf"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families lists all families.
func Families() []Family {
	return []Family{FamilyCNN, FamilyLSTM, FamilyTransformer, FamilyRF}
}

// Spec is a complete hyperparameter assignment — one genome of the
// evolutionary search. Only the fields relevant to Family are read.
type Spec struct {
	Family     Family
	WindowSize int     // samples per window (paper sweeps 100–200)
	Optimizer  string  // adam | sgd | rmsprop | adamw
	LR         float64 // learning rate
	Dropout    float64

	// CNN fields (Table III row 2).
	ConvLayers int
	Filters    int
	Kernel     int
	Stride     int
	Pool       string // "max" | "avg" | "none"

	// LSTM fields (row 1).
	LSTMLayers int
	Hidden     int

	// Transformer fields (row 4).
	TFLayers int
	Heads    int
	DModel   int
	FFDim    int

	// Random-Forest fields (row 3).
	Trees    int
	MaxDepth int // 0 = unlimited ("None")
}

// ID renders a short unique label for tables and logs.
func (s Spec) ID() string {
	switch s.Family {
	case FamilyCNN:
		return fmt.Sprintf("cnn-l%d-f%d-k%d-s%d-%s-w%d", s.ConvLayers, s.Filters, s.Kernel, s.Stride, s.Pool, s.WindowSize)
	case FamilyLSTM:
		return fmt.Sprintf("lstm-l%d-h%d-w%d", s.LSTMLayers, s.Hidden, s.WindowSize)
	case FamilyTransformer:
		return fmt.Sprintf("tf-l%d-h%d-d%d-ff%d-w%d", s.TFLayers, s.Heads, s.DModel, s.FFDim, s.WindowSize)
	case FamilyRF:
		return fmt.Sprintf("rf-t%d-d%d-w%d", s.Trees, s.MaxDepth, s.WindowSize)
	default:
		return "unknown"
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.WindowSize < 10 {
		return fmt.Errorf("models: window size %d too small", s.WindowSize)
	}
	switch s.Family {
	case FamilyCNN:
		if s.ConvLayers < 1 || s.Filters < 1 || s.Kernel < 1 || s.Stride < 1 {
			return fmt.Errorf("models: bad CNN spec %+v", s)
		}
	case FamilyLSTM:
		if s.LSTMLayers < 1 || s.Hidden < 1 {
			return fmt.Errorf("models: bad LSTM spec %+v", s)
		}
	case FamilyTransformer:
		if s.TFLayers < 1 || s.Heads < 1 || s.DModel < s.Heads || s.DModel%s.Heads != 0 || s.FFDim < 1 {
			return fmt.Errorf("models: bad transformer spec %+v", s)
		}
	case FamilyRF:
		if s.Trees < 1 {
			return fmt.Errorf("models: bad RF spec %+v", s)
		}
	default:
		return fmt.Errorf("models: unknown family %d", s.Family)
	}
	return nil
}

// PaperSpecs returns the four Pareto-optimal configurations reported in §V:
// CNN(1 conv, 32 filters, k5, s2, window 190), LSTM(1×512, window 130),
// Transformer(2 layers, 2 heads, d128, ff512, window 190) and
// RF(200 estimators, depth 20, window 90).
func PaperSpecs() []Spec {
	return []Spec{
		{Family: FamilyCNN, WindowSize: 190, Optimizer: "adam", LR: 1e-3, Dropout: 0.2,
			ConvLayers: 1, Filters: 32, Kernel: 5, Stride: 2, Pool: "none"},
		{Family: FamilyLSTM, WindowSize: 130, Optimizer: "adam", LR: 1e-3, Dropout: 0.3,
			LSTMLayers: 1, Hidden: 512},
		{Family: FamilyTransformer, WindowSize: 190, Optimizer: "adamw", LR: 1e-3, Dropout: 0.1,
			TFLayers: 2, Heads: 2, DModel: 128, FFDim: 512},
		{Family: FamilyRF, WindowSize: 90, Trees: 200, MaxDepth: 20},
	}
}

// ScaledPaperSpecs returns compute-scaled versions of the paper configs for
// pure-Go training runs: same shapes and relative ordering, smaller widths.
// DESIGN.md documents this substitution (an RTX A6000 trains the originals;
// this library trains on one CPU).
func ScaledPaperSpecs() []Spec {
	return []Spec{
		{Family: FamilyCNN, WindowSize: 190, Optimizer: "adam", LR: 1e-3, Dropout: 0.2,
			ConvLayers: 1, Filters: 32, Kernel: 5, Stride: 2, Pool: "none"},
		{Family: FamilyLSTM, WindowSize: 130, Optimizer: "adam", LR: 3e-3, Dropout: 0.2,
			LSTMLayers: 1, Hidden: 64},
		{Family: FamilyTransformer, WindowSize: 190, Optimizer: "adamw", LR: 1e-3, Dropout: 0.1,
			TFLayers: 2, Heads: 2, DModel: 32, FFDim: 64},
		{Family: FamilyRF, WindowSize: 90, Trees: 100, MaxDepth: 20},
	}
}

// Classifier is the uniform inference interface consumed by ensembles,
// compression, evaluation and the real-time control loop. Trained
// classifiers are read-only at inference time and safe for concurrent
// Predict/Probs calls from many goroutines — the contract the serving hub
// (internal/serve) relies on to share one model across sessions.
type Classifier interface {
	// Predict returns the action class for one window (rows=time,
	// cols=channels).
	Predict(x *tensor.Matrix) int
	// Probs returns per-class probabilities for one window.
	Probs(x *tensor.Matrix) []float64
	// NumParams is the model-size objective (NN weights or forest nodes).
	NumParams() int
	// WindowSize is the input length the model expects.
	WindowSize() int
	// Name is a short human-readable identifier.
	Name() string
}

// BatchPredictor is the optional batched-inference extension of Classifier.
// The serving hub coalesces ready windows from many concurrent sessions into
// one call per shard tick; implementations exploit the batch for cache
// locality (the forest walks tree-major) or simply amortise dispatch.
type BatchPredictor interface {
	// PredictBatch classifies many windows in one call, returning one class
	// index per window in order.
	PredictBatch(xs []*tensor.Matrix) []int
}

// BatchPredictorWS is the workspace-aware extension of BatchPredictor: the
// serving shard passes its per-shard tensor.Workspace and a reused label
// buffer so the steady-state classify call allocates nothing. Implementations
// must produce labels identical to PredictBatch; ws and dst may be nil.
type BatchPredictorWS interface {
	// PredictBatchWS classifies many windows drawing every temporary from ws
	// and writing labels into dst when it has capacity.
	//
	//cogarm:zeroalloc
	PredictBatchWS(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int
}

// PredictBatch classifies a batch of windows through c's batched path when
// it implements BatchPredictor, falling back to per-window Predict calls
// otherwise. It is safe for concurrent use with other inference calls.
func PredictBatch(c Classifier, xs []*tensor.Matrix) []int {
	return PredictBatchWS(c, nil, xs, nil)
}

// PredictBatchWS classifies a batch through c's most capable batched path:
// BatchPredictorWS when implemented (allocation-free with a warm ws),
// BatchPredictor next, per-window Predict last. Labels land in dst when it
// has capacity. It is safe for concurrent use with other inference calls
// provided ws is not shared across concurrent callers.
//
//cogarm:zeroalloc
func PredictBatchWS(c Classifier, ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	if bp, ok := c.(BatchPredictorWS); ok {
		return bp.PredictBatchWS(ws, xs, dst)
	}
	if bp, ok := c.(BatchPredictor); ok {
		//cogarm:allow zeroalloc -- legacy batch path for classifiers without workspace support; WS-capable classifiers never reach it
		out := bp.PredictBatch(xs)
		if cap(dst) >= len(out) {
			dst = dst[:len(out)]
			copy(dst, out)
			return dst
		}
		return out
	}
	if cap(dst) < len(xs) {
		//cogarm:allow zeroalloc -- label-buffer warm-up; a reused dst never grows past its high-water mark
		dst = make([]int, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		//cogarm:allow zeroalloc -- per-window compat path for classifiers with no batched entry point at all
		dst[i] = c.Predict(x)
	}
	return dst
}

// NNClassifier wraps an nn.Network with its spec.
type NNClassifier struct {
	Net  *nn.Network
	Spec Spec
}

// Predict implements Classifier.
func (c *NNClassifier) Predict(x *tensor.Matrix) int { return c.Net.Predict(x) }

// Probs implements Classifier.
func (c *NNClassifier) Probs(x *tensor.Matrix) []float64 { return c.Net.Probs(x) }

// NumParams implements Classifier.
func (c *NNClassifier) NumParams() int { return c.Net.NumParams() }

// WindowSize implements Classifier.
func (c *NNClassifier) WindowSize() int { return c.Spec.WindowSize }

// Name implements Classifier.
func (c *NNClassifier) Name() string { return c.Spec.ID() }

// PredictBatch implements BatchPredictor. Same-shape windows — the serving
// case, since a shard batches sessions sharing one model and hence one
// window size — run through nn's fused ForwardBatch, where Dense/Conv1D/
// attention collapse the B per-window matmuls into single batch×feature
// GEMMs and the LSTM steps all windows together. Mixed shapes fall back to
// per-window Predict. Batched forwards write no layer state, so the calls
// are safe alongside concurrent Predict traffic.
func (c *NNClassifier) PredictBatch(xs []*tensor.Matrix) []int {
	return c.PredictBatchWS(nil, xs, nil)
}

// PredictBatchWS implements BatchPredictorWS: the fused forward pass draws
// every temporary from ws (nil = plain allocation, bitwise-identical labels).
//
//cogarm:zeroalloc
func (c *NNClassifier) PredictBatchWS(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	if len(xs) == 0 {
		return dst[:0]
	}
	rows, cols := xs[0].Rows, xs[0].Cols
	for _, x := range xs[1:] {
		if x.Rows != rows || x.Cols != cols {
			if cap(dst) < len(xs) {
				//cogarm:allow zeroalloc -- mixed-shape fallback; the shard's per-tick batches are always same-shape
				dst = make([]int, len(xs))
			}
			dst = dst[:len(xs)]
			for i, w := range xs {
				//cogarm:allow zeroalloc -- per-window fallback for the mixed-shape case above
				dst[i] = c.Net.Predict(w)
			}
			return dst
		}
	}
	return c.Net.PredictBatch(ws, xs, dst)
}

// RFClassifier wraps a trained forest plus the feature extraction step.
type RFClassifier struct {
	Forest *rf.Forest
	Spec   Spec
}

// Predict implements Classifier.
func (c *RFClassifier) Predict(x *tensor.Matrix) int {
	return c.Forest.Predict(dataset.FeatureVector(dataset.Window{Data: x}))
}

// Probs implements Classifier.
func (c *RFClassifier) Probs(x *tensor.Matrix) []float64 {
	return c.Forest.Probs(dataset.FeatureVector(dataset.Window{Data: x}))
}

// NumParams implements Classifier. For forests the paper reports total node
// count (Fig. 9: "72000 total nodes").
func (c *RFClassifier) NumParams() int { return c.Forest.NodeCount() }

// WindowSize implements Classifier.
func (c *RFClassifier) WindowSize() int { return c.Spec.WindowSize }

// Name implements Classifier.
func (c *RFClassifier) Name() string { return c.Spec.ID() }

// PredictBatch implements BatchPredictor: features are extracted per window,
// then the forest routes the whole batch tree-major (see rf.ProbsBatch) so
// each tree's nodes are walked while still cache-hot.
func (c *RFClassifier) PredictBatch(xs []*tensor.Matrix) []int {
	return c.PredictBatchWS(nil, xs, nil)
}

// PredictBatchWS implements BatchPredictorWS: feature rows and the forest's
// vote accumulators come from ws (nil = plain allocation, identical labels).
//
//cogarm:zeroalloc
func (c *RFClassifier) PredictBatchWS(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	X := ws.FloatRows(len(xs))
	for i, x := range xs {
		X[i] = dataset.FeatureVectorInto(ws.Floats(5*x.Cols), dataset.Window{Data: x})
	}
	return c.Forest.PredictBatchWS(ws, X, dst)
}

// BuildNet constructs the (untrained) network for an NN-family spec.
func BuildNet(s Spec, seed uint64) (*nn.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed ^ 0xBADC0FFE)
	in := eeg.NumChannels
	switch s.Family {
	case FamilyCNN:
		var layers []nn.Layer
		t := s.WindowSize
		ch := in
		for l := 0; l < s.ConvLayers; l++ {
			conv := nn.NewConv1D(ch, s.Filters, s.Kernel, s.Stride, rng)
			if conv.OutLen(t) < 1 {
				return nil, fmt.Errorf("models: conv stack collapses input (%s)", s.ID())
			}
			layers = append(layers, conv, nn.NewReLU())
			t = conv.OutLen(t)
			ch = s.Filters
			switch s.Pool {
			case "max":
				layers = append(layers, nn.NewPool1D(nn.MaxPoolKind, 2))
				t = maxInt(1, t/2)
			case "avg":
				layers = append(layers, nn.NewPool1D(nn.AvgPoolKind, 2))
				t = maxInt(1, t/2)
			}
		}
		// Global average pooling over time: rectified conv activations
		// average to a per-filter amplitude estimate, the band-power readout
		// a motor-imagery CNN needs (and far fewer parameters than flatten).
		layers = append(layers,
			nn.NewMeanPool(),
			nn.NewDropout(s.Dropout, rng.Fork()),
			nn.NewDense(ch, eeg.NumActions, rng),
		)
		return nn.NewNetwork(layers...), nil
	case FamilyLSTM:
		var layers []nn.Layer
		width := in
		for l := 0; l < s.LSTMLayers; l++ {
			layers = append(layers, nn.NewLSTM(width, s.Hidden, rng))
			width = s.Hidden
		}
		layers = append(layers,
			nn.NewLastStep(),
			nn.NewDropout(s.Dropout, rng.Fork()),
			nn.NewDense(s.Hidden, eeg.NumActions, rng),
		)
		return nn.NewNetwork(layers...), nil
	case FamilyTransformer:
		layers := []nn.Layer{
			nn.NewDense(in, s.DModel, rng),
			nn.NewPositionalEncoding(s.DModel),
		}
		for l := 0; l < s.TFLayers; l++ {
			layers = append(layers, nn.TransformerBlock(s.DModel, s.Heads, s.FFDim, s.Dropout, rng))
		}
		layers = append(layers, nn.NewMeanPool(), nn.NewDense(s.DModel, eeg.NumActions, rng))
		return nn.NewNetwork(layers...), nil
	default:
		return nil, fmt.Errorf("models: BuildNet does not handle family %v", s.Family)
	}
}

// TrainOptions configures Train.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	Patience  int
	Seed      uint64
	Verbose   bool
	Logf      func(string, ...any)
}

// DefaultTrainOptions returns a sensible CPU-scale configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 8, BatchSize: 32, Patience: 3, Seed: 1}
}

// Result reports a training run.
type Result struct {
	ValAcc    float64
	ValLoss   float64
	History   nn.History
	NumParams int
}

// ToExamples converts labelled windows to nn training examples.
func ToExamples(ws []dataset.Window) []nn.Example {
	out := make([]nn.Example, len(ws))
	for i, w := range ws {
		out[i] = nn.Example{X: w.Data, Label: int(w.Label)}
	}
	return out
}

// Train fits the spec on the given windows and returns the trained
// classifier with its validation accuracy.
func Train(s Spec, train, val []dataset.Window, opt TrainOptions) (Classifier, Result, error) {
	if err := s.Validate(); err != nil {
		return nil, Result{}, err
	}
	if len(train) == 0 {
		return nil, Result{}, fmt.Errorf("models: empty training set")
	}
	if s.Family == FamilyRF {
		X := make([][]float64, len(train))
		y := make([]int, len(train))
		for i, w := range train {
			X[i] = dataset.FeatureVector(w)
			y[i] = int(w.Label)
		}
		forest, err := rf.Fit(X, y, eeg.NumActions, rf.Config{
			Trees: s.Trees, MaxDepth: s.MaxDepth, MinSamplesSplit: 2, Seed: opt.Seed,
		})
		if err != nil {
			return nil, Result{}, err
		}
		clf := &RFClassifier{Forest: forest, Spec: s}
		res := Result{NumParams: clf.NumParams()}
		res.ValAcc = accuracyOn(clf, val)
		return clf, res, nil
	}

	net, err := BuildNet(s, opt.Seed)
	if err != nil {
		return nil, Result{}, err
	}
	optim, err := nn.NewOptimizer(s.Optimizer, s.LR)
	if err != nil {
		return nil, Result{}, err
	}
	hist := nn.Fit(net, ToExamples(train), ToExamples(val), nn.TrainConfig{
		Epochs:      opt.Epochs,
		BatchSize:   opt.BatchSize,
		Optimizer:   optim,
		Patience:    opt.Patience,
		MaxGradNorm: 5,
		Seed:        opt.Seed,
		Verbose:     opt.Verbose,
		Logf:        opt.Logf,
	})
	clf := &NNClassifier{Net: net, Spec: s}
	res := Result{History: hist, NumParams: net.NumParams()}
	if n := len(hist.ValAcc); n > 0 {
		res.ValAcc = hist.ValAcc[n-1]
		res.ValLoss = hist.ValLoss[n-1]
	}
	return clf, res, nil
}

// accuracyOn scores any classifier on labelled windows.
func accuracyOn(c Classifier, ws []dataset.Window) float64 {
	if len(ws) == 0 {
		return 0
	}
	correct := 0
	for _, w := range ws {
		if c.Predict(w.Data) == int(w.Label) {
			correct++
		}
	}
	return float64(correct) / float64(len(ws))
}

// Accuracy is the exported scoring helper used across the experiment
// harnesses.
func Accuracy(c Classifier, ws []dataset.Window) float64 { return accuracyOn(c, ws) }

// OpsPerInference estimates multiply-accumulate operations for one window —
// the workload number the edge-latency model consumes.
func OpsPerInference(s Spec) int64 {
	in := int64(eeg.NumChannels)
	w := int64(s.WindowSize)
	switch s.Family {
	case FamilyCNN:
		var ops int64
		t, ch := w, in
		for l := 0; l < s.ConvLayers; l++ {
			outT := (t-int64(s.Kernel))/int64(s.Stride) + 1
			if outT < 1 {
				outT = 1
			}
			ops += outT * int64(s.Filters) * int64(s.Kernel) * ch
			t, ch = outT, int64(s.Filters)
			if s.Pool == "max" || s.Pool == "avg" {
				t = maxI64(1, t/2)
			}
		}
		ops += t * ch * int64(eeg.NumActions)
		return ops
	case FamilyLSTM:
		var ops int64
		width := in
		for l := 0; l < s.LSTMLayers; l++ {
			ops += w * 4 * int64(s.Hidden) * (width + int64(s.Hidden))
			width = int64(s.Hidden)
		}
		ops += int64(s.Hidden) * int64(eeg.NumActions)
		return ops
	case FamilyTransformer:
		d := int64(s.DModel)
		ff := int64(s.FFDim)
		var ops int64
		ops += w * in * d // input projection
		perLayer := 4*w*d*d + 2*w*w*d + 2*w*d*ff
		ops += int64(s.TFLayers) * perLayer
		ops += d * int64(eeg.NumActions)
		return ops
	case FamilyRF:
		// One comparison per level per tree.
		depth := int64(s.MaxDepth)
		if depth == 0 {
			depth = 24
		}
		return int64(s.Trees) * depth
	default:
		return 0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
