package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cognitivearm/internal/nn"
	"cognitivearm/internal/rf"
)

// Classifier serialization covers the whole zoo: NN families persist their
// spec plus flat weight tensors in parameter order, random forests persist
// the flat node encoding of rf.ForestData, and ensembles persist their
// members recursively (via the codec internal/ensemble registers at init).
// Every payload round-trips float64 values exactly, so a deserialised model
// emits bitwise-identical predictions — the property the serving fleet's
// checkpoint/restore path (internal/checkpoint) is built on.

// Kind tags in the saved container.
const (
	savedKindNN       = "nn"
	savedKindRF       = "rf"
	savedKindEnsemble = "ensemble"
)

// savedClassifier is the on-disk container: a tagged union over the
// classifier kinds. Only the fields for Kind are populated.
type savedClassifier struct {
	Kind string
	// Spec is stored for nn and rf kinds.
	Spec Spec
	// Weights holds the flat NN weight tensors in nn.Network.Params order.
	Weights [][]float64
	// Forest is the flat node encoding of a trained rf.Forest.
	Forest *rf.ForestData
	// Members holds each ensemble member as its own nested Save payload.
	Members [][]byte
}

// EnsembleCodec lets internal/ensemble plug its type into Save/Load without
// an import cycle (models cannot import ensemble, which imports models).
// Members reports the member classifiers of an ensemble (ok=false for any
// other Classifier); Build reassembles one from deserialised members.
type EnsembleCodec struct {
	Members func(Classifier) ([]Classifier, bool)
	Build   func([]Classifier) (Classifier, error)
}

var ensembleCodec *EnsembleCodec

// RegisterEnsembleCodec installs the ensemble hooks. internal/ensemble calls
// it from init(); importing that package (directly or blank) is what enables
// ensemble persistence.
func RegisterEnsembleCodec(c EnsembleCodec) { ensembleCodec = &c }

// Save writes any supported classifier to w in gob format: *NNClassifier,
// *RFClassifier, or a registered ensemble of them.
func Save(w io.Writer, c Classifier) error {
	sc, err := toSaved(c)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(sc); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	return nil
}

func toSaved(c Classifier) (*savedClassifier, error) {
	switch v := c.(type) {
	case *NNClassifier:
		sc := &savedClassifier{Kind: savedKindNN, Spec: v.Spec}
		for _, p := range v.Net.Params() {
			sc.Weights = append(sc.Weights, append([]float64(nil), p.W.Data...))
		}
		return sc, nil
	case *RFClassifier:
		return &savedClassifier{Kind: savedKindRF, Spec: v.Spec, Forest: v.Forest.Export()}, nil
	case *QuantizedClassifier:
		// Quantization is a serving-time view: checkpoints always persist the
		// exact f64 model, and a restored hub re-quantizes (and re-gates) it.
		return toSaved(v.Base)
	}
	if ensembleCodec != nil {
		if members, ok := ensembleCodec.Members(c); ok {
			sc := &savedClassifier{Kind: savedKindEnsemble}
			for i, m := range members {
				var buf bytes.Buffer
				if err := Save(&buf, m); err != nil {
					return nil, fmt.Errorf("models: save ensemble member %d: %w", i, err)
				}
				sc.Members = append(sc.Members, buf.Bytes())
			}
			return sc, nil
		}
	}
	return nil, fmt.Errorf("models: cannot serialise classifier type %T", c)
}

// Load reads a classifier written by Save, rebuilding the architecture from
// the stored spec (or node encoding) and restoring parameters exactly.
func Load(r io.Reader) (Classifier, error) {
	var sc savedClassifier
	if err := gob.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	return fromSaved(&sc)
}

func fromSaved(sc *savedClassifier) (Classifier, error) {
	switch sc.Kind {
	case savedKindNN:
		return restoreNN(sc.Spec, sc.Weights)
	case "":
		// Legacy NN-only payload (pre-checkpoint savedModel): no kind tag,
		// but gob matched its Spec/Weights fields by name.
		if len(sc.Weights) > 0 {
			return restoreNN(sc.Spec, sc.Weights)
		}
		return nil, fmt.Errorf("models: load: unknown classifier kind %q", sc.Kind)
	case savedKindRF:
		if err := sc.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("models: load: %w", err)
		}
		forest, err := rf.FromData(sc.Forest)
		if err != nil {
			return nil, fmt.Errorf("models: load: %w", err)
		}
		return &RFClassifier{Forest: forest, Spec: sc.Spec}, nil
	case savedKindEnsemble:
		if ensembleCodec == nil {
			return nil, fmt.Errorf("models: load: no ensemble codec registered (import internal/ensemble)")
		}
		if len(sc.Members) == 0 {
			return nil, fmt.Errorf("models: load: ensemble with no members")
		}
		members := make([]Classifier, len(sc.Members))
		for i, raw := range sc.Members {
			m, err := Load(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("models: load ensemble member %d: %w", i, err)
			}
			members[i] = m
		}
		return ensembleCodec.Build(members)
	default:
		return nil, fmt.Errorf("models: load: unknown classifier kind %q", sc.Kind)
	}
}

// restoreNN rebuilds a network from spec and copies the stored weights in.
func restoreNN(spec Spec, weights [][]float64) (*NNClassifier, error) {
	net, err := BuildNet(spec, 0)
	if err != nil {
		return nil, fmt.Errorf("models: load: rebuild: %w", err)
	}
	params := net.Params()
	if len(params) != len(weights) {
		return nil, fmt.Errorf("models: load: parameter count mismatch (%d stored, %d rebuilt)",
			len(weights), len(params))
	}
	for i, p := range params {
		if len(p.W.Data) != len(weights[i]) {
			return nil, fmt.Errorf("models: load: parameter %d size mismatch (%d stored, %d rebuilt)",
				i, len(weights[i]), len(p.W.Data))
		}
		copy(p.W.Data, weights[i])
	}
	return &NNClassifier{Net: net, Spec: spec}, nil
}

// SaveNN writes an NN classifier in the generic Save format. It is the
// NN-typed convenience wrapper kept for existing callers.
func SaveNN(w io.Writer, c *NNClassifier) error { return Save(w, c) }

// LoadNN reads an NN classifier saved by SaveNN or Save, accepting both the
// generic container and the legacy NN-only payload (handled inside Load).
func LoadNN(r io.Reader) (*NNClassifier, error) {
	c, err := Load(r)
	if err != nil {
		return nil, err
	}
	nnClf, ok := c.(*NNClassifier)
	if !ok {
		return nil, fmt.Errorf("models: load: saved classifier is %T, not an NN", c)
	}
	return nnClf, nil
}

// ensure nn is referenced for documentation clarity (Params ordering is the
// contract both sides rely on).
var _ = func() *nn.Network { return nil }
