package models

import (
	"encoding/gob"
	"fmt"
	"io"

	"cognitivearm/internal/nn"
)

// savedModel is the on-disk representation of an NN classifier: the spec
// (from which the architecture is rebuilt) plus the flat weight tensors in
// parameter order.
type savedModel struct {
	Spec    Spec
	Weights [][]float64
}

// SaveNN writes an NN classifier to w in gob format. Random forests are not
// serialised (they retrain in seconds and their node layout is an internal
// detail); callers should persist the spec and retrain.
func SaveNN(w io.Writer, c *NNClassifier) error {
	sm := savedModel{Spec: c.Spec}
	for _, p := range c.Net.Params() {
		sm.Weights = append(sm.Weights, append([]float64(nil), p.W.Data...))
	}
	if err := gob.NewEncoder(w).Encode(sm); err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	return nil
}

// LoadNN reads a classifier saved by SaveNN, rebuilding the architecture
// from the stored spec and restoring the weights.
func LoadNN(r io.Reader) (*NNClassifier, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	net, err := BuildNet(sm.Spec, 0)
	if err != nil {
		return nil, fmt.Errorf("models: load: rebuild: %w", err)
	}
	params := net.Params()
	if len(params) != len(sm.Weights) {
		return nil, fmt.Errorf("models: load: parameter count mismatch (%d stored, %d rebuilt)",
			len(sm.Weights), len(params))
	}
	for i, p := range params {
		if len(p.W.Data) != len(sm.Weights[i]) {
			return nil, fmt.Errorf("models: load: parameter %d size mismatch (%d stored, %d rebuilt)",
				i, len(sm.Weights[i]), len(p.W.Data))
		}
		copy(p.W.Data, sm.Weights[i])
	}
	return &NNClassifier{Net: net, Spec: sm.Spec}, nil
}

// ensure nn is referenced for documentation clarity (Params ordering is the
// contract both sides rely on).
var _ = func() *nn.Network { return nil }
