package models

import (
	"errors"
	"fmt"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/nn"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/tensor"
)

// ErrQuantUnsupported marks a classifier with no quantized inference form
// (LSTM/Transformer networks and ensembles keep their f64 kernels). Serving
// treats it as "keep the exact model", not a failure.
var ErrQuantUnsupported = errors.New("models: classifier has no quantized form")

// DefaultMinAgreement is the calibration gate's default: the quantized twin
// must reproduce the exact model's label on at least this fraction of the
// calibration windows or quantization is rejected.
const DefaultMinAgreement = 0.995

// DefaultCalibrationWindows is how many synthetic windows the gate scores
// when the caller supplies no calibration set.
const DefaultCalibrationWindows = 64

// QuantOptions configures Quantize. The zero value uses the defaults.
type QuantOptions struct {
	// MinAgreement is the calibration gate threshold; 0 means
	// DefaultMinAgreement.
	MinAgreement float64
	// Calibration is the window set the gate scores base vs quantized labels
	// on. nil falls back to DefaultCalibrationWindows deterministic
	// standard-normal windows shaped for the classifier — real recorded
	// windows give a sharper gate and should be preferred when available.
	Calibration []*tensor.Matrix
}

// CalibrationWindows builds n deterministic standard-normal windows of shape
// rows×cols — the default gate input when no recorded windows are supplied.
// The same (n, rows, cols, seed) always produces the same windows, so gate
// decisions are reproducible across restarts.
func CalibrationWindows(n, rows, cols int, seed uint64) []*tensor.Matrix {
	rng := tensor.NewRNG(seed ^ 0x51A7E5CA1E)
	out := make([]*tensor.Matrix, n)
	for i := range out {
		m := tensor.New(rows, cols)
		for j := range m.Data {
			m.Data[j] = rng.NormFloat64()
		}
		out[i] = m
	}
	return out
}

// QuantizedClassifier serves inference through a quantized twin while keeping
// the exact f64 classifier for everything that must stay bitwise-stable:
// checkpoints serialise Base (see toSaved), NumParams/WindowSize/Name report
// Base, and replication/migration therefore never see quantized state.
type QuantizedClassifier struct {
	// Base is the exact f64 classifier quantization started from.
	Base Classifier
	// Quant is the inference twin: int8 GEMM for NN families, int16
	// threshold-compare forest for RF.
	Quant Classifier
	// Agreement is the label-agreement fraction measured by the last
	// Validate call (the calibration gate).
	Agreement float64
}

// Quantize builds the quantized inference twin of c and runs the calibration
// gate: base and quantized labels are compared on the calibration windows and
// the twin is rejected (error) when agreement falls below MinAgreement.
// Classifiers with no quantized form return ErrQuantUnsupported (wrapped).
func Quantize(c Classifier, opt QuantOptions) (*QuantizedClassifier, error) {
	if opt.MinAgreement <= 0 {
		opt.MinAgreement = DefaultMinAgreement
	}
	var quant Classifier
	switch v := c.(type) {
	case *NNClassifier:
		qnet, err := v.Net.Quantize()
		if err != nil {
			if errors.Is(err, nn.ErrQuantUnsupported) {
				return nil, fmt.Errorf("%w: %s", ErrQuantUnsupported, v.Name())
			}
			return nil, err
		}
		quant = &NNClassifier{Net: qnet, Spec: v.Spec}
	case *RFClassifier:
		quant = &qrfClassifier{qf: v.Forest.Quantize(), spec: v.Spec}
	default:
		return nil, fmt.Errorf("%w: %T", ErrQuantUnsupported, c)
	}
	qc := &QuantizedClassifier{Base: c, Quant: quant}
	calib := opt.Calibration
	if len(calib) == 0 {
		calib = CalibrationWindows(DefaultCalibrationWindows, c.WindowSize(), eeg.NumChannels, 1)
	}
	if err := qc.Validate(calib, opt.MinAgreement); err != nil {
		return nil, err
	}
	return qc, nil
}

// Validate runs the calibration gate: it classifies every calibration window
// through both Base and Quant, records the agreement fraction, and errors
// when it falls below minAgreement. Exposed separately so operators (and
// tests) can re-gate a quantized model against recorded traffic.
func (q *QuantizedClassifier) Validate(calib []*tensor.Matrix, minAgreement float64) error {
	if len(calib) == 0 {
		return errors.New("models: quantization gate needs calibration windows")
	}
	base := PredictBatch(q.Base, calib)
	quant := PredictBatch(q.Quant, calib)
	agree := 0
	for i := range base {
		if base[i] == quant[i] {
			agree++
		}
	}
	q.Agreement = float64(agree) / float64(len(base))
	if q.Agreement < minAgreement {
		return fmt.Errorf("models: quantized %s agreement %.4f below gate %.4f on %d calibration windows",
			q.Base.Name(), q.Agreement, minAgreement, len(calib))
	}
	return nil
}

// Predict implements Classifier through the quantized twin.
func (q *QuantizedClassifier) Predict(x *tensor.Matrix) int { return q.Quant.Predict(x) }

// Probs implements Classifier through the quantized twin.
func (q *QuantizedClassifier) Probs(x *tensor.Matrix) []float64 { return q.Quant.Probs(x) }

// NumParams implements Classifier, reporting the exact model's size.
func (q *QuantizedClassifier) NumParams() int { return q.Base.NumParams() }

// WindowSize implements Classifier.
func (q *QuantizedClassifier) WindowSize() int { return q.Base.WindowSize() }

// Name implements Classifier, keeping the exact model's identity so registry
// keys and checkpoint manifests are unchanged by quantization.
func (q *QuantizedClassifier) Name() string { return q.Base.Name() }

// PredictBatch implements BatchPredictor through the quantized twin.
func (q *QuantizedClassifier) PredictBatch(xs []*tensor.Matrix) []int {
	return PredictBatch(q.Quant, xs)
}

// PredictBatchWS implements BatchPredictorWS through the quantized twin.
//
//cogarm:zeroalloc
func (q *QuantizedClassifier) PredictBatchWS(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	return PredictBatchWS(q.Quant, ws, xs, dst)
}

// qrfClassifier serves an RF spec through the int16 threshold-quantized
// forest. Feature extraction stays exact f64 (dataset.FeatureVectorInto);
// only the split comparisons run on the quantized grid.
type qrfClassifier struct {
	qf   *rf.QForest
	spec Spec
}

// Predict implements Classifier.
func (c *qrfClassifier) Predict(x *tensor.Matrix) int {
	fv := dataset.FeatureVector(dataset.Window{Data: x})
	return c.qf.PredictBatchWS(nil, [][]float64{fv}, nil)[0]
}

// Probs implements Classifier.
func (c *qrfClassifier) Probs(x *tensor.Matrix) []float64 {
	fv := dataset.FeatureVector(dataset.Window{Data: x})
	return c.qf.ProbsBatchWS(nil, [][]float64{fv})[0]
}

// NumParams implements Classifier (total node count, like RFClassifier).
func (c *qrfClassifier) NumParams() int { return c.qf.NodeCount() }

// WindowSize implements Classifier.
func (c *qrfClassifier) WindowSize() int { return c.spec.WindowSize }

// Name implements Classifier.
func (c *qrfClassifier) Name() string { return c.spec.ID() + "-int16" }

// PredictBatch implements BatchPredictor.
func (c *qrfClassifier) PredictBatch(xs []*tensor.Matrix) []int {
	return c.PredictBatchWS(nil, xs, nil)
}

// PredictBatchWS implements BatchPredictorWS, mirroring RFClassifier.
//
//cogarm:zeroalloc
func (c *qrfClassifier) PredictBatchWS(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	X := ws.FloatRows(len(xs))
	for i, x := range xs {
		X[i] = dataset.FeatureVectorInto(ws.Floats(5*x.Cols), dataset.Window{Data: x})
	}
	return c.qf.PredictBatchWS(ws, X, dst)
}
