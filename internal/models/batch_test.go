package models

import (
	"testing"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

// batchTestSpecs returns one small spec per NN family so the equivalence
// test exercises the conv, recurrent and attention batch kernels end to end.
func batchTestSpecs() []Spec {
	return []Spec{
		{Family: FamilyCNN, WindowSize: 64, Optimizer: "adam", LR: 1e-3, Dropout: 0.2,
			ConvLayers: 2, Filters: 8, Kernel: 5, Stride: 2, Pool: "max"},
		{Family: FamilyLSTM, WindowSize: 32, Optimizer: "adam", LR: 1e-3, Dropout: 0.3,
			LSTMLayers: 2, Hidden: 12},
		{Family: FamilyTransformer, WindowSize: 24, Optimizer: "adamw", LR: 1e-3, Dropout: 0.1,
			TFLayers: 2, Heads: 2, DModel: 16, FFDim: 32},
	}
}

func randBatch(b, rows int, rng *tensor.RNG) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, b)
	for i := range xs {
		x := tensor.New(rows, eeg.NumChannels)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// TestNNPredictBatchMatchesPredict is the serving-path equivalence guarantee:
// for every NN family, the fused batched forward returns bitwise-identical
// logits — and therefore identical labels — to per-window Predict.
func TestNNPredictBatchMatchesPredict(t *testing.T) {
	rng := tensor.NewRNG(17)
	for _, spec := range batchTestSpecs() {
		t.Run(spec.Family.String(), func(t *testing.T) {
			net, err := BuildNet(spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			clf := &NNClassifier{Net: net, Spec: spec}
			// One workspace reused (with Reset) across every batch size, as a
			// serving shard would across ticks: stale-scratch leaks between
			// cycles would surface as logit mismatches here.
			ws := tensor.NewWorkspace()
			labelBuf := make([]int, 0, 32)
			for _, B := range []int{1, 3, 8, 32} {
				xs := randBatch(B, spec.WindowSize, rng)
				labels := clf.PredictBatch(xs)
				ws.Reset()
				wsLabels := clf.PredictBatchWS(ws, xs, labelBuf)
				outs := net.ForwardBatch(nil, xs, false)
				for i, x := range xs {
					if want := clf.Predict(x); labels[i] != want {
						t.Fatalf("B=%d window %d: batched label %d != sequential %d", B, i, labels[i], want)
					}
					if wsLabels[i] != labels[i] {
						t.Fatalf("B=%d window %d: workspace label %d != unpooled %d", B, i, wsLabels[i], labels[i])
					}
					want := net.Logits(x)
					got := outs[i].Row(0)
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("B=%d window %d logit %d: batched %v != sequential %v (must be bitwise identical)",
								B, i, j, got[j], want[j])
						}
					}
				}
			}
		})
	}
}

// TestNNPredictBatchMixedShapesFallsBack: a batch mixing window lengths (two
// models' sessions misrouted into one call) must degrade to the per-window
// path, not panic.
func TestNNPredictBatchMixedShapes(t *testing.T) {
	rng := tensor.NewRNG(23)
	spec := Spec{Family: FamilyLSTM, WindowSize: 32, Optimizer: "adam", LR: 1e-3,
		LSTMLayers: 1, Hidden: 8}
	net, err := BuildNet(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	clf := &NNClassifier{Net: net, Spec: spec}
	xs := append(randBatch(2, 32, rng), randBatch(2, 40, rng)...)
	labels := clf.PredictBatch(xs)
	for i, x := range xs {
		if want := clf.Predict(x); labels[i] != want {
			t.Fatalf("window %d: mixed-shape batch label %d != sequential %d", i, labels[i], want)
		}
	}
}
