package models

import (
	"strings"
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

// smallData builds a quick 2-subject dataset for training tests.
func smallData(t *testing.T, window int) (train, val []dataset.Window) {
	t.Helper()
	bySubject, err := dataset.Build([]int{0, 1}, 1, dataset.ShortProtocol(40), window, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(8)
	var all []dataset.Window
	// Pool in fixed subject order: ranging over the map makes the train/val
	// split depend on iteration order, which flakes the accuracy thresholds.
	for _, id := range []int{0, 1} {
		all = append(all, bySubject[id]...)
	}
	dataset.Shuffle(all, rng)
	cut := len(all) * 8 / 10
	return all[:cut], all[cut:]
}

func TestSpecValidate(t *testing.T) {
	for _, s := range PaperSpecs() {
		if err := s.Validate(); err != nil {
			t.Fatalf("paper spec invalid: %v", err)
		}
	}
	bad := []Spec{
		{Family: FamilyCNN, WindowSize: 5},
		{Family: FamilyCNN, WindowSize: 100},                                                     // missing conv params
		{Family: FamilyLSTM, WindowSize: 100},                                                    // missing hidden
		{Family: FamilyTransformer, WindowSize: 100, TFLayers: 1, Heads: 3, DModel: 8, FFDim: 4}, // 8 % 3 != 0
		{Family: FamilyRF, WindowSize: 100},                                                      // no trees
		{Family: Family(9), WindowSize: 100},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d validated: %+v", i, s)
		}
	}
}

func TestSpecIDs(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range PaperSpecs() {
		id := s.ID()
		if ids[id] {
			t.Fatalf("duplicate id %s", id)
		}
		ids[id] = true
	}
	if !strings.HasPrefix(PaperSpecs()[0].ID(), "cnn-") {
		t.Fatal("cnn id prefix")
	}
}

func TestPaperSpecParamCounts(t *testing.T) {
	// The paper's LSTM (1×512) must dwarf the CNN (1 conv, 32 filters) —
	// that's the crux of Figures 8/9.
	specs := PaperSpecs()
	var cnnP, lstmP, tfP int
	for _, s := range specs {
		if s.Family == FamilyRF {
			continue
		}
		net, err := BuildNet(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		switch s.Family {
		case FamilyCNN:
			cnnP = net.NumParams()
		case FamilyLSTM:
			lstmP = net.NumParams()
		case FamilyTransformer:
			tfP = net.NumParams()
		}
	}
	// LSTM 1×512 with 16 inputs: 4·512·(528)+4·512 ≈ 1.08M params.
	if lstmP < 1_000_000 || lstmP > 1_200_000 {
		t.Fatalf("paper LSTM params %d, want ~1.08M", lstmP)
	}
	if cnnP >= lstmP || cnnP >= tfP {
		t.Fatalf("CNN (%d) should be the smallest NN (lstm %d, tf %d)", cnnP, lstmP, tfP)
	}
}

func TestBuildNetErrors(t *testing.T) {
	s := Spec{Family: FamilyCNN, WindowSize: 12, ConvLayers: 3, Filters: 4, Kernel: 7, Stride: 3, Pool: "max", Optimizer: "adam", LR: 1e-3}
	if _, err := BuildNet(s, 1); err == nil {
		t.Fatal("collapsing conv stack should error")
	}
	if _, err := BuildNet(Spec{Family: FamilyRF, WindowSize: 100, Trees: 10}, 1); err == nil {
		t.Fatal("BuildNet should reject RF family")
	}
}

func TestTrainCNNOnSyntheticEEG(t *testing.T) {
	train, val := smallData(t, 100)
	s := Spec{Family: FamilyCNN, WindowSize: 100, Optimizer: "adam", LR: 2e-3, Dropout: 0.1,
		ConvLayers: 1, Filters: 8, Kernel: 5, Stride: 2, Pool: "none"}
	clf, res, err := Train(s, train, val, TrainOptions{Epochs: 12, BatchSize: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAcc < 0.6 {
		t.Fatalf("CNN val accuracy %v too low (chance = 0.33)", res.ValAcc)
	}
	if clf.WindowSize() != 100 {
		t.Fatal("window size lost")
	}
	probs := clf.Probs(val[0].Data)
	if len(probs) != eeg.NumActions {
		t.Fatalf("probs size %d", len(probs))
	}
}

func TestTrainRFOnSyntheticEEG(t *testing.T) {
	train, val := smallData(t, 100)
	s := Spec{Family: FamilyRF, WindowSize: 100, Trees: 40, MaxDepth: 12}
	clf, res, err := Train(s, train, val, TrainOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAcc < 0.6 {
		t.Fatalf("RF val accuracy %v too low", res.ValAcc)
	}
	if clf.NumParams() == 0 {
		t.Fatal("forest node count should be positive")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(Spec{Family: FamilyCNN, WindowSize: 5}, nil, nil, DefaultTrainOptions()); err == nil {
		t.Fatal("invalid spec should error")
	}
	s := Spec{Family: FamilyRF, WindowSize: 100, Trees: 5}
	if _, _, err := Train(s, nil, nil, DefaultTrainOptions()); err == nil {
		t.Fatal("empty training set should error")
	}
	badOpt := Spec{Family: FamilyCNN, WindowSize: 50, ConvLayers: 1, Filters: 2, Kernel: 3, Stride: 2,
		Optimizer: "magic", LR: 1e-3}
	train, val := smallData(t, 50)
	if _, _, err := Train(badOpt, train, val, TrainOptions{Epochs: 1}); err == nil {
		t.Fatal("unknown optimizer should error")
	}
}

func TestOpsPerInferenceOrdering(t *testing.T) {
	specs := PaperSpecs()
	ops := map[Family]int64{}
	for _, s := range specs {
		o := OpsPerInference(s)
		if o <= 0 {
			t.Fatalf("ops for %v = %d", s.Family, o)
		}
		ops[s.Family] = o
	}
	if ops[FamilyRF] >= ops[FamilyCNN] {
		t.Fatal("RF inference should be far cheaper than CNN")
	}
	if ops[FamilyCNN] >= ops[FamilyLSTM] {
		t.Fatal("paper CNN should be cheaper than the 512-unit LSTM")
	}
}

func TestToExamples(t *testing.T) {
	train, _ := smallData(t, 50)
	ex := ToExamples(train[:3])
	for i := range ex {
		if ex[i].X != train[i].Data || ex[i].Label != int(train[i].Label) {
			t.Fatal("conversion mangled data")
		}
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyCNN.String() != "cnn" || FamilyRF.String() != "rf" || Family(7).String() == "" {
		t.Fatal("family names")
	}
	if len(Families()) != 4 {
		t.Fatal("family count")
	}
}
