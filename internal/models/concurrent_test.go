package models

import (
	"bytes"
	"sync"
	"testing"

	"cognitivearm/internal/tensor"
)

// TestConcurrentSharedNNInference is the serving-hub contract test: one NN
// classifier deserialised from the serialize.go format is shared read-only
// by many goroutines mixing Predict, Probs and PredictBatch. Run under
// `go test -race`, this fails if any layer's inference path writes receiver
// state (the original Forward implementations cached activations
// unconditionally, so sharing a model across sessions raced).
func TestConcurrentSharedNNInference(t *testing.T) {
	train, val := smallData(t, 50)
	// CNN + transformer cover every inference-path layer family: conv,
	// pooling, relu, dropout, dense, attention, layernorm, meanpool.
	specs := []Spec{
		{Family: FamilyCNN, WindowSize: 50, Optimizer: "adam", LR: 2e-3,
			Dropout: 0.1, ConvLayers: 1, Filters: 8, Kernel: 5, Stride: 2, Pool: "max"},
		{Family: FamilyTransformer, WindowSize: 50, Optimizer: "adamw", LR: 1e-3,
			Dropout: 0.1, TFLayers: 1, Heads: 2, DModel: 8, FFDim: 16},
	}
	for _, spec := range specs {
		trained, _, err := Train(spec, train, val, TrainOptions{Epochs: 1, BatchSize: 32, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveNN(&buf, trained.(*NNClassifier)); err != nil {
			t.Fatal(err)
		}
		shared, err := LoadNN(&buf)
		if err != nil {
			t.Fatal(err)
		}

		windows := make([]*tensor.Matrix, 0, 8)
		for _, w := range val[:8] {
			windows = append(windows, w.Data)
		}
		want := make([]int, len(windows))
		for i, x := range windows {
			want[i] = shared.Predict(x)
		}
		wantProbs := shared.Probs(windows[0])

		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					switch g % 3 {
					case 0:
						for i, x := range windows {
							if got := shared.Predict(x); got != want[i] {
								t.Errorf("%s: concurrent Predict[%d] = %d, want %d", spec.ID(), i, got, want[i])
								return
							}
						}
					case 1:
						p := shared.Probs(windows[0])
						for i := range p {
							if p[i] != wantProbs[i] {
								t.Errorf("%s: concurrent Probs diverged", spec.ID())
								return
							}
						}
					case 2:
						got := PredictBatch(shared, windows)
						for i := range got {
							if got[i] != want[i] {
								t.Errorf("%s: concurrent PredictBatch[%d] = %d, want %d", spec.ID(), i, got[i], want[i])
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestPredictBatchMatchesPredict pins the tree-major forest batch path to
// the sample-major reference, and exercises it concurrently.
func TestPredictBatchMatchesPredict(t *testing.T) {
	train, val := smallData(t, 50)
	spec := Spec{Family: FamilyRF, WindowSize: 50, Trees: 15, MaxDepth: 8}
	clf, _, err := Train(spec, train, val, TrainOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	windows := make([]*tensor.Matrix, 0, len(val))
	for _, w := range val {
		windows = append(windows, w.Data)
	}
	want := make([]int, len(windows))
	for i, x := range windows {
		want[i] = clf.Predict(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := PredictBatch(clf, windows)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("PredictBatch[%d] = %d, want %d", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()

	// The generic helper must also serve classifiers without a batch path.
	plain := plainClassifier{Classifier: clf}
	got := PredictBatch(plain, windows)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback PredictBatch[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// plainClassifier hides the BatchPredictor implementation to force the
// helper's per-window fallback.
type plainClassifier struct{ Classifier }
