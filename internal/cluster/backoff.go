package cluster

import (
	"hash/fnv"
	"time"
)

// Replication dial backoff. A standby that refuses dials would otherwise be
// re-dialed on every replication sweep — with sub-second ReplicateEvery that
// is a connect storm against a host that is likely rebooting, and with many
// primaries replicating to one dead standby the storms synchronize. Each
// target therefore gets capped exponential backoff with deterministic,
// per-node-seeded jitter: failures double the pause from DefaultBackoffBase
// up to DefaultBackoffCap, each pause is drawn uniformly from [d/2, d) so
// fleets desynchronize, and one acknowledged batch resets the target to
// eager redial.

// Backoff defaults; Config.DialBackoffBase/Cap override.
const (
	DefaultBackoffBase = 250 * time.Millisecond
	DefaultBackoffCap  = 15 * time.Second
)

// dialBackoff tracks per-target redial pacing. It is NOT safe for concurrent
// use: the replication sweep owns it under replMu, the same way it owns the
// link table.
type dialBackoff struct {
	base time.Duration
	cap  time.Duration
	rng  uint64 // splitmix64 state; seeded per node, deterministic
	tgt  map[string]*backoffState
}

type backoffState struct {
	fails int
	next  time.Time
}

// newDialBackoff builds a policy with the given bounds (defaults applied for
// non-positive values) and a deterministic jitter stream seeded from seed —
// node IDs are unique per fleet, so distinct nodes draw distinct jitter while
// a test rerun draws the same sequence.
func newDialBackoff(base, cap time.Duration, seed string) *dialBackoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	h := fnv.New64a()
	h.Write([]byte(seed))
	return &dialBackoff{base: base, cap: cap, rng: h.Sum64(), tgt: map[string]*backoffState{}}
}

// rand is splitmix64 over the seeded state: cheap, deterministic, and
// stateful enough that successive failures of one target jitter differently.
func (b *dialBackoff) rand() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ready reports whether target may be dialed at now.
func (b *dialBackoff) ready(target string, now time.Time) bool {
	st, ok := b.tgt[target]
	return !ok || !now.Before(st.next)
}

// failure records a failed dial or batch at now and returns the pause before
// the next attempt: min(cap, base·2^(fails-1)), jittered into [d/2, d).
func (b *dialBackoff) failure(target string, now time.Time) time.Duration {
	st, ok := b.tgt[target]
	if !ok {
		st = &backoffState{}
		b.tgt[target] = st
	}
	st.fails++
	d := b.cap
	if shift := uint(st.fails - 1); shift < 32 {
		if exp := b.base << shift; exp > 0 && exp < b.cap {
			d = exp
		}
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(b.rand()%uint64(half))
	}
	st.next = now.Add(d)
	return d
}

// success resets target to eager redial.
func (b *dialBackoff) success(target string) {
	delete(b.tgt, target)
}

// forget drops state for a target that is no longer a standby.
func (b *dialBackoff) forget(target string) {
	delete(b.tgt, target)
}

// failures returns the consecutive failure count for target.
func (b *dialBackoff) failures(target string) int {
	if st, ok := b.tgt[target]; ok {
		return st.fails
	}
	return 0
}
