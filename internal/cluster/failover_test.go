package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cognitivearm/internal/cluster/faultnet"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
)

// keysOwnedBy finds n routing keys a {node-a, node-b} ring assigns to owner.
func keysOwnedBy(t *testing.T, owner string, n int) []string {
	t.Helper()
	scratch := NewRing(0)
	scratch.Add("node-a")
	scratch.Add("node-b")
	var keys []string
	for i := 0; len(keys) < n; i++ {
		if i > 10000 {
			t.Fatalf("ring never produced %d keys for %s", n, owner)
		}
		k := fmt.Sprintf("subject:%d", i)
		if o, _ := scratch.Owner(k); o == owner {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestFailoverKillUnderLoad is the high-availability acceptance test: a
// two-node cluster serves three sessions on node A, replicating to its
// standby node B every replEvery ticks, when node A is killed mid-stream
// (hard close, no drain). The test then proves, with no sleeps standing in
// for synchronization:
//
//   - B's failure detector reaps A (driven by an explicit future clock, not
//     by waiting out the suspicion floor);
//   - B promotes all of A's replica sessions, including the model its own
//     registry never held — it arrived over the replication tail;
//   - every promoted session resumes bitwise-identically from the last
//     replicated record: its stats equal the uninterrupted reference at the
//     last replication tick, and every subsequent script-fed tick matches
//     the reference exactly;
//   - the loss is bounded by one replication interval (ticks since the last
//     acknowledged batch, never more than replEvery);
//   - a UDP streamer whose socket died with A re-homes via the Locate
//     redirect to the promoted session's fresh ingest address and its
//     samples decode on B.
func TestFailoverKillUnderLoad(t *testing.T) {
	clf, norm := sharedModel(t)
	const (
		totalSamples = 700
		totalTicks   = 70
		replEvery    = 8  // ticks between ReplicateOnce calls
		killTick     = 20 // ticks A serves before the kill
	)
	aKeys := keysOwnedBy(t, "node-a", 3)
	keyS1, keyS2, keyUDP := aKeys[0], aKeys[1], aKeys[2]
	scriptKeys := []string{keyS1, keyS2}

	streams := map[string][]stream.Sample{
		keyS1:  scriptedEEG(0, 41, totalSamples),
		keyS2:  scriptedEEG(0, 97, totalSamples),
		keyUDP: scriptedEEG(0, 7, totalSamples),
	}
	tags := []string{keyS1, keyS2, keyUDP}
	fullRing := func(samples []stream.Sample) *stream.Ring {
		ring := stream.NewRing(totalSamples + 1)
		for _, smp := range samples {
			ring.Push(smp)
		}
		return ring
	}
	admitAll := func(t *testing.T, admit func(serve.SessionConfig) (serve.SessionID, error), scripts map[string]*scriptSource) {
		t.Helper()
		for _, tag := range tags {
			var src serve.Source
			if tag == keyUDP {
				// Pre-kill the "UDP" session is fed from a fully scripted ring:
				// deterministic, so it participates in the bitwise reference.
				// Only its post-failover re-homing uses a real socket.
				src = serve.RingSource{Ring: fullRing(streams[tag])}
			} else {
				s := &scriptSource{samples: streams[tag]}
				scripts[tag] = s
				src = s
			}
			if _, err := admit(serve.SessionConfig{ModelKey: "rf", Source: src, Norm: norm, Tag: tag}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: one uninterrupted hub over the full streams.
	ref := newHub(t, registryWith(clf))
	defer ref.Stop()
	admitAll(t, ref.Admit, map[string]*scriptSource{})
	want := make([]map[string]serve.SessionStats, 0, totalTicks)
	for i := 0; i < totalTicks; i++ {
		ref.TickAll()
		want = append(want, tagStats(t, ref, len(tags)))
	}

	tel := clusterTel()
	reapsBefore := tel.reaps.Value()
	failoversBefore := tel.failovers.Value()
	promotedBefore := tel.promoted.Value()
	batchesOutBefore := tel.replBatchesOut.Value()
	batchesInBefore := tel.replBatchesIn.Value()

	// Primary: node A serves all three sessions, replicating to standby B.
	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Replicas: 1, Rebind: dropRebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	scripts := map[string]*scriptSource{}
	admitAll(t, nodeA.Admit, scripts)

	// Standby: node B starts with an EMPTY registry — the model must arrive
	// over the replication tail. Its rebind factory is the promotion seam:
	// script sessions resume from the position recorded at the last
	// replication, and the UDP session gets a fresh inlet socket for the
	// redirect leg.
	replPos := map[string]int{}
	var inletMu sync.Mutex
	var inlet *stream.UDPInlet
	clock := stream.NewVirtualClock(0, 0)
	hubB := newHub(t, serve.NewRegistry())
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Replicas: 1, Logf: t.Logf,
		Rebind: func(rec serve.RestoredSession) (serve.Source, error) {
			switch rec.Tag {
			case keyS1, keyS2:
				return &scriptSource{samples: streams[rec.Tag][replPos[rec.Tag]:]}, nil
			case keyUDP:
				in, err := stream.NewUDPInlet(clock, 4096)
				if err != nil {
					return nil, err
				}
				inletMu.Lock()
				inlet = in
				inletMu.Unlock()
				return serve.RingSource{Ring: in.Ring, Closer: in}, nil
			}
			return nil, fmt.Errorf("unexpected promoted tag %q", rec.Tag)
		}}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	if n := hubA.Sessions(); n != 3 {
		t.Fatalf("node A holds %d sessions after join, want 3 (all keys route to it)", n)
	}
	if got := nodeA.Standbys(); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("node A standbys = %v, want [node-b]", got)
	}

	// Drive A in lockstep with the reference, replicating every replEvery
	// ticks. Heartbeats ride along each tick so both detectors see a live
	// peer right up to the kill.
	replIdx := -1
	for i := 0; i < killTick; i++ {
		hubA.TickAll()
		if st := tagStats(t, hubA, 3); !reflect.DeepEqual(st, want[i]) {
			t.Fatalf("tick %d: node A diverged from reference before the kill:\n got %+v\nwant %+v", i, st, want[i])
		}
		nodeA.SendHeartbeats()
		nodeB.SendHeartbeats()
		if (i+1)%replEvery == 0 {
			if err := nodeA.ReplicateOnce(); err != nil {
				t.Fatal(err)
			}
			replIdx = i
			for _, tag := range scriptKeys {
				replPos[tag] = scripts[tag].pos
			}
		}
	}
	if replIdx < 0 {
		t.Fatal("kill tick precedes first replication; test proves nothing")
	}
	if lost := (killTick - 1) - replIdx; lost > replEvery {
		t.Fatalf("%d ticks would be lost, bound is one replication interval (%d)", lost, replEvery)
	}
	if st := nodeB.Status().(Status); st.ReplicaSessions != 3 || len(st.ReplicaOf) != 1 || st.ReplicaOf[0] != "node-a" {
		t.Fatalf("standby status %+v, want a 3-session replica of node-a", st)
	}

	// Kill node A: hard close, no drain, no leave notification. The hub stops
	// too — its sessions die with the process.
	nodeA.Close()
	hubA.Stop()

	// B's detector is driven with an explicit future instant: one hour of
	// silence is past any floor, so the reap decision is deterministic — no
	// waiting out the suspicion window in real time.
	reaped := nodeB.DetectFailures(time.Now().Add(time.Hour))
	if len(reaped) != 1 || reaped[0] != "node-a" {
		t.Fatalf("DetectFailures reaped %v, want [node-a]", reaped)
	}
	if got := nodeB.Ring().Nodes(); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("survivor's ring is %v, want [node-b]", got)
	}
	if n := hubB.Sessions(); n != 3 {
		t.Fatalf("survivor promoted %d sessions, want 3", n)
	}
	if _, _, ok := hubB.Registry().Get("rf"); !ok {
		t.Fatal("model did not arrive over the replication tail")
	}

	// Bitwise continuation: the promoted sessions are exactly the reference
	// at the last replicated tick — one replication interval of staleness,
	// nothing more, nothing else lost.
	promotedStats := tagStats(t, hubB, 3)
	for _, tag := range tags {
		if !reflect.DeepEqual(promotedStats[tag], want[replIdx][tag]) {
			t.Fatalf("promoted session %q is not the replicated snapshot:\n got %+v\nwant %+v",
				tag, promotedStats[tag], want[replIdx][tag])
		}
	}

	// Re-run the lost ticks and the rest of the schedule on B. The script
	// sessions must match the reference tick for tick; the UDP session sits
	// idle (its stream died with A's socket) until the redirect leg re-homes
	// it below.
	for i := replIdx + 1; i < totalTicks; i++ {
		hubB.TickAll()
		st := tagStats(t, hubB, 3)
		for _, tag := range scriptKeys {
			if !reflect.DeepEqual(st[tag], want[i][tag]) {
				t.Fatalf("tick %d session %q diverged after failover:\n got %+v\nwant %+v", i, tag, st[tag], want[i][tag])
			}
		}
	}

	// Redirect: the streamer asks the survivor where its key lives now and
	// gets back the promoted session's fresh ingest address.
	loc, err := Locate(nodeB.Addr(), keyUDP)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Owner != "node-b" || loc.Addr != nodeB.Addr() {
		t.Fatalf("locate answered %+v, want owner node-b at %s", loc, nodeB.Addr())
	}
	inletMu.Lock()
	in := inlet
	inletMu.Unlock()
	if in == nil {
		t.Fatal("promotion never created the UDP session's inlet")
	}
	if loc.SourceAddr != in.Addr() {
		t.Fatalf("locate ingest address = %q, want the promoted inlet %q", loc.SourceAddr, in.Addr())
	}

	// Re-home: push fresh samples at the redirected address and decode them.
	decodedBefore := tagStats(t, hubB, 3)[keyUDP].Decoded
	outlet, err := stream.NewUDPOutlet(loc.SourceAddr, clock, stream.LinkConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := eeg.NewGenerator(eeg.NewSubject(0), 1234)
	for i := 0; i < 300; i++ {
		raw := gen.Next(eeg.Left)
		outlet.Push(raw[:])
	}
	outlet.Close()
	// The only wait in this test, and it is on real kernel UDP delivery —
	// external I/O the harness cannot schedule — not on goroutine
	// synchronization. Bounded by a hard deadline.
	deadline := time.Now().Add(5 * time.Second)
	for tagStats(t, hubB, 3)[keyUDP].Decoded == decodedBefore {
		if !time.Now().Before(deadline) {
			t.Fatal("re-homed UDP samples never decoded on the survivor")
		}
		hubB.TickAll()
		time.Sleep(2 * time.Millisecond)
	}

	// Telemetry: exactly one reap, one failover, three promoted sessions, and
	// the replication batch counters moved on both ends.
	if got := tel.reaps.Value() - reapsBefore; got != 1 {
		t.Fatalf("reap counter moved by %d, want 1", got)
	}
	if got := tel.failovers.Value() - failoversBefore; got != 1 {
		t.Fatalf("failover counter moved by %d, want 1", got)
	}
	if got := tel.promoted.Value() - promotedBefore; got != 3 {
		t.Fatalf("promoted-session counter moved by %d, want 3", got)
	}
	wantBatches := uint64(killTick / replEvery)
	if got := tel.replBatchesOut.Value() - batchesOutBefore; got != wantBatches {
		t.Fatalf("outbound batch counter moved by %d, want %d", got, wantBatches)
	}
	if got := tel.replBatchesIn.Value() - batchesInBefore; got != wantBatches {
		t.Fatalf("inbound batch counter moved by %d, want %d", got, wantBatches)
	}
	if got := tel.replicaSessions.Value(); got != 0 {
		t.Fatalf("replica-session gauge = %v after promotion consumed the image, want 0", got)
	}
}

// TestOneWayPartitionDoesNotReap: heartbeats carry liveness in both
// directions — an answered ping proves the peer to the sender, a received
// ping proves the sender to the peer. A one-way partition (A cannot dial B,
// B still dials A) therefore keeps BOTH detectors fresh, and neither side
// reaps. Only a full partition does, and then deterministically on both
// sides once the explicit clock crosses the floor.
func TestOneWayPartitionDoesNotReap(t *testing.T) {
	mkNode := func(id string, nw *faultnet.Network) (*Node, *serve.Hub) {
		hub := newHub(t, serve.NewRegistry())
		n, err := NewNode(Config{ID: id, Rebind: dropRebind, Logf: t.Logf, Dial: nw.Dial}, hub)
		if err != nil {
			t.Fatal(err)
		}
		return n, hub
	}
	nwA, nwB := faultnet.NewNetwork(1), faultnet.NewNetwork(2)
	nodeA, hubA := mkNode("node-a", nwA)
	defer hubA.Stop()
	defer nodeA.Close()
	nodeB, hubB := mkNode("node-b", nwB)
	defer hubB.Stop()
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	// One-way partition: every dial from A toward B is refused outright.
	// Refused dials fail instantly, so the silent side costs nothing — no
	// ping timeout to wait out.
	nwA.Plan(nodeB.Addr()).RefuseDials(true)
	for i := 0; i < 5; i++ {
		nodeA.SendHeartbeats() // all fail: A cannot reach B
		nodeB.SendHeartbeats() // all succeed: B's pings also beat A's detector
	}
	if got := nodeA.DetectFailures(time.Now()); len(got) != 0 {
		t.Fatalf("one-way partition: A reaped %v on inbound liveness alone", got)
	}
	if got := nodeB.DetectFailures(time.Now()); len(got) != 0 {
		t.Fatalf("one-way partition: B reaped %v despite answered pings", got)
	}
	if phi := nodeA.det.Phi("node-b", time.Now()); phi >= DefaultPhiThreshold {
		t.Fatalf("A's suspicion of B is %.1f under a one-way partition, want < %.1f", phi, DefaultPhiThreshold)
	}

	// Full partition: now B cannot dial A either. With an explicit clock a
	// floor's worth past the last beat, both sides reap the other — the
	// documented symmetric-partition divergence, reached deterministically.
	nwB.Plan(nodeA.Addr()).RefuseDials(true)
	nodeA.SendHeartbeats()
	nodeB.SendHeartbeats()
	future := time.Now().Add(DefaultSuspectAfter * 10)
	if got := nodeA.DetectFailures(future); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("full partition: A reaped %v, want [node-b]", got)
	}
	if got := nodeB.DetectFailures(future); len(got) != 1 || got[0] != "node-a" {
		t.Fatalf("full partition: B reaped %v, want [node-a]", got)
	}
	for _, n := range []*Node{nodeA, nodeB} {
		if got := n.Ring().Nodes(); len(got) != 1 || got[0] != n.ID() {
			t.Fatalf("%s's ring after full partition is %v, want itself alone", n.ID(), got)
		}
	}
}

// TestReapedMemberPingRefused: a reaped member that comes back without
// re-joining gets a loud refusal, not a quiet beat — a ghost must re-Join.
func TestReapedMemberPingRefused(t *testing.T) {
	hubA, hubB := newHub(t, serve.NewRegistry()), newHub(t, serve.NewRegistry())
	defer hubA.Stop()
	defer hubB.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: dropRebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	if reaped := nodeA.DetectFailures(time.Now().Add(time.Hour)); len(reaped) != 1 || reaped[0] != "node-b" {
		t.Fatalf("reaped %v, want [node-b]", reaped)
	}
	// B still thinks it is a member and pings A: the refusal must name it.
	_, _, err = nodeB.callTimeout(nodeA.Addr(), verbPing, memberMsg{ID: "node-b", Addr: nodeB.Addr()}, nil, pingTimeout)
	if err == nil || !strings.Contains(err.Error(), "unknown member node-b") {
		t.Fatalf("reaped member's ping returned %v, want an unknown-member refusal", err)
	}
}
