package cluster

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/serve"
)

// Protocol verbs. Every inter-node connection carries exactly one request:
// a verb byte, a body, and one framed ack back. Control bodies (join,
// announce, leave) are gob-encoded memberMsg values framed by
// stream.WriteMsg; a migrate body is a raw checkpoint stream
// (checkpoint.WriteStream), self-delimiting via its manifest.
const (
	verbJoin      = byte(1) // memberMsg → ack with full membership
	verbAnnounce  = byte(2) // memberMsg → ack (add member + rebalance)
	verbLeave     = byte(3) // memberMsg → ack (remove member)
	verbMigrate   = byte(4) // checkpoint stream → ack with restored count
	verbPing      = byte(5) // memberMsg → ack (heartbeat; also beats the detector)
	verbReplicate = byte(6) // memberMsg handshake, then a replication tail with one ack per batch
	verbLocate    = byte(7) // locateMsg → ack with owner, owner addr, ingest addr
)

// ioTimeout bounds one inter-node exchange; migrations carry whole models,
// so this is generous next to the control-message round trips. A replication
// tail — the one long-lived connection — extends it per batch.
const ioTimeout = 60 * time.Second

// memberMsg is the control-plane body: the sender's identity.
type memberMsg struct {
	ID   string
	Addr string
}

// locateMsg asks which member owns a routing key (verbLocate body).
type locateMsg struct {
	Key string
}

// ackMsg is every request's response.
type ackMsg struct {
	// Err is the remote failure, empty on success.
	Err string
	// Members is the full membership (id → addr) on a join ack.
	Members map[string]string
	// Handled is how many of a migrate stream's sessions the receiver fully
	// consumed (restored or deliberately dropped), in stream order. On a
	// failed migration the sender restores only the remainder locally, so a
	// partial failure never leaves one session live on both nodes. On a
	// replication batch ack it is the standby's live replica count.
	Handled int
	// Owner, OwnerAddr and Source answer a locate: the owning member, its
	// cluster endpoint, and — when the key's session is live on the answering
	// node — the session's ingest address for re-homing streamers.
	Owner     string
	OwnerAddr string
	Source    string
}

// NotOwnerError reports that a session key routes to another node; callers
// redirect there.
type NotOwnerError struct {
	Owner string
	Addr  string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("cluster: key owned by %s (%s)", e.Owner, e.Addr)
}

// Config describes one cluster node.
type Config struct {
	// ID uniquely names this node on the ring. Empty defaults to the bound
	// listen address, which is unique per fleet by construction.
	ID string
	// ListenAddr is the inter-node endpoint to bind ("127.0.0.1:0" picks a
	// free loopback port — the test and single-machine shape).
	ListenAddr string
	// VNodes is the virtual-node count per member (DefaultVNodes when 0).
	// All nodes of one fleet must agree on it.
	VNodes int
	// Rebind attaches a live sample source to each migrated-in session, by
	// the same contract as serve.SourceFactory on checkpoint restore:
	// (nil, nil) drops the session, an error rejects the migration. Failover
	// promotion rebinds replica sessions through the same factory.
	Rebind serve.SourceFactory
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)

	// Replicas is the warm-standby count: how many ring successors this node
	// tails its dirty-session records to. 0 disables replication and
	// promotion entirely (the pre-HA shape); cogarmd defaults to 1.
	Replicas int
	// ReplicateEvery is the replication interval — the staleness bound a
	// promoted session can lose. 0 runs no loop: tests (and embedders that
	// pace replication themselves) call ReplicateOnce directly.
	ReplicateEvery time.Duration
	// DialBackoffBase and DialBackoffCap bound the capped exponential
	// backoff applied to a standby's redial after replication failures
	// (DefaultBackoffBase / DefaultBackoffCap when zero). One acknowledged
	// batch resets the target to eager redial.
	DialBackoffBase time.Duration
	DialBackoffCap  time.Duration
	// HeartbeatEvery is the ping interval. 0 runs no loop: tests call
	// SendHeartbeats and DetectFailures directly with explicit clocks.
	HeartbeatEvery time.Duration
	// SuspectAfter and PhiThreshold tune the failure detector
	// (DefaultSuspectAfter / DefaultPhiThreshold when zero): a member is
	// reaped once it has been silent for SuspectAfter AND its silence is
	// PhiThreshold times its observed mean heartbeat interval.
	SuspectAfter time.Duration
	PhiThreshold float64

	// Dial overrides outbound connection establishment and WrapListener the
	// inbound side — the fault-injection seams (faultnet.Network.Dial,
	// faultnet.Listener). Nil means plain TCP.
	Dial         func(network, addr string, timeout time.Duration) (net.Conn, error)
	WrapListener func(net.Listener) net.Listener
}

// Node wraps one serving hub with a cluster endpoint: consistent-hash
// routing, membership control messages, and checkpoint-streamed live session
// migration. Create the hub first (cold start or checkpoint restore), then
// the node, then Join an existing member.
type Node struct {
	id     string
	hub    *serve.Hub
	ring   *Ring
	rebind serve.SourceFactory
	logf   func(string, ...any)
	dial   func(network, addr string, timeout time.Duration) (net.Conn, error)

	ln        net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once
	stop      chan struct{}

	mu    sync.Mutex
	peers map[string]string // member id → addr, excluding self

	// High-availability plane. det scores peer liveness; replicas holds the
	// warm-standby images other members tail to this node; replMu serializes
	// replication sweeps and owns links (one tail per standby) — it is the
	// replication worker's private lock, never taken by serving paths.
	det        *detector
	replicaN   int
	replicas   *replicaStore
	replMu     sync.Mutex
	links      map[string]*replLink
	backoff    *dialBackoff // per-standby redial pacing; owned by replMu
	lastReplOK atomic.Int64 // unix nanos of the last fully acknowledged sweep

	migratedIn  atomic.Uint64
	migratedOut atomic.Uint64
}

// NewNode binds the cluster endpoint and starts serving inter-node requests.
// The returned node's ring initially contains only itself.
func NewNode(cfg Config, hub *serve.Hub) (*Node, error) {
	if hub == nil {
		return nil, fmt.Errorf("cluster: node needs a hub")
	}
	if cfg.Rebind == nil {
		return nil, fmt.Errorf("cluster: node needs a Rebind source factory for migrated-in sessions")
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	id := cfg.ID
	if id == "" {
		id = ln.Addr().String()
	}
	if cfg.WrapListener != nil {
		ln = cfg.WrapListener(ln)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dial := cfg.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	n := &Node{
		id:       id,
		hub:      hub,
		ring:     NewRing(cfg.VNodes),
		rebind:   cfg.Rebind,
		logf:     logf,
		dial:     dial,
		ln:       ln,
		stop:     make(chan struct{}),
		peers:    map[string]string{},
		det:      newDetector(cfg.SuspectAfter, cfg.PhiThreshold),
		replicaN: cfg.Replicas,
		replicas: newReplicaStore(),
		links:    map[string]*replLink{},
		backoff:  newDialBackoff(cfg.DialBackoffBase, cfg.DialBackoffCap, id),
	}
	n.ring.Add(id)
	clusterTel().members.Set(float64(n.ring.Len()))
	n.wg.Add(1)
	go n.serve()
	if cfg.HeartbeatEvery > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop(cfg.HeartbeatEvery)
	}
	if cfg.Replicas > 0 && cfg.ReplicateEvery > 0 {
		n.wg.Add(1)
		go n.replicateLoop(cfg.ReplicateEvery)
	}
	return n, nil
}

// heartbeatLoop pings peers and reaps detected failures on a fixed cadence.
func (n *Node) heartbeatLoop(every time.Duration) {
	defer n.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			n.SendHeartbeats()
			n.DetectFailures(time.Now())
		}
	}
}

// replicateLoop ships a dirty-delta batch to every standby on a fixed
// cadence. Errors are logged and retried next interval — the tail reconnects
// and full-resyncs on its own.
func (n *Node) replicateLoop(every time.Duration) {
	defer n.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			if err := n.ReplicateOnce(); err != nil {
				n.logf("cluster: %s: %v", n.id, err)
			}
		}
	}
}

// ID returns the node's ring identity.
func (n *Node) ID() string { return n.id }

// Addr returns the bound inter-node endpoint address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Hub returns the serving hub this node fronts.
func (n *Node) Hub() *serve.Hub { return n.hub }

// Ring exposes the node's membership view (for diagnostics and drivers).
func (n *Node) Ring() *Ring { return n.ring }

// Close stops the cluster endpoint, the heartbeat/replication loops, and any
// open replication tails. It does not stop the hub (the caller owns it) and
// does not migrate sessions away — use Drain first for a graceful departure.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.stop)
		err = n.ln.Close()
	})
	n.wg.Wait()
	n.replMu.Lock()
	for id, link := range n.links {
		//cogarm:allow nolockblock -- final teardown: loops are joined, nothing else can want replMu
		link.conn.Close()
		delete(n.links, id)
	}
	n.replMu.Unlock()
	return err
}

// Owner resolves the member owning a session key. local reports whether it
// is this node; when it is not, addr is the owner's inter-node endpoint.
func (n *Node) Owner(key string) (id, addr string, local bool) {
	owner, ok := n.ring.Owner(key)
	if !ok || owner == n.id {
		return n.id, n.Addr(), true
	}
	n.mu.Lock()
	addr = n.peers[owner]
	n.mu.Unlock()
	return owner, addr, false
}

// Admit places a session on this node if its Tag routes here, and otherwise
// returns a *NotOwnerError naming the owner so the caller can redirect. The
// Tag doubles as the session's stable routing key and must be set for
// cluster-routed sessions.
func (n *Node) Admit(sc serve.SessionConfig) (serve.SessionID, error) {
	if sc.Tag == "" {
		return 0, fmt.Errorf("cluster: session needs a Tag (routing key)")
	}
	if owner, addr, local := n.Owner(sc.Tag); !local {
		return 0, &NotOwnerError{Owner: owner, Addr: addr}
	}
	return n.hub.Admit(sc)
}

// Join adds this node to an existing fleet: it registers with the seed
// member (which hands back the full membership and synchronously migrates
// the sessions this node now owns), then announces itself to every other
// member, each of which does the same. When Join returns, the ring has
// converged and every session this node owns is running on it.
func (n *Node) Join(seedAddr string) error {
	ack, ackBuf, err := n.call(seedAddr, verbJoin, memberMsg{ID: n.id, Addr: n.Addr()}, nil)
	if err != nil {
		return fmt.Errorf("cluster: join %s: %w", seedAddr, err)
	}
	for id, addr := range ack.Members {
		if id != n.id {
			n.addMember(id, addr)
		}
	}
	// Announce to everyone else. The seed is announced to again, which is a
	// harmless no-op (membership add is idempotent and its rebalance has
	// nothing left to move).
	n.mu.Lock()
	peers := make(map[string]string, len(n.peers))
	for id, addr := range n.peers {
		peers[id] = addr
	}
	n.mu.Unlock()
	for id, addr := range peers {
		// One reuse buffer across the whole announce sweep.
		if _, ackBuf, err = n.call(addr, verbAnnounce, memberMsg{ID: n.id, Addr: n.Addr()}, ackBuf); err != nil {
			return fmt.Errorf("cluster: announce to %s (%s): %w", id, addr, err)
		}
	}
	// The joiner may already be serving sessions of its own (a daemon that
	// cold-started a fleet before joining): push away the ones the merged
	// ring assigns elsewhere, or they would double-decode once their owner
	// admits a redirected client.
	if err := n.rebalance(); err != nil {
		return fmt.Errorf("cluster: join: rebalance own sessions: %w", err)
	}
	n.logf("cluster: %s joined fleet of %d", n.id, n.ring.Len())
	return nil
}

// Drain migrates every local session to the owners the ring chooses without
// this node, then announces departure to every peer. The hub keeps serving
// until Drain returns, so sessions tick up to the instant each is captured.
// On migration failure the node re-enters the ring with its sessions
// restored locally and the error is returned.
func (n *Node) Drain() error {
	if n.ring.Len() <= 1 {
		return fmt.Errorf("cluster: nothing to drain to (single-member ring)")
	}
	n.ring.Remove(n.id)
	if err := n.rebalance(); err != nil {
		n.ring.Add(n.id)
		return fmt.Errorf("cluster: drain: %w", err)
	}
	t := clusterTel()
	t.members.Set(float64(n.ring.Len()))
	t.events.Record(obs.EvDrain, -1, 0, int64(n.ring.Len()), 0)
	n.mu.Lock()
	peers := make(map[string]string, len(n.peers))
	for id, addr := range n.peers {
		peers[id] = addr
	}
	n.mu.Unlock()
	var ackBuf []byte
	for id, addr := range peers {
		// A peer that misses the leave keeps a ghost member routing ~1/N of
		// its keys at a dead address, so retry transient failures before
		// giving up loudly.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if _, ackBuf, err = n.call(addr, verbLeave, memberMsg{ID: n.id, Addr: n.Addr()}, ackBuf); err == nil {
				break
			}
			time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
		}
		if err != nil {
			n.logf("cluster: leave notification to %s failed after retries: %v — its failure detector will reap this node once it stops heartbeating", id, err)
		}
	}
	n.logf("cluster: %s drained", n.id)
	return nil
}

// Snapshot is a point-in-time cluster view of one node.
type Snapshot struct {
	ID      string
	Addr    string
	Members []string
	// Sessions is the local hub's live session count; MigratedIn/Out count
	// sessions this node has received/handed off since start.
	Sessions    int
	MigratedIn  uint64
	MigratedOut uint64
}

// Snapshot reports membership and migration counters.
func (n *Node) Snapshot() Snapshot {
	return Snapshot{
		ID:          n.id,
		Addr:        n.Addr(),
		Members:     n.ring.Nodes(),
		Sessions:    n.hub.Sessions(),
		MigratedIn:  n.migratedIn.Load(),
		MigratedOut: n.migratedOut.Load(),
	}
}

// Status is the node's /statusz section: membership, each member's expected
// share of the key space, and the migration counters.
type Status struct {
	ID      string   `json:"id"`
	Addr    string   `json:"addr"`
	Members []string `json:"members"`
	// Shares maps member → owned fraction of the hash space (expected share
	// of routing keys); values sum to 1.
	Shares      map[string]float64 `json:"shares"`
	MigratedIn  uint64             `json:"migrated_in"`
	MigratedOut uint64             `json:"migrated_out"`
	// Standbys lists the members this node replicates to; ReplicaOf the
	// members whose warm-standby images this node holds; ReplicaSessions the
	// session records in those images.
	Standbys        []string `json:"standbys,omitempty"`
	ReplicaOf       []string `json:"replica_of,omitempty"`
	ReplicaSessions int      `json:"replica_sessions"`
}

// Status reports the node's ring view for the admin plane.
func (n *Node) Status() any {
	return Status{
		ID:              n.id,
		Addr:            n.Addr(),
		Members:         n.ring.Nodes(),
		Shares:          n.ring.Shares(),
		MigratedIn:      n.migratedIn.Load(),
		MigratedOut:     n.migratedOut.Load(),
		Standbys:        n.Standbys(),
		ReplicaOf:       n.replicas.sources(),
		ReplicaSessions: n.replicas.total(),
	}
}

// String renders the snapshot as a log line.
func (s Snapshot) String() string {
	return fmt.Sprintf("node %s (%s): %d members %v, %d sessions, migrated %d in / %d out",
		s.ID, s.Addr, len(s.Members), s.Members, s.Sessions, s.MigratedIn, s.MigratedOut)
}

func (n *Node) addMember(id, addr string) {
	n.mu.Lock()
	n.peers[id] = addr
	n.mu.Unlock()
	already := n.ring.Has(id)
	n.ring.Add(id)
	// Liveness accounting starts at membership, not at first beat: a member
	// that joins and never answers a single ping is reaped by deadline alone.
	n.det.Expect(id, time.Now())
	if !already {
		t := clusterTel()
		t.joins.Inc()
		t.members.Set(float64(n.ring.Len()))
		t.events.Record(obs.EvJoin, -1, 0, int64(n.ring.Len()), 0)
	}
}

func (n *Node) removeMember(id string) {
	n.mu.Lock()
	delete(n.peers, id)
	n.mu.Unlock()
	n.det.Forget(id)
	if n.ring.Has(id) {
		n.ring.Remove(id)
		t := clusterTel()
		t.leaves.Inc()
		t.members.Set(float64(n.ring.Len()))
		t.events.Record(obs.EvLeave, -1, 0, int64(n.ring.Len()), 0)
	}
}

// rebalance streams every local session whose ring owner is no longer this
// node to its new owner. Sessions with empty Tags have no routing key and
// are pinned local. The first failed transfer aborts with its sessions
// restored locally.
func (n *Node) rebalance() error {
	byOwner := map[string][]serve.SessionID{}
	for id, key := range n.hub.SessionKeys() {
		if key == "" {
			continue
		}
		owner, ok := n.ring.Owner(key)
		if !ok || owner == n.id {
			continue
		}
		byOwner[owner] = append(byOwner[owner], id)
	}
	// Deterministic transfer order keeps multi-owner rebalances reproducible.
	owners := make([]string, 0, len(byOwner))
	for owner := range byOwner {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	for _, owner := range owners {
		ids := byOwner[owner]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if err := n.migrateTo(owner, ids); err != nil {
			return err
		}
	}
	return nil
}

// migrateTo extracts the given sessions and streams them to owner as one
// checkpoint stream. Extraction is atomic per session (capture-and-remove
// under the shard lock), so the receiving node resumes each session exactly
// at the tick boundary it left this one. On failure the extracted sessions
// are restored locally so none is lost.
func (n *Node) migrateTo(owner string, ids []serve.SessionID) error {
	n.mu.Lock()
	addr, ok := n.peers[owner]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no address for member %s", owner)
	}
	recs := make([]checkpoint.SessionRecord, 0, len(ids))
	for _, id := range ids {
		if rec, ok := n.hub.ExtractSession(id); ok {
			recs = append(recs, *rec)
		}
	}
	if len(recs) == 0 {
		return nil
	}
	handled := 0
	state, err := n.migrationState(recs)
	if err == nil {
		handled, err = n.sendMigration(addr, state)
	}
	if err != nil {
		// Restore only what the receiver did not consume. Sessions it
		// already restored (or deliberately dropped) stay its; restoring
		// them here too would double-decode the subject on both nodes. A
		// transport failure with no ack reports handled=0 — the sender
		// restores everything, accepting a possible duplicate over a
		// certainly lost session.
		n.migratedOut.Add(uint64(handled))
		t := clusterTel()
		t.migrateFails.Inc()
		t.migrationsOut.Add(uint64(handled))
		n.restoreLocal(recs[handled:])
		return fmt.Errorf("cluster: migrate %d sessions to %s (%s): %w", len(recs), owner, addr, err)
	}
	n.migratedOut.Add(uint64(len(recs)))
	t := clusterTel()
	t.migrationsOut.Add(uint64(len(recs)))
	t.events.Record(obs.EvMigrateOut, -1, 0, int64(len(recs)), 0)
	n.logf("cluster: %s migrated %d sessions to %s", n.id, len(recs), owner)
	return nil
}

// migrationState wraps session records and the models they reference into a
// streamable FleetState.
func (n *Node) migrationState(recs []checkpoint.SessionRecord) (*checkpoint.FleetState, error) {
	cfg := n.hub.Config()
	clfs, macs := n.hub.Registry().Resolved()
	state := &checkpoint.FleetState{
		Manifest: checkpoint.Manifest{
			Hub: checkpoint.HubConfig{
				Shards:              cfg.Shards,
				MaxSessionsPerShard: cfg.MaxSessionsPerShard,
				TickHz:              cfg.TickHz,
				MaxIdleTicks:        cfg.MaxIdleTicks,
				LatencyWindow:       cfg.LatencyWindow,
			},
			// Counter baselines stay home: they are this node's serving
			// history, not the sessions'.
			Shards: make([]checkpoint.ShardCounters, cfg.Shards),
		},
		Models:    map[string]models.Classifier{},
		ModelMACs: map[string]int64{},
		Sessions:  recs,
	}
	for i := range recs {
		key := recs[i].ModelKey
		if _, done := state.Models[key]; done {
			continue
		}
		clf, ok := clfs[key]
		if !ok {
			return nil, fmt.Errorf("session %d references unresolved model %q", recs[i].ID, key)
		}
		state.Models[key] = clf
		state.ModelMACs[key] = macs[key]
	}
	return state, nil
}

// sendMigration performs one migrate exchange: verb, checkpoint stream, ack.
// It returns how many of the streamed sessions the receiver consumed, which
// on failure (ack carrying an error) tells the caller where to resume local
// restoration; without an ack at all it returns 0.
func (n *Node) sendMigration(addr string, state *checkpoint.FleetState) (int, error) {
	conn, err := n.dial("tcp", addr, ioTimeout)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(ioTimeout))
	if _, err := conn.Write([]byte{verbMigrate}); err != nil {
		return 0, err
	}
	if err := checkpoint.WriteStream(conn, state); err != nil {
		return 0, err
	}
	ack, _, err := readAck(conn, nil)
	if err != nil {
		return 0, err
	}
	if ack.Err != "" {
		return ack.Handled, fmt.Errorf("remote: %s", ack.Err)
	}
	return ack.Handled, nil
}

// restoreLocal re-admits extracted sessions after a failed transfer, using
// the rebind factory to attach fresh sources (the originals were closed on
// extraction; their buffered samples ride in the records).
func (n *Node) restoreLocal(recs []checkpoint.SessionRecord) {
	for i := range recs {
		rec := &recs[i]
		src, err := n.rebind(serve.RestoredSession{
			ID:           serve.SessionID(rec.ID),
			ModelKey:     rec.ModelKey,
			Tag:          rec.Tag,
			Channels:     rec.Channels,
			SampleRateHz: rec.SampleRateHz,
		})
		if err != nil || src == nil {
			n.logf("cluster: session %d lost in failed migration (rebind: %v)", rec.ID, err)
			continue
		}
		if _, err := n.hub.RestoreSession(rec, src); err != nil {
			n.logf("cluster: session %d lost in failed migration (restore: %v)", rec.ID, err)
		}
	}
}

// serve accepts inter-node connections until the listener closes.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handle(conn)
		}()
	}
}

// handle serves one request/response exchange.
func (n *Node) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(ioTimeout))
	var verb [1]byte
	if _, err := io.ReadFull(conn, verb[:]); err != nil {
		return
	}
	switch verb[0] {
	case verbJoin, verbAnnounce, verbLeave:
		msg, _, err := readMemberMsg(conn, nil)
		if err != nil {
			writeAck(conn, ackMsg{Err: err.Error()})
			return
		}
		switch verb[0] {
		case verbJoin:
			n.addMember(msg.ID, msg.Addr)
			// Hand over the joiner's sessions before acking, so a completed
			// Join means a converged fleet. A failed handover rolls the
			// joiner back out of the ring: an erroring Join must leave no
			// ghost member routing ~1/N of keys to a node that gave up.
			// (The failed transfer itself restored its sessions locally.)
			if err := n.rebalance(); err != nil {
				n.logf("cluster: rebalance toward %s: %v", msg.ID, err)
				n.removeMember(msg.ID)
				writeAck(conn, ackMsg{Err: err.Error()})
				return
			}
			members := map[string]string{n.id: n.Addr()}
			n.mu.Lock()
			for id, addr := range n.peers {
				members[id] = addr
			}
			n.mu.Unlock()
			writeAck(conn, ackMsg{Members: members})
		case verbAnnounce:
			n.addMember(msg.ID, msg.Addr)
			if err := n.rebalance(); err != nil {
				n.logf("cluster: rebalance toward %s: %v", msg.ID, err)
				n.removeMember(msg.ID)
				writeAck(conn, ackMsg{Err: err.Error()})
				return
			}
			writeAck(conn, ackMsg{})
		case verbLeave:
			// A clean leave also clears any replica image of the departing
			// member: it drained its sessions away, so promoting a stale
			// replica later would resurrect duplicates.
			n.removeMember(msg.ID)
			n.replicas.drop(msg.ID)
			clusterTel().replicaSessions.Set(float64(n.replicas.total()))
			writeAck(conn, ackMsg{})
		}
	case verbPing:
		msg, _, err := readMemberMsg(conn, nil)
		if err != nil {
			writeAck(conn, ackMsg{Err: err.Error()})
			return
		}
		if !n.ring.Has(msg.ID) {
			// A reaped member still pinging gets a loud refusal, not a beat:
			// its Drain-less restart must re-Join, not linger as a ghost.
			writeAck(conn, ackMsg{Err: fmt.Sprintf("unknown member %s", msg.ID)})
			return
		}
		n.det.Beat(msg.ID, time.Now())
		writeAck(conn, ackMsg{})
	case verbReplicate:
		// An inbound tail is the one long-lived connection, and closing the
		// listener does not close conns it already accepted — so tie the tail
		// to node shutdown, or Close would wait out a full read deadline on
		// every live tail.
		done := make(chan struct{})
		go func() {
			select {
			case <-n.stop:
				conn.Close()
			case <-done:
			}
		}()
		n.handleReplicate(conn)
		close(done)
	case verbLocate:
		msg, _, err := readLocateMsg(conn, nil)
		if err != nil {
			writeAck(conn, ackMsg{Err: err.Error()})
			return
		}
		owner, addr, local := n.Owner(msg.Key)
		ack := ackMsg{Owner: owner, OwnerAddr: addr}
		if local {
			if sa, ok := n.hub.SourceAddrByTag(msg.Key); ok {
				ack.Source = sa
			}
		}
		writeAck(conn, ack)
	case verbMigrate:
		handled, err := n.receiveMigration(conn)
		if err != nil {
			n.logf("cluster: inbound migration failed after %d sessions: %v", handled, err)
			writeAck(conn, ackMsg{Err: err.Error(), Handled: handled})
			return
		}
		writeAck(conn, ackMsg{Handled: handled})
	default:
		writeAck(conn, ackMsg{Err: fmt.Sprintf("unknown verb %d", verb[0])})
	}
}

// receiveMigration decodes one checkpoint stream and resumes its sessions on
// the local hub. Models the registry has not resolved yet are registered
// from the stream; a key the registry already holds keeps the local
// instance — in a fleet, one model key names identical weights everywhere
// (the registry trains deterministically or loads the same artifact), so the
// shared local copy serves migrated sessions bitwise-identically.
//
// The returned count is how many sessions were fully consumed (restored or
// deliberately dropped by the rebind factory), in stream order — valid even
// alongside an error, so the sender can restore exactly the remainder.
func (n *Node) receiveMigration(conn net.Conn) (int, error) {
	state, err := checkpoint.ReadStream(conn)
	if err != nil {
		return 0, err
	}
	reg := n.hub.Registry()
	for key := range state.Models {
		clf, macs := state.Models[key], state.ModelMACs[key]
		if _, _, err := reg.GetOrBuild(key, func() (models.Classifier, int64, error) {
			return clf, macs, nil
		}); err != nil {
			return 0, err
		}
	}
	restored, handled := 0, 0
	for i := range state.Sessions {
		rec := &state.Sessions[i]
		src, err := n.rebind(serve.RestoredSession{
			ID:           serve.SessionID(rec.ID),
			ModelKey:     rec.ModelKey,
			Tag:          rec.Tag,
			Channels:     rec.Channels,
			SampleRateHz: rec.SampleRateHz,
		})
		if err != nil {
			n.migratedIn.Add(uint64(restored))
			clusterTel().migrationsIn.Add(uint64(restored))
			return handled, fmt.Errorf("session %d rebind: %w", rec.ID, err)
		}
		if src == nil {
			n.logf("cluster: migrated session %d dropped by rebind factory", rec.ID)
			handled++
			continue
		}
		if _, err := n.hub.RestoreSession(rec, src); err != nil {
			n.migratedIn.Add(uint64(restored))
			clusterTel().migrationsIn.Add(uint64(restored))
			return handled, err
		}
		restored++
		handled++
	}
	n.migratedIn.Add(uint64(restored))
	t := clusterTel()
	t.migrationsIn.Add(uint64(restored))
	t.events.Record(obs.EvMigrateIn, -1, 0, int64(restored), 0)
	n.logf("cluster: %s accepted %d migrated sessions", n.id, restored)
	return handled, nil
}

// call performs one control exchange with a peer. buf is an optional reuse
// buffer for the ack payload (stream.ReadMsgBuf); loops over many peers pass
// one buffer across iterations and get the grown buffer back.
func (n *Node) call(addr string, verb byte, msg memberMsg, buf []byte) (*ackMsg, []byte, error) {
	return n.callTimeout(addr, verb, msg, buf, ioTimeout)
}

// callTimeout is call with an explicit exchange bound — heartbeats use a
// tight one so a dead peer costs pingTimeout, not a migration timeout.
func (n *Node) callTimeout(addr string, verb byte, msg memberMsg, buf []byte, timeout time.Duration) (*ackMsg, []byte, error) {
	conn, err := n.dial("tcp", addr, timeout)
	if err != nil {
		return nil, buf, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte{verb}); err != nil {
		return nil, buf, err
	}
	if err := writeMemberMsg(conn, msg); err != nil {
		return nil, buf, err
	}
	ack, buf, err := readAck(conn, buf)
	if err != nil {
		return nil, buf, err
	}
	if ack.Err != "" {
		return nil, buf, fmt.Errorf("remote: %s", ack.Err)
	}
	return ack, buf, nil
}
