package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cognitivearm/internal/board"
	"cognitivearm/internal/core"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
)

// sharedModel trains the fleet decoder exactly once for the whole test
// binary and hands every test the same classifier + normalisation constants,
// mirroring how a real fleet trains once and shares weights across nodes.
var sharedModelOnce struct {
	sync.Once
	clf  models.Classifier
	norm dataset.Stats
	err  error
}

func sharedModel(t testing.TB) (models.Classifier, dataset.Stats) {
	t.Helper()
	o := &sharedModelOnce
	o.Do(func() {
		cfg := core.DefaultConfig()
		cfg.SubjectIDs = []int{0}
		cfg.SessionSeconds = 24
		p, err := core.New(cfg)
		if err != nil {
			o.err = err
			return
		}
		spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 20, MaxDepth: 10}
		clf, _, err := p.TrainModel(spec)
		if err != nil {
			o.err = err
			return
		}
		o.clf, o.norm = clf, p.NormFor(0)
	})
	if o.err != nil {
		t.Fatal(o.err)
	}
	return o.clf, o.norm
}

// registryWith returns a registry holding the shared classifier under "rf".
func registryWith(clf models.Classifier) *serve.Registry {
	reg := serve.NewRegistry()
	reg.GetOrBuild("rf", func() (models.Classifier, int64, error) { return clf, 0, nil })
	return reg
}

func newHub(t testing.TB, reg *serve.Registry) *serve.Hub {
	t.Helper()
	hub, err := serve.NewHub(serve.Config{Shards: 2, MaxSessionsPerShard: 8, TickHz: 15, LatencyWindow: 32}, reg)
	if err != nil {
		t.Fatal(err)
	}
	return hub
}

// scriptSource replays a fixed pre-generated stream — the deterministic
// stand-in for a live subject that lets a migrated session and an
// uninterrupted reference consume byte-identical input.
type scriptSource struct {
	samples []stream.Sample
	pos     int
}

func (s *scriptSource) Read(max int) []stream.Sample {
	n := len(s.samples) - s.pos
	if max > 0 && max < n {
		n = max
	}
	out := s.samples[s.pos : s.pos+n : s.pos+n]
	s.pos += n
	return out
}

func scriptedEEG(subject int, seed uint64, n int) []stream.Sample {
	gen := eeg.NewGenerator(eeg.NewSubject(subject), seed)
	out := make([]stream.Sample, n)
	for i := range out {
		raw := gen.Next(eeg.Action((i / 90) % 3))
		out[i] = stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)}
	}
	return out
}

// dropRebind is the factory for nodes that should never need to rebind.
func dropRebind(serve.RestoredSession) (serve.Source, error) { return nil, nil }

// keysByOwner finds routing keys a {node-a, node-b} ring assigns to each
// member, so tests can force (or forbid) migration deterministically.
func keysByOwner(t *testing.T) (toB []string, toA []string) {
	t.Helper()
	scratch := NewRing(0)
	scratch.Add("node-a")
	scratch.Add("node-b")
	for i := 0; len(toB) < 2 || len(toA) < 2; i++ {
		if i > 1000 {
			t.Fatal("ring never produced keys for both members")
		}
		k := fmt.Sprintf("subject:%d", i)
		if o, _ := scratch.Owner(k); o == "node-b" {
			toB = append(toB, k)
		} else {
			toA = append(toA, k)
		}
	}
	return toB, toA
}

// stripID erases the node-local session ID so stats from a migrated session
// (which gets a fresh ID on its new node) compare against the reference.
func stripID(st serve.SessionStats) serve.SessionStats {
	st.ID = 0
	return st
}

// tagStats snapshots one hub's per-tag session stats.
func tagStats(t *testing.T, hub *serve.Hub, want int) map[string]serve.SessionStats {
	t.Helper()
	out := map[string]serve.SessionStats{}
	for id, tag := range hub.SessionKeys() {
		st, ok := hub.Session(id)
		if !ok {
			t.Fatalf("session %d (%s) vanished", id, tag)
		}
		out[tag] = stripID(st)
	}
	if len(out) != want {
		t.Fatalf("hub holds %d tagged sessions, want %d", len(out), want)
	}
	return out
}

// TestTwoNodeMigrationBitwiseIdentical is the cluster acceptance test: a
// node joins mid-serve, live sessions (one mid-window script-fed, one with
// most of its stream still pending in a source ring) migrate to it over real
// TCP as streamed checkpoint records — including the model, which the
// joining node's empty registry learns from the stream — and every
// subsequent per-tick decode is bitwise-identical to an uninterrupted
// single-hub reference consuming the same input.
func TestTwoNodeMigrationBitwiseIdentical(t *testing.T) {
	clf, norm := sharedModel(t)
	const (
		totalSamples = 700
		totalTicks   = 70
		migrateTick  = 23 // mid-window: fractional sample accumulator in play
	)
	toB, toA := keysByOwner(t)
	keyScript, keyRing, keyStay := toB[0], toB[1], toA[0]

	streams := map[string][]stream.Sample{
		keyScript: scriptedEEG(0, 41, totalSamples),
		keyRing:   scriptedEEG(0, 97, totalSamples),
		keyStay:   scriptedEEG(0, 7, totalSamples),
	}
	tags := []string{keyScript, keyRing, keyStay}
	newRing := func(samples []stream.Sample) *stream.Ring {
		ring := stream.NewRing(totalSamples + 1)
		for _, smp := range samples {
			ring.Push(smp)
		}
		return ring
	}
	admitAll := func(t *testing.T, admit func(serve.SessionConfig) (serve.SessionID, error), scripts map[string]*scriptSource) {
		t.Helper()
		for _, tag := range tags {
			var src serve.Source
			if tag == keyRing {
				src = serve.RingSource{Ring: newRing(streams[tag])}
			} else {
				s := &scriptSource{samples: streams[tag]}
				scripts[tag] = s
				src = s
			}
			if _, err := admit(serve.SessionConfig{ModelKey: "rf", Source: src, Norm: norm, Tag: tag}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: one uninterrupted hub over the full streams.
	ref := newHub(t, registryWith(clf))
	defer ref.Stop()
	admitAll(t, ref.Admit, map[string]*scriptSource{})
	want := make([]map[string]serve.SessionStats, 0, totalTicks)
	for i := 0; i < totalTicks; i++ {
		ref.TickAll()
		want = append(want, tagStats(t, ref, len(tags)))
	}

	// Cluster: node A serves alone, then node B joins mid-serve.
	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	scripts := map[string]*scriptSource{}
	admitAll(t, nodeA.Admit, scripts)

	got := make([]map[string]serve.SessionStats, 0, totalTicks)
	for i := 0; i < migrateTick; i++ {
		hubA.TickAll()
		got = append(got, tagStats(t, hubA, len(tags)))
	}

	// Node B starts with an EMPTY registry: the model must arrive in the
	// migration stream itself.
	hubB := newHub(t, serve.NewRegistry())
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Logf: t.Logf,
		Rebind: func(rec serve.RestoredSession) (serve.Source, error) {
			switch rec.Tag {
			case keyScript:
				// Resume the feed exactly where node A's dead source stopped.
				return &scriptSource{samples: streams[keyScript][scripts[keyScript].pos:]}, nil
			case keyRing:
				// The buffered remainder rides in as pending samples.
				return serve.RingSource{Ring: stream.NewRing(8)}, nil
			default:
				return nil, fmt.Errorf("unexpected migrated tag %q", rec.Tag)
			}
		}}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	if n := hubA.Sessions(); n != 1 {
		t.Fatalf("node A holds %d sessions after join, want 1", n)
	}
	if n := hubB.Sessions(); n != 2 {
		t.Fatalf("node B holds %d sessions after join, want 2", n)
	}
	if snap := nodeB.Snapshot(); snap.MigratedIn != 2 {
		t.Fatalf("node B migrated-in counter = %d, want 2", snap.MigratedIn)
	}
	if _, _, ok := hubB.Registry().Get("rf"); !ok {
		t.Fatal("model did not arrive with the migration stream")
	}

	for i := migrateTick; i < totalTicks; i++ {
		hubA.TickAll()
		hubB.TickAll()
		merged := tagStats(t, hubA, 1)
		for tag, st := range tagStats(t, hubB, 2) {
			merged[tag] = st
		}
		got = append(got, merged)
	}

	for i := range want {
		for _, tag := range tags {
			if !reflect.DeepEqual(got[i][tag], want[i][tag]) {
				t.Fatalf("tick %d session %q diverged after migration:\n got %+v\nwant %+v",
					i, tag, got[i][tag], want[i][tag])
			}
		}
	}
}

// TestAdmitRouting: a node refuses keys the ring routes elsewhere, naming
// the owner, and accepts its own.
func TestAdmitRouting(t *testing.T) {
	clf, norm := sharedModel(t)
	toB, toA := keysByOwner(t)

	hubA, hubB := newHub(t, registryWith(clf)), newHub(t, registryWith(clf))
	defer hubA.Stop()
	defer hubB.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: dropRebind}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	sc := serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: toB[0]}
	_, err = nodeA.Admit(sc)
	var notOwner *NotOwnerError
	if !errors.As(err, &notOwner) {
		t.Fatalf("admitting a foreign key returned %v, want NotOwnerError", err)
	}
	if notOwner.Owner != "node-b" || notOwner.Addr != nodeB.Addr() {
		t.Fatalf("redirect points at %s (%s), want node-b (%s)", notOwner.Owner, notOwner.Addr, nodeB.Addr())
	}
	if _, err := nodeB.Admit(sc); err != nil {
		t.Fatal(err)
	}
	sc.Tag = toA[0]
	sc.Source = &scriptSource{}
	if _, err := nodeA.Admit(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm}); err == nil {
		t.Fatal("cluster admit accepted a session without a routing key")
	}
}

// TestJoinRebalancesJoinerSessions: a node that cold-started its own fleet
// and then joins must push away the sessions the merged ring assigns to
// existing members — join rebalances both directions, not just toward the
// joiner.
func TestJoinRebalancesJoinerSessions(t *testing.T) {
	clf, norm := sharedModel(t)
	toB, toA := keysByOwner(t)

	hubA, hubB := newHub(t, registryWith(clf)), newHub(t, registryWith(clf))
	defer hubA.Stop()
	defer hubB.Stop()
	rebind := func(rec serve.RestoredSession) (serve.Source, error) {
		return &scriptSource{}, nil
	}
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: rebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: rebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	// B serves alone, so it legitimately owns every key — including ones
	// the merged ring will hand to A.
	for _, tag := range []string{toA[0], toA[1], toB[0]} {
		if _, err := nodeB.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	if n := hubB.Sessions(); n != 1 {
		t.Fatalf("joiner kept %d sessions, want 1 (only its own key)", n)
	}
	if n := hubA.Sessions(); n != 2 {
		t.Fatalf("existing member received %d sessions, want 2", n)
	}
	keys := hubA.SessionKeys()
	gotTags := map[string]bool{}
	for _, tag := range keys {
		gotTags[tag] = true
	}
	if !gotTags[toA[0]] || !gotTags[toA[1]] {
		t.Fatalf("node A holds %v, want its own keys %v", keys, toA[:2])
	}
}

// TestDrainHandsOffEverySession: draining a node moves its whole fleet to
// the surviving member (the kill-one-node runbook), which keeps serving it.
func TestDrainHandsOffEverySession(t *testing.T) {
	clf, norm := sharedModel(t)

	boardRebind := func(rec serve.RestoredSession) (serve.Source, error) {
		b := board.NewSyntheticCyton(eeg.NewSubject(0), 1000+uint64(rec.ID), false)
		if err := b.Start(); err != nil {
			return nil, err
		}
		return b, nil
	}
	hubA, hubB := newHub(t, registryWith(clf)), newHub(t, registryWith(clf))
	defer hubA.Stop()
	defer hubB.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: boardRebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: boardRebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	total := 0
	for i := 0; i < 6; i++ {
		tag := fmt.Sprintf("subject:%d", i)
		sc := serve.SessionConfig{ModelKey: "rf", Norm: norm, Tag: tag}
		node := nodeA
		if owner, _, local := nodeA.Owner(tag); !local {
			if owner != "node-b" {
				t.Fatalf("unexpected owner %s", owner)
			}
			node = nodeB
		}
		src, err := boardRebind(serve.RestoredSession{ID: serve.SessionID(i)})
		if err != nil {
			t.Fatal(err)
		}
		sc.Source = src
		if _, err := node.Admit(sc); err != nil {
			t.Fatal(err)
		}
		total++
	}
	for i := 0; i < 10; i++ {
		hubA.TickAll()
		hubB.TickAll()
	}

	if err := nodeA.Drain(); err != nil {
		t.Fatal(err)
	}
	if n := hubA.Sessions(); n != 0 {
		t.Fatalf("drained node still holds %d sessions", n)
	}
	if n := hubB.Sessions(); n != total {
		t.Fatalf("surviving node holds %d sessions, want %d", n, total)
	}
	if got := nodeB.Ring().Nodes(); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("survivor's ring is %v, want [node-b]", got)
	}
	// The survivor keeps decoding the whole fleet.
	before := hubB.Snapshot().Inferences
	for i := 0; i < 20; i++ {
		hubB.TickAll()
	}
	if after := hubB.Snapshot().Inferences; after <= before {
		t.Fatalf("survivor stopped decoding after takeover (%d → %d inferences)", before, after)
	}
	// A second drain has nowhere to go.
	if err := nodeB.Drain(); err == nil {
		t.Fatal("single-member drain did not error")
	}
}

// TestClusterUnderLoadRace is the -race workout: a node joins and another
// drains while both hubs run real paced shard loops, so membership changes,
// migrations and ticks interleave freely.
func TestClusterUnderLoadRace(t *testing.T) {
	clf, norm := sharedModel(t)
	boardRebind := func(rec serve.RestoredSession) (serve.Source, error) {
		b := board.NewSyntheticCyton(eeg.NewSubject(0), 2000+uint64(rec.ID), false)
		if err := b.Start(); err != nil {
			return nil, err
		}
		return b, nil
	}
	mkHub := func(reg *serve.Registry) *serve.Hub {
		hub, err := serve.NewHub(serve.Config{Shards: 2, MaxSessionsPerShard: 16, TickHz: 200, LatencyWindow: 64}, reg)
		if err != nil {
			t.Fatal(err)
		}
		return hub
	}
	hubA := mkHub(registryWith(clf))
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: boardRebind}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	for i := 0; i < 8; i++ {
		b := board.NewSyntheticCyton(eeg.NewSubject(0), uint64(i)+1, false)
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := nodeA.Admit(serve.SessionConfig{
			ModelKey: "rf", Source: b, Norm: norm, Tag: fmt.Sprintf("subject:%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	hubA.Start()

	hubB := mkHub(registryWith(clf))
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: boardRebind}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	hubB.Start()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // serve across both nodes for a while
	if err := nodeA.Drain(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := hubB.Sessions(); n != 8 {
		t.Fatalf("survivor holds %d sessions, want 8", n)
	}
	hubA.Stop()
	hubB.Stop()
}
