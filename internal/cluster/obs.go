package cluster

import (
	"sync"

	"cognitivearm/internal/obs"
)

// Cluster telemetry: membership and migration traffic on the process-global
// obs registry and event ring. Cluster operations are control-plane rare
// (joins, drains, rebalances), so instrumentation is unconditional. Processes
// hosting several nodes (tests, loadgen cluster mode) share the series — the
// counters aggregate across nodes and the members gauge tracks the ring of
// whichever node last changed membership, which coincide in the one-node-per-
// process production shape.

type clusterObs struct {
	members       *obs.Gauge
	migrationsIn  *obs.Counter
	migrationsOut *obs.Counter
	migrateFails  *obs.Counter
	joins         *obs.Counter
	leaves        *obs.Counter

	// High-availability plane: heartbeat outcomes, detector reaps, failover
	// promotions, and the replication tail's traffic and health.
	hbOK             *obs.Counter
	hbFail           *obs.Counter
	reaps            *obs.Counter
	failovers        *obs.Counter
	promoted         *obs.Counter
	replBatchesOut   *obs.Counter
	replBatchesIn    *obs.Counter
	replRecords      *obs.Counter
	replFails        *obs.Counter
	replBackoffSkips *obs.Counter
	replLag          *obs.Gauge
	replicaSessions  *obs.Gauge

	events *obs.EventRing
}

var (
	clusterTelOnce sync.Once
	clusterTelVal  *clusterObs
)

// clusterTel returns the lazily-built cluster telemetry holder. It never
// returns nil and every handle field is populated from the default
// registry, so derived uses need no guard.
//
//cogarm:obsnonnil
func clusterTel() *clusterObs {
	clusterTelOnce.Do(func() {
		reg := obs.Default()
		clusterTelVal = &clusterObs{
			members: reg.Gauge("cogarm_cluster_members",
				"Ring members in this node's membership view."),
			migrationsIn: reg.Counter("cogarm_cluster_migrated_sessions_total",
				"Sessions moved by live migration, by direction.",
				obs.L("direction", "in")),
			migrationsOut: reg.Counter("cogarm_cluster_migrated_sessions_total",
				"Sessions moved by live migration, by direction.",
				obs.L("direction", "out")),
			migrateFails: reg.Counter("cogarm_cluster_migration_failures_total",
				"Migration exchanges that failed (sender side; unconsumed sessions were restored locally)."),
			joins: reg.Counter("cogarm_cluster_member_joins_total",
				"Members added to this node's ring (own join included)."),
			leaves: reg.Counter("cogarm_cluster_member_leaves_total",
				"Members removed from this node's ring (own drain included)."),
			hbOK: reg.Counter("cogarm_cluster_heartbeats_total",
				"Heartbeat exchanges by result.",
				obs.L("result", "ok")),
			hbFail: reg.Counter("cogarm_cluster_heartbeats_total",
				"Heartbeat exchanges by result.",
				obs.L("result", "fail")),
			reaps: reg.Counter("cogarm_cluster_member_reaps_total",
				"Members removed by the failure detector (missed heartbeats), ghost members from failed leave notifications included."),
			failovers: reg.Counter("cogarm_cluster_failovers_total",
				"Failovers performed by this node (replica sets promoted to live serving)."),
			promoted: reg.Counter("cogarm_cluster_promoted_sessions_total",
				"Replica sessions promoted to live serving on failover."),
			replBatchesOut: reg.Counter("cogarm_cluster_replication_batches_total",
				"Replication tail batches, by direction.",
				obs.L("direction", "out")),
			replBatchesIn: reg.Counter("cogarm_cluster_replication_batches_total",
				"Replication tail batches, by direction.",
				obs.L("direction", "in")),
			replRecords: reg.Counter("cogarm_cluster_replicated_session_records_total",
				"Dirty session records shipped on replication tails (sender side)."),
			replFails: reg.Counter("cogarm_cluster_replication_failures_total",
				"Replication batches that failed (sender side; the tail reconnects and full-resyncs)."),
			replBackoffSkips: reg.Counter("cogarm_cluster_replication_backoff_skips_total",
				"Replication sweeps that skipped a standby still inside its dial-backoff window."),
			replLag: reg.Gauge("cogarm_cluster_replication_lag_seconds",
				"Seconds since every standby last acknowledged a replication batch (0 = fully replicated this interval)."),
			replicaSessions: reg.Gauge("cogarm_cluster_replica_sessions",
				"Warm-standby session records this node holds for other members."),
			events: obs.DefaultEvents(),
		}
	})
	return clusterTelVal
}
