package cluster

import (
	"sync"

	"cognitivearm/internal/obs"
)

// Cluster telemetry: membership and migration traffic on the process-global
// obs registry and event ring. Cluster operations are control-plane rare
// (joins, drains, rebalances), so instrumentation is unconditional. Processes
// hosting several nodes (tests, loadgen cluster mode) share the series — the
// counters aggregate across nodes and the members gauge tracks the ring of
// whichever node last changed membership, which coincide in the one-node-per-
// process production shape.

type clusterObs struct {
	members       *obs.Gauge
	migrationsIn  *obs.Counter
	migrationsOut *obs.Counter
	migrateFails  *obs.Counter
	joins         *obs.Counter
	leaves        *obs.Counter
	events        *obs.EventRing
}

var (
	clusterTelOnce sync.Once
	clusterTelVal  *clusterObs
)

// clusterTel returns the lazily-built cluster telemetry holder. It never
// returns nil and every handle field is populated from the default
// registry, so derived uses need no guard.
//
//cogarm:obsnonnil
func clusterTel() *clusterObs {
	clusterTelOnce.Do(func() {
		reg := obs.Default()
		clusterTelVal = &clusterObs{
			members: reg.Gauge("cogarm_cluster_members",
				"Ring members in this node's membership view."),
			migrationsIn: reg.Counter("cogarm_cluster_migrated_sessions_total",
				"Sessions moved by live migration, by direction.",
				obs.L("direction", "in")),
			migrationsOut: reg.Counter("cogarm_cluster_migrated_sessions_total",
				"Sessions moved by live migration, by direction.",
				obs.L("direction", "out")),
			migrateFails: reg.Counter("cogarm_cluster_migration_failures_total",
				"Migration exchanges that failed (sender side; unconsumed sessions were restored locally)."),
			joins: reg.Counter("cogarm_cluster_member_joins_total",
				"Members added to this node's ring (own join included)."),
			leaves: reg.Counter("cogarm_cluster_member_leaves_total",
				"Members removed from this node's ring (own drain included)."),
			events: obs.DefaultEvents(),
		}
	})
	return clusterTelVal
}
