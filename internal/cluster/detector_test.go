package cluster

import (
	"testing"
	"time"
)

// Detector unit tests. Every time value is an explicit instant — the
// detector holds no clock — so each case states "after exactly this much
// silence" as an argument, never as a sleep.

func TestDetectorFloorGatesSuspicion(t *testing.T) {
	d := newDetector(2*time.Second, 8)
	t0 := time.Unix(1000, 0)
	d.Expect("peer", t0)
	// Regular fast beats: mean interval 100 ms.
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(100 * time.Millisecond)
		d.Beat("peer", now)
	}
	// 1.5 s of silence scores phi = 15 — far past the threshold — but stays
	// under the 2 s floor: one stall on a fast-beating peer must not reap.
	if phi := d.Phi("peer", now.Add(1500*time.Millisecond)); phi < 8 {
		t.Fatalf("phi after 1.5s of silence = %.1f, expected to exceed the threshold", phi)
	}
	if got := d.Suspects(now.Add(1500 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("suspected %v before the hard floor", got)
	}
	// Past the floor, both conditions hold.
	if got := d.Suspects(now.Add(2 * time.Second)); len(got) != 1 || got[0] != "peer" {
		t.Fatalf("suspects past the floor = %v, want [peer]", got)
	}
}

func TestDetectorNoHistoryFallsBackToFloor(t *testing.T) {
	d := newDetector(2*time.Second, 8)
	t0 := time.Unix(1000, 0)
	// Expected at membership time, never beat once: the fallback mean
	// (floor/threshold) makes suspicion begin exactly at the floor.
	d.Expect("ghost", t0)
	if got := d.Suspects(t0.Add(2*time.Second - time.Millisecond)); len(got) != 0 {
		t.Fatalf("suspected %v a hair before the floor", got)
	}
	if got := d.Suspects(t0.Add(2 * time.Second)); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("suspects at the floor = %v, want [ghost]", got)
	}
}

func TestDetectorSlowBeaterToleratesProportionalSilence(t *testing.T) {
	d := newDetector(2*time.Second, 8)
	t0 := time.Unix(1000, 0)
	now := t0
	d.Expect("slow", now)
	// Mean interval 1 s: at 4 s of silence, phi = 4 — past the floor but
	// under the threshold, so a slow-beating peer is given proportionally
	// more slack than a fast one.
	for i := 0; i < 8; i++ {
		now = now.Add(time.Second)
		d.Beat("slow", now)
	}
	if got := d.Suspects(now.Add(4 * time.Second)); len(got) != 0 {
		t.Fatalf("suspected %v at phi 4 with threshold 8", got)
	}
	if got := d.Suspects(now.Add(8 * time.Second)); len(got) != 1 {
		t.Fatalf("suspects at phi 8 = %v, want [slow]", got)
	}
}

func TestDetectorWindowAdaptsToRetunedInterval(t *testing.T) {
	d := newDetector(100*time.Millisecond, 8)
	t0 := time.Unix(1000, 0)
	now := t0
	d.Expect("peer", now)
	// Long-interval history first…
	for i := 0; i < detectorWindow; i++ {
		now = now.Add(time.Second)
		d.Beat("peer", now)
	}
	slowPhi := d.Phi("peer", now.Add(2*time.Second))
	// …then the operator retunes to 100 ms beats. Once the window has
	// cycled, the same absolute silence scores ten times the suspicion.
	for i := 0; i < detectorWindow; i++ {
		now = now.Add(100 * time.Millisecond)
		d.Beat("peer", now)
	}
	fastPhi := d.Phi("peer", now.Add(2*time.Second))
	if fastPhi < slowPhi*9 {
		t.Fatalf("phi did not adapt to the retuned interval: slow %.2f, fast %.2f", slowPhi, fastPhi)
	}
}

func TestDetectorForgetStopsTracking(t *testing.T) {
	d := newDetector(time.Second, 8)
	t0 := time.Unix(1000, 0)
	d.Expect("gone", t0)
	d.Forget("gone")
	if got := d.Suspects(t0.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("forgotten peer still suspected: %v", got)
	}
	if phi := d.Phi("gone", t0.Add(time.Hour)); phi != 0 {
		t.Fatalf("forgotten peer scores phi %.1f, want 0", phi)
	}
}

func TestDetectorSuspectsSorted(t *testing.T) {
	d := newDetector(time.Second, 8)
	t0 := time.Unix(1000, 0)
	for _, p := range []string{"c", "a", "b"} {
		d.Expect(p, t0)
	}
	got := d.Suspects(t0.Add(time.Hour))
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("suspects = %v, want sorted [a b c]", got)
	}
}
