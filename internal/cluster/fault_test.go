package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"cognitivearm/internal/cluster/faultnet"
	"cognitivearm/internal/serve"
)

// Migration and membership edge cases under injected faults. All faults are
// byte- or dial-count-budgeted (faultnet), so every test cuts, refuses or
// drops at the same point on every run — no timing races.

// TestMigrationCutMidStreamRestoresEverySession: the join-handover connection
// is hard-cut mid-record at an exact byte offset (a crashed receiver as seen
// from the sender). The join must fail, the sender must restore every
// extracted session locally, and both rings must roll back to singletons —
// a failed join leaves no ghost member and loses no session.
func TestMigrationCutMidStreamRestoresEverySession(t *testing.T) {
	clf, norm := sharedModel(t)
	toB, _ := keysByOwner(t)

	nw := faultnet.NewNetwork(7)
	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Logf: t.Logf, Dial: nw.Dial,
		Rebind: func(serve.RestoredSession) (serve.Source, error) { return &scriptSource{}, nil },
	}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	for _, tag := range toB[:2] {
		if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}

	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: dropRebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	// The migration stream toward B dies after exactly 1000 bytes: past the
	// verb, header and manifest, inside the model record — a torn frame the
	// receiver's CRC layer rejects without restoring anything.
	nw.Plan(nodeB.Addr()).CutWritesAfter(1000)
	err = nodeB.Join(nodeA.Addr())
	if err == nil {
		t.Fatal("join over a cut migration stream reported success")
	}
	if n := hubA.Sessions(); n != 2 {
		t.Fatalf("sender holds %d sessions after failed handover, want all 2 restored", n)
	}
	if n := hubB.Sessions(); n != 0 {
		t.Fatalf("receiver holds %d sessions from a torn stream, want 0", n)
	}
	gotTags := map[string]bool{}
	for _, tag := range hubA.SessionKeys() {
		gotTags[tag] = true
	}
	if !gotTags[toB[0]] || !gotTags[toB[1]] {
		t.Fatalf("sender restored tags %v, want both of %v", hubA.SessionKeys(), toB[:2])
	}
	if got := nodeA.Ring().Nodes(); len(got) != 1 || got[0] != "node-a" {
		t.Fatalf("sender's ring is %v after rollback, want [node-a]", got)
	}
	if got := nodeB.Ring().Nodes(); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("joiner's ring is %v after rollback, want [node-b]", got)
	}
}

// TestMigrationPartialRollbackExactRemainder: the receiver consumes the
// first streamed session, then its rebind factory fails. Its ack reports
// exactly how many sessions it handled, and the sender restores exactly the
// remainder — the session the receiver kept must not come back to life on
// the sender, and the one it rejected must not be lost.
func TestMigrationPartialRollbackExactRemainder(t *testing.T) {
	clf, norm := sharedModel(t)
	toB, _ := keysByOwner(t)

	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Logf: t.Logf,
		Rebind: func(serve.RestoredSession) (serve.Source, error) { return &scriptSource{}, nil },
	}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	// Admission order fixes session IDs, and migration streams sessions in ID
	// order — so toB[0] is handled first, and the injected rebind failure
	// lands deterministically on toB[1].
	for _, tag := range toB[:2] {
		if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}

	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	rebinds := 0
	nodeB, err := NewNode(Config{ID: "node-b", Logf: t.Logf,
		Rebind: func(rec serve.RestoredSession) (serve.Source, error) {
			rebinds++
			if rebinds > 1 {
				return nil, fmt.Errorf("injected rebind failure for %q", rec.Tag)
			}
			return &scriptSource{}, nil
		},
	}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	err = nodeB.Join(nodeA.Addr())
	if err == nil || !strings.Contains(err.Error(), "injected rebind failure") {
		t.Fatalf("join returned %v, want the injected rebind failure", err)
	}
	if n := hubB.Sessions(); n != 1 {
		t.Fatalf("receiver holds %d sessions, want exactly the 1 it acked", n)
	}
	if n := hubA.Sessions(); n != 1 {
		t.Fatalf("sender holds %d sessions, want exactly the 1 unhandled remainder", n)
	}
	var bTags, aTags []string
	for _, tag := range hubB.SessionKeys() {
		bTags = append(bTags, tag)
	}
	for _, tag := range hubA.SessionKeys() {
		aTags = append(aTags, tag)
	}
	if len(bTags) != 1 || bTags[0] != toB[0] {
		t.Fatalf("receiver kept %v, want the first streamed session %q", bTags, toB[0])
	}
	if len(aTags) != 1 || aTags[0] != toB[1] {
		t.Fatalf("sender restored %v, want the rejected remainder %q", aTags, toB[1])
	}
}

// TestAnnounceFailureRollsBackAnnouncedMember: a joiner announces itself to
// an existing member whose handover toward it is cut mid-stream. That member
// must ack an error and roll the joiner back out of its ring with every
// session restored — the announce path has the same no-ghost guarantee as
// the join path.
func TestAnnounceFailureRollsBackAnnouncedMember(t *testing.T) {
	clf, norm := sharedModel(t)

	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind, Logf: t.Logf}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	nwB := faultnet.NewNetwork(11)
	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Logf: t.Logf, Dial: nwB.Dial,
		Rebind: func(serve.RestoredSession) (serve.Source, error) { return &scriptSource{}, nil },
	}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	// Keys B owns now but node-c will own once it joins: B's announce-time
	// handover toward C is the connection the fault plan cuts.
	scratch2, scratch3 := NewRing(0), NewRing(0)
	scratch2.Add("node-a")
	scratch2.Add("node-b")
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		scratch3.Add(id)
	}
	var keys []string
	for i := 0; len(keys) < 2; i++ {
		if i > 10000 {
			t.Fatal("ring never produced node-b→node-c keys")
		}
		k := fmt.Sprintf("subject:%d", i)
		if o2, _ := scratch2.Owner(k); o2 != "node-b" {
			continue
		}
		if o3, _ := scratch3.Owner(k); o3 == "node-c" {
			keys = append(keys, k)
		}
	}
	for _, tag := range keys {
		if _, err := nodeB.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}
	before := hubB.Sessions()

	hubC := newHub(t, registryWith(clf))
	defer hubC.Stop()
	nodeC, err := NewNode(Config{ID: "node-c", Rebind: dropRebind, Logf: t.Logf}, hubC)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeC.Close()
	nwB.Plan(nodeC.Addr()).CutWritesAfter(1000)

	if err := nodeC.Join(nodeA.Addr()); err == nil {
		t.Fatal("join reported success although a member's handover toward the joiner was cut")
	}
	if nodeB.Ring().Has("node-c") {
		t.Fatalf("node B kept the joiner after a failed handover; ring = %v", nodeB.Ring().Nodes())
	}
	if n := hubB.Sessions(); n != before {
		t.Fatalf("node B holds %d sessions after rollback, want %d", n, before)
	}
	if n := hubC.Sessions(); n != 0 {
		t.Fatalf("joiner holds %d sessions from a torn stream, want 0", n)
	}
}

// TestDrainGhostReapedByDetector is satellite coverage for the drain
// escape hatch: when a draining node's leave notifications are lost, the
// survivor keeps a ghost member — and the failure detector, not an operator,
// reaps it. The ghost's stale replica image must NOT resurrect sessions that
// already migrated over during the drain.
func TestDrainGhostReapedByDetector(t *testing.T) {
	clf, norm := sharedModel(t)
	_, toA := keysByOwner(t)

	nw := faultnet.NewNetwork(3)
	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Replicas: 1, Logf: t.Logf, Dial: nw.Dial,
		Rebind: func(serve.RestoredSession) (serve.Source, error) { return &scriptSource{}, nil },
	}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Logf: t.Logf,
		Rebind: func(serve.RestoredSession) (serve.Source, error) { return &scriptSource{}, nil },
	}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}

	for _, tag := range toA[:2] {
		if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{samples: scriptedEEG(0, 13, 200)}, Norm: norm, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		hubA.TickAll()
		hubB.TickAll()
	}
	// B now holds a warm replica image of A's two sessions.
	if err := nodeA.ReplicateOnce(); err != nil {
		t.Fatal(err)
	}
	if st := nodeB.Status().(Status); st.ReplicaSessions != 2 {
		t.Fatalf("standby holds %d replica sessions, want 2", st.ReplicaSessions)
	}

	tel := clusterTel()
	reapsBefore := tel.reaps.Value()
	promotedBefore := tel.promoted.Value()

	// One more dial toward B is allowed — the drain handover — and every
	// dial after that (the leave notifications) is refused. The drain
	// succeeds, but B never hears the leave and keeps a ghost node-a.
	nw.Plan(nodeB.Addr()).AllowDials(1)
	if err := nodeA.Drain(); err != nil {
		t.Fatal(err)
	}
	if n := hubA.Sessions(); n != 0 {
		t.Fatalf("drained node still holds %d sessions", n)
	}
	if n := hubB.Sessions(); n != 2 {
		t.Fatalf("survivor holds %d sessions after drain, want 2", n)
	}
	if !nodeB.Ring().Has("node-a") {
		t.Fatal("test premise broken: the lost leave notification should leave a ghost member")
	}

	// The detector reaps the ghost on silence alone — no operator action.
	reaped := nodeB.DetectFailures(time.Now().Add(time.Hour))
	if len(reaped) != 1 || reaped[0] != "node-a" {
		t.Fatalf("DetectFailures reaped %v, want the ghost [node-a]", reaped)
	}
	if got := nodeB.Ring().Nodes(); len(got) != 1 || got[0] != "node-b" {
		t.Fatalf("survivor's ring is %v after reaping the ghost, want [node-b]", got)
	}
	// The ghost's replica image is stale — its sessions already migrated here
	// during the drain. Promotion must skip every one of them.
	if n := hubB.Sessions(); n != 2 {
		t.Fatalf("survivor holds %d sessions after reap, want 2 (no resurrected duplicates)", n)
	}
	var tags []string
	for _, tag := range hubB.SessionKeys() {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	wantTags := append([]string(nil), toA[:2]...)
	sort.Strings(wantTags)
	for i, tag := range wantTags {
		if tags[i] != tag {
			t.Fatalf("survivor serves %v, want %v", tags, wantTags)
		}
	}
	if got := tel.reaps.Value() - reapsBefore; got != 1 {
		t.Fatalf("reap counter moved by %d, want 1", got)
	}
	if got := tel.promoted.Value() - promotedBefore; got != 0 {
		t.Fatalf("promoted-session counter moved by %d, want 0 (stale replicas skipped)", got)
	}
}
