package cluster

import (
	"testing"
	"time"

	"cognitivearm/internal/cluster/faultnet"
	"cognitivearm/internal/serve"
)

// TestDialBackoffSchedule pins the policy math: exponential growth from the
// base, jitter inside [d/2, d), the cap as the ceiling, reset on success,
// and determinism for a fixed seed.
func TestDialBackoffSchedule(t *testing.T) {
	const base, cap = 250 * time.Millisecond, 15 * time.Second
	b := newDialBackoff(base, cap, "node-a")
	now := time.Unix(1000, 0)
	expected := base
	for i := 1; i <= 12; i++ {
		d := b.failure("s", now)
		if expected > cap {
			expected = cap
		}
		if d < expected/2 || d >= expected {
			t.Fatalf("failure %d: pause %v outside [%v, %v)", i, d, expected/2, expected)
		}
		if b.ready("s", now.Add(d-time.Nanosecond)) {
			t.Fatalf("failure %d: target ready before its pause elapsed", i)
		}
		if !b.ready("s", now.Add(d)) {
			t.Fatalf("failure %d: target not ready after its pause elapsed", i)
		}
		expected *= 2
	}
	if b.failures("s") != 12 {
		t.Fatalf("failure count %d, want 12", b.failures("s"))
	}
	b.success("s")
	if b.failures("s") != 0 || !b.ready("s", now) {
		t.Fatal("success did not reset the target to eager redial")
	}

	// Determinism: the same seed draws the same schedule; a different seed
	// (a different node) draws a different one somewhere in 12 rounds.
	first := newDialBackoff(base, cap, "node-a")
	second := newDialBackoff(base, cap, "node-a")
	other := newDialBackoff(base, cap, "node-b")
	diverged := false
	for i := 0; i < 12; i++ {
		d := first.failure("s", now)
		if got := second.failure("s", now); got != d {
			t.Fatalf("round %d: same seed drew %v then %v", i, d, got)
		}
		if other.failure("s", now) != d {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct seeds drew identical 12-round schedules")
	}
}

// TestReplicationDialBackoff drives a primary against a standby that refuses
// dials, with an explicit clock and a faultnet dial budget as the ground
// truth: sweeps inside the backoff window must not dial at all, the window
// must grow exponentially, and one successful batch must reset it.
func TestReplicationDialBackoff(t *testing.T) {
	clf, norm := sharedModel(t)
	nw := faultnet.NewNetwork(5)

	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind, Logf: t.Logf,
		Dial: nw.Dial, Replicas: 1}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: dropRebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: "s"}); err != nil {
		t.Fatal(err)
	}

	plan := nw.Plan(nodeB.Addr())
	now := time.Unix(2000, 0)
	tel := clusterTel()
	skipsBefore := tel.replBackoffSkips.Value()

	// First failure: the dial is attempted (budget consumed) and fails.
	plan.RefuseDials(true)
	dials := plan.Dials()
	if err := nodeA.ReplicateAt(now); err == nil {
		t.Fatal("replication toward a dial-refusing standby reported success")
	}
	if got := plan.Dials() - dials; got != 1 {
		t.Fatalf("first failing sweep consumed %d dials, want 1", got)
	}

	// Sweeps inside the backoff window: zero dials, counted as skips.
	dials = plan.Dials()
	for i := 0; i < 3; i++ {
		nodeA.ReplicateAt(now.Add(50 * time.Millisecond))
	}
	if got := plan.Dials() - dials; got != 0 {
		t.Fatalf("backed-off sweeps dialed %d times, want 0", got)
	}
	if got := tel.replBackoffSkips.Value() - skipsBefore; got != 3 {
		t.Fatalf("backoff-skip counter moved by %d, want 3", got)
	}

	// Drive repeated failures far apart so every attempt is ready: each
	// consumes exactly one dial and doubles the pause.
	step := now
	for i := 0; i < 5; i++ {
		step = step.Add(DefaultBackoffCap) // certainly past any pause
		dials = plan.Dials()
		nodeA.ReplicateAt(step)
		if got := plan.Dials() - dials; got != 1 {
			t.Fatalf("ready failing sweep %d consumed %d dials, want 1", i, got)
		}
	}
	nodeA.replMu.Lock()
	fails := nodeA.backoff.failures(nodeB.ID())
	nodeA.replMu.Unlock()
	if fails != 6 {
		t.Fatalf("consecutive failure count %d, want 6", fails)
	}

	// Heal the network: the next ready sweep reconnects, ships, and resets
	// the target to eager redial.
	plan.RefuseDials(false)
	step = step.Add(DefaultBackoffCap)
	if err := nodeA.ReplicateAt(step); err != nil {
		t.Fatalf("replication after heal: %v", err)
	}
	nodeA.replMu.Lock()
	fails = nodeA.backoff.failures(nodeB.ID())
	nodeA.replMu.Unlock()
	if fails != 0 {
		t.Fatalf("failure count %d after an acknowledged batch, want 0", fails)
	}
	// And with the link healthy, subsequent sweeps reuse it: no new dials.
	dials = plan.Dials()
	if err := nodeA.ReplicateAt(step.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := plan.Dials() - dials; got != 0 {
		t.Fatalf("healthy sweep dialed %d times, want 0 (link reuse)", got)
	}
}

// TestReplicationBackoffTransientDialBudget: FailNextDials(n) models a
// standby rebooting — exactly n dials fail, then service returns. The
// primary must reconnect on its first ready attempt after the budget drains
// and resume shipping acknowledged batches.
func TestReplicationBackoffTransientDialBudget(t *testing.T) {
	clf, norm := sharedModel(t)
	nw := faultnet.NewNetwork(6)

	hubA := newHub(t, registryWith(clf))
	defer hubA.Stop()
	nodeA, err := NewNode(Config{ID: "node-a", Rebind: dropRebind, Logf: t.Logf,
		Dial: nw.Dial, Replicas: 1}, hubA)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	hubB := newHub(t, registryWith(clf))
	defer hubB.Stop()
	nodeB, err := NewNode(Config{ID: "node-b", Rebind: dropRebind, Logf: t.Logf}, hubB)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	if err := nodeB.Join(nodeA.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.Admit(serve.SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: norm, Tag: "s"}); err != nil {
		t.Fatal(err)
	}

	nw.Plan(nodeB.Addr()).FailNextDials(2)
	now := time.Unix(3000, 0)
	failed := 0
	for i := 0; i < 10 && failed < 2; i++ {
		if err := nodeA.ReplicateAt(now); err != nil {
			failed++
		}
		now = now.Add(DefaultBackoffCap)
	}
	if failed != 2 {
		t.Fatalf("consumed %d dial failures of the budgeted 2", failed)
	}
	if err := nodeA.ReplicateAt(now.Add(DefaultBackoffCap)); err != nil {
		t.Fatalf("replication after the dial budget drained: %v", err)
	}
	if got := nodeB.replicas.total(); got != 1 {
		t.Fatalf("standby holds %d replica sessions after recovery, want 1", got)
	}
}
