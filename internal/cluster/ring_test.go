package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session:%d", i)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = o
	}
	return out
}

// TestRingDeterminism: two rings built independently from the same member
// list agree on every key — the property that lets nodes route without
// coordinating.
func TestRingDeterminism(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c"}
	r1, r2 := NewRing(0), NewRing(0)
	for _, m := range members {
		r1.Add(m)
	}
	// Insertion order must not matter either.
	for i := len(members) - 1; i >= 0; i-- {
		r2.Add(members[i])
	}
	keys := ringKeys(2000)
	o1, o2 := owners(r1, keys), owners(r2, keys)
	for _, k := range keys {
		if o1[k] != o2[k] {
			t.Fatalf("rings disagree on %q: %s vs %s", k, o1[k], o2[k])
		}
	}
}

// TestRingBalance: virtual nodes spread load across members without any
// member starving or hogging.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(8000)
	counts := map[string]int{}
	for _, o := range owners(r, keys) {
		counts[o]++
	}
	want := len(keys) / len(members)
	for _, m := range members {
		if counts[m] < want/2 || counts[m] > want*2 {
			t.Fatalf("member %s owns %d of %d keys (ideal %d): balance broken %v",
				m, counts[m], len(keys), want, counts)
		}
	}
}

// TestRingMovementOnJoin pins the ≤~1/N rebalance property: when a member
// joins a ring of n, only keys the joiner now owns change hands — nothing
// shuffles between existing members — and that share is about 1/(n+1).
func TestRingMovementOnJoin(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"node-a", "node-b", "node-c"} {
		r.Add(m)
	}
	keys := ringKeys(8000)
	before := owners(r, keys)
	r.Add("node-d")
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "node-d" {
				t.Fatalf("key %q moved %s → %s, not to the joiner", k, before[k], after[k])
			}
		}
	}
	ideal := len(keys) / 4
	if moved > ideal*8/5 {
		t.Fatalf("join moved %d of %d keys, want ≈%d (≤ 1.6× ideal)", moved, len(keys), ideal)
	}
	if moved < ideal/2 {
		t.Fatalf("join moved only %d keys, joiner is starving (ideal %d)", moved, ideal)
	}
}

// TestRingMovementOnLeave: removing a member reassigns exactly its keys;
// every other assignment is untouched.
func TestRingMovementOnLeave(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"node-a", "node-b", "node-c", "node-d"} {
		r.Add(m)
	}
	keys := ringKeys(8000)
	before := owners(r, keys)
	r.Remove("node-b")
	after := owners(r, keys)
	for _, k := range keys {
		if before[k] == "node-b" {
			if after[k] == "node-b" {
				t.Fatalf("key %q still owned by removed member", k)
			}
		} else if before[k] != after[k] {
			t.Fatalf("key %q moved %s → %s though its owner never left", k, before[k], after[k])
		}
	}
}

// TestRingEmptyAndIdempotent covers the degenerate shapes: empty ring owns
// nothing, double add/remove are no-ops.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("a")
	r.Add("a")
	if got := len(r.points); got != 8 {
		t.Fatalf("double add produced %d points, want 8", got)
	}
	r.Remove("b") // unknown
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removals: %d members, %d points", r.Len(), len(r.points))
	}
}
