package cluster

import (
	"sort"
	"sync"
	"time"
)

// The failure detector: a phi-accrual-style suspicion score over observed
// heartbeat arrivals, floored by a hard deadline. Every time value is passed
// in by the caller — the detector holds no clock of its own — which is what
// lets failover tests drive "two seconds of silence" as an argument instead
// of a sleep.
//
// Suspicion combines two signals:
//
//   - phi, the elapsed silence divided by the peer's observed mean heartbeat
//     interval. A peer that has been beating every 100 ms and then goes quiet
//     for 800 ms scores phi = 8 — strong evidence relative to its own
//     history, the phi-accrual idea (Hayashibara et al.) reduced to its
//     deadline-over-mean core.
//   - a hard floor: no peer is suspected before SuspectAfter of silence, no
//     matter how regular its beats were, so one GC pause or scheduler stall
//     on a fast-beating fleet cannot trigger a reap.
//
// A peer with no observed intervals yet (just added to the ring) falls back
// to an assumed mean of floor/threshold, which makes suspicion begin exactly
// at the floor — a member that never beats once is reaped as soon as the
// deadline alone justifies it.
const (
	// DefaultSuspectAfter is the hard silence floor before any member may be
	// suspected. At the default 500 ms heartbeat interval this tolerates
	// three consecutive lost beats plus scheduling jitter.
	DefaultSuspectAfter = 2 * time.Second
	// DefaultPhiThreshold is the suspicion score at which a silent member is
	// declared dead.
	DefaultPhiThreshold = 8.0
	// detectorWindow bounds the per-peer interval history. A small window
	// adapts within seconds when an operator retunes the heartbeat interval.
	detectorWindow = 16
)

// beatHistory is one peer's arrival record.
type beatHistory struct {
	last      time.Time
	intervals [detectorWindow]float64 // seconds between consecutive beats
	n         int                     // filled entries (≤ detectorWindow)
	idx       int                     // next write position
}

// detector scores peer liveness from heartbeat arrivals. All methods are
// safe for concurrent use; the mutex guards pure map/array bookkeeping only.
type detector struct {
	mu        sync.Mutex
	floor     time.Duration
	threshold float64
	peers     map[string]*beatHistory
}

func newDetector(floor time.Duration, threshold float64) *detector {
	if floor <= 0 {
		floor = DefaultSuspectAfter
	}
	if threshold <= 0 {
		threshold = DefaultPhiThreshold
	}
	return &detector{floor: floor, threshold: threshold, peers: map[string]*beatHistory{}}
}

// Expect starts (or restarts) liveness tracking for a peer, seeding its
// clock at now. Seeding at membership time is load-bearing for ghost
// reaping: a member that joins the ring and never beats once accrues
// silence from the moment it was added, not from some first beat that never
// comes.
func (d *detector) Expect(peer string, now time.Time) {
	d.mu.Lock()
	if _, ok := d.peers[peer]; !ok {
		d.peers[peer] = &beatHistory{last: now}
	}
	d.mu.Unlock()
}

// Beat records a liveness proof from peer — an answered ping, a received
// ping, or an acknowledged replication batch all count.
func (d *detector) Beat(peer string, now time.Time) {
	d.mu.Lock()
	h, ok := d.peers[peer]
	if !ok {
		h = &beatHistory{last: now}
		d.peers[peer] = h
	} else if dt := now.Sub(h.last).Seconds(); dt > 0 {
		h.intervals[h.idx] = dt
		h.idx = (h.idx + 1) % detectorWindow
		if h.n < detectorWindow {
			h.n++
		}
		h.last = now
	}
	d.mu.Unlock()
}

// Forget stops tracking a peer (clean leave, completed reap).
func (d *detector) Forget(peer string) {
	d.mu.Lock()
	delete(d.peers, peer)
	d.mu.Unlock()
}

// Phi returns the peer's current suspicion score at now: elapsed silence
// over observed mean beat interval. Untracked peers score 0.
func (d *detector) Phi(peer string, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.peers[peer]
	if !ok {
		return 0
	}
	return d.phiLocked(h, now)
}

func (d *detector) phiLocked(h *beatHistory, now time.Time) float64 {
	mean := d.floor.Seconds() / d.threshold // no-history fallback: suspicion begins at the floor
	if h.n > 0 {
		sum := 0.0
		for i := 0; i < h.n; i++ {
			sum += h.intervals[i]
		}
		mean = sum / float64(h.n)
	}
	if mean <= 0 {
		return 0
	}
	return now.Sub(h.last).Seconds() / mean
}

// Suspects returns the peers whose silence has crossed both the hard floor
// and the phi threshold at now, in sorted order. The caller reaps them and
// then Forgets each.
func (d *detector) Suspects(now time.Time) []string {
	d.mu.Lock()
	var out []string
	for peer, h := range d.peers {
		if now.Sub(h.last) >= d.floor && d.phiLocked(h, now) >= d.threshold {
			out = append(out, peer)
		}
	}
	d.mu.Unlock()
	sort.Strings(out)
	return out
}
