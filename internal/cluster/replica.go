package cluster

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/models"
	"cognitivearm/internal/wal"
)

// Warm-standby replication. The sender half (Node.ReplicateOnce) captures
// the hub's dirty-session delta — the same records an incremental checkpoint
// writes — and tails it to this node's ring successors over long-lived
// verbReplicate connections, one checkpoint.TailWriter per standby. The
// receiver half (Node.handleReplicate) folds each batch into a replicaStore:
// an in-memory, always-promotable image of the primary's sessions, at most
// one replication interval stale. Promotion (failover.go) turns that image
// into live serving sessions via serve.Hub.PromoteSession.

// replicaSet is the accumulated replica image of one primary.
type replicaSet struct {
	// hub is the primary's serving configuration, kept for diagnostics; the
	// standby promotes into its own hub, not a reconstruction of the
	// primary's.
	hub checkpoint.HubConfig
	// epoch is the last applied batch's per-connection sequence number.
	// Batches must arrive gap-free (epoch+1); anything else means a batch
	// was lost or a stale connection is still writing, and the tail is torn
	// down so the next connection full-resyncs.
	epoch uint64
	// models and macs accumulate across tails: model weights are immutable
	// once resolved, so an image from an earlier connection stays valid.
	models map[string]models.Classifier
	macs   map[string]int64
	// sessions is the promotable image: every live session's latest
	// replicated record, volatile scheduler fields already overlaid.
	sessions map[uint64]checkpoint.SessionRecord
	batches  uint64
	lastAt   time.Time
	// lastRoot is the Merkle root of the last applied batch, as verified by
	// checkpoint.TailReader against the sender's seal. It makes the image's
	// provenance auditable at promotion time: the promoting node can state
	// exactly which verified batch its serving state descends from.
	lastRoot [wal.HashSize]byte
}

// replicaStore holds one replicaSet per primary replicating to this node.
// Its mutex is a leaf lock guarding pure map bookkeeping: batches are
// decoded from the network and sessions are promoted strictly outside it
// (take removes the whole set first), so no network, disk, or hub call ever
// runs under it.
type replicaStore struct {
	mu  sync.Mutex
	set map[string]*replicaSet
}

func newReplicaStore() *replicaStore {
	return &replicaStore{set: map[string]*replicaSet{}}
}

// beginTail resets the session image for a primary opening a fresh
// replication connection. Models survive the reset (immutable), the session
// image does not: the new tail's first batch is a full resync, and stale
// records must not outlive the connection that shipped them.
func (s *replicaStore) beginTail(src string) {
	s.mu.Lock()
	rs, ok := s.set[src]
	if !ok {
		rs = &replicaSet{
			models: map[string]models.Classifier{},
			macs:   map[string]int64{},
		}
		s.set[src] = rs
	}
	rs.sessions = map[uint64]checkpoint.SessionRecord{}
	rs.epoch = 0
	s.mu.Unlock()
}

// apply folds one decoded batch into src's image and returns the live
// session count afterwards. Any error means the image can no longer be
// trusted — the caller tears the connection down and the next one resyncs
// from scratch.
func (s *replicaStore) apply(src string, batch *checkpoint.FleetState, now time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.set[src]
	if !ok {
		return 0, fmt.Errorf("cluster: replication batch from %s without an open tail", src)
	}
	if batch.Manifest.Seq != rs.epoch+1 {
		return 0, fmt.Errorf("cluster: replication batch epoch %d from %s, want %d (stale connection?)", batch.Manifest.Seq, src, rs.epoch+1)
	}
	rs.epoch = batch.Manifest.Seq
	rs.hub = batch.Manifest.Hub
	for key, clf := range batch.Models {
		rs.models[key] = clf
		rs.macs[key] = batch.ModelMACs[key]
	}
	for i := range batch.Sessions {
		rec := batch.Sessions[i]
		rs.sessions[rec.ID] = rec
	}
	// The manifest's Refs are the primary's complete live view: prune
	// departures, overlay the volatile scheduler fields onto clean records,
	// and verify every ref resolves to a record at the right version — a
	// mismatch means this tail missed state and must resync.
	keep := make(map[uint64]checkpoint.SessionRef, len(batch.Manifest.Refs))
	for _, ref := range batch.Manifest.Refs {
		keep[ref.ID] = ref
	}
	for id := range rs.sessions {
		if _, live := keep[id]; !live {
			delete(rs.sessions, id)
		}
	}
	for id, ref := range keep {
		rec, ok := rs.sessions[id]
		if !ok {
			return 0, fmt.Errorf("cluster: replica of %s out of sync: no record for live session %d", src, id)
		}
		if rec.Ver != ref.Ver {
			return 0, fmt.Errorf("cluster: replica of %s out of sync: session %d at ver %d, primary at %d", src, id, rec.Ver, ref.Ver)
		}
		rec.SampleAcc = ref.SampleAcc
		rec.IdleTicks = ref.IdleTicks
		rs.sessions[id] = rec
	}
	rs.batches++
	rs.lastAt = now
	rs.lastRoot = batch.TailRoot
	return len(rs.sessions), nil
}

// take removes and returns src's image — the promotion handoff. Promotion
// happens on the returned copy outside the store lock.
func (s *replicaStore) take(src string) (*replicaSet, bool) {
	s.mu.Lock()
	rs, ok := s.set[src]
	delete(s.set, src)
	s.mu.Unlock()
	return rs, ok
}

// drop discards src's image (clean leave, or a reap another member handles).
func (s *replicaStore) drop(src string) {
	s.mu.Lock()
	delete(s.set, src)
	s.mu.Unlock()
}

// total counts replica session records across all primaries (gauge feed).
func (s *replicaStore) total() int {
	s.mu.Lock()
	n := 0
	for _, rs := range s.set {
		n += len(rs.sessions)
	}
	s.mu.Unlock()
	return n
}

// sources lists the primaries with open images, sorted.
func (s *replicaStore) sources() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.set))
	for src := range s.set {
		out = append(out, src)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// replLink is one live replication tail to a standby.
type replLink struct {
	target   string
	conn     net.Conn
	tw       *checkpoint.TailWriter
	lastRefs map[uint64]checkpoint.SessionRef
	ackBuf   []byte
}

// Standbys returns this node's current replication targets: its ring
// successors, replicaN deep.
func (n *Node) Standbys() []string {
	if n.replicaN <= 0 {
		return nil
	}
	return n.ring.Successors(n.id, n.replicaN)
}

// ReplicateOnce ships one dirty-delta batch to every standby, opening or
// reopening tails as needed. It is the body of the replication loop. Links
// to members that are no longer standbys (membership changed) are torn down;
// a failed batch tears its link down and backs the target off, and a later
// call reconnects with a full resync. Returns the first error encountered;
// the other standbys are still attempted.
func (n *Node) ReplicateOnce() error {
	return n.ReplicateAt(time.Now())
}

// ReplicateAt is ReplicateOnce against an explicit clock — the deterministic
// drive for tests, and the only consumer of the dial-backoff schedule: a
// target still inside its backoff window at now is skipped (counted on
// cogarm_cluster_replication_backoff_skips_total), not dialed.
func (n *Node) ReplicateAt(now time.Time) error {
	if n.replicaN <= 0 {
		return nil
	}
	// replMu serializes replication sweeps and owns n.links; network writes
	// happen while it is held by design — it is the replication worker's
	// private state, never taken by the serving or membership paths.
	n.replMu.Lock()
	defer n.replMu.Unlock()
	targets := n.Standbys()
	want := make(map[string]struct{}, len(targets))
	for _, t := range targets {
		want[t] = struct{}{}
	}
	for id, link := range n.links {
		if _, still := want[id]; !still {
			//cogarm:allow nolockblock -- replMu is the sweep's private lock (see above); Close here cannot stall serving
			link.conn.Close()
			delete(n.links, id)
			n.backoff.forget(id)
		}
	}
	t := clusterTel()
	if len(targets) == 0 {
		// Singleton fleet: nothing to replicate to is not staleness — a
		// climbing lag gauge here would page on every one-node deployment.
		t.replLag.Set(0)
		return nil
	}
	var firstErr error
	allOK := len(targets) > 0
	for _, target := range targets {
		link, ok := n.links[target]
		if !ok {
			if !n.backoff.ready(target, now) {
				// Inside the backoff window: the standby is not consulted at
				// all this sweep. Skipping is not a fresh failure — the pause
				// only grows when an actual attempt fails.
				t.replBackoffSkips.Inc()
				allOK = false
				continue
			}
			var err error
			//cogarm:allow nolockblock -- dialing under replMu serializes sweeps by design; no serving path waits on it
			if link, err = n.linkTo(target); err != nil {
				pause := n.backoff.failure(target, now)
				t.replFails.Inc()
				allOK = false
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: replication tail to %s (retry in %v): %w", target, pause, err)
				}
				continue
			}
			n.links[target] = link
		}
		//cogarm:allow nolockblock -- shipping under replMu serializes sweeps by design; no serving path waits on it
		if err := n.shipBatch(link); err != nil {
			//cogarm:allow nolockblock -- tearing down the failed link, same private-lock argument
			link.conn.Close()
			delete(n.links, target)
			pause := n.backoff.failure(target, now)
			t.replFails.Inc()
			allOK = false
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: replication batch to %s (retry in %v): %w", target, pause, err)
			}
			continue
		}
		n.backoff.success(target)
	}
	if allOK {
		n.lastReplOK.Store(now.UnixNano())
		t.replLag.Set(0)
	} else if last := n.lastReplOK.Load(); last > 0 {
		t.replLag.Set(now.Sub(time.Unix(0, last)).Seconds())
	}
	return firstErr
}

// linkTo opens a replication tail to a standby: dial, verb, identity
// handshake, tail header. The handshake ack proves the standby recognises
// this node as a ring member before any state is shipped.
func (n *Node) linkTo(target string) (*replLink, error) {
	n.mu.Lock()
	addr, ok := n.peers[target]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no address for member %s", target)
	}
	conn, err := n.dial("tcp", addr, ioTimeout)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*replLink, error) {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(ioTimeout))
	if _, err := conn.Write([]byte{verbReplicate}); err != nil {
		return fail(err)
	}
	if err := writeMemberMsg(conn, memberMsg{ID: n.id, Addr: n.Addr()}); err != nil {
		return fail(err)
	}
	ack, _, err := readAck(conn, nil)
	if err != nil {
		return fail(err)
	}
	if ack.Err != "" {
		return fail(fmt.Errorf("remote: %s", ack.Err))
	}
	tw, err := checkpoint.NewTailWriter(conn)
	if err != nil {
		return fail(err)
	}
	return &replLink{target: target, conn: conn, tw: tw}, nil
}

// shipBatch captures the dirty delta since the link's last acknowledged
// batch and writes it down the tail, waiting for the standby's ack. Only an
// acknowledged batch advances lastRefs, so a batch the standby never
// applied is recaptured (as still-dirty sessions) by the next connection.
func (n *Node) shipBatch(link *replLink) error {
	delta := n.hub.CaptureDelta(link.lastRefs)
	link.conn.SetDeadline(time.Now().Add(ioTimeout))
	_, sessions, _, err := link.tw.WriteBatch(delta)
	if err != nil {
		return err
	}
	ack, buf, err := readAck(link.conn, link.ackBuf)
	link.ackBuf = buf
	if err != nil {
		return err
	}
	if ack.Err != "" {
		return fmt.Errorf("remote: %s", ack.Err)
	}
	link.lastRefs = delta.Manifest.RefIndex()
	t := clusterTel()
	t.replBatchesOut.Inc()
	t.replRecords.Add(uint64(sessions))
	return nil
}

// handleReplicate serves the receiving half of one replication tail: an
// identity handshake, then batches applied to the replica store until the
// connection closes. This is the one long-lived verb — the per-batch ack
// doubles as flow control, and every applied batch also counts as a
// heartbeat from the primary (a node that is replicating is alive).
func (n *Node) handleReplicate(conn net.Conn) {
	msg, _, err := readMemberMsg(conn, nil)
	if err != nil {
		writeAck(conn, ackMsg{Err: err.Error()})
		return
	}
	if !n.ring.Has(msg.ID) {
		writeAck(conn, ackMsg{Err: fmt.Sprintf("unknown member %s", msg.ID)})
		return
	}
	if err := writeAck(conn, ackMsg{}); err != nil {
		return
	}
	n.replicas.beginTail(msg.ID)
	tr, err := checkpoint.NewTailReader(conn)
	if err != nil {
		n.logf("cluster: replication tail from %s: %v", msg.ID, err)
		return
	}
	t := clusterTel()
	for {
		conn.SetDeadline(time.Now().Add(ioTimeout))
		batch, err := tr.ReadBatch()
		if err != nil {
			if err != io.EOF {
				n.logf("cluster: replication tail from %s: %v", msg.ID, err)
			}
			return
		}
		live, err := n.replicas.apply(msg.ID, batch, time.Now())
		if err != nil {
			n.logf("cluster: replication tail from %s: %v", msg.ID, err)
			writeAck(conn, ackMsg{Err: err.Error()})
			return
		}
		n.det.Beat(msg.ID, time.Now())
		t.replBatchesIn.Inc()
		t.replicaSessions.Set(float64(n.replicas.total()))
		if err := writeAck(conn, ackMsg{Handled: live}); err != nil {
			return
		}
	}
}
