package faultnet

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// connPair builds a real loopback TCP connection pair, the faulted side
// wrapped with plan.
func connPair(t *testing.T, plan *Plan) (faulted, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() {
		dialed.Close()
		acc.conn.Close()
	})
	return Wrap(dialed, plan), acc.conn
}

func TestCutWritesAtExactOffset(t *testing.T) {
	plan := NewPlan()
	plan.CutWritesAfter(10)
	faulted, peer := connPair(t, plan)

	// First write fits the budget entirely.
	if n, err := faulted.Write([]byte("1234567")); err != nil || n != 7 {
		t.Fatalf("write within budget returned (%d, %v)", n, err)
	}
	// Second write crosses it mid-buffer: exactly 3 more bytes make it out,
	// then the connection is hard-closed.
	n, err := faulted.Write([]byte("abcdefgh"))
	if err == nil || !strings.Contains(err.Error(), "cut after 10 bytes") {
		t.Fatalf("write across the cut returned (%d, %v), want a cut error", n, err)
	}
	if n != 3 {
		t.Fatalf("cut wrote %d bytes of the crossing buffer, want exactly 3", n)
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(peer)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1234567abc" {
		t.Fatalf("peer received %q, want the exact 10-byte prefix", got)
	}
	if plan.Written() != 10 {
		t.Fatalf("plan counted %d bytes written, want 10", plan.Written())
	}
	// The connection is dead: further writes fail too.
	if _, err := faulted.Write([]byte("x")); err == nil {
		t.Fatal("write after the cut succeeded")
	}
}

func TestCutReadsAtExactOffset(t *testing.T) {
	plan := NewPlan()
	plan.CutReadsAfter(5)
	faulted, peer := connPair(t, plan)
	if _, err := peer.Write([]byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := io.ReadFull(faulted, buf[:5])
	if err != nil || n != 5 || string(buf[:5]) != "abcde" {
		t.Fatalf("read within budget returned (%d, %v, %q)", n, err, buf[:n])
	}
	if _, err := faulted.Read(buf); err == nil || !strings.Contains(err.Error(), "cut after 5 bytes") {
		t.Fatalf("read past budget returned %v, want a cut error", err)
	}
}

func TestBlackholeReportsSuccessDeliversNothing(t *testing.T) {
	plan := NewPlan()
	plan.BlackholeWrites(true)
	faulted, peer := connPair(t, plan)
	if n, err := faulted.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackholed write returned (%d, %v), want silent success", n, err)
	}
	if plan.Written() != 13 {
		t.Fatalf("plan counted %d bytes, want 13 (blackholed bytes count)", plan.Written())
	}
	faulted.Close()
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if got, err := io.ReadAll(peer); err != nil || len(got) != 0 {
		t.Fatalf("peer received %q (%v), want nothing", got, err)
	}
}

func TestDialBudgets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	addr := ln.Addr().String()

	nw := NewNetwork(1)
	plan := nw.Plan(addr)
	dial := func() error {
		c, err := nw.Dial("tcp", addr, time.Second)
		if err == nil {
			c.Close()
		}
		return err
	}

	// FailNextDials: exactly n transient failures, then clear.
	plan.FailNextDials(2)
	for i := 0; i < 2; i++ {
		if err := dial(); err == nil {
			t.Fatalf("dial %d succeeded inside the transient-failure window", i)
		}
	}
	if err := dial(); err != nil {
		t.Fatalf("dial after the transient window failed: %v", err)
	}

	// AllowDials: exactly n admitted, every later dial refused.
	plan.AllowDials(1)
	if err := dial(); err != nil {
		t.Fatalf("budgeted dial refused: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := dial(); err == nil {
			t.Fatal("dial beyond the budget succeeded")
		}
	}

	// RefuseDials wins over any remaining budget.
	plan.AllowDials(-1)
	plan.RefuseDials(true)
	if err := dial(); err == nil {
		t.Fatal("dial through a refusing plan succeeded")
	}
	plan.RefuseDials(false)
	if err := dial(); err != nil {
		t.Fatalf("dial after lifting the refusal failed: %v", err)
	}

	if plan.Dials() != 9 {
		t.Fatalf("plan counted %d dials, want 9 (refused ones included)", plan.Dials())
	}
}

func TestNetworkDefaultPlanAppliesToUnknownAddrs(t *testing.T) {
	nw := NewNetwork(1)
	nw.Default().RefuseDials(true)
	if _, err := nw.Dial("tcp", "127.0.0.1:1", time.Second); err == nil {
		t.Fatal("default-plan refusal did not apply to an unplanned address")
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a, b := NewNetwork(42), NewNetwork(42)
	other := NewNetwork(43)
	var diverged bool
	for i := 0; i < 100; i++ {
		x, y := a.Rand(), b.Rand()
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, x, y)
		}
		if x < 0 || x >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, x)
		}
		if x != other.Rand() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical sequences")
	}
}
