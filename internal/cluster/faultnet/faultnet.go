// Package faultnet is the cluster's deterministic fault-injection harness:
// wrapped net.Conn/net.Listener/dialer seams that inject connection refusals,
// hard cuts after an exact byte count (mid-frame truncation), one-way
// partitions (blackholed writes) and fixed delays — as repeatable test
// inputs, not as timing races.
//
// Every fault is budgeted in bytes or dial counts, never in wall-clock time,
// so a test that cuts a migration stream after 1000 bytes cuts it at byte
// 1000 on every run. The only source of randomness is the Network's seeded
// splitmix64 generator behind the probabilistic helpers, which replays
// identically for a given seed. internal/cluster exposes the matching seams
// as Config.Dial and Config.WrapListener; all failover, partition and
// torn-stream tests are built on this package.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Plan is the fault schedule applied to the connections of one address (or a
// listener's inbound side). The zero value injects nothing; mutators may be
// called at any time, including while connections are live — faults apply
// from the next operation on. All methods are safe for concurrent use.
type Plan struct {
	mu sync.Mutex
	// cutWriteAfter / cutReadAfter are byte budgets (-1 = unlimited): once a
	// direction's budget is exhausted the connection is hard-closed mid-call,
	// so the peer observes a torn frame, exactly like a crashed process.
	cutWriteAfter int64
	cutReadAfter  int64
	blackhole     bool
	refuseDials   bool
	allowDials    int64 // -1 = unlimited; >=0: dials allowed before refusing
	failDials     int64 // dials to fail before allowing again
	delay         time.Duration

	written int64
	read    int64
	dials   int64
}

// NewPlan returns a plan injecting no faults.
func NewPlan() *Plan {
	return &Plan{cutWriteAfter: -1, cutReadAfter: -1, allowDials: -1}
}

// CutWritesAfter hard-closes each subsequent connection once n total bytes
// have been written through this plan — the peer sees a frame torn at an
// exact, reproducible offset. Negative n disables the cut.
func (p *Plan) CutWritesAfter(n int64) { p.set(func() { p.cutWriteAfter = n }) }

// CutReadsAfter is the receive-side counterpart of CutWritesAfter.
func (p *Plan) CutReadsAfter(n int64) { p.set(func() { p.cutReadAfter = n }) }

// BlackholeWrites silently discards written bytes while reporting success —
// the one-way partition: the peer stops hearing from this side, but this
// side observes nothing wrong until it waits for a reply.
func (p *Plan) BlackholeWrites(on bool) { p.set(func() { p.blackhole = on }) }

// RefuseDials fails every subsequent dial through this plan — the full
// partition (or a dead listener) as seen from the dialing side.
func (p *Plan) RefuseDials(on bool) { p.set(func() { p.refuseDials = on }) }

// AllowDials lets the next n dials through and refuses every one after —
// e.g. "the migration connection succeeds, the leave notification does not".
// Negative n removes the budget.
func (p *Plan) AllowDials(n int64) { p.set(func() { p.allowDials = n }) }

// FailNextDials fails the next n dials, then allows again — a transient
// outage with an exact, deterministic width.
func (p *Plan) FailNextDials(n int64) { p.set(func() { p.failDials = n }) }

// Delay sleeps each read and write for d before performing it. This is the
// one wall-clock fault; tests that must stay sleep-free use the byte-budget
// faults instead.
func (p *Plan) Delay(d time.Duration) { p.set(func() { p.delay = d }) }

// Written returns total bytes written through this plan (blackholed bytes
// included), for computing cut offsets from observed traffic.
func (p *Plan) Written() int64 { p.mu.Lock(); defer p.mu.Unlock(); return p.written }

// Dials returns how many dials this plan has seen (refused ones included).
func (p *Plan) Dials() int64 { p.mu.Lock(); defer p.mu.Unlock(); return p.dials }

func (p *Plan) set(f func()) { p.mu.Lock(); f(); p.mu.Unlock() }

// admitDial consumes one dial attempt and reports whether it may proceed.
func (p *Plan) admitDial() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dials++
	if p.refuseDials {
		return false
	}
	if p.failDials > 0 {
		p.failDials--
		return false
	}
	if p.allowDials >= 0 {
		if p.allowDials == 0 {
			return false
		}
		p.allowDials--
	}
	return true
}

// Conn applies a Plan to one net.Conn.
type Conn struct {
	net.Conn
	plan *Plan
}

// Wrap applies plan to conn. A nil plan returns conn unchanged.
func Wrap(conn net.Conn, plan *Plan) net.Conn {
	if plan == nil {
		return conn
	}
	return &Conn{Conn: conn, plan: plan}
}

// Write implements net.Conn with the plan's write faults. When the cut
// budget is exhausted mid-buffer the allowed prefix is written, the
// underlying connection is closed, and the call errors — a mid-frame
// truncation at an exact byte offset.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.plan
	p.mu.Lock()
	delay := p.delay
	if p.blackhole {
		p.written += int64(len(b))
		p.mu.Unlock()
		return len(b), nil
	}
	allowed := int64(len(b))
	cut := false
	if p.cutWriteAfter >= 0 {
		if remain := p.cutWriteAfter - p.written; remain < allowed {
			if remain < 0 {
				remain = 0
			}
			allowed, cut = remain, true
		}
	}
	p.written += allowed
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	n := 0
	var err error
	if allowed > 0 {
		n, err = c.Conn.Write(b[:allowed])
	}
	if cut {
		c.Conn.Close()
		return n, fmt.Errorf("faultnet: connection cut after %d bytes written", p.Written())
	}
	return n, err
}

// Read implements net.Conn with the plan's read faults.
func (c *Conn) Read(b []byte) (int, error) {
	p := c.plan
	p.mu.Lock()
	delay := p.delay
	budget := int64(len(b))
	cutAt := p.cutReadAfter
	already := p.read
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cutAt >= 0 {
		if remain := cutAt - already; remain < budget {
			if remain <= 0 {
				c.Conn.Close()
				return 0, fmt.Errorf("faultnet: connection cut after %d bytes read", already)
			}
			budget = remain
		}
	}
	n, err := c.Conn.Read(b[:budget])
	p.mu.Lock()
	p.read += int64(n)
	p.mu.Unlock()
	return n, err
}

// Network maps addresses to Plans and provides the dialer/listener seams
// internal/cluster's Config.Dial and Config.WrapListener accept.
type Network struct {
	mu    sync.Mutex
	plans map[string]*Plan
	def   *Plan
	rng   uint64
}

// NewNetwork builds a fault network. The seed drives the probabilistic
// helpers only; all budget-based faults are seed-independent.
func NewNetwork(seed uint64) *Network {
	return &Network{plans: map[string]*Plan{}, def: NewPlan(), rng: seed ^ 0x9e3779b97f4a7c15}
}

// Plan returns (creating on demand) the plan applied to connections dialed
// to addr.
func (nw *Network) Plan(addr string) *Plan {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	p, ok := nw.plans[addr]
	if !ok {
		p = NewPlan()
		nw.plans[addr] = p
	}
	return p
}

// Default returns the plan applied to addresses without their own.
func (nw *Network) Default() *Plan { return nw.def }

func (nw *Network) planFor(addr string) *Plan {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if p, ok := nw.plans[addr]; ok {
		return p
	}
	return nw.def
}

// Rand returns the next value of the seeded splitmix64 sequence in [0,1) —
// deterministic pseudo-randomness for probabilistic fault schedules.
func (nw *Network) Rand() float64 {
	nw.mu.Lock()
	nw.rng += 0x9e3779b97f4a7c15
	z := nw.rng
	nw.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Dial is a drop-in for cluster.Config.Dial: it consults addr's plan, refuses
// when the plan says so, and wraps admitted connections with the plan's
// byte-level faults.
func (nw *Network) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	p := nw.planFor(addr)
	if !p.admitDial() {
		return nil, fmt.Errorf("faultnet: dial %s refused by plan", addr)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return Wrap(conn, p), nil
}

// Listener wraps ln so every accepted connection carries plan's faults — the
// inbound counterpart of Dial, matching cluster.Config.WrapListener.
func Listener(ln net.Listener, plan *Plan) net.Listener {
	return &listener{Listener: ln, plan: plan}
}

type listener struct {
	net.Listener
	plan *Plan
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.plan), nil
}

// CutWriter applies the plan's write budget to an arbitrary io.Writer — the
// file-side counterpart of Conn.Write, used to tear WAL frames at exact byte
// offsets. Once the budget is exhausted the allowed prefix is written and
// every later write fails, exactly like a process killed mid-write: bytes up
// to the cut are on disk, nothing after.
type CutWriter struct {
	w    io.Writer
	plan *Plan
}

// NewCutWriter wraps w with plan's write faults. A nil plan leaves w unfaulted.
func NewCutWriter(w io.Writer, plan *Plan) *CutWriter {
	return &CutWriter{w: w, plan: plan}
}

// Write implements io.Writer with the plan's CutWritesAfter budget.
func (c *CutWriter) Write(b []byte) (int, error) {
	p := c.plan
	if p == nil {
		return c.w.Write(b)
	}
	p.mu.Lock()
	allowed := int64(len(b))
	cut := false
	if p.cutWriteAfter >= 0 {
		if remain := p.cutWriteAfter - p.written; remain < allowed {
			if remain < 0 {
				remain = 0
			}
			allowed, cut = remain, true
		}
	}
	p.written += allowed
	p.mu.Unlock()
	n := 0
	var err error
	if allowed > 0 {
		n, err = c.w.Write(b[:allowed])
	}
	if cut {
		return n, fmt.Errorf("faultnet: write cut after %d bytes", p.Written())
	}
	return n, err
}
