package cluster

import (
	"fmt"
	"net"
	"sort"
	"time"

	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/serve"
)

// Failure detection and failover. Each node pings every peer on a fixed
// interval; answered pings (and received ones, and applied replication
// batches) feed the phi/deadline detector. When a peer's silence crosses the
// threshold, the survivor reaps it: removes it from its ring view, and — if
// it is the dead member's first live ring successor — promotes its replica
// sessions into live serving. Because the ring and the successor order are
// deterministic, every survivor reaches the same conclusion about who
// promotes without exchanging a message.
//
// There is no consensus round: a symmetric partition makes both sides reap
// each other and the minority side serves stale ownership until the
// partition heals and the operator re-joins it (OPERATIONS.md covers the
// runbook). That trade matches the package's design stance — deterministic
// local decisions over a coordination layer.

// pingTimeout bounds one heartbeat exchange. Far below ioTimeout: a
// heartbeat that cannot complete in 2 s is evidence of failure, and the
// detector should see the miss this interval, not one migration-timeout
// later.
const pingTimeout = 2 * time.Second

// DefaultHeartbeatEvery is the ping interval cogarmd uses; DefaultReplicateEvery
// is its replication interval — the staleness bound a promoted session can
// lose relative to its primary.
const (
	DefaultHeartbeatEvery = 500 * time.Millisecond
	DefaultReplicateEvery = time.Second
)

// SendHeartbeats pings every peer once, recording answered pings as beats
// and counting outcomes. It is the body of the heartbeat loop and the manual
// drive of deterministic tests.
func (n *Node) SendHeartbeats() {
	n.mu.Lock()
	peers := make(map[string]string, len(n.peers))
	for id, addr := range n.peers {
		peers[id] = addr
	}
	n.mu.Unlock()
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	t := clusterTel()
	var ackBuf []byte
	for _, id := range ids {
		var err error
		if _, ackBuf, err = n.callTimeout(peers[id], verbPing, memberMsg{ID: n.id, Addr: n.Addr()}, ackBuf, pingTimeout); err != nil {
			t.hbFail.Inc()
			continue
		}
		n.det.Beat(id, time.Now())
		t.hbOK.Inc()
	}
}

// DetectFailures reaps every member the detector declares dead as of now and
// returns their IDs. The clock is an argument so tests assert "after two
// silent seconds this member is reaped" by passing a future instant instead
// of sleeping through one.
func (n *Node) DetectFailures(now time.Time) []string {
	var reaped []string
	for _, id := range n.det.Suspects(now) {
		if id == n.id || !n.ring.Has(id) {
			n.det.Forget(id)
			continue
		}
		n.reapPeer(id)
		reaped = append(reaped, id)
	}
	return reaped
}

// reapPeer removes a dead member from the ring and, when this node is its
// first live ring successor, promotes its replica sessions. The successor
// list is computed before the removal — it is the dead member's standby
// order, which only exists while it is on the ring.
func (n *Node) reapPeer(dead string) {
	want := n.replicaN
	if want < 1 {
		want = 1
	}
	succs := n.ring.Successors(dead, want)
	n.det.Forget(dead)
	n.removeMember(dead)
	t := clusterTel()
	t.reaps.Inc()
	t.events.Record(obs.EvReap, -1, 0, int64(n.ring.Len()), 0)
	n.logf("cluster: %s reaped unresponsive member %s (%d members remain)", n.id, dead, n.ring.Len())
	chosen := ""
	for _, s := range succs {
		if s == n.id || n.ring.Has(s) {
			chosen = s
			break
		}
	}
	if chosen != n.id {
		// Another survivor promotes; any image this node holds (deeper
		// standby, or a ghost's stale replica) is dead weight now.
		n.replicas.drop(dead)
		t.replicaSessions.Set(float64(n.replicas.total()))
		return
	}
	if promoted := n.promote(dead); promoted > 0 {
		// Promotion lands every session locally first — bitwise continuation
		// beats placement. On a ≥3-member ring some of those keys now route
		// elsewhere; hand them off through the ordinary migration path.
		if err := n.rebalance(); err != nil {
			n.logf("cluster: rebalance after failover of %s: %v", dead, err)
		}
	}
}

// promote turns the dead member's replica image into live serving sessions.
// Records whose Tag is already live locally are skipped: a session that
// migrated here (drain) after its record was replicated would otherwise be
// resurrected as a stale duplicate. Individual failures drop that session
// and continue — a partially promoted fleet beats none.
func (n *Node) promote(dead string) int {
	set, ok := n.replicas.take(dead)
	t := clusterTel()
	t.replicaSessions.Set(float64(n.replicas.total()))
	if !ok || len(set.sessions) == 0 {
		return 0
	}
	reg := n.hub.Registry()
	keys := make([]string, 0, len(set.models))
	for key := range set.models {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		clf, macs := set.models[key], set.macs[key]
		if _, _, err := reg.GetOrBuild(key, func() (models.Classifier, int64, error) {
			return clf, macs, nil
		}); err != nil {
			n.logf("cluster: failover of %s: model %q: %v", dead, key, err)
			return 0
		}
	}
	live := map[string]struct{}{}
	for _, tag := range n.hub.SessionKeys() {
		if tag != "" {
			live[tag] = struct{}{}
		}
	}
	ids := make([]uint64, 0, len(set.sessions))
	for id := range set.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	promoted := 0
	for _, id := range ids {
		rec := set.sessions[id]
		if _, dup := live[rec.Tag]; dup && rec.Tag != "" {
			n.logf("cluster: failover of %s: session %d (%s) already live here, replica skipped", dead, id, rec.Tag)
			continue
		}
		src, err := n.rebind(serve.RestoredSession{
			ID:           serve.SessionID(rec.ID),
			ModelKey:     rec.ModelKey,
			Tag:          rec.Tag,
			Channels:     rec.Channels,
			SampleRateHz: rec.SampleRateHz,
		})
		if err != nil || src == nil {
			n.logf("cluster: failover of %s: session %d lost (rebind: %v)", dead, id, err)
			continue
		}
		if _, err := n.hub.PromoteSession(&rec, src); err != nil {
			n.logf("cluster: failover of %s: session %d lost (promote: %v)", dead, id, err)
			continue
		}
		promoted++
	}
	t.failovers.Inc()
	t.promoted.Add(uint64(promoted))
	t.events.Record(obs.EvFailover, -1, 0, int64(promoted), 0)
	n.logf("cluster: %s promoted %d replica sessions of %s", n.id, promoted, dead)
	return promoted
}

// LocateResult is the redirect protocol's answer: which member owns a key,
// where its cluster endpoint is, and — when the owner has a live session for
// the key with a routable ingest socket — the address a streamer should send
// samples to.
type LocateResult struct {
	Owner string
	Addr  string
	// SourceAddr is the owning session's ingest address (e.g. its UDP
	// inlet); empty when the session is not live yet or its source has no
	// socket.
	SourceAddr string
}

// Locate asks the cluster member at addr which node owns key, following at
// most one redirect hop to the owner itself. This is the client half of the
// re-homing protocol: a streamer whose node died asks any survivor and gets
// back the promoted session's new ingest address.
func Locate(addr, key string) (LocateResult, error) {
	res, err := locateAt(addr, key)
	if err != nil {
		return res, err
	}
	if res.SourceAddr != "" || res.Addr == "" || res.Addr == addr {
		return res, nil
	}
	// The queried member is not the owner: one hop to the owner's own view,
	// which can also report the session's ingest address.
	return locateAt(res.Addr, key)
}

// locateAt performs one locate exchange.
func locateAt(addr, key string) (LocateResult, error) {
	conn, err := net.DialTimeout("tcp", addr, pingTimeout)
	if err != nil {
		return LocateResult{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(pingTimeout))
	if _, err := conn.Write([]byte{verbLocate}); err != nil {
		return LocateResult{}, err
	}
	if err := writeLocateMsg(conn, locateMsg{Key: key}); err != nil {
		return LocateResult{}, err
	}
	ack, _, err := readAck(conn, nil)
	if err != nil {
		return LocateResult{}, err
	}
	if ack.Err != "" {
		return LocateResult{}, fmt.Errorf("cluster: locate %q at %s: %s", key, addr, ack.Err)
	}
	return LocateResult{Owner: ack.Owner, Addr: ack.OwnerAddr, SourceAddr: ack.Source}, nil
}
