package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cognitivearm/internal/stream"
)

// Control-plane serialization: gob bodies inside internal/stream's
// length-prefixed message frames. The data plane of a migration — the
// session records and models themselves — is NOT re-framed here: it rides
// as a raw checkpoint stream whose records carry their own CRCs and whose
// manifest self-delimits it on the connection.

func writeMemberMsg(w io.Writer, msg memberMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		return err
	}
	return stream.WriteMsg(w, buf.Bytes())
}

func readMemberMsg(r io.Reader) (memberMsg, error) {
	payload, err := stream.ReadMsg(r)
	if err != nil {
		return memberMsg{}, err
	}
	var msg memberMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return memberMsg{}, fmt.Errorf("cluster: malformed member message: %w", err)
	}
	if msg.ID == "" {
		return memberMsg{}, fmt.Errorf("cluster: member message without ID")
	}
	return msg, nil
}

func writeAck(w io.Writer, ack ackMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ack); err != nil {
		return err
	}
	return stream.WriteMsg(w, buf.Bytes())
}

func readAck(r io.Reader) (*ackMsg, error) {
	payload, err := stream.ReadMsg(r)
	if err != nil {
		return nil, err
	}
	var ack ackMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ack); err != nil {
		return nil, fmt.Errorf("cluster: malformed ack: %w", err)
	}
	return &ack, nil
}
