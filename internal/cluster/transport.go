package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cognitivearm/internal/stream"
)

// Control-plane serialization: gob bodies inside internal/stream's
// length-prefixed message frames. The data plane of a migration — the
// session records and models themselves — is NOT re-framed here: it rides
// as a raw checkpoint stream whose records carry their own CRCs and whose
// manifest self-delimits it on the connection.
//
// The read helpers thread a reusable payload buffer (stream.ReadMsgBuf):
// loops that exchange messages with many peers — announce on join, leave
// notifications on drain — carry one buffer across iterations so inbound
// frames stop allocating their payloads after the largest-yet. Each helper
// returns the (possibly grown) buffer for the caller's next read.

func writeMemberMsg(w io.Writer, msg memberMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		return err
	}
	return stream.WriteMsg(w, buf.Bytes())
}

func readMemberMsg(r io.Reader, buf []byte) (memberMsg, []byte, error) {
	payload, err := stream.ReadMsgBuf(r, buf)
	if err != nil {
		return memberMsg{}, buf, err
	}
	var msg memberMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return memberMsg{}, payload, fmt.Errorf("cluster: malformed member message: %w", err)
	}
	if msg.ID == "" {
		return memberMsg{}, payload, fmt.Errorf("cluster: member message without ID")
	}
	return msg, payload, nil
}

func writeLocateMsg(w io.Writer, msg locateMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		return err
	}
	return stream.WriteMsg(w, buf.Bytes())
}

func readLocateMsg(r io.Reader, buf []byte) (locateMsg, []byte, error) {
	payload, err := stream.ReadMsgBuf(r, buf)
	if err != nil {
		return locateMsg{}, buf, err
	}
	var msg locateMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return locateMsg{}, payload, fmt.Errorf("cluster: malformed locate message: %w", err)
	}
	if msg.Key == "" {
		return locateMsg{}, payload, fmt.Errorf("cluster: locate message without key")
	}
	return msg, payload, nil
}

func writeAck(w io.Writer, ack ackMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ack); err != nil {
		return err
	}
	return stream.WriteMsg(w, buf.Bytes())
}

func readAck(r io.Reader, buf []byte) (*ackMsg, []byte, error) {
	payload, err := stream.ReadMsgBuf(r, buf)
	if err != nil {
		return nil, buf, err
	}
	var ack ackMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ack); err != nil {
		return nil, payload, fmt.Errorf("cluster: malformed ack: %w", err)
	}
	return &ack, payload, nil
}
