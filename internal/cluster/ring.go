// Package cluster scales the serving fleet past one process: a
// consistent-hash ring routes sessions across N cogarmd nodes, a framed TCP
// transport (internal/stream message framing) carries membership changes and
// migrations between them, and live session migration streams
// internal/checkpoint's CRC-framed session records node-to-node — a drained
// or joining node hands off sessions without retraining and with
// bitwise-identical subsequent predictions.
//
// # Architecture
//
//   - Ring (ring.go) is the placement substrate: each member is hashed onto
//     the ring at VNodes virtual points, and a session's routing key (its
//     serve Tag) is owned by the first member clockwise of the key's hash.
//     Membership changes move only the keys between the departed/arrived
//     member's points and their predecessors — ~1/N of sessions per change,
//     deterministically, with no coordination beyond agreeing on the member
//     list.
//
//   - Node (node.go) wraps one serve.Hub with a cluster endpoint: a TCP
//     listener answering join/announce/leave control messages and accepting
//     migration streams. When membership changes, each node re-derives
//     ownership for its live sessions from the ring and streams the ones it
//     no longer owns to their new owner, using Hub.ExtractSession (atomic
//     capture-and-remove) on the sending side and Hub.RestoreSession on the
//     receiving side.
//
//   - High availability (detector.go, replica.go, failover.go) keeps the
//     fleet serving through node death: each node tails its dirty-session
//     records to ring-successor standbys (the same records incremental
//     checkpoints compute), heartbeats feed a phi/deadline failure detector,
//     and a member that stops answering is reaped from the ring with its
//     replica sessions promoted in place on the standby — bitwise-exact
//     continuation from the last replicated record.
//
// The package deliberately has no consensus layer: membership converges
// because the hash is deterministic and reaping is local — each node removes
// a dead member from its own ring view when its own detector fires, so a
// partitioned minority can diverge until the partition heals (documented in
// OPERATIONS.md). This matches the deployment shape of a serving fleet
// behind a provisioning system.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per member. 64 points per member
// keeps the per-member load spread within a few percent for small fleets
// while membership changes stay cheap to compute.
const DefaultVNodes = 64

// ringPoint is one virtual node: a member's hash point on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. The zero value is not
// usable; construct with NewRing. All methods are safe for concurrent use.
//
// Determinism is load-bearing: two nodes that agree on the member list agree
// on every key's owner without exchanging a single message, because both
// hash members and keys with the same FNV-1a function.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

// NewRing creates an empty ring with the given virtual-node count per member
// (DefaultVNodes when vnodes <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// hashKey maps a string onto the ring: FNV-1a for the byte mixing, then a
// murmur-style finalizer. The finalizer is load-bearing — raw FNV-1a of
// short keys with a shared prefix ("session:1", "session:2", …) differs only
// in the low bytes, which would pile every key onto one arc of the ring; the
// multiply-xor-shift cascade avalanches those differences across all 64 bits.
// Both steps are fixed constants, so every node computes identical positions.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: hashKey(node + "#" + strconv.Itoa(v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member. Removing an unknown member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the member owning key — the first virtual node clockwise of
// the key's hash — or ok=false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node, true
}

// Successors returns up to n distinct members clockwise of node's first
// virtual point, excluding node itself — the deterministic standby order for
// warm-standby replication. Every member that agrees on the ring computes
// the same successor list without coordination, which is what lets the
// survivors of a node death agree on who promotes its replicas.
func (r *Ring) Successors(node string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashKey(node + "#0")
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	out := make([]string, 0, n)
	seen := map[string]struct{}{node: {}}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Shares returns each member's owned fraction of the hash space — the
// expected share of routing keys it serves. The arc ending at a virtual node
// belongs to that node's member; shares sum to 1 on a non-empty ring. This
// is the diagnostic surface for placement skew (/statusz renders it): with
// DefaultVNodes the spread stays within a few percent of 1/N.
func (r *Ring) Shares() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return map[string]float64{}
	}
	shares := make(map[string]float64, len(r.nodes))
	const span = float64(1<<63) * 2 // 2^64 as float64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		shares[p.node] += float64(arc) / span
		prev = p.hash
	}
	return shares
}

// String renders the membership for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members × %d vnodes)", r.Len(), r.vnodes)
}
