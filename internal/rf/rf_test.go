package rf

import (
	"testing"

	"cognitivearm/internal/tensor"
)

// gaussianBlobs builds a 3-class separable dataset.
func gaussianBlobs(n int, seed uint64) ([][]float64, []int) {
	rng := tensor.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	centers := [][]float64{{0, 0, 3}, {3, 0, 0}, {0, 3, 0}}
	for i := range X {
		c := rng.Intn(3)
		y[i] = c
		X[i] = make([]float64, 3)
		for j := range X[i] {
			X[i][j] = centers[c][j] + 0.5*rng.NormFloat64()
		}
	}
	return X, y
}

func TestFitAndPredict(t *testing.T) {
	X, y := gaussianBlobs(300, 1)
	f, err := Fit(X, y, 3, Config{Trees: 30, MaxDepth: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := f.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("train accuracy %v on separable blobs", acc)
	}
	Xt, yt := gaussianBlobs(100, 3)
	if acc := f.Accuracy(Xt, yt); acc < 0.9 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestProbsSumToOne(t *testing.T) {
	X, y := gaussianBlobs(100, 4)
	f, _ := Fit(X, y, 3, Config{Trees: 10, MaxDepth: 5, Seed: 5})
	p := f.Probs(X[0])
	var s float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		s += v
	}
	if s < 0.999 || s > 1.001 {
		t.Fatalf("probs sum to %v", s)
	}
}

func TestDepthLimitRespected(t *testing.T) {
	X, y := gaussianBlobs(300, 6)
	for _, depth := range []int{1, 3, 5} {
		f, _ := Fit(X, y, 3, Config{Trees: 5, MaxDepth: depth, Seed: 7})
		for i := range f.Trees {
			if d := f.Trees[i].Depth(); d > depth {
				t.Fatalf("tree depth %d exceeds limit %d", d, depth)
			}
		}
	}
}

func TestUnlimitedDepthGrowsDeeper(t *testing.T) {
	X, y := gaussianBlobs(400, 8)
	shallow, _ := Fit(X, y, 3, Config{Trees: 5, MaxDepth: 2, Seed: 9})
	deep, _ := Fit(X, y, 3, Config{Trees: 5, MaxDepth: 0, Seed: 9})
	if deep.NodeCount() <= shallow.NodeCount() {
		t.Fatalf("unlimited forest (%d nodes) should outgrow depth-2 (%d)",
			deep.NodeCount(), shallow.NodeCount())
	}
}

func TestNodeCountScalesWithTrees(t *testing.T) {
	X, y := gaussianBlobs(200, 10)
	small, _ := Fit(X, y, 3, Config{Trees: 5, MaxDepth: 6, Seed: 11})
	big, _ := Fit(X, y, 3, Config{Trees: 20, MaxDepth: 6, Seed: 11})
	if big.NodeCount() <= small.NodeCount() {
		t.Fatal("more trees should mean more nodes")
	}
}

func TestDeterminism(t *testing.T) {
	X, y := gaussianBlobs(150, 12)
	a, _ := Fit(X, y, 3, Config{Trees: 8, MaxDepth: 6, Seed: 13})
	b, _ := Fit(X, y, 3, Config{Trees: 8, MaxDepth: 6, Seed: 13})
	for i := range X {
		pa, pb := a.Probs(X[i]), b.Probs(X[i])
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatal("same seed must give identical forests")
			}
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 3, DefaultConfig()); err == nil {
		t.Fatal("empty set should error")
	}
	X, y := gaussianBlobs(10, 14)
	if _, err := Fit(X, y[:5], 3, DefaultConfig()); err == nil {
		t.Fatal("mismatched labels should error")
	}
	if _, err := Fit(X, y, 3, Config{Trees: 0}); err == nil {
		t.Fatal("zero trees should error")
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	// All one class: root must be a leaf predicting it with certainty.
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	f, err := Fit(X, y, 2, Config{Trees: 3, MaxDepth: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if f.NodeCount() != 3 {
		t.Fatalf("pure data should give 3 single-leaf trees, got %d nodes", f.NodeCount())
	}
	if f.Predict([]float64{9}) != 1 {
		t.Fatal("wrong prediction on pure data")
	}
}

func TestConstantFeaturesFallToLeaf(t *testing.T) {
	// Identical feature vectors but mixed labels: no split possible.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	f, err := Fit(X, y, 2, Config{Trees: 2, MaxDepth: 5, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := f.Probs([]float64{1, 1})
	if p[0] < 0.2 || p[0] > 0.8 {
		t.Fatalf("unsplittable data should give mixed leaf, got %v", p)
	}
}
