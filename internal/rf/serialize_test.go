package rf

import (
	"reflect"
	"testing"

	"cognitivearm/internal/tensor"
)

func trainedForest(t *testing.T) (*Forest, [][]float64) {
	t.Helper()
	rng := tensor.NewRNG(5)
	X := make([][]float64, 200)
	y := make([]int, len(X))
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if X[i][0]+X[i][2] > 0 {
			y[i] = 1
		} else if X[i][1] < -0.5 {
			y[i] = 2
		}
	}
	f, err := Fit(X, y, 3, Config{Trees: 15, MaxDepth: 6, MinSamplesSplit: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return f, X
}

func TestExportFromDataRoundTrip(t *testing.T) {
	f, X := trainedForest(t)
	g, err := FromData(f.Export())
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != f.NodeCount() {
		t.Fatalf("node count %d after round trip, want %d", g.NodeCount(), f.NodeCount())
	}
	for i, x := range X {
		p1, p2 := f.Probs(x), g.Probs(x)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("sample %d probs diverge: %v vs %v", i, p1, p2)
		}
	}
	// Tree-major batch path agrees too.
	b1, b2 := f.PredictBatch(X), g.PredictBatch(X)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("batched predictions diverge after round trip")
	}
}

func TestFromDataRejectsCorruption(t *testing.T) {
	f, _ := trainedForest(t)
	cases := []struct {
		name   string
		mutate func(*ForestData)
	}{
		{"nil", func(d *ForestData) { *d = ForestData{} }},
		{"no classes", func(d *ForestData) { d.Classes = 0 }},
		{"child out of range", func(d *ForestData) { d.Trees[0].Left[0] = 1 << 20 }},
		{"child cycle", func(d *ForestData) {
			if d.Trees[0].Left[0] > 0 { // point an internal node back at the root
				d.Trees[0].Left[0] = 0
			}
		}},
		{"ragged arrays", func(d *ForestData) { d.Trees[0].Threshold = d.Trees[0].Threshold[:1] }},
		{"bad feature", func(d *ForestData) { d.Trees[0].Feature[0] = 99 }},
		{"short leaf counts", func(d *ForestData) {
			td := &d.Trees[0]
			for i := range td.Counts {
				if td.Counts[i] != nil {
					td.Counts[i] = td.Counts[i][:1]
					return
				}
			}
		}},
	}
	for _, tc := range cases {
		d := f.Export()
		tc.mutate(d)
		if _, err := FromData(d); err == nil {
			t.Fatalf("%s: corrupted forest data accepted", tc.name)
		}
	}
}
