package rf

import (
	"testing"

	"cognitivearm/internal/tensor"
)

// TestPredictBatchWSAllocFree pins the forest's batched serving path at zero
// steady-state allocations, and its labels bitwise-equal to the unpooled
// path.
func TestPredictBatchWSAllocFree(t *testing.T) {
	rng := tensor.NewRNG(12)
	X := make([][]float64, 80)
	y := make([]int, len(X))
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = i % 3
	}
	f, err := Fit(X, y, 3, Config{Trees: 15, MaxDepth: 6, MinSamplesSplit: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := X[:32]
	want := f.PredictBatch(batch)

	ws := tensor.NewWorkspace()
	labels := make([]int, 0, len(batch))
	cycle := func() {
		ws.Reset()
		labels = f.PredictBatchWS(ws, batch, labels[:0])
	}
	cycle()
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("sample %d: workspace label %d != unpooled %d", i, labels[i], want[i])
		}
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state PredictBatchWS allocates %.1f times per call, want 0", avg)
	}
}
