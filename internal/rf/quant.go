package rf

import (
	"math"

	"cognitivearm/internal/tensor"
)

// QForest is the int16 threshold-quantized inference twin of Forest. Each
// tree is flattened into struct-of-arrays form (features, int16 thresholds,
// child indices) so traversal walks contiguous memory instead of chasing node
// pointers, and every feature value is quantized once per sample onto the
// same int16 grid as the thresholds (tensor.I16Map, floor-quantized and
// monotone, so a quantized comparison can only diverge from f64 on near-tie
// thresholds). Leaf distributions stay exact f64. Inference-only and
// approximate — serving gates it behind an agreement check against the exact
// forest.
type QForest struct {
	Classes int
	Feats   int
	Maps    []tensor.I16Map // per-feature value↔threshold grid
	Trees   []qTree
}

// qTree is one flattened tree. Node 0 is the root; feature[n] < 0 marks a
// leaf whose class distribution is counts[leaf[n]*Classes : ...].
type qTree struct {
	feature []int32
	thr     []int16
	left    []int32
	right   []int32
	leaf    []int32
	counts  []float64
}

// Quantize flattens and threshold-quantizes the forest. The per-feature grid
// spans the min..max threshold observed for that feature across all trees
// (values clamp into that range, which preserves every comparison's order);
// features never used in a split get a degenerate constant map.
func (f *Forest) Quantize() *QForest {
	lo := make([]float64, f.Feats)
	hi := make([]float64, f.Feats)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for i := range f.Trees {
		walkThresholds(f.Trees[i].root, lo, hi)
	}
	q := &QForest{Classes: f.Classes, Feats: f.Feats, Maps: make([]tensor.I16Map, f.Feats)}
	for i := range q.Maps {
		if lo[i] <= hi[i] {
			q.Maps[i] = tensor.NewI16Map(lo[i], hi[i])
		}
	}
	q.Trees = make([]qTree, len(f.Trees))
	for i := range f.Trees {
		q.Trees[i] = flattenQTree(&f.Trees[i], q.Maps, f.Classes)
	}
	return q
}

func walkThresholds(n *node, lo, hi []float64) {
	if n == nil || n.isLeaf() {
		return
	}
	if n.threshold < lo[n.feature] {
		lo[n.feature] = n.threshold
	}
	if n.threshold > hi[n.feature] {
		hi[n.feature] = n.threshold
	}
	walkThresholds(n.left, lo, hi)
	walkThresholds(n.right, lo, hi)
}

func flattenQTree(t *Tree, maps []tensor.I16Map, classes int) qTree {
	q := qTree{
		feature: make([]int32, 0, t.nodes),
		thr:     make([]int16, 0, t.nodes),
		left:    make([]int32, 0, t.nodes),
		right:   make([]int32, 0, t.nodes),
		leaf:    make([]int32, 0, t.nodes),
	}
	var flatten func(n *node) int32
	flatten = func(n *node) int32 {
		id := int32(len(q.feature))
		q.feature = append(q.feature, -1)
		q.thr = append(q.thr, 0)
		q.left = append(q.left, -1)
		q.right = append(q.right, -1)
		q.leaf = append(q.leaf, -1)
		if n.isLeaf() {
			q.leaf[id] = int32(len(q.counts) / classes)
			q.counts = append(q.counts, n.counts...)
			return id
		}
		q.feature[id] = int32(n.feature)
		q.thr[id] = maps[n.feature].Quantize(n.threshold)
		q.left[id] = flatten(n.left)
		q.right[id] = flatten(n.right)
		return id
	}
	flatten(t.root)
	return q
}

// ProbsBatchWS computes soft-voting probabilities for a batch over the
// quantized trees, tree-major like Forest.ProbsBatchWS. Every temporary —
// the int16 feature rows and the vote accumulators — comes from ws (nil =
// plain allocation).
//
//cogarm:zeroalloc
func (q *QForest) ProbsBatchWS(ws *tensor.Workspace, X [][]float64) [][]float64 {
	out := ws.FloatRows(len(X))
	flat := ws.Floats(len(X) * q.Classes)
	for i := range out {
		out[i] = flat[i*q.Classes : (i+1)*q.Classes : (i+1)*q.Classes]
	}
	xq := ws.Int16s(len(X) * q.Feats)
	for i, x := range X {
		tensor.QuantizeRowI16(xq[i*q.Feats:(i+1)*q.Feats], x, q.Maps)
	}
	for t := range q.Trees {
		tr := &q.Trees[t]
		for i := range X {
			row := xq[i*q.Feats : (i+1)*q.Feats]
			n := int32(0)
			for tr.feature[n] >= 0 {
				if row[tr.feature[n]] <= tr.thr[n] {
					n = tr.left[n]
				} else {
					n = tr.right[n]
				}
			}
			counts := tr.counts[tr.leaf[n]*int32(q.Classes) : (tr.leaf[n]+1)*int32(q.Classes)]
			acc := out[i]
			for c := range acc {
				acc[c] += counts[c]
			}
		}
	}
	inv := 1 / float64(len(q.Trees))
	for i := range flat {
		flat[i] *= inv
	}
	return out
}

// PredictBatchWS returns the majority class per sample via the quantized
// tree-major path, writing into dst when it has capacity.
//
//cogarm:zeroalloc
func (q *QForest) PredictBatchWS(ws *tensor.Workspace, X [][]float64, dst []int) []int {
	probs := q.ProbsBatchWS(ws, X)
	if cap(dst) < len(X) {
		//cogarm:allow zeroalloc -- label-buffer warm-up; a reused dst never grows past its high-water mark
		dst = make([]int, len(X))
	}
	dst = dst[:len(X)]
	for i, p := range probs {
		dst[i] = tensor.Argmax(p)
	}
	return dst
}

// NodeCount mirrors Forest.NodeCount for the quantized twin.
func (q *QForest) NodeCount() int {
	total := 0
	for i := range q.Trees {
		total += len(q.Trees[i].feature)
	}
	return total
}
