package rf

import (
	"math/rand"
	"testing"

	"cognitivearm/internal/tensor"
)

// synthSet builds a separable 3-class problem the forest learns cleanly.
func synthSet(rng *rand.Rand, n, d int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		cls := rng.Intn(3)
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() + float64(cls)*2.5
		}
		X[i] = row
		y[i] = cls
	}
	return X, y
}

func TestQForestAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	X, y := synthSet(rng, 400, 10)
	f, err := Fit(X, y, 3, Config{Trees: 30, MaxDepth: 8, MinSamplesSplit: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := f.Quantize()
	if q.NodeCount() != f.NodeCount() {
		t.Fatalf("node count %d != %d", q.NodeCount(), f.NodeCount())
	}

	Xt, _ := synthSet(rng, 300, 10)
	ws := tensor.NewWorkspace()
	want := f.PredictBatchWS(ws, Xt, nil)
	wantCopy := append([]int(nil), want...)
	ws.Reset()
	got := q.PredictBatchWS(ws, Xt, nil)
	agree := 0
	for i := range wantCopy {
		if got[i] == wantCopy[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(wantCopy)); frac < 0.98 {
		t.Fatalf("int16 forest agreement %.3f < 0.98", frac)
	}

	// Unpooled path matches the workspace path exactly.
	plain := q.PredictBatchWS(nil, Xt, nil)
	for i := range got {
		if got[i] != plain[i] {
			t.Fatalf("sample %d: ws %d != plain %d", i, got[i], plain[i])
		}
	}
}

func TestQForestProbsNormalised(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := synthSet(rng, 200, 6)
	f, err := Fit(X, y, 3, Config{Trees: 10, MaxDepth: 6, MinSamplesSplit: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := f.Quantize()
	probs := q.ProbsBatchWS(nil, X[:20])
	for i, p := range probs {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("sample %d: probs sum %v", i, sum)
		}
	}
}

// TestQForestOutOfRangeValues feeds values far outside the threshold grid:
// clamping must keep comparisons ordered (no wraparound misroutes).
func TestQForestOutOfRangeValues(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	X, y := synthSet(rng, 200, 4)
	f, err := Fit(X, y, 3, Config{Trees: 10, MaxDepth: 6, MinSamplesSplit: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := f.Quantize()
	extreme := [][]float64{
		{1e9, 1e9, 1e9, 1e9},
		{-1e9, -1e9, -1e9, -1e9},
	}
	exact := f.PredictBatchWS(nil, extreme, nil)
	quant := q.PredictBatchWS(nil, extreme, nil)
	for i := range exact {
		if exact[i] != quant[i] {
			t.Fatalf("extreme sample %d: exact %d != quantized %d", i, exact[i], quant[i])
		}
	}
}
