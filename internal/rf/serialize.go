package rf

import "fmt"

// TreeData is the flat, pointer-free encoding of one CART tree: nodes in
// preorder, children referenced by index. Index 0 is the root; -1 marks "no
// child" (leaves). The flat form is what crosses process boundaries — gob
// cannot see the unexported node pointers, and an explicit index encoding is
// cheap to validate against a corrupted or adversarial checkpoint.
type TreeData struct {
	// Feature and Threshold describe internal-node splits; Feature is -1 on
	// leaves.
	Feature   []int32
	Threshold []float64
	// Left and Right are child node indices, -1 on leaves. A well-formed tree
	// always has both children strictly greater than the parent index (the
	// preorder flattening guarantees it), which is what FromData checks to
	// reject cycles.
	Left, Right []int32
	// Counts holds the normalised class distribution of each leaf; nil on
	// internal nodes.
	Counts [][]float64
}

// ForestData is the flat encoding of a trained Forest, the payload persisted
// by models.Save / internal/checkpoint.
type ForestData struct {
	Classes int
	Feats   int
	Trees   []TreeData
}

// Export flattens the forest into its portable form. Probabilities and
// thresholds are copied as float64 bit patterns, so a round trip through
// Export/FromData reproduces bitwise-identical predictions.
func (f *Forest) Export() *ForestData {
	d := &ForestData{Classes: f.Classes, Feats: f.Feats, Trees: make([]TreeData, len(f.Trees))}
	for i := range f.Trees {
		d.Trees[i] = flattenTree(&f.Trees[i])
	}
	return d
}

func flattenTree(t *Tree) TreeData {
	td := TreeData{}
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		idx := int32(len(td.Feature))
		td.Feature = append(td.Feature, -1)
		td.Threshold = append(td.Threshold, 0)
		td.Left = append(td.Left, -1)
		td.Right = append(td.Right, -1)
		td.Counts = append(td.Counts, nil)
		if n.isLeaf() {
			td.Counts[idx] = append([]float64(nil), n.counts...)
			return idx
		}
		td.Feature[idx] = int32(n.feature)
		td.Threshold[idx] = n.threshold
		td.Left[idx] = walk(n.left)
		td.Right[idx] = walk(n.right)
		return idx
	}
	walk(t.root)
	return td
}

// FromData rebuilds a Forest from its flat encoding, validating structure as
// it goes: parallel arrays must agree in length, child indices must stay in
// range and strictly increase (no cycles, no sharing), split features must be
// within Feats, and every leaf must carry exactly Classes probabilities. A
// truncated or bit-flipped checkpoint fails here with a description instead of
// producing a forest that panics at predict time.
func FromData(d *ForestData) (*Forest, error) {
	if d == nil {
		return nil, fmt.Errorf("rf: nil forest data")
	}
	if d.Classes < 1 || d.Feats < 1 {
		return nil, fmt.Errorf("rf: forest data has classes=%d feats=%d", d.Classes, d.Feats)
	}
	if len(d.Trees) == 0 {
		return nil, fmt.Errorf("rf: forest data has no trees")
	}
	f := &Forest{Classes: d.Classes, Feats: d.Feats, Trees: make([]Tree, len(d.Trees))}
	for ti := range d.Trees {
		tree, err := unflattenTree(&d.Trees[ti], d.Classes, d.Feats)
		if err != nil {
			return nil, fmt.Errorf("rf: tree %d: %w", ti, err)
		}
		f.Trees[ti] = tree
	}
	return f, nil
}

func unflattenTree(td *TreeData, classes, feats int) (Tree, error) {
	n := len(td.Feature)
	if n == 0 {
		return Tree{}, fmt.Errorf("empty tree")
	}
	if len(td.Threshold) != n || len(td.Left) != n || len(td.Right) != n || len(td.Counts) != n {
		return Tree{}, fmt.Errorf("ragged node arrays (%d/%d/%d/%d/%d)",
			n, len(td.Threshold), len(td.Left), len(td.Right), len(td.Counts))
	}
	nodes := make([]node, n)
	for i := 0; i < n; i++ {
		leaf := td.Left[i] < 0 && td.Right[i] < 0
		if leaf {
			if len(td.Counts[i]) != classes {
				return Tree{}, fmt.Errorf("leaf %d has %d class probabilities, want %d", i, len(td.Counts[i]), classes)
			}
			nodes[i].counts = append([]float64(nil), td.Counts[i]...)
			continue
		}
		l, r := td.Left[i], td.Right[i]
		// Preorder flattening puts both children after the parent; anything
		// else is corruption (or a cycle).
		if l <= int32(i) || r <= int32(i) || int(l) >= n || int(r) >= n {
			return Tree{}, fmt.Errorf("node %d has child indices %d/%d outside (%d, %d)", i, l, r, i, n)
		}
		if td.Feature[i] < 0 || int(td.Feature[i]) >= feats {
			return Tree{}, fmt.Errorf("node %d splits on feature %d of %d", i, td.Feature[i], feats)
		}
		nodes[i].feature = int(td.Feature[i])
		nodes[i].threshold = td.Threshold[i]
		nodes[i].left = &nodes[l]
		nodes[i].right = &nodes[r]
	}
	// Reachability: every node must be referenced exactly once (tree shape).
	seen := make([]bool, n)
	seen[0] = true
	for i := 0; i < n; i++ {
		if nodes[i].isLeaf() {
			continue
		}
		for _, c := range []int32{td.Left[i], td.Right[i]} {
			if seen[c] {
				return Tree{}, fmt.Errorf("node %d referenced twice", c)
			}
			seen[c] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			return Tree{}, fmt.Errorf("node %d unreachable", i)
		}
	}
	return Tree{root: &nodes[0], classes: classes, nodes: n}, nil
}
