// Package rf implements the Random-Forest classifier of the paper's model
// pool (Table III: 100–500 trees, depth 10–None, statistical features). It
// is a from-scratch CART ensemble: Gini-impurity splits, bootstrap bagging,
// and √d feature subsampling at every node.
package rf

import (
	"fmt"
	"math"
	"sort"

	"cognitivearm/internal/tensor"
)

// node is one tree node; leaves carry class counts.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	counts    []float64 // leaf class distribution (normalised)
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a single CART decision tree.
type Tree struct {
	root    *node
	classes int
	nodes   int
}

// Config controls forest construction.
type Config struct {
	// Trees is the number of estimators (paper sweeps 100–500).
	Trees int
	// MaxDepth limits tree depth; 0 means unlimited (Table III "None").
	MaxDepth int
	// MinSamplesSplit is the smallest node that may still split.
	MinSamplesSplit int
	// FeatureFraction overrides the default √d feature subsample when > 0.
	FeatureFraction float64
	// Seed drives all randomness (bootstraps, feature subsets).
	Seed uint64
}

// DefaultConfig mirrors the paper's selected forest: 200 estimators,
// depth 20.
func DefaultConfig() Config {
	return Config{Trees: 200, MaxDepth: 20, MinSamplesSplit: 2, Seed: 1}
}

// Forest is a trained random forest.
type Forest struct {
	Trees   []Tree
	Classes int
	Feats   int
}

// Fit trains a forest on feature vectors X (n×d) with labels y in [0,
// classes).
func Fit(X [][]float64, y []int, classes int, cfg Config) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("rf: bad training set (%d rows, %d labels)", len(X), len(y))
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("rf: need at least one tree")
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	d := len(X[0])
	mtry := int(math.Sqrt(float64(d)))
	if cfg.FeatureFraction > 0 {
		mtry = int(cfg.FeatureFraction * float64(d))
	}
	if mtry < 1 {
		mtry = 1
	}
	rng := tensor.NewRNG(cfg.Seed + 0xF0F0)
	f := &Forest{Classes: classes, Feats: d}
	for t := 0; t < cfg.Trees; t++ {
		treeRng := rng.Fork()
		// Bootstrap sample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = treeRng.Intn(len(X))
		}
		tree := Tree{classes: classes}
		tree.root = tree.grow(X, y, idx, 0, cfg, mtry, treeRng)
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// grow recursively builds a subtree over the sample indices idx.
func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, cfg Config, mtry int, rng *tensor.RNG) *node {
	t.nodes++
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	total := float64(len(idx))
	pure := false
	for _, c := range counts {
		if c == total {
			pure = true
		}
	}
	if pure || len(idx) < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return leafNode(counts, total)
	}

	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	parentGini := gini(counts, total)
	// Feature subsample without replacement.
	feats := rng.Perm(len(X[idx[0]]))[:mtry]
	vals := make([]float64, 0, len(idx))
	for _, feat := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][feat])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints of up to 16 quantile gaps.
		steps := 16
		if len(vals) < steps {
			steps = len(vals) - 1
		}
		for s := 1; s <= steps; s++ {
			lo := vals[(s-1)*len(vals)/(steps+1)]
			hi := vals[s*len(vals)/(steps+1)]
			if lo == hi {
				continue
			}
			thr := (lo + hi) / 2
			lc := make([]float64, t.classes)
			rc := make([]float64, t.classes)
			var ln, rn float64
			for _, i := range idx {
				if X[i][feat] <= thr {
					lc[y[i]]++
					ln++
				} else {
					rc[y[i]]++
					rn++
				}
			}
			if ln == 0 || rn == 0 {
				continue
			}
			gain := parentGini - (ln/total)*gini(lc, ln) - (rn/total)*gini(rc, rn)
			if gain > bestGain {
				bestGain, bestFeat, bestThr = gain, feat, thr
			}
		}
	}
	if bestFeat < 0 || bestGain < 1e-12 {
		return leafNode(counts, total)
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.grow(X, y, li, depth+1, cfg, mtry, rng),
		right:     t.grow(X, y, ri, depth+1, cfg, mtry, rng),
	}
}

func leafNode(counts []float64, total float64) *node {
	norm := make([]float64, len(counts))
	if total > 0 {
		for i, c := range counts {
			norm[i] = c / total
		}
	}
	return &node{counts: norm}
}

func gini(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// predict returns the leaf distribution for x.
func (t *Tree) predict(x []float64) []float64 {
	n := t.root
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.counts
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Nodes returns the node count of the tree.
func (t *Tree) Nodes() int { return t.nodes }

// Probs averages leaf distributions across all trees (soft voting).
func (f *Forest) Probs(x []float64) []float64 {
	out := make([]float64, f.Classes)
	for i := range f.Trees {
		p := f.Trees[i].predict(x)
		for c := range out {
			out[c] += p[c]
		}
	}
	inv := 1 / float64(len(f.Trees))
	for c := range out {
		out[c] *= inv
	}
	return out
}

// Predict returns the majority class for x.
func (f *Forest) Predict(x []float64) int {
	return tensor.Argmax(f.Probs(x))
}

// ProbsBatch computes soft-voting probabilities for a batch of feature
// vectors in tree-major order: each tree routes every sample before the next
// tree is touched, keeping that tree's nodes hot in cache across the whole
// batch. Sample-major traversal (Probs in a loop) re-walks all ~NodeCount
// nodes per sample; tree-major amortises those misses over the batch, which
// is the locality win the serving hub's cross-session batching harvests.
func (f *Forest) ProbsBatch(X [][]float64) [][]float64 {
	return f.ProbsBatchWS(nil, X)
}

// ProbsBatchWS is ProbsBatch with the probability rows and their shared flat
// backing drawn from ws, so a serving shard that resets one workspace per
// tick pays no allocations here. A nil ws selects plain allocation; outputs
// are identical either way and, with a workspace, valid until its next Reset.
//
//cogarm:zeroalloc
func (f *Forest) ProbsBatchWS(ws *tensor.Workspace, X [][]float64) [][]float64 {
	out := ws.FloatRows(len(X))
	flat := ws.Floats(len(X) * f.Classes) // zeroed: accumulates votes below
	for i := range out {
		out[i] = flat[i*f.Classes : (i+1)*f.Classes : (i+1)*f.Classes]
	}
	for t := range f.Trees {
		for i, x := range X {
			p := f.Trees[t].predict(x)
			row := out[i]
			for c := range row {
				row[c] += p[c]
			}
		}
	}
	inv := 1 / float64(len(f.Trees))
	for i := range flat {
		flat[i] *= inv
	}
	return out
}

// PredictBatch returns the majority class for every sample via the
// tree-major path.
func (f *Forest) PredictBatch(X [][]float64) []int {
	return f.PredictBatchWS(nil, X, nil)
}

// PredictBatchWS is PredictBatch drawing every temporary from ws and writing
// labels into dst when it has capacity (dst may be nil). See ProbsBatchWS.
//
//cogarm:zeroalloc
func (f *Forest) PredictBatchWS(ws *tensor.Workspace, X [][]float64, dst []int) []int {
	probs := f.ProbsBatchWS(ws, X)
	if cap(dst) < len(X) {
		//cogarm:allow zeroalloc -- label-buffer warm-up; a reused dst never grows past its high-water mark
		dst = make([]int, len(X))
	}
	dst = dst[:len(X)]
	for i, p := range probs {
		dst[i] = tensor.Argmax(p)
	}
	return dst
}

// NodeCount totals nodes across all trees — the forest's "parameter count"
// used on the paper's Pareto plots (Fig. 9/10 report ~72000 nodes for the
// selected forest).
func (f *Forest) NodeCount() int {
	total := 0
	for i := range f.Trees {
		total += f.Trees[i].Nodes()
	}
	return total
}

// Accuracy scores the forest on a labelled set.
func (f *Forest) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i := range X {
		if f.Predict(X[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
