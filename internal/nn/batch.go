package nn

import (
	"fmt"

	"cognitivearm/internal/tensor"
)

// BatchForwarder is the optional fused batched-inference extension of Layer.
// ForwardBatch consumes B same-shape windows and returns B outputs, exactly
// matching B independent Forward(x, false) calls element-for-element. Every
// temporary — stacked inputs, GEMM destinations, output views — is drawn from
// ws, so a caller that resets one workspace per tick runs the whole forward
// pass without heap allocations at steady state. ws may be nil, selecting
// plain heap allocation (the unpooled path, bitwise-identical by contract).
//
// Contract:
//   - Inference only: train must be false. The batched kernels write no layer
//     state (there is nothing for Backward to consume), so implementations
//     panic on train=true rather than silently corrupting training caches.
//   - Goroutine safety mirrors Forward(x, false): a trained layer may serve
//     concurrent ForwardBatch / Forward calls from many goroutines because
//     neither path writes the receiver — provided each call uses its own
//     Workspace (or nil). Workspaces are single-owner and must not be shared
//     across concurrent calls.
//   - Returned matrices may be views into one shared backing array
//     (tensor.SplitRowsWS) and, with a non-nil ws, are valid only until the
//     workspace's next Reset; callers must copy anything that outlives the
//     cycle.
//   - All windows in one call must share the same shape. Mixed shapes are the
//     caller's problem (see Network.ForwardBatch, which enforces this).
type BatchForwarder interface {
	//cogarm:zeroalloc
	ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix
}

// batchInferenceOnly is the shared train-guard for every fused kernel.
func batchInferenceOnly(train bool) {
	if train {
		panic("nn: ForwardBatch is inference-only (train must be false)")
	}
}

// epilogueFuser is the internal extension a GEMM-backed layer implements so
// Network.ForwardBatch can fold a directly following ReLU layer into the
// GEMM's epilogue (tensor.Epilogue), skipping one full write-read pass over
// the activations. relu=false is the layer's plain batched forward (bias
// still fused). Outputs must be bitwise-identical to the unfused
// ForwardBatch-then-ReLU composition.
type epilogueFuser interface {
	//cogarm:zeroalloc
	forwardBatchFused(ws *tensor.Workspace, xs []*tensor.Matrix, relu bool) []*tensor.Matrix
}

// forwardBatch routes one layer: through its fused kernel when it implements
// BatchForwarder, else through the generic per-window fallback. The fallback
// keeps ForwardBatch total over arbitrary Layer implementations (external
// layers, future additions) at per-window cost.
func forwardBatch(l Layer, ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	if bf, ok := l.(BatchForwarder); ok {
		return bf.ForwardBatch(ws, xs, train)
	}
	batchInferenceOnly(train)
	out := ws.Matrices(len(xs))
	for i, x := range xs {
		//cogarm:allow zeroalloc -- generic per-window fallback for layers outside the fused set; every built-in layer implements BatchForwarder
		out[i] = l.Forward(x, false)
	}
	return out
}

// ForwardBatch runs inference on B same-shape windows through every layer's
// batched path, returning one output per window in order. Dense, Conv1D and
// attention projections collapse their B small matmuls into one batch×feature
// GEMM; the LSTM steps all B windows together (one B×4H GEMM per timestep);
// row-wise layers process one stacked matrix. Results are bitwise identical
// to per-window Forward(x, false), with or without a workspace. See
// BatchForwarder for the contract (ws may be nil = unpooled).
//
//cogarm:zeroalloc
func (n *Network) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	r, c := xs[0].Rows, xs[0].Cols
	for _, x := range xs[1:] {
		if x.Rows != r || x.Cols != c {
			panic(fmt.Sprintf("nn: ForwardBatch window shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, r, c))
		}
	}
	for li := 0; li < len(n.Layers); li++ {
		l := n.Layers[li]
		// Dense→ReLU and Conv1D→ReLU sequences collapse into one GEMM with a
		// bias+ReLU epilogue; the ReLU layer itself is skipped.
		if ef, ok := l.(epilogueFuser); ok && li+1 < len(n.Layers) {
			if _, nextIsReLU := n.Layers[li+1].(*ReLU); nextIsReLU {
				xs = ef.forwardBatchFused(ws, xs, true)
				li++
				continue
			}
		}
		xs = forwardBatch(l, ws, xs, false)
	}
	return xs
}

// PredictBatch classifies B same-shape windows in one fused pass and returns
// one class index per window, identical to calling Predict on each. The
// labels are written into dst when it has capacity (pass a reused buffer for
// an allocation-free call); dst may be nil.
//
//cogarm:zeroalloc
func (n *Network) PredictBatch(ws *tensor.Workspace, xs []*tensor.Matrix, dst []int) []int {
	outs := n.ForwardBatch(ws, xs, false)
	if cap(dst) < len(outs) {
		//cogarm:allow zeroalloc -- label-buffer warm-up; a reused dst never grows past its high-water mark
		dst = make([]int, len(outs))
	}
	dst = dst[:len(outs)]
	for i, out := range outs {
		dst[i] = tensor.Argmax(out.Row(0))
	}
	return dst
}
