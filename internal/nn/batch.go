package nn

import (
	"fmt"

	"cognitivearm/internal/tensor"
)

// BatchForwarder is the optional fused batched-inference extension of Layer.
// ForwardBatch consumes B same-shape windows and returns B outputs, exactly
// matching B independent Forward(x, false) calls element-for-element.
//
// Contract:
//   - Inference only: train must be false. The batched kernels write no layer
//     state (there is nothing for Backward to consume), so implementations
//     panic on train=true rather than silently corrupting training caches.
//   - Goroutine safety mirrors Forward(x, false): a trained layer may serve
//     concurrent ForwardBatch / Forward calls from many goroutines because
//     neither path writes the receiver.
//   - Returned matrices may be views into one shared backing array
//     (tensor.SplitRows); callers must not assume they are independently
//     resizable, and must copy before mutating if they outlive the batch.
//   - All windows in one call must share the same shape. Mixed shapes are the
//     caller's problem (see Network.ForwardBatch, which enforces this).
type BatchForwarder interface {
	ForwardBatch(xs []*tensor.Matrix, train bool) []*tensor.Matrix
}

// batchInferenceOnly is the shared train-guard for every fused kernel.
func batchInferenceOnly(train bool) {
	if train {
		panic("nn: ForwardBatch is inference-only (train must be false)")
	}
}

// forwardBatch routes one layer: through its fused kernel when it implements
// BatchForwarder, else through the generic per-window fallback. The fallback
// keeps ForwardBatch total over arbitrary Layer implementations (external
// layers, future additions) at per-window cost.
func forwardBatch(l Layer, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	if bf, ok := l.(BatchForwarder); ok {
		return bf.ForwardBatch(xs, train)
	}
	batchInferenceOnly(train)
	out := make([]*tensor.Matrix, len(xs))
	for i, x := range xs {
		out[i] = l.Forward(x, false)
	}
	return out
}

// ForwardBatch runs inference on B same-shape windows through every layer's
// batched path, returning one output per window in order. Dense, Conv1D and
// attention projections collapse their B small matmuls into one batch×feature
// GEMM; the LSTM steps all B windows together (one B×4H GEMM per timestep);
// row-wise layers process one stacked matrix. Results are bitwise identical
// to per-window Forward(x, false). See BatchForwarder for the contract.
func (n *Network) ForwardBatch(xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	r, c := xs[0].Rows, xs[0].Cols
	for _, x := range xs[1:] {
		if x.Rows != r || x.Cols != c {
			panic(fmt.Sprintf("nn: ForwardBatch window shape mismatch %dx%d vs %dx%d", x.Rows, x.Cols, r, c))
		}
	}
	for _, l := range n.Layers {
		xs = forwardBatch(l, xs, false)
	}
	return xs
}

// PredictBatch classifies B same-shape windows in one fused pass and returns
// one class index per window, identical to calling Predict on each.
func (n *Network) PredictBatch(xs []*tensor.Matrix) []int {
	outs := n.ForwardBatch(xs, false)
	labels := make([]int, len(outs))
	for i, out := range outs {
		labels[i] = tensor.Argmax(out.Row(0))
	}
	return labels
}
