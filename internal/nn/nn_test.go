package nn

import (
	"math"
	"strings"
	"testing"

	"cognitivearm/internal/tensor"
)

// toyProblem builds a linearly separable sequence-classification task: the
// class determines which input column carries a positive mean.
func toyProblem(n, timesteps, features, classes int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	out := make([]Example, n)
	for i := range out {
		label := rng.Intn(classes)
		x := tensor.New(timesteps, features)
		for t := 0; t < timesteps; t++ {
			row := x.Row(t)
			for j := range row {
				row[j] = 0.3 * rng.NormFloat64()
			}
			row[label%features] += 1.0
		}
		out[i] = Example{X: x, Label: label}
	}
	return out
}

func TestCrossEntropyValues(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float64{0, 0, 0})
	loss, grad := CrossEntropy(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform loss %v want ln3", loss)
	}
	// grad = p - onehot
	if math.Abs(grad.Data[0]-1.0/3) > 1e-12 || math.Abs(grad.Data[1]+2.0/3) > 1e-12 {
		t.Fatalf("grad %v", grad.Data)
	}
}

func TestCrossEntropyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad label")
		}
	}()
	CrossEntropy(tensor.New(1, 3), 5)
}

func TestNetworkParamCount(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork(NewDense(10, 5, rng), NewReLU(), NewDense(5, 3, rng))
	want := 10*5 + 5 + 5*3 + 3
	if got := net.NumParams(); got != want {
		t.Fatalf("params %d want %d", got, want)
	}
	if !strings.Contains(net.String(), "Dense(10→5)") {
		t.Fatalf("String() = %q", net.String())
	}
}

func TestDenseShapePanic(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense(4, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(tensor.New(1, 5), false)
}

func TestConvOutLen(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewConv1D(2, 3, 5, 2, rng)
	cases := map[int]int{5: 1, 6: 1, 7: 2, 9: 3, 4: 0}
	for in, want := range cases {
		if got := c.OutLen(in); got != want {
			t.Fatalf("OutLen(%d)=%d want %d", in, got, want)
		}
	}
}

func TestPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice(4, 2, []float64{
		1, 10,
		3, 20,
		2, 5,
		4, 0,
	})
	maxP := NewPool1D(MaxPoolKind, 2)
	y := maxP.Forward(x, false)
	if y.Rows != 2 || y.At(0, 0) != 3 || y.At(0, 1) != 20 || y.At(1, 0) != 4 {
		t.Fatalf("max pool wrong: %+v", y.Data)
	}
	avgP := NewPool1D(AvgPoolKind, 2)
	y2 := avgP.Forward(x, false)
	if y2.At(0, 0) != 2 || y2.At(0, 1) != 15 {
		t.Fatalf("avg pool wrong: %+v", y2.Data)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(5)
	d := NewDropout(0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	// Eval: identity.
	y := d.Forward(x, false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Train: ~half zeroed, survivors scaled by 2.
	y = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout rate off: %d/1000 zeroed", zeros)
	}
	_ = twos
}

func TestDropoutBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, tensor.NewRNG(1))
}

func TestLSTMForwardShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLSTM(4, 8, rng)
	y := l.Forward(randInput(10, 4, 3), false)
	if y.Rows != 10 || y.Cols != 8 {
		t.Fatalf("LSTM output %dx%d", y.Rows, y.Cols)
	}
	// Hidden states bounded by tanh×sigmoid.
	for _, v := range y.Data {
		if v < -1 || v > 1 {
			t.Fatalf("hidden state %v out of [-1,1]", v)
		}
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMultiHeadAttention(8, 2, rng)
	m.Forward(randInput(6, 8, 5), false)
	for h, a := range m.attn {
		for i := 0; i < a.Rows; i++ {
			var s float64
			for _, v := range a.Row(i) {
				if v < 0 {
					t.Fatalf("negative attention weight head %d", h)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("head %d row %d sums to %v", h, i, s)
			}
		}
	}
}

func TestAttentionHeadDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadAttention(10, 3, tensor.NewRNG(1))
}

func TestLayerNormOutput(t *testing.T) {
	ln := NewLayerNorm(8)
	y := ln.Forward(randInput(3, 8, 6), false)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		if math.Abs(tensor.Mean(row)) > 1e-9 {
			t.Fatalf("row %d mean %v", i, tensor.Mean(row))
		}
		if math.Abs(tensor.Std(row)-1) > 1e-3 {
			t.Fatalf("row %d std %v", i, tensor.Std(row))
		}
	}
}

func TestFitLearnsDenseToy(t *testing.T) {
	rng := tensor.NewRNG(10)
	_ = rng
	train := toyProblem(200, 1, 6, 3, 11)
	val := toyProblem(60, 1, 6, 3, 12)
	net := NewNetwork(NewFlatten(), NewDense(6, 16, tensor.NewRNG(13)), NewReLU(), NewDense(16, 3, tensor.NewRNG(14)))
	hist := Fit(net, train, val, TrainConfig{Epochs: 30, BatchSize: 16, Optimizer: NewAdam(0.01), Seed: 15})
	finalAcc := hist.ValAcc[len(hist.ValAcc)-1]
	if finalAcc < 0.9 {
		t.Fatalf("dense net failed to learn toy problem: acc %v", finalAcc)
	}
	if hist.TrainLoss[0] < hist.TrainLoss[len(hist.TrainLoss)-1] {
		t.Fatal("training loss should decrease")
	}
}

func TestFitLearnsConvToy(t *testing.T) {
	train := toyProblem(150, 12, 4, 3, 21)
	val := toyProblem(50, 12, 4, 3, 22)
	rng := tensor.NewRNG(23)
	net := NewNetwork(
		NewConv1D(4, 8, 3, 2, rng),
		NewReLU(),
		NewFlatten(),
		NewDense(8*5, 3, rng),
	)
	hist := Fit(net, train, val, TrainConfig{Epochs: 25, BatchSize: 16, Optimizer: NewAdam(0.005), Seed: 24})
	if acc := hist.ValAcc[len(hist.ValAcc)-1]; acc < 0.85 {
		t.Fatalf("conv net acc %v", acc)
	}
}

func TestFitLearnsLSTMToy(t *testing.T) {
	train := toyProblem(120, 8, 4, 3, 31)
	val := toyProblem(40, 8, 4, 3, 32)
	rng := tensor.NewRNG(33)
	net := NewNetwork(NewLSTM(4, 12, rng), NewLastStep(), NewDense(12, 3, rng))
	hist := Fit(net, train, val, TrainConfig{Epochs: 30, BatchSize: 12, Optimizer: NewAdam(0.01), Seed: 34})
	if acc := hist.ValAcc[len(hist.ValAcc)-1]; acc < 0.85 {
		t.Fatalf("lstm acc %v", acc)
	}
}

func TestFitLearnsTransformerToy(t *testing.T) {
	train := toyProblem(120, 8, 4, 3, 41)
	val := toyProblem(40, 8, 4, 3, 42)
	rng := tensor.NewRNG(43)
	net := NewNetwork(
		NewDense(4, 8, rng),
		NewPositionalEncoding(8),
		TransformerBlock(8, 2, 16, 0.1, rng),
		NewMeanPool(),
		NewDense(8, 3, rng),
	)
	hist := Fit(net, train, val, TrainConfig{Epochs: 30, BatchSize: 12, Optimizer: NewAdamW(0.005, 1e-4), Seed: 44})
	if acc := hist.ValAcc[len(hist.ValAcc)-1]; acc < 0.85 {
		t.Fatalf("transformer acc %v", acc)
	}
}

func TestEarlyStopping(t *testing.T) {
	train := toyProblem(60, 1, 4, 3, 51)
	val := toyProblem(20, 1, 4, 3, 52)
	rng := tensor.NewRNG(53)
	net := NewNetwork(NewFlatten(), NewDense(4, 8, rng), NewReLU(), NewDense(8, 3, rng))
	hist := Fit(net, train, val, TrainConfig{Epochs: 200, BatchSize: 16, Optimizer: NewAdam(0.01), Patience: 5, Seed: 54})
	if !hist.StoppedEarly {
		t.Skip("patience never triggered (acceptable but unusual)")
	}
	if len(hist.ValLoss) >= 200 {
		t.Fatal("early stopping did not shorten training")
	}
}

func TestOptimizersAllLearn(t *testing.T) {
	for _, name := range []string{"sgd", "rmsprop", "adam", "adamw"} {
		opt, err := NewOptimizer(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		train := toyProblem(150, 1, 5, 3, 61)
		val := toyProblem(50, 1, 5, 3, 62)
		rng := tensor.NewRNG(63)
		net := NewNetwork(NewFlatten(), NewDense(5, 12, rng), NewReLU(), NewDense(12, 3, rng))
		hist := Fit(net, train, val, TrainConfig{Epochs: 40, BatchSize: 16, Optimizer: opt, Seed: 64})
		if acc := hist.ValAcc[len(hist.ValAcc)-1]; acc < 0.8 {
			t.Fatalf("%s failed to learn: acc %v", name, acc)
		}
	}
	if _, err := NewOptimizer("lion", 0.01); err == nil {
		t.Fatal("unknown optimizer should error")
	}
}

func TestGradientClipping(t *testing.T) {
	rng := tensor.NewRNG(70)
	net := NewNetwork(NewDense(3, 2, rng))
	for _, p := range net.Params() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 100
		}
	}
	clipGrads(net, 1.0)
	var total float64
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	if math.Abs(math.Sqrt(total)-1.0) > 1e-9 {
		t.Fatalf("clipped norm %v want 1", math.Sqrt(total))
	}
}

func TestEvaluateEmpty(t *testing.T) {
	net := NewNetwork(NewDense(2, 2, tensor.NewRNG(1)))
	l, a := Evaluate(net, nil)
	if l != 0 || a != 0 {
		t.Fatal("empty evaluation should be zero")
	}
}

func TestPredictAndProbs(t *testing.T) {
	rng := tensor.NewRNG(80)
	net := NewNetwork(NewFlatten(), NewDense(4, 3, rng))
	x := randInput(1, 4, 81)
	probs := net.Probs(x)
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum %v", sum)
	}
	if net.Predict(x) != tensor.Argmax(probs) {
		t.Fatal("Predict disagrees with Probs argmax")
	}
}
