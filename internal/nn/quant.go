package nn

import (
	"errors"
	"fmt"

	"cognitivearm/internal/tensor"
)

// ErrQuantUnsupported marks a network whose architecture has no int8 path
// (LSTM and attention stacks keep their f64 kernels). Callers treat it as
// "serve the f64 model" rather than a hard failure.
var ErrQuantUnsupported = errors.New("nn: network has no quantized form")

// QDense is the int8 inference twin of Dense: weights quantized once into a
// transposed tensor.QMatrix, activations quantized per row on the fly, int32
// accumulation, f64 out (see tensor.MatMulQ). Inference-only — Backward
// panics — and approximate: serving gates it behind an agreement check
// against the exact f64 network.
type QDense struct {
	src *Dense
	w   *tensor.QMatrix
}

// QuantizeDense quantizes a trained Dense layer.
func QuantizeDense(d *Dense) *QDense {
	return &QDense{src: d, w: tensor.QuantizeWeights(d.Weight.W)}
}

// Forward implements Layer (inference only).
func (q *QDense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	batchInferenceOnly(train)
	if x.Cols != q.src.In {
		panic(fmt.Sprintf("nn: QDense expects %d inputs, got %d", q.src.In, x.Cols))
	}
	return tensor.MatMulQ(nil, nil, x, q.w, tensor.Epilogue{Bias: q.src.Bias.W.Data})
}

// ForwardBatch implements BatchForwarder.
//
//cogarm:zeroalloc
func (q *QDense) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	return q.forwardBatchFused(ws, xs, false)
}

// forwardBatchFused implements epilogueFuser over the int8 kernel.
//
//cogarm:zeroalloc
func (q *QDense) forwardBatchFused(ws *tensor.Workspace, xs []*tensor.Matrix, relu bool) []*tensor.Matrix {
	if len(xs) == 0 {
		return nil
	}
	if xs[0].Cols != q.src.In {
		panic(fmt.Sprintf("nn: QDense expects %d inputs, got %d", q.src.In, xs[0].Cols))
	}
	x := tensor.StackWS(ws, xs)
	y := tensor.MatMulQ(ws, ws.Uninit(x.Rows, q.src.Out), x, q.w,
		tensor.Epilogue{Bias: q.src.Bias.W.Data, ReLU: relu})
	return tensor.SplitRowsWS(ws, y, xs[0].Rows)
}

// Backward implements Layer: quantized layers are inference-only.
func (q *QDense) Backward(*tensor.Matrix) *tensor.Matrix {
	panic("nn: QDense is inference-only")
}

// Params implements Layer, delegating to the source layer so NumParams and
// checkpointing stay defined by the exact f64 weights.
func (q *QDense) Params() []*Param { return q.src.Params() }

// Name implements Layer.
func (q *QDense) Name() string { return fmt.Sprintf("QDense(%d→%d,int8)", q.src.In, q.src.Out) }

// QConv1D is the int8 inference twin of Conv1D: the same im2col unfold feeds
// tensor.MatMulQ against the quantized kernel weights.
type QConv1D struct {
	src *Conv1D
	w   *tensor.QMatrix
}

// QuantizeConv1D quantizes a trained Conv1D layer.
func QuantizeConv1D(c *Conv1D) *QConv1D {
	return &QConv1D{src: c, w: tensor.QuantizeWeights(c.Weight.W)}
}

// Forward implements Layer (inference only).
func (q *QConv1D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	batchInferenceOnly(train)
	outs := q.forwardBatchFused(nil, []*tensor.Matrix{x}, false)
	return outs[0]
}

// ForwardBatch implements BatchForwarder.
//
//cogarm:zeroalloc
func (q *QConv1D) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	return q.forwardBatchFused(ws, xs, false)
}

// forwardBatchFused implements epilogueFuser over the int8 kernel.
//
//cogarm:zeroalloc
func (q *QConv1D) forwardBatchFused(ws *tensor.Workspace, xs []*tensor.Matrix, relu bool) []*tensor.Matrix {
	if len(xs) == 0 {
		return nil
	}
	c := q.src
	x0 := xs[0]
	if x0.Cols != c.InChannels {
		panic(fmt.Sprintf("nn: QConv1D expects %d channels, got %d", c.InChannels, x0.Cols))
	}
	outT := c.OutLen(x0.Rows)
	if outT <= 0 {
		panic(fmt.Sprintf("nn: QConv1D input length %d shorter than kernel %d", x0.Rows, c.Kernel))
	}
	col := c.im2colWS(ws, xs, outT)
	y := tensor.MatMulQ(ws, ws.Uninit(col.Rows, c.OutChannels), col, q.w,
		tensor.Epilogue{Bias: c.Bias.W.Data, ReLU: relu})
	return tensor.SplitRowsWS(ws, y, outT)
}

// Backward implements Layer: quantized layers are inference-only.
func (q *QConv1D) Backward(*tensor.Matrix) *tensor.Matrix {
	panic("nn: QConv1D is inference-only")
}

// Params implements Layer, delegating to the source layer.
func (q *QConv1D) Params() []*Param { return q.src.Params() }

// Name implements Layer.
func (q *QConv1D) Name() string {
	return fmt.Sprintf("QConv1D(%d→%d,k%d,s%d,int8)", q.src.InChannels, q.src.OutChannels, q.src.Kernel, q.src.Stride)
}

// Quantize returns an inference-only int8 twin of the network: Dense and
// Conv1D layers swap for their quantized forms, stateless layers (ReLU,
// Dropout, pooling, Flatten) are shared, and anything with an f64-only kernel
// (LSTM, attention, LayerNorm) yields ErrQuantUnsupported. The original
// network is untouched and remains the exact path for checkpoints and
// replication.
func (n *Network) Quantize() (*Network, error) {
	layers := make([]Layer, 0, len(n.Layers))
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			layers = append(layers, QuantizeDense(v))
		case *Conv1D:
			layers = append(layers, QuantizeConv1D(v))
		case *ReLU, *Dropout, *Flatten, *MeanPool, *Pool1D, *LastStep:
			layers = append(layers, l)
		default:
			return nil, fmt.Errorf("%w: layer %s", ErrQuantUnsupported, l.Name())
		}
	}
	return NewNetwork(layers...), nil
}
