package nn

import (
	"fmt"
	"math"

	"cognitivearm/internal/tensor"
)

// Conv1D convolves over the time axis of a T×Cin input, producing T'×Cout
// where T' = (T − K)/S + 1 (valid padding). The kernel weight is stored as a
// (K·Cin)×Cout matrix so forward is one im2col + matmul — the layout the
// paper's "filter size / stride" search axis maps onto directly.
type Conv1D struct {
	InChannels, OutChannels int
	Kernel, Stride          int
	Weight                  *Param
	Bias                    *Param

	lastX   *tensor.Matrix
	lastCol *tensor.Matrix
	outT    int
}

// NewConv1D builds a temporal convolution with He initialisation.
func NewConv1D(inCh, outCh, kernel, stride int, rng *tensor.RNG) *Conv1D {
	if kernel < 1 || stride < 1 {
		panic(fmt.Sprintf("nn: conv kernel %d / stride %d invalid", kernel, stride))
	}
	c := &Conv1D{
		InChannels: inCh, OutChannels: outCh, Kernel: kernel, Stride: stride,
		Weight: newParam("conv.W", kernel*inCh, outCh),
		Bias:   newParam("conv.b", 1, outCh),
	}
	tensor.HeInit(c.Weight.W, kernel*inCh, rng)
	return c
}

// OutLen returns the output length for an input of length t.
func (c *Conv1D) OutLen(t int) int {
	if t < c.Kernel {
		return 0
	}
	return (t-c.Kernel)/c.Stride + 1
}

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.InChannels {
		panic(fmt.Sprintf("nn: Conv1D expects %d channels, got %d", c.InChannels, x.Cols))
	}
	outT := c.OutLen(x.Rows)
	if outT <= 0 {
		panic(fmt.Sprintf("nn: Conv1D input length %d shorter than kernel %d", x.Rows, c.Kernel))
	}
	// im2col: each output step's receptive field becomes one row.
	col := tensor.New(outT, c.Kernel*c.InChannels)
	for t := 0; t < outT; t++ {
		dst := col.Row(t)
		src := t * c.Stride
		for k := 0; k < c.Kernel; k++ {
			copy(dst[k*c.InChannels:(k+1)*c.InChannels], x.Row(src+k))
		}
	}
	if train {
		c.lastX = x
		c.outT = outT
		c.lastCol = col
	}
	y := tensor.MatMul(nil, col, c.Weight.W)
	tensor.AddRowVector(y, c.Bias.W.Data)
	return y
}

// ForwardBatch implements BatchForwarder: the B per-window im2col matrices
// concatenate into one (B·T')×(K·Cin) matrix so the whole batch convolves in
// a single GEMM against the kernel weight — the batched analogue of Forward's
// im2col + matmul, with the weight streamed once instead of B times.
//
//cogarm:zeroalloc
func (c *Conv1D) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	return c.forwardBatchFused(ws, xs, false)
}

// forwardBatchFused implements epilogueFuser: the im2col GEMM applies bias
// (and the following ReLU, when fused) in its epilogue while each row panel
// is still cache-hot, instead of a separate pass over the (B·T')×Cout output.
//
//cogarm:zeroalloc
func (c *Conv1D) forwardBatchFused(ws *tensor.Workspace, xs []*tensor.Matrix, relu bool) []*tensor.Matrix {
	if len(xs) == 0 {
		return nil
	}
	x0 := xs[0]
	if x0.Cols != c.InChannels {
		panic(fmt.Sprintf("nn: Conv1D expects %d channels, got %d", c.InChannels, x0.Cols))
	}
	outT := c.OutLen(x0.Rows)
	if outT <= 0 {
		panic(fmt.Sprintf("nn: Conv1D input length %d shorter than kernel %d", x0.Rows, c.Kernel))
	}
	col := c.im2colWS(ws, xs, outT)
	y := tensor.GEMM(ws, ws.Uninit(col.Rows, c.OutChannels), col, c.Weight.W,
		tensor.Epilogue{Bias: c.Bias.W.Data, ReLU: relu})
	return tensor.SplitRowsWS(ws, y, outT)
}

// im2colWS unfolds the batch into one (B·T')×(K·Cin) matrix drawn from ws.
//
//cogarm:zeroalloc
func (c *Conv1D) im2colWS(ws *tensor.Workspace, xs []*tensor.Matrix, outT int) *tensor.Matrix {
	col := ws.Uninit(len(xs)*outT, c.Kernel*c.InChannels)
	for i, x := range xs {
		for t := 0; t < outT; t++ {
			dst := col.Row(i*outT + t)
			src := t * c.Stride
			for k := 0; k < c.Kernel; k++ {
				copy(dst[k*c.InChannels:(k+1)*c.InChannels], x.Row(src+k))
			}
		}
	}
	return col
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	// dW += colᵀ·dY ; db += colsums(dY)
	dw := tensor.MatMulTransA(nil, c.lastCol, gradOut)
	tensor.Add(c.Weight.Grad, c.Weight.Grad, dw)
	sums := make([]float64, c.OutChannels)
	tensor.ColSums(sums, gradOut)
	for j := range sums {
		c.Bias.Grad.Data[j] += sums[j]
	}
	// dCol = dY·Wᵀ, then scatter back through the im2col mapping.
	dcol := tensor.MatMulTransB(nil, gradOut, c.Weight.W)
	dx := tensor.New(c.lastX.Rows, c.lastX.Cols)
	for t := 0; t < c.outT; t++ {
		src := dcol.Row(t)
		base := t * c.Stride
		for k := 0; k < c.Kernel; k++ {
			dst := dx.Row(base + k)
			seg := src[k*c.InChannels : (k+1)*c.InChannels]
			for j := range dst {
				dst[j] += seg[j]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("Conv1D(%d→%d,k%d,s%d)", c.InChannels, c.OutChannels, c.Kernel, c.Stride)
}

// PoolKind selects max or average pooling (Table III's "Pooling (Max/Avg)").
type PoolKind int

// Pooling kinds.
const (
	MaxPoolKind PoolKind = iota
	AvgPoolKind
)

// Pool1D pools over the time axis with the given window and equal stride.
type Pool1D struct {
	Kind   PoolKind
	Window int

	lastX  *tensor.Matrix
	argmax []int // flat index per output element (max pooling)
	outT   int
}

// NewPool1D creates a temporal pooling layer.
func NewPool1D(kind PoolKind, window int) *Pool1D {
	if window < 1 {
		panic("nn: pool window must be >= 1")
	}
	return &Pool1D{Kind: kind, Window: window}
}

// Forward implements Layer.
func (p *Pool1D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	outT := x.Rows / p.Window
	if outT == 0 {
		outT = 1 // degenerate input shorter than window: pool everything
	}
	var argmax []int
	if train && p.Kind == MaxPoolKind {
		argmax = make([]int, outT*x.Cols)
	}
	y := tensor.New(outT, x.Cols)
	for t := 0; t < outT; t++ {
		start := t * p.Window
		end := start + p.Window
		if end > x.Rows {
			end = x.Rows
		}
		for j := 0; j < x.Cols; j++ {
			switch p.Kind {
			case MaxPoolKind:
				best := math.Inf(-1)
				bi := start
				for r := start; r < end; r++ {
					if v := x.At(r, j); v > best {
						best, bi = v, r
					}
				}
				y.Set(t, j, best)
				if argmax != nil {
					argmax[t*x.Cols+j] = bi
				}
			case AvgPoolKind:
				var s float64
				for r := start; r < end; r++ {
					s += x.At(r, j)
				}
				y.Set(t, j, s/float64(end-start))
			}
		}
	}
	if train {
		p.lastX = x
		p.outT = outT
		p.argmax = argmax
	}
	return y
}

// ForwardBatch implements BatchForwarder: the pooling loops run per window
// (no cross-window arithmetic to fuse) but write into one shared (B·T')×C
// output, one scratch buffer for the batch.
//
//cogarm:zeroalloc
func (p *Pool1D) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	x0 := xs[0]
	outT := x0.Rows / p.Window
	if outT == 0 {
		outT = 1
	}
	y := ws.Uninit(len(xs)*outT, x0.Cols)
	for i, x := range xs {
		for t := 0; t < outT; t++ {
			start := t * p.Window
			end := start + p.Window
			if end > x.Rows {
				end = x.Rows
			}
			row := y.Row(i*outT + t)
			for j := 0; j < x.Cols; j++ {
				switch p.Kind {
				case MaxPoolKind:
					best := math.Inf(-1)
					for r := start; r < end; r++ {
						if v := x.At(r, j); v > best {
							best = v
						}
					}
					row[j] = best
				case AvgPoolKind:
					var s float64
					for r := start; r < end; r++ {
						s += x.At(r, j)
					}
					row[j] = s / float64(end-start)
				}
			}
		}
	}
	return tensor.SplitRowsWS(ws, y, outT)
}

// Backward implements Layer.
func (p *Pool1D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(p.lastX.Rows, p.lastX.Cols)
	for t := 0; t < p.outT; t++ {
		start := t * p.Window
		end := start + p.Window
		if end > p.lastX.Rows {
			end = p.lastX.Rows
		}
		for j := 0; j < dx.Cols; j++ {
			g := gradOut.At(t, j)
			switch p.Kind {
			case MaxPoolKind:
				dx.Data[p.argmax[t*dx.Cols+j]*dx.Cols+j] += g
			case AvgPoolKind:
				share := g / float64(end-start)
				for r := start; r < end; r++ {
					dx.Data[r*dx.Cols+j] += share
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *Pool1D) Params() []*Param { return nil }

// Name implements Layer.
func (p *Pool1D) Name() string {
	k := "Max"
	if p.Kind == AvgPoolKind {
		k = "Avg"
	}
	return fmt.Sprintf("%sPool1D(%d)", k, p.Window)
}
