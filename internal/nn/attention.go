package nn

import (
	"fmt"
	"math"

	"cognitivearm/internal/tensor"
)

// LayerNorm normalises each row to zero mean / unit variance and applies a
// learned affine transform, as used around every transformer sub-block.
type LayerNorm struct {
	Dim   int
	Gamma *Param
	Beta  *Param
	Eps   float64

	lastNorm *tensor.Matrix // cached normalised values x̂
	invStd   []float64
}

// NewLayerNorm creates the layer with γ=1, β=0.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Dim: dim, Gamma: newParam("ln.g", 1, dim), Beta: newParam("ln.b", 1, dim), Eps: 1e-5}
	ln.Gamma.W.Fill(1)
	return ln
}

// Forward implements Layer.
func (ln *LayerNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != ln.Dim {
		panic(fmt.Sprintf("nn: LayerNorm expects dim %d, got %d", ln.Dim, x.Cols))
	}
	y := tensor.New(x.Rows, x.Cols)
	// x̂ and 1/σ are backward-pass caches; skip them on the inference hot
	// path, where every serving-hub session would otherwise allocate and
	// fill a full matrix per LayerNorm per window.
	var norm *tensor.Matrix
	var invStd []float64
	if train {
		norm = tensor.New(x.Rows, x.Cols)
		invStd = make([]float64, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mu := tensor.Mean(row)
		var v float64
		for _, xv := range row {
			d := xv - mu
			v += d * d
		}
		v /= float64(len(row))
		inv := 1 / math.Sqrt(v+ln.Eps)
		yrow := y.Row(i)
		if train {
			invStd[i] = inv
			nrow := norm.Row(i)
			for j, xv := range row {
				nrow[j] = (xv - mu) * inv
				yrow[j] = nrow[j]*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
			}
		} else {
			for j, xv := range row {
				yrow[j] = (xv-mu)*inv*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
			}
		}
	}
	if train {
		ln.lastNorm = norm
		ln.invStd = invStd
	}
	return y
}

// ForwardBatch implements BatchForwarder: row-wise normalisation writes all
// B windows into one (B·T)×D output, one scratch buffer for the batch.
//
//cogarm:zeroalloc
func (ln *LayerNorm) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	if xs[0].Cols != ln.Dim {
		panic(fmt.Sprintf("nn: LayerNorm expects dim %d, got %d", ln.Dim, xs[0].Cols))
	}
	T := xs[0].Rows
	y := ws.Uninit(len(xs)*T, ln.Dim)
	for i, x := range xs {
		for t := 0; t < T; t++ {
			row := x.Row(t)
			mu := tensor.Mean(row)
			var v float64
			for _, xv := range row {
				d := xv - mu
				v += d * d
			}
			v /= float64(len(row))
			inv := 1 / math.Sqrt(v+ln.Eps)
			yrow := y.Row(i*T + t)
			for j, xv := range row {
				yrow[j] = (xv-mu)*inv*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
			}
		}
	}
	return tensor.SplitRowsWS(ws, y, T)
}

// Backward implements Layer.
func (ln *LayerNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(gradOut.Rows, gradOut.Cols)
	n := float64(ln.Dim)
	for i := 0; i < gradOut.Rows; i++ {
		g := gradOut.Row(i)
		xh := ln.lastNorm.Row(i)
		// parameter grads
		for j := range g {
			ln.Gamma.Grad.Data[j] += g[j] * xh[j]
			ln.Beta.Grad.Data[j] += g[j]
		}
		// dx̂ = g·γ ; dx = invStd/n · (n·dx̂ − Σdx̂ − x̂·Σ(dx̂⊙x̂))
		var sumD, sumDX float64
		dxh := make([]float64, ln.Dim)
		for j := range g {
			dxh[j] = g[j] * ln.Gamma.W.Data[j]
			sumD += dxh[j]
			sumDX += dxh[j] * xh[j]
		}
		inv := ln.invStd[i]
		drow := dx.Row(i)
		for j := range drow {
			drow[j] = inv / n * (n*dxh[j] - sumD - xh[j]*sumDX)
		}
	}
	return dx
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Name implements Layer.
func (ln *LayerNorm) Name() string { return fmt.Sprintf("LayerNorm(%d)", ln.Dim) }

// PositionalEncoding adds the fixed sinusoidal position signal of the
// original transformer to a T×D sequence.
type PositionalEncoding struct{ Dim int }

// NewPositionalEncoding creates the layer.
func NewPositionalEncoding(dim int) *PositionalEncoding { return &PositionalEncoding{Dim: dim} }

// Forward implements Layer.
func (pe *PositionalEncoding) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := x.Clone()
	for t := 0; t < y.Rows; t++ {
		row := y.Row(t)
		for j := 0; j < pe.Dim; j += 2 {
			angle := float64(t) / math.Pow(10000, float64(j)/float64(pe.Dim))
			row[j] += math.Sin(angle)
			if j+1 < pe.Dim {
				row[j+1] += math.Cos(angle)
			}
		}
	}
	return y
}

// ForwardBatch implements BatchForwarder: the sinusoid table depends only on
// the window length, so it is materialised once and added to every window —
// B−1 fewer trips through math.Sin/Cos/Pow than per-window Forward.
//
//cogarm:zeroalloc
func (pe *PositionalEncoding) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	T := xs[0].Rows
	enc := ws.Uninit(T, pe.Dim)
	for t := 0; t < T; t++ {
		row := enc.Row(t)
		for j := 0; j < pe.Dim; j += 2 {
			angle := float64(t) / math.Pow(10000, float64(j)/float64(pe.Dim))
			row[j] = math.Sin(angle)
			if j+1 < pe.Dim {
				row[j+1] = math.Cos(angle)
			}
		}
	}
	y := ws.Uninit(len(xs)*T, xs[0].Cols)
	for i, x := range xs {
		for t := 0; t < T; t++ {
			xrow, erow, yrow := x.Row(t), enc.Row(t), y.Row(i*T+t)
			copy(yrow, xrow)
			for j := range erow {
				yrow[j] += erow[j]
			}
		}
	}
	return tensor.SplitRowsWS(ws, y, T)
}

// Backward implements Layer. The encoding is additive, so gradients pass
// through unchanged.
func (pe *PositionalEncoding) Backward(gradOut *tensor.Matrix) *tensor.Matrix { return gradOut }

// Params implements Layer.
func (pe *PositionalEncoding) Params() []*Param { return nil }

// Name implements Layer.
func (pe *PositionalEncoding) Name() string { return "PosEnc" }

// MultiHeadAttention is self-attention over a T×D sequence with H heads of
// width D/H, including the output projection.
type MultiHeadAttention struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *Param

	lastX   *tensor.Matrix
	q, k, v *tensor.Matrix
	attn    []*tensor.Matrix // per-head T×T softmax weights
	concat  *tensor.Matrix
}

// NewMultiHeadAttention creates the block; dim must divide evenly by heads.
func NewMultiHeadAttention(dim, heads int, rng *tensor.RNG) *MultiHeadAttention {
	if heads < 1 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	m := &MultiHeadAttention{
		Dim: dim, Heads: heads,
		Wq: newParam("mha.Wq", dim, dim),
		Wk: newParam("mha.Wk", dim, dim),
		Wv: newParam("mha.Wv", dim, dim),
		Wo: newParam("mha.Wo", dim, dim),
	}
	for _, p := range []*Param{m.Wq, m.Wk, m.Wv, m.Wo} {
		tensor.XavierInit(p.W, dim, dim, rng)
	}
	return m
}

// headView returns the T×dk sub-matrix of m for head h as a copy.
func headView(m *tensor.Matrix, h, dk int) *tensor.Matrix {
	out := tensor.New(m.Rows, dk)
	headCopy(out, m, h, dk)
	return out
}

// headCopy extracts the T×dk sub-matrix of m for head h into dst.
func headCopy(dst, m *tensor.Matrix, h, dk int) {
	for t := 0; t < m.Rows; t++ {
		copy(dst.Row(t), m.Row(t)[h*dk:(h+1)*dk])
	}
}

// headAdd accumulates src (T×dk) into dst's head-h columns.
func headAdd(dst *tensor.Matrix, src *tensor.Matrix, h, dk int) {
	for t := 0; t < src.Rows; t++ {
		drow := dst.Row(t)[h*dk : (h+1)*dk]
		srow := src.Row(t)
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// Forward implements Layer.
func (m *MultiHeadAttention) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != m.Dim {
		panic(fmt.Sprintf("nn: attention expects dim %d, got %d", m.Dim, x.Cols))
	}
	q := tensor.MatMul(nil, x, m.Wq.W)
	k := tensor.MatMul(nil, x, m.Wk.W)
	v := tensor.MatMul(nil, x, m.Wv.W)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	attn := make([]*tensor.Matrix, m.Heads)
	concat := tensor.New(x.Rows, m.Dim)
	for h := 0; h < m.Heads; h++ {
		qh := headView(q, h, dk)
		kh := headView(k, h, dk)
		vh := headView(v, h, dk)
		scores := tensor.MatMulTransB(nil, qh, kh)
		tensor.Scale(scores, scale)
		tensor.SoftmaxRows(scores)
		attn[h] = scores
		oh := tensor.MatMul(nil, scores, vh)
		for t := 0; t < x.Rows; t++ {
			copy(concat.Row(t)[h*dk:(h+1)*dk], oh.Row(t))
		}
	}
	if train {
		m.lastX = x
		m.q, m.k, m.v = q, k, v
		m.attn = attn
		m.concat = concat
	}
	return tensor.MatMul(nil, concat, m.Wo.W)
}

// ForwardBatch implements BatchForwarder: the Q/K/V input projections and the
// output projection each run as one (B·T)×D GEMM over the stacked batch —
// 4 GEMMs total instead of 4·B — while the T×T attention itself stays
// per-window (scores never mix windows).
//
//cogarm:zeroalloc
func (m *MultiHeadAttention) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	B := len(xs)
	if B == 0 {
		return nil
	}
	if xs[0].Cols != m.Dim {
		panic(fmt.Sprintf("nn: attention expects dim %d, got %d", m.Dim, xs[0].Cols))
	}
	T := xs[0].Rows
	x := tensor.StackWS(ws, xs)
	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	//cogarm:allow zeroalloc -- proj never escapes: defined and called three times in this frame, so it stays on the stack (AllocsPerRun bench holds this path at zero)
	proj := func(w *Param) []*tensor.Matrix {
		return tensor.SplitRowsWS(ws, tensor.MatMulBatchedWS(ws, ws.Uninit(x.Rows, m.Dim), x, w.W), T)
	}
	//cogarm:allow zeroalloc -- calls to the non-escaping proj closure above; the body is verified through its tensor callees
	qs, ks, vs := proj(m.Wq), proj(m.Wk), proj(m.Wv)
	concat := ws.Uninit(B*T, m.Dim)
	// One set of per-head scratch, reused across every (window, head) pair —
	// shapes are loop-invariant, so the workspace footprint stays one head's
	// worth instead of B·H of them.
	qh, kh, vh := ws.Uninit(T, dk), ws.Uninit(T, dk), ws.Uninit(T, dk)
	scores := ws.Uninit(T, T)
	oh := ws.Uninit(T, dk)
	for i := 0; i < B; i++ {
		for h := 0; h < m.Heads; h++ {
			headCopy(qh, qs[i], h, dk)
			headCopy(kh, ks[i], h, dk)
			headCopy(vh, vs[i], h, dk)
			tensor.MatMulTransB(scores, qh, kh)
			tensor.Scale(scores, scale)
			tensor.SoftmaxRows(scores)
			tensor.MatMul(oh, scores, vh)
			for t := 0; t < T; t++ {
				copy(concat.Row(i*T + t)[h*dk:(h+1)*dk], oh.Row(t))
			}
		}
	}
	return tensor.SplitRowsWS(ws, tensor.MatMulBatchedWS(ws, ws.Uninit(B*T, m.Dim), concat, m.Wo.W), T)
}

// Backward implements Layer.
func (m *MultiHeadAttention) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	// Output projection.
	dWo := tensor.MatMulTransA(nil, m.concat, gradOut)
	tensor.Add(m.Wo.Grad, m.Wo.Grad, dWo)
	dConcat := tensor.MatMulTransB(nil, gradOut, m.Wo.W)

	dk := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	dq := tensor.New(m.q.Rows, m.Dim)
	dkM := tensor.New(m.k.Rows, m.Dim)
	dv := tensor.New(m.v.Rows, m.Dim)
	for h := 0; h < m.Heads; h++ {
		dOh := headView(dConcat, h, dk)
		qh := headView(m.q, h, dk)
		kh := headView(m.k, h, dk)
		vh := headView(m.v, h, dk)
		A := m.attn[h]
		// dA = dO·Vᵀ ; dV = Aᵀ·dO
		dA := tensor.MatMulTransB(nil, dOh, vh)
		dVh := tensor.MatMulTransA(nil, A, dOh)
		// softmax backward per row: dS = A ⊙ (dA − Σ(dA⊙A))
		dS := tensor.New(A.Rows, A.Cols)
		for i := 0; i < A.Rows; i++ {
			arow, darow, dsrow := A.Row(i), dA.Row(i), dS.Row(i)
			var dot float64
			for j := range arow {
				dot += darow[j] * arow[j]
			}
			for j := range arow {
				dsrow[j] = arow[j] * (darow[j] - dot)
			}
		}
		tensor.Scale(dS, scale)
		dQh := tensor.MatMul(nil, dS, kh)
		dKh := tensor.MatMulTransA(nil, dS, qh)
		headAdd(dq, dQh, h, dk)
		headAdd(dkM, dKh, h, dk)
		headAdd(dv, dVh, h, dk)
	}
	// Through the input projections.
	acc := func(p *Param, d *tensor.Matrix) {
		g := tensor.MatMulTransA(nil, m.lastX, d)
		tensor.Add(p.Grad, p.Grad, g)
	}
	acc(m.Wq, dq)
	acc(m.Wk, dkM)
	acc(m.Wv, dv)
	dx := tensor.MatMulTransB(nil, dq, m.Wq.W)
	tensor.Add(dx, dx, tensor.MatMulTransB(nil, dkM, m.Wk.W))
	tensor.Add(dx, dx, tensor.MatMulTransB(nil, dv, m.Wv.W))
	return dx
}

// Params implements Layer.
func (m *MultiHeadAttention) Params() []*Param {
	return []*Param{m.Wq, m.Wk, m.Wv, m.Wo}
}

// Name implements Layer.
func (m *MultiHeadAttention) Name() string {
	return fmt.Sprintf("MHA(d%d,h%d)", m.Dim, m.Heads)
}

// Residual wraps an inner layer with a skip connection: y = x + f(x).
type Residual struct{ Inner Layer }

// NewResidual wraps inner in a skip connection.
func NewResidual(inner Layer) *Residual { return &Residual{Inner: inner} }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	return tensor.Add(nil, x, r.Inner.Forward(x, train))
}

// ForwardBatch implements BatchForwarder: the inner layer runs batched, the
// skip additions stay per window.
//
//cogarm:zeroalloc
func (r *Residual) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	inner := forwardBatch(r.Inner, ws, xs, false)
	out := ws.Matrices(len(xs))
	for i, x := range xs {
		out[i] = tensor.Add(ws.Uninit(x.Rows, x.Cols), x, inner[i])
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	return tensor.Add(nil, gradOut, r.Inner.Backward(gradOut))
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Inner.Params() }

// Name implements Layer.
func (r *Residual) Name() string { return "Residual(" + r.Inner.Name() + ")" }

// Sequential groups layers so they can sit inside a Residual.
type Sequential struct{ Inner []Layer }

// NewSequential groups the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Inner: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Inner {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardBatch implements BatchForwarder: the batch threads through every
// inner layer's batched path.
//
//cogarm:zeroalloc
func (s *Sequential) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	for _, l := range s.Inner {
		xs = forwardBatch(l, ws, xs, false)
	}
	return xs
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Inner) - 1; i >= 0; i-- {
		gradOut = s.Inner[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Inner {
		out = append(out, l.Params()...)
	}
	return out
}

// Name implements Layer.
func (s *Sequential) Name() string {
	n := "Seq("
	for i, l := range s.Inner {
		if i > 0 {
			n += ","
		}
		n += l.Name()
	}
	return n + ")"
}

// TransformerBlock is one post-norm encoder layer: LN(x + MHA(x)) followed by
// LN(x + FF(x)) with a ReLU feed-forward of width ffDim.
func TransformerBlock(dim, heads, ffDim int, dropout float64, rng *tensor.RNG) Layer {
	attn := NewResidual(NewSequential(
		NewMultiHeadAttention(dim, heads, rng),
		NewDropout(dropout, rng.Fork()),
	))
	ff := NewResidual(NewSequential(
		NewDense(dim, ffDim, rng),
		NewReLU(),
		NewDense(ffDim, dim, rng),
		NewDropout(dropout, rng.Fork()),
	))
	return NewSequential(attn, NewLayerNorm(dim), ff, NewLayerNorm(dim))
}
