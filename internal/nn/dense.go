package nn

import (
	"fmt"

	"cognitivearm/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b, applied row-wise, so it
// works both on 1×in classifier heads and T×in per-timestep projections.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	lastX   *tensor.Matrix
}

// NewDense creates a Dense layer with Xavier-initialised weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam("dense.W", in, out), Bias: newParam("dense.b", 1, out)}
	tensor.XavierInit(d.Weight.W, in, out, rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got %d", d.In, x.Cols))
	}
	if train {
		d.lastX = x
	}
	y := tensor.MatMul(nil, x, d.Weight.W)
	tensor.AddRowVector(y, d.Bias.W.Data)
	return y
}

// ForwardBatch implements BatchForwarder: B T×In windows stack into one
// (B·T)×In matrix, fusing the B small matmuls into a single batch×feature
// GEMM with the bias add folded into its epilogue.
//
//cogarm:zeroalloc
func (d *Dense) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	return d.forwardBatchFused(ws, xs, false)
}

// forwardBatchFused implements epilogueFuser: one GEMM whose epilogue applies
// the bias and, when a ReLU layer follows in the network, the clamp too —
// saving the separate write-read pass over the activations. Bitwise-identical
// to the unfused ForwardBatch + ReLU composition by the tensor.GEMM contract.
//
//cogarm:zeroalloc
func (d *Dense) forwardBatchFused(ws *tensor.Workspace, xs []*tensor.Matrix, relu bool) []*tensor.Matrix {
	if len(xs) == 0 {
		return nil
	}
	if xs[0].Cols != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got %d", d.In, xs[0].Cols))
	}
	x := tensor.StackWS(ws, xs)
	y := tensor.GEMM(ws, ws.Uninit(x.Rows, d.Out), x, d.Weight.W,
		tensor.Epilogue{Bias: d.Bias.W.Data, ReLU: relu})
	return tensor.SplitRowsWS(ws, y, xs[0].Rows)
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	// dW += xᵀ·dY, db += colsum(dY), dX = dY·Wᵀ
	dw := tensor.MatMulTransA(nil, d.lastX, gradOut)
	tensor.Add(d.Weight.Grad, d.Weight.Grad, dw)
	sums := make([]float64, d.Out)
	tensor.ColSums(sums, gradOut)
	for j := range sums {
		d.Bias.Grad.Data[j] += sums[j]
	}
	return tensor.MatMulTransB(nil, gradOut, d.Weight.W)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := x.Clone()
	if !train {
		for i, v := range y.Data {
			if v <= 0 {
				y.Data[i] = 0
			}
		}
		return y
	}
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// ForwardBatch implements BatchForwarder: one clamp pass over a single
// stacked matrix, so the batch costs one scratch buffer instead of B clones.
//
//cogarm:zeroalloc
func (r *ReLU) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	y := tensor.StackWS(ws, xs)
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		}
	}
	return tensor.SplitRowsWS(ws, y, xs[0].Rows)
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := gradOut.Clone()
	for i := range g.Data {
		if !r.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1−P) (inverted dropout), so inference needs no rescaling.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.P == 0 {
		// No receiver writes on the inference path: a trained network must be
		// shareable read-only across goroutines.
		return x
	}
	y := x.Clone()
	if cap(d.mask) < len(y.Data) {
		d.mask = make([]float64, len(y.Data))
	}
	d.mask = d.mask[:len(y.Data)]
	keep := 1 - d.P
	scale := 1 / keep
	for i := range y.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			y.Data[i] *= scale
		} else {
			d.mask[i] = 0
			y.Data[i] = 0
		}
	}
	return y
}

// ForwardBatch implements BatchForwarder. Inference-mode dropout is the
// identity, so the batch passes through untouched.
//
//cogarm:zeroalloc
func (d *Dropout) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	return xs
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return gradOut
	}
	g := gradOut.Clone()
	for i := range g.Data {
		g.Data[i] *= d.mask[i]
	}
	return g
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2g)", d.P) }

// Flatten reshapes T×C into 1×(T·C) for the transition from temporal layers
// to a classifier head.
type Flatten struct{ rows, cols int }

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		f.rows, f.cols = x.Rows, x.Cols
	}
	return tensor.FromSlice(1, x.Rows*x.Cols, append([]float64(nil), x.Data...))
}

// ForwardBatch implements BatchForwarder. Row-major windows flatten by
// reinterpretation: one stacked copy serves all B flattened rows as views.
//
//cogarm:zeroalloc
func (f *Flatten) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	y := tensor.StackWS(ws, xs)
	flat := ws.View(len(xs), xs[0].Rows*xs[0].Cols, y.Data)
	return tensor.SplitRowsWS(ws, flat, 1)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	return tensor.FromSlice(f.rows, f.cols, append([]float64(nil), gradOut.Data...))
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// MeanPool averages over time (rows), producing a 1×C summary — the readout
// used by the transformer classifier.
type MeanPool struct{ rows int }

// NewMeanPool returns a temporal mean-pooling layer.
func NewMeanPool() *MeanPool { return &MeanPool{} }

// Forward implements Layer.
func (m *MeanPool) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		m.rows = x.Rows
	}
	out := tensor.New(1, x.Cols)
	tensor.ColSums(out.Data, x)
	tensor.Scale(out, 1/float64(x.Rows))
	return out
}

// ForwardBatch implements BatchForwarder: all B pooled rows land in one B×C
// matrix handed out as views.
//
//cogarm:zeroalloc
func (m *MeanPool) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	out := ws.Uninit(len(xs), xs[0].Cols)
	for i, x := range xs {
		row := out.Row(i)
		tensor.ColSums(row, x)
		inv := 1 / float64(x.Rows)
		for j := range row {
			row[j] *= inv
		}
	}
	return tensor.SplitRowsWS(ws, out, 1)
}

// Backward implements Layer.
func (m *MeanPool) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := tensor.New(m.rows, gradOut.Cols)
	inv := 1 / float64(m.rows)
	for t := 0; t < m.rows; t++ {
		row := g.Row(t)
		for j := range row {
			row[j] = gradOut.Data[j] * inv
		}
	}
	return g
}

// Params implements Layer.
func (m *MeanPool) Params() []*Param { return nil }

// Name implements Layer.
func (m *MeanPool) Name() string { return "MeanPool" }
