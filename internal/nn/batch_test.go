package nn

import (
	"testing"

	"cognitivearm/internal/tensor"
)

// randWindows builds B identical-shape random inputs.
func randWindows(b, rows, cols int, rng *tensor.RNG) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, b)
	for i := range xs {
		x := tensor.New(rows, cols)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// assertBatchMatchesForward demands that l.ForwardBatch equals B independent
// Forward(x, false) calls bitwise — on the unpooled (nil workspace) path and
// on a workspace that has already served (and Reset after) a previous batch,
// so stale scratch contents leaking into results would be caught.
func assertBatchMatchesForward(t *testing.T, name string, l Layer, xs []*tensor.Matrix) {
	t.Helper()
	bf, ok := l.(BatchForwarder)
	if !ok {
		t.Fatalf("%s: layer does not implement BatchForwarder", name)
	}
	ws := tensor.NewWorkspace()
	bf.ForwardBatch(ws, xs, false) // warm the buckets with a prior cycle
	ws.Reset()
	for _, tc := range []struct {
		path string
		ws   *tensor.Workspace
	}{{"unpooled", nil}, {"workspace-reused", ws}} {
		got := bf.ForwardBatch(tc.ws, xs, false)
		if len(got) != len(xs) {
			t.Fatalf("%s[%s]: batch returned %d outputs for %d windows", name, tc.path, len(got), len(xs))
		}
		for i, x := range xs {
			want := l.Forward(x, false)
			g := got[i]
			if g.Rows != want.Rows || g.Cols != want.Cols {
				t.Fatalf("%s[%s] window %d: shape %dx%d, want %dx%d", name, tc.path, i, g.Rows, g.Cols, want.Rows, want.Cols)
			}
			for j := range want.Data {
				if g.Data[j] != want.Data[j] {
					t.Fatalf("%s[%s] window %d element %d: batched %v != sequential %v (must be bitwise identical)",
						name, tc.path, i, j, g.Data[j], want.Data[j])
				}
			}
		}
	}
}

// TestForwardBatchMatchesForwardPerLayer covers every layer family's fused
// kernel against the per-window reference, including the structural wrappers.
func TestForwardBatchMatchesForwardPerLayer(t *testing.T) {
	rng := tensor.NewRNG(41)
	const B, T, C = 7, 20, 6
	cases := []struct {
		name       string
		layer      Layer
		rows, cols int
	}{
		{"Dense", NewDense(C, 9, rng), T, C},
		{"ReLU", NewReLU(), T, C},
		{"Dropout", NewDropout(0.4, rng.Fork()), T, C},
		{"Flatten", NewFlatten(), T, C},
		{"MeanPool", NewMeanPool(), T, C},
		{"Conv1D", NewConv1D(C, 8, 5, 2, rng), T, C},
		{"MaxPool1D", NewPool1D(MaxPoolKind, 3), T, C},
		{"AvgPool1D", NewPool1D(AvgPoolKind, 3), T, C},
		{"Pool1DDegenerate", NewPool1D(MaxPoolKind, T+5), T, C},
		{"LSTM", NewLSTM(C, 10, rng), T, C},
		{"LastStep", NewLastStep(), T, C},
		{"LayerNorm", NewLayerNorm(C), T, C},
		{"PosEnc", NewPositionalEncoding(C), T, C},
		{"MHA", NewMultiHeadAttention(8, 2, rng), T, 8},
		{"Residual", NewResidual(NewDense(C, C, rng)), T, C},
		{"Sequential", NewSequential(NewDense(C, 12, rng), NewReLU(), NewDense(12, C, rng)), T, C},
		{"TransformerBlock", TransformerBlock(8, 2, 16, 0.1, rng), T, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertBatchMatchesForward(t, tc.name, tc.layer, randWindows(B, tc.rows, tc.cols, rng))
		})
	}
}

// TestNetworkForwardBatchMatchesPredict runs a full stack end to end.
func TestNetworkForwardBatchMatchesPredict(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork(
		NewConv1D(4, 6, 3, 1, rng),
		NewReLU(),
		NewMeanPool(),
		NewDropout(0.3, rng.Fork()),
		NewDense(6, 3, rng),
	)
	xs := randWindows(9, 16, 4, rng)
	outs := net.ForwardBatch(nil, xs, false)
	labels := net.PredictBatch(nil, xs, nil)
	for i, x := range xs {
		if want := net.Predict(x); labels[i] != want {
			t.Fatalf("window %d: batched label %d != sequential %d", i, labels[i], want)
		}
		want := net.Forward(x, false)
		for j := range want.Data {
			if outs[i].Data[j] != want.Data[j] {
				t.Fatalf("window %d logit %d: batched %v != sequential %v", i, j, outs[i].Data[j], want.Data[j])
			}
		}
	}
}

// TestForwardBatchTrainPanics pins the inference-only contract.
func TestForwardBatchTrainPanics(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewNetwork(NewDense(3, 2, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardBatch(train=true) must panic")
		}
	}()
	net.ForwardBatch(nil, randWindows(2, 1, 3, rng), true)
}

// TestForwardBatchShapeMismatchPanics pins the same-shape requirement.
func TestForwardBatchShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(NewDense(3, 2, rng))
	xs := []*tensor.Matrix{tensor.New(4, 3), tensor.New(5, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("mixed window shapes must panic")
		}
	}()
	net.ForwardBatch(nil, xs, false)
}

// TestForwardBatchEmpty: an empty batch is a no-op, not a panic.
func TestForwardBatchEmpty(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := NewNetwork(NewDense(3, 2, rng))
	if out := net.ForwardBatch(nil, nil, false); len(out) != 0 {
		t.Fatalf("empty batch returned %d outputs", len(out))
	}
	if out := net.PredictBatch(nil, nil, nil); len(out) != 0 {
		t.Fatalf("empty PredictBatch returned %d labels", len(out))
	}
}
