package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float64
}

// NewSGD creates the optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, p.Size())
			o.vel[p] = v
		}
		for i := range p.W.Data {
			v[i] = o.Momentum*v[i] - o.LR*p.Grad.Data[i]
			p.W.Data[i] += v[i]
		}
	}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return fmt.Sprintf("SGD(lr=%g,m=%g)", o.LR, o.Momentum) }

// RMSProp divides the step by a running RMS of gradients.
type RMSProp struct {
	LR, Decay, Eps float64
	sq             map[*Param][]float64
}

// NewRMSProp creates the optimizer with the conventional decay of 0.9.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.9, Eps: 1e-8, sq: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *RMSProp) Step(params []*Param) {
	for _, p := range params {
		s, ok := o.sq[p]
		if !ok {
			s = make([]float64, p.Size())
			o.sq[p] = s
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			s[i] = o.Decay*s[i] + (1-o.Decay)*g*g
			p.W.Data[i] -= o.LR * g / (math.Sqrt(s[i]) + o.Eps)
		}
	}
}

// Name implements Optimizer.
func (o *RMSProp) Name() string { return fmt.Sprintf("RMSProp(lr=%g)", o.LR) }

// Adam is the Adam optimizer; WeightDecay > 0 turns it into AdamW (decoupled
// decay, the Table III transformer setting).
type Adam struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64
	t                                  int
	m, v                               map[*Param][]float64
}

// NewAdam creates Adam with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// NewAdamW creates AdamW with the given decoupled weight decay.
func NewAdamW(lr, weightDecay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = weightDecay
	return a
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, p.Size())
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float64, p.Size())
			o.v[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			upd := o.LR * mh / (math.Sqrt(vh) + o.Eps)
			if o.WeightDecay > 0 {
				upd += o.LR * o.WeightDecay * p.W.Data[i]
			}
			p.W.Data[i] -= upd
		}
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string {
	if o.WeightDecay > 0 {
		return fmt.Sprintf("AdamW(lr=%g,wd=%g)", o.LR, o.WeightDecay)
	}
	return fmt.Sprintf("Adam(lr=%g)", o.LR)
}

// NewOptimizer constructs an optimizer by the names used in Table III.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr, 0.9), nil
	case "rmsprop":
		return NewRMSProp(lr), nil
	case "adam":
		return NewAdam(lr), nil
	case "adamw":
		return NewAdamW(lr, 1e-4), nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
