package nn

import (
	"fmt"
	"math"

	"cognitivearm/internal/tensor"
)

// LSTM is a single recurrent layer processing a T×In sequence into the full
// T×Hidden hidden-state sequence (stackable; follow with LastStep to read out
// the final state). Gates use the standard concatenated-weight layout:
// [x_t, h_{t−1}]·W + b → (i, f, g, o), each of width Hidden.
type LSTM struct {
	In, Hidden int
	Weight     *Param // (In+Hidden) × 4·Hidden
	Bias       *Param // 1 × 4·Hidden

	// per-step caches for BPTT
	steps int
	xs    *tensor.Matrix
	hs    *tensor.Matrix // (T+1)×H, row 0 = h_0 = 0
	cs    *tensor.Matrix // (T+1)×H
	gateI *tensor.Matrix // T×H sigmoid(i)
	gateF *tensor.Matrix
	gateG *tensor.Matrix // tanh(g)
	gateO *tensor.Matrix
	tc    *tensor.Matrix // tanh(c_t)
}

// NewLSTM creates the layer with Xavier-initialised weights and forget-gate
// bias of 1 (the standard trick for gradient flow at initialisation).
func NewLSTM(in, hidden int, rng *tensor.RNG) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Weight: newParam("lstm.W", in+hidden, 4*hidden),
		Bias:   newParam("lstm.b", 1, 4*hidden),
	}
	tensor.XavierInit(l.Weight.W, in+hidden, 4*hidden, rng)
	for j := hidden; j < 2*hidden; j++ {
		l.Bias.W.Data[j] = 1
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: LSTM expects %d inputs, got %d", l.In, x.Cols))
	}
	T, H := x.Rows, l.Hidden
	hs := tensor.New(T+1, H)
	cs := tensor.New(T+1, H)
	gateI := tensor.New(T, H)
	gateF := tensor.New(T, H)
	gateG := tensor.New(T, H)
	gateO := tensor.New(T, H)
	tcM := tensor.New(T, H)

	z := make([]float64, l.In+H)
	gates := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		copy(z[:l.In], x.Row(t))
		copy(z[l.In:], hs.Row(t))
		// gates = z·W + b
		for j := range gates {
			gates[j] = l.Bias.W.Data[j]
		}
		for k, zk := range z {
			if zk == 0 {
				continue
			}
			wrow := l.Weight.W.Row(k)
			for j := range gates {
				gates[j] += zk * wrow[j]
			}
		}
		hi, hf, hg, ho := gateI.Row(t), gateF.Row(t), gateG.Row(t), gateO.Row(t)
		cPrev := cs.Row(t)
		cNext := cs.Row(t + 1)
		hNext := hs.Row(t + 1)
		tc := tcM.Row(t)
		for j := 0; j < H; j++ {
			hi[j] = sigmoid(gates[j])
			hf[j] = sigmoid(gates[H+j])
			hg[j] = math.Tanh(gates[2*H+j])
			ho[j] = sigmoid(gates[3*H+j])
			cNext[j] = hf[j]*cPrev[j] + hi[j]*hg[j]
			tc[j] = math.Tanh(cNext[j])
			hNext[j] = ho[j] * tc[j]
		}
	}
	if train {
		l.steps = T
		l.xs = x
		l.hs, l.cs = hs, cs
		l.gateI, l.gateF, l.gateG, l.gateO = gateI, gateF, gateG, gateO
		l.tc = tcM
	}
	out := tensor.New(T, H)
	copy(out.Data, hs.Data[H:]) // rows 1..T
	return out
}

// ForwardBatch implements BatchForwarder: all B windows advance through the
// recurrence together. Each timestep accumulates one B×4H gate matrix in
// weight-row-major order — every row of W is streamed once per step for the
// whole batch instead of once per window — with bias-first, k-ascending
// accumulation so every gate value matches Forward bitwise.
//
//cogarm:zeroalloc
func (l *LSTM) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	B := len(xs)
	if B == 0 {
		return nil
	}
	if xs[0].Cols != l.In {
		panic(fmt.Sprintf("nn: LSTM expects %d inputs, got %d", l.In, xs[0].Cols))
	}
	T, H := xs[0].Rows, l.Hidden
	h := ws.Zeros(B, H)
	c := ws.Zeros(B, H)
	gates := ws.Uninit(B, 4*H) // fully overwritten from the bias each step
	out := ws.Uninit(B*T, H)
	// accumulate adds in[i]·wrow into window i's gate row for the whole
	// batch, four windows per pass so wrow loads and loop overhead amortise
	// (the same micro-kernel shape as tensor.MatMulBatched). Per-element
	// accumulation order stays k-ascending, matching Forward bitwise.
	//cogarm:allow zeroalloc -- accumulate never escapes this frame; its tensor reads go through the annotated At/Row kernels
	accumulate := func(wrow []float64, in func(i int) float64) {
		i := 0
		for ; i+4 <= B; i += 4 {
			c0, c1, c2, c3 := in(i), in(i+1), in(i+2), in(i+3)
			if c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0 {
				continue
			}
			g0, g1, g2, g3 := gates.Row(i), gates.Row(i+1), gates.Row(i+2), gates.Row(i+3)
			for j, wv := range wrow {
				g0[j] += c0 * wv
				g1[j] += c1 * wv
				g2[j] += c2 * wv
				g3[j] += c3 * wv
			}
		}
		for ; i < B; i++ {
			zk := in(i)
			if zk == 0 {
				continue
			}
			grow := gates.Row(i)
			for j, wv := range wrow {
				grow[j] += zk * wv
			}
		}
	}
	for t := 0; t < T; t++ {
		for i := 0; i < B; i++ {
			copy(gates.Row(i), l.Bias.W.Data)
		}
		for k := 0; k < l.In; k++ {
			wrow := l.Weight.W.Row(k)
			//cogarm:allow zeroalloc -- non-escaping closure call; the stack-allocated in() thunk reads one matrix cell
			accumulate(wrow, func(i int) float64 { return xs[i].At(t, k) })
		}
		for k := 0; k < H; k++ {
			wrow := l.Weight.W.Row(l.In + k)
			//cogarm:allow zeroalloc -- non-escaping closure call; the stack-allocated in() thunk reads one matrix cell
			accumulate(wrow, func(i int) float64 { return h.At(i, k) })
		}
		for i := 0; i < B; i++ {
			grow := gates.Row(i)
			crow := c.Row(i)
			hrow := h.Row(i)
			orow := out.Row(i*T + t)
			for j := 0; j < H; j++ {
				iv := sigmoid(grow[j])
				fv := sigmoid(grow[H+j])
				gv := math.Tanh(grow[2*H+j])
				ov := sigmoid(grow[3*H+j])
				crow[j] = fv*crow[j] + iv*gv
				hrow[j] = ov * math.Tanh(crow[j])
				orow[j] = hrow[j]
			}
		}
	}
	return tensor.SplitRowsWS(ws, out, T)
}

// Backward implements Layer.
func (l *LSTM) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	T, H := l.steps, l.Hidden
	dx := tensor.New(T, l.In)
	dh := make([]float64, H) // recurrent dL/dh_t
	dc := make([]float64, H)
	dgates := make([]float64, 4*H)
	z := make([]float64, l.In+H)

	for t := T - 1; t >= 0; t-- {
		hi, hf, hg, ho := l.gateI.Row(t), l.gateF.Row(t), l.gateG.Row(t), l.gateO.Row(t)
		tc := l.tc.Row(t)
		cPrev := l.cs.Row(t)
		gOut := gradOut.Row(t)
		for j := 0; j < H; j++ {
			dhj := gOut[j] + dh[j]
			// h = o·tanh(c)
			do := dhj * tc[j]
			dcj := dhj*ho[j]*(1-tc[j]*tc[j]) + dc[j]
			di := dcj * hg[j]
			df := dcj * cPrev[j]
			dg := dcj * hi[j]
			dc[j] = dcj * hf[j]
			// through the gate nonlinearities
			dgates[j] = di * hi[j] * (1 - hi[j])
			dgates[H+j] = df * hf[j] * (1 - hf[j])
			dgates[2*H+j] = dg * (1 - hg[j]*hg[j])
			dgates[3*H+j] = do * ho[j] * (1 - ho[j])
		}
		// dW += zᵀ·dgates ; db += dgates ; dz = dgates·Wᵀ
		copy(z[:l.In], l.xs.Row(t))
		copy(z[l.In:], l.hs.Row(t))
		for k, zk := range z {
			grow := l.Weight.Grad.Row(k)
			for j := range dgates {
				grow[j] += zk * dgates[j]
			}
		}
		for j := range dgates {
			l.Bias.Grad.Data[j] += dgates[j]
		}
		dxRow := dx.Row(t)
		for j := range dh {
			dh[j] = 0
		}
		for k := 0; k < l.In+H; k++ {
			wrow := l.Weight.W.Row(k)
			var s float64
			for j := range dgates {
				s += dgates[j] * wrow[j]
			}
			if k < l.In {
				dxRow[k] = s
			} else {
				dh[k-l.In] = s
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Name implements Layer.
func (l *LSTM) Name() string { return fmt.Sprintf("LSTM(%d→%d)", l.In, l.Hidden) }

// LastStep extracts the final timestep (1×C) from a T×C sequence — the
// classifier readout after stacked LSTMs.
type LastStep struct{ rows, cols int }

// NewLastStep returns the readout layer.
func NewLastStep() *LastStep { return &LastStep{} }

// Forward implements Layer.
func (s *LastStep) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		s.rows, s.cols = x.Rows, x.Cols
	}
	return tensor.FromSlice(1, x.Cols, append([]float64(nil), x.Row(x.Rows-1)...))
}

// ForwardBatch implements BatchForwarder: the B final timesteps gather into
// one B×C matrix handed out as views.
//
//cogarm:zeroalloc
func (s *LastStep) ForwardBatch(ws *tensor.Workspace, xs []*tensor.Matrix, train bool) []*tensor.Matrix {
	batchInferenceOnly(train)
	if len(xs) == 0 {
		return nil
	}
	out := ws.Uninit(len(xs), xs[0].Cols)
	for i, x := range xs {
		copy(out.Row(i), x.Row(x.Rows-1))
	}
	return tensor.SplitRowsWS(ws, out, 1)
}

// Backward implements Layer.
func (s *LastStep) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := tensor.New(s.rows, s.cols)
	copy(g.Row(s.rows-1), gradOut.Data)
	return g
}

// Params implements Layer.
func (s *LastStep) Params() []*Param { return nil }

// Name implements Layer.
func (s *LastStep) Name() string { return "LastStep" }
