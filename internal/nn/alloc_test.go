package nn

import (
	"testing"

	"cognitivearm/internal/tensor"
)

// TestForwardBatchAllocFree pins the steady-state allocation count of the
// fused batched inference path at zero for every NN family shape: with a
// warmed workspace reset per cycle and a reused label buffer, a serving
// shard's classify call must never touch the heap. This is a regression
// gate — any new per-batch allocation in a kernel fails it.
func TestForwardBatchAllocFree(t *testing.T) {
	rng := tensor.NewRNG(9)
	const B, T, C = 16, 24, 6
	nets := map[string]*Network{
		"cnn": NewNetwork(
			NewConv1D(C, 8, 5, 2, rng), NewReLU(), NewPool1D(MaxPoolKind, 2),
			NewMeanPool(), NewDropout(0.2, rng.Fork()), NewDense(8, 3, rng),
		),
		"lstm": NewNetwork(
			NewLSTM(C, 12, rng), NewLastStep(), NewDense(12, 3, rng),
		),
		"transformer": NewNetwork(
			NewDense(C, 8, rng), NewPositionalEncoding(8),
			TransformerBlock(8, 2, 16, 0.1, rng),
			NewMeanPool(), NewDense(8, 3, rng),
		),
	}
	xs := make([]*tensor.Matrix, B)
	for i := range xs {
		xs[i] = tensor.New(T, C)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.NormFloat64()
		}
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			ws := tensor.NewWorkspace()
			labels := make([]int, 0, B)
			cycle := func() {
				ws.Reset()
				labels = net.PredictBatch(ws, xs, labels[:0])
			}
			cycle() // populate every bucket the forward pass touches
			if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
				t.Fatalf("steady-state PredictBatch allocates %.1f times per call, want 0", avg)
			}
		})
	}
}
