// Package nn is the from-scratch deep-learning framework CognitiveArm's
// classifiers are built on. It provides the layers the paper's search space
// needs (Dense, Conv1D, pooling, LSTM, multi-head attention with LayerNorm,
// dropout), softmax cross-entropy, and the four optimizers of Table III
// (SGD, RMSProp, Adam, AdamW). Everything operates on float64 matrices from
// internal/tensor; training examples are processed one at a time with
// gradient accumulation across a mini-batch, which keeps every layer's code
// two-dimensional and auditable.
//
// # Batched inference
//
// Inference additionally has a fused batched path: Network.ForwardBatch and
// Network.PredictBatch run B same-shape windows through each layer's
// BatchForwarder kernel, collapsing per-window matmuls (Dense, Conv1D,
// attention projections) into single batch×feature GEMMs and stepping all B
// LSTM recurrences together. The path is inference-only (train must be
// false; no layer state is written, so batched calls are safe concurrently
// with each other and with per-window Predict on a shared trained network)
// and returns results bitwise identical to per-window Forward. Every
// temporary is drawn from a caller-supplied tensor.Workspace — reset once
// per serving tick, the whole forward pass is allocation-free at steady
// state; a nil workspace selects plain allocation with identical results.
// The serving hub (internal/serve) is the main consumer: one shard tick
// coalesces every ready session window into one ForwardBatch per shared
// model, passing its per-shard workspace.
package nn

import (
	"fmt"

	"cognitivearm/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// newParam allocates a parameter and its gradient of the same shape.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// Size returns the number of scalar weights.
func (p *Param) Size() int { return len(p.W.Data) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage. Forward consumes the previous
// activation; Backward consumes dL/d(output) and returns dL/d(input),
// accumulating parameter gradients internally. Layers are stateful between
// Forward(train=true) and Backward (they cache what they need), so a Network
// must not be shared across goroutines during training. Forward with
// train=false never writes layer state: a trained Network may serve
// concurrent Predict/Probs calls from many goroutines, which the serving hub
// (internal/serve) relies on to share one model across sessions.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	Params() []*Param
	Name() string
}

// Network is a simple sequential container.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs all layers.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers in reverse.
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects every learnable parameter.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count — the paper's model-size
// objective P(m) in the evolutionary search.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// ZeroGrad clears all gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// Predict runs inference and returns the class index of the single output
// row. The final layer must produce a 1×K logit row.
func (n *Network) Predict(x *tensor.Matrix) int {
	out := n.Forward(x, false)
	return tensor.Argmax(out.Row(0))
}

// Logits runs inference and returns a copy of the raw 1×K output.
func (n *Network) Logits(x *tensor.Matrix) []float64 {
	out := n.Forward(x, false)
	return append([]float64(nil), out.Row(0)...)
}

// Probs runs inference and returns softmax class probabilities.
func (n *Network) Probs(x *tensor.Matrix) []float64 {
	logits := n.Logits(x)
	probs := make([]float64, len(logits))
	tensor.Softmax(probs, logits)
	return probs
}

// String summarises the architecture.
func (n *Network) String() string {
	s := "Network["
	for i, l := range n.Layers {
		if i > 0 {
			s += " → "
		}
		s += l.Name()
	}
	return s + fmt.Sprintf("] (%d params)", n.NumParams())
}
