package nn

import (
	"errors"
	"math/rand"
	"testing"

	"cognitivearm/internal/tensor"
)

func qtRandWindows(rng *rand.Rand, b, rows, cols int) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, b)
	for i := range xs {
		xs[i] = tensor.New(rows, cols)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.NormFloat64()
		}
	}
	return xs
}

// testCNN builds a small trained-shaped conv net: Conv1D→ReLU→MeanPool→
// Dropout→Dense — the serving CNN topology, covering both fusion pairs.
func testCNN(rng *tensor.RNG) *Network {
	return NewNetwork(
		NewConv1D(5, 8, 5, 2, rng),
		NewReLU(),
		NewMeanPool(),
		NewDropout(0.2, rng),
		NewDense(8, 4, rng),
	)
}

// TestFusedEpilogueBitwise checks that the Dense→ReLU / Conv1D→ReLU fusion in
// Network.ForwardBatch is bitwise-identical to the per-layer composition it
// replaces (per-window Forward, which never fuses).
func TestFusedEpilogueBitwise(t *testing.T) {
	net := testCNN(tensor.NewRNG(7))
	rng := rand.New(rand.NewSource(7))
	xs := qtRandWindows(rng, 9, 50, 5)
	outs := net.ForwardBatch(nil, xs, false)
	for i, x := range xs {
		want := net.Forward(x, false)
		got := outs[i]
		if want.Rows != got.Rows || want.Cols != got.Cols {
			t.Fatalf("window %d: shape mismatch", i)
		}
		for j := range want.Data {
			if want.Data[j] != got.Data[j] {
				t.Fatalf("window %d elem %d: fused %v != unfused %v", i, j, got.Data[j], want.Data[j])
			}
		}
	}
	// And with a workspace + kernel pool attached.
	ws := tensor.NewWorkspace()
	pool := tensor.NewPool(3)
	defer pool.Close()
	ws.SetPool(pool)
	pouts := net.ForwardBatch(ws, xs, false)
	for i := range xs {
		for j := range outs[i].Data {
			if outs[i].Data[j] != pouts[i].Data[j] {
				t.Fatalf("window %d elem %d: pooled path diverged", i, j)
			}
		}
	}
}

// TestFusedDenseNoReLU checks a Dense with no following ReLU still matches
// (bias-only epilogue).
func TestFusedDenseNoReLU(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NewNetwork(NewDense(6, 3, rng))
	xs := qtRandWindows(rand.New(rand.NewSource(8)), 5, 1, 6)
	outs := net.ForwardBatch(nil, xs, false)
	for i, x := range xs {
		want := net.Forward(x, false)
		for j := range want.Data {
			if want.Data[j] != outs[i].Data[j] {
				t.Fatalf("window %d elem %d differs", i, j)
			}
		}
	}
}

func TestNetworkQuantizeAgreement(t *testing.T) {
	net := testCNN(tensor.NewRNG(9))
	qnet, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if qnet.NumParams() != net.NumParams() {
		t.Fatalf("quantized NumParams %d != %d", qnet.NumParams(), net.NumParams())
	}
	rng := rand.New(rand.NewSource(9))
	xs := qtRandWindows(rng, 64, 50, 5)
	ws := tensor.NewWorkspace()
	want := net.PredictBatch(ws, xs, nil)
	wantCopy := append([]int(nil), want...)
	ws.Reset()
	got := qnet.PredictBatch(ws, xs, nil)
	agree := 0
	for i := range wantCopy {
		if got[i] == wantCopy[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(wantCopy)); frac < 0.95 {
		t.Fatalf("int8 agreement %.3f too low for a well-scaled net", frac)
	}
	// Single-window Forward must agree with the batched quantized path.
	ws.Reset()
	one := qnet.PredictBatch(ws, xs[:1], nil)
	if p := qnet.Predict(xs[0]); p != one[0] {
		t.Fatalf("quantized Predict %d != PredictBatch %d", p, one[0])
	}
}

func TestNetworkQuantizeUnsupported(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := NewNetwork(NewLSTM(4, 8, rng), NewLastStep(), NewDense(8, 3, rng))
	if _, err := net.Quantize(); !errors.Is(err, ErrQuantUnsupported) {
		t.Fatalf("LSTM quantization: got %v, want ErrQuantUnsupported", err)
	}
}

func TestQuantizedBackwardPanics(t *testing.T) {
	rng := tensor.NewRNG(11)
	q := QuantizeDense(NewDense(3, 2, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("QDense.Backward must panic")
		}
	}()
	q.Backward(nil)
}
