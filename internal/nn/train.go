package nn

import (
	"fmt"
	"math"

	"cognitivearm/internal/tensor"
)

// CrossEntropy computes softmax cross-entropy loss for a 1×K logit row
// against an integer label, returning the loss and dL/dlogits (1×K).
func CrossEntropy(logits *tensor.Matrix, label int) (float64, *tensor.Matrix) {
	if logits.Rows != 1 {
		panic("nn: CrossEntropy expects a single logit row")
	}
	k := logits.Cols
	if label < 0 || label >= k {
		panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, k))
	}
	probs := make([]float64, k)
	tensor.Softmax(probs, logits.Row(0))
	loss := -math.Log(math.Max(probs[label], 1e-15))
	grad := tensor.New(1, k)
	copy(grad.Data, probs)
	grad.Data[label] -= 1
	return loss, grad
}

// Example is one training instance: a T×C input and its class label.
type Example struct {
	X     *tensor.Matrix
	Label int
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// MaxGradNorm clips the global gradient norm per batch; 0 disables.
	MaxGradNorm float64
	// Seed drives shuffling.
	Seed uint64
	// Verbose emits per-epoch lines via Logf.
	Verbose bool
	Logf    func(format string, args ...any)
	// PostStep, when set, runs after every optimizer step — used e.g. to
	// re-apply pruning masks so fine-tuning preserves sparsity.
	PostStep func(*Network)
}

// History records per-epoch metrics for overfitting analysis (§III-D3).
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	ValAcc    []float64
	// StoppedEarly reports whether patience triggered.
	StoppedEarly bool
}

// Fit trains the network with mini-batch gradient accumulation and optional
// early stopping on validation loss.
func Fit(net *Network, train, val []Example, cfg TrainConfig) History {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	var hist History
	bestVal := math.Inf(1)
	bad := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(train))
		var totalLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			net.ZeroGrad()
			for _, idx := range perm[start:end] {
				ex := train[idx]
				out := net.Forward(ex.X, true)
				loss, grad := CrossEntropy(out, ex.Label)
				totalLoss += loss
				net.Backward(grad)
			}
			scaleGrads(net, 1/float64(end-start))
			if cfg.MaxGradNorm > 0 {
				clipGrads(net, cfg.MaxGradNorm)
			}
			cfg.Optimizer.Step(net.Params())
			if cfg.PostStep != nil {
				cfg.PostStep(net)
			}
		}
		trainLoss := totalLoss / float64(max(1, len(train)))
		valLoss, valAcc := Evaluate(net, val)
		hist.TrainLoss = append(hist.TrainLoss, trainLoss)
		hist.ValLoss = append(hist.ValLoss, valLoss)
		hist.ValAcc = append(hist.ValAcc, valAcc)
		if cfg.Verbose {
			logf("epoch %d: train_loss=%.4f val_loss=%.4f val_acc=%.3f", epoch, trainLoss, valLoss, valAcc)
		}
		if cfg.Patience > 0 {
			if valLoss < bestVal-1e-6 {
				bestVal = valLoss
				bad = 0
			} else {
				bad++
				if bad >= cfg.Patience {
					hist.StoppedEarly = true
					break
				}
			}
		}
	}
	return hist
}

// Evaluate returns mean loss and accuracy over the examples. An empty set
// yields (0, 0).
func Evaluate(net *Network, examples []Example) (loss, acc float64) {
	if len(examples) == 0 {
		return 0, 0
	}
	var correct int
	for _, ex := range examples {
		out := net.Forward(ex.X, false)
		l, _ := CrossEntropy(out, ex.Label)
		loss += l
		if tensor.Argmax(out.Row(0)) == ex.Label {
			correct++
		}
	}
	return loss / float64(len(examples)), float64(correct) / float64(len(examples))
}

func scaleGrads(net *Network, s float64) {
	for _, p := range net.Params() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= s
		}
	}
}

func clipGrads(net *Network, maxNorm float64) {
	var total float64
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	s := maxNorm / norm
	for _, p := range net.Params() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= s
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
