package nn

import (
	"math"
	"testing"

	"cognitivearm/internal/tensor"
)

// lossOf runs a full forward pass and returns the cross-entropy loss. Used
// by the finite-difference checks; train=true so cached state matches the
// analytic backward pass (dropout is kept at 0 in these nets).
func lossOf(net *Network, x *tensor.Matrix, label int) float64 {
	out := net.Forward(x, true)
	loss, _ := CrossEntropy(out, label)
	return loss
}

// checkGradients compares analytic parameter and input gradients against
// central finite differences. stride subsamples which weights are probed so
// big layers stay fast.
func checkGradients(t *testing.T, net *Network, x *tensor.Matrix, label int, stride int, tol float64) {
	t.Helper()
	const eps = 1e-5
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := CrossEntropy(out, label)
	dx := net.Backward(grad)

	for _, p := range net.Params() {
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossOf(net, x, label)
			p.W.Data[i] = orig - eps
			lm := lossOf(net, x, label)
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, got, want)
			}
		}
	}
	for i := 0; i < len(x.Data); i += stride {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(net, x, label)
		x.Data[i] = orig - eps
		lm := lossOf(net, x, label)
		x.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		got := dx.Data[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %.8f vs numeric %.8f", i, got, want)
		}
	}
}

func randInput(rows, cols int, seed uint64) *tensor.Matrix {
	rng := tensor.NewRNG(seed)
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGradDense(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork(NewDense(6, 4, rng), NewReLU(), NewDense(4, 3, rng))
	checkGradients(t, net, randInput(1, 6, 2), 1, 1, 1e-4)
}

func TestGradConv(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(
		NewConv1D(4, 5, 3, 2, rng),
		NewReLU(),
		NewFlatten(),
		NewDense(5*4, 3, rng),
	)
	checkGradients(t, net, randInput(9, 4, 4), 2, 1, 1e-4)
}

func TestGradConvWithPooling(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, kind := range []PoolKind{MaxPoolKind, AvgPoolKind} {
		net := NewNetwork(
			NewConv1D(3, 4, 3, 1, rng),
			NewReLU(),
			NewPool1D(kind, 2),
			NewFlatten(),
			NewDense(4*4, 3, rng),
		)
		checkGradients(t, net, randInput(10, 3, 6), 0, 1, 1e-4)
	}
}

func TestGradLSTM(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewNetwork(
		NewLSTM(3, 5, rng),
		NewLastStep(),
		NewDense(5, 3, rng),
	)
	checkGradients(t, net, randInput(6, 3, 8), 2, 1, 1e-4)
}

func TestGradStackedLSTM(t *testing.T) {
	rng := tensor.NewRNG(9)
	net := NewNetwork(
		NewLSTM(3, 4, rng),
		NewLSTM(4, 4, rng),
		NewLastStep(),
		NewDense(4, 3, rng),
	)
	checkGradients(t, net, randInput(5, 3, 10), 1, 3, 1e-4)
}

func TestGradLayerNorm(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := NewNetwork(
		NewDense(4, 4, rng),
		NewLayerNorm(4),
		NewMeanPool(),
		NewDense(4, 3, rng),
	)
	checkGradients(t, net, randInput(5, 4, 12), 0, 1, 1e-4)
}

func TestGradAttention(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewNetwork(
		NewMultiHeadAttention(6, 2, rng),
		NewMeanPool(),
		NewDense(6, 3, rng),
	)
	checkGradients(t, net, randInput(5, 6, 14), 2, 1, 1e-4)
}

func TestGradFullTransformerBlock(t *testing.T) {
	rng := tensor.NewRNG(15)
	net := NewNetwork(
		NewDense(4, 8, rng), // input projection
		NewPositionalEncoding(8),
		TransformerBlock(8, 2, 16, 0, rng),
		NewMeanPool(),
		NewDense(8, 3, rng),
	)
	checkGradients(t, net, randInput(6, 4, 16), 0, 5, 2e-4)
}

func TestGradMeanPoolAndLastStep(t *testing.T) {
	rng := tensor.NewRNG(17)
	netA := NewNetwork(NewMeanPool(), NewDense(3, 2, rng))
	checkGradients(t, netA, randInput(4, 3, 18), 0, 1, 1e-4)
	netB := NewNetwork(NewLastStep(), NewDense(3, 2, rng))
	checkGradients(t, netB, randInput(4, 3, 19), 1, 1, 1e-4)
}
