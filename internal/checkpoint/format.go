package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the record layer of the checkpoint format — the
// normative specification lives in ARCHITECTURE.md ("Checkpoint format").
// Summary:
//
//	file   := header record*
//	header := magic "CACK" | version u16le | kind u16le
//	record := type u8 | length u32le | payload … | crc u32le
//
// The CRC is CRC-32C (Castagnoli) over type, length and payload, so a flipped
// bit anywhere in a record — including its framing — is detected before the
// payload reaches a gob decoder. Files end at a record boundary; trailing
// bytes that do not form a complete record mean a torn write and fail the
// whole file. All integers are little-endian.

// Magic is the 4-byte file signature.
const Magic = "CACK"

// FormatVersion is the current on-disk format version. Readers reject files
// from other versions outright: the format is small enough that migration is
// "take a fresh checkpoint", and silently misparsing a future layout is far
// worse than retraining once.
const FormatVersion = 1

// File kinds.
const (
	// KindManifest files hold one manifest record describing the checkpoint.
	KindManifest = uint16(1)
	// KindModel files hold one serialized classifier (models.Save payload).
	KindModel = uint16(2)
	// KindSessions files hold one record per persisted session.
	KindSessions = uint16(3)
	// KindStream frames a whole FleetState as one self-delimiting byte
	// stream — the wire variant of a checkpoint directory, written by
	// WriteStream and consumed by ReadStream (live session migration,
	// replication). Record order: manifest, models (manifest order),
	// sessions.
	KindStream = uint16(4)
	// KindReplica frames a replication tail: one header followed by an
	// unbounded sequence of batches, each a manifest record (epoch in Seq,
	// full live-session reference view in Refs) + the models not yet shipped
	// on this tail + the session records dirty since the previous batch.
	// Written by TailWriter, consumed batch-by-batch by TailReader.
	KindReplica = uint16(5)
)

// Record types.
const (
	// RecManifest is the gob-encoded Manifest.
	RecManifest = byte(1)
	// RecModel is a models.Save payload.
	RecModel = byte(2)
	// RecSession is a gob-encoded SessionRecord.
	RecSession = byte(3)
	// RecSeal closes one replication-tail batch with a Merkle root over the
	// batch's record payloads: count uint32 LE | root [32]byte (see
	// internal/wal for the tree shape). The receiver recomputes the root
	// from what it decoded and refuses the batch on mismatch, so a follower
	// detects stream divergence at apply time — before promotion could ever
	// serve silently corrupt state.
	RecSeal = byte(4)
)

// maxRecordLen bounds a single record so a corrupted length field cannot ask
// the reader to allocate gigabytes. Model payloads dominate record size;
// 256 MiB is orders of magnitude above any classifier in the zoo.
const maxRecordLen = 256 << 20

// ErrCorrupt reports a structurally invalid or CRC-failing checkpoint file.
// All corruption errors wrap it, so callers can distinguish "bad file"
// (errors.Is(err, ErrCorrupt)) from I/O failures.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// ErrVersion reports a file written by a different format version.
var ErrVersion = errors.New("checkpoint: unsupported format version")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerLen = 4 + 2 + 2

// fileWriter frames records into w.
type fileWriter struct {
	w io.Writer
}

// newFileWriter writes the header for the given file kind.
func newFileWriter(w io.Writer, kind uint16) (*fileWriter, error) {
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:], FormatVersion)
	binary.LittleEndian.PutUint16(hdr[6:], kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &fileWriter{w: w}, nil
}

// writeRecord frames one record: type, length, payload, CRC-32C.
func (fw *fileWriter) writeRecord(typ byte, payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("checkpoint: record of %d bytes exceeds limit", len(payload))
	}
	var pre [5]byte
	pre[0] = typ
	binary.LittleEndian.PutUint32(pre[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, pre[:])
	crc = crc32.Update(crc, castagnoli, payload)
	var post [4]byte
	binary.LittleEndian.PutUint32(post[:], crc)
	for _, b := range [][]byte{pre[:], payload, post[:]} {
		if _, err := fw.w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// fileReader validates the header and iterates records.
type fileReader struct {
	r io.Reader
}

// newFileReader checks magic, version and kind before any record is read.
func newFileReader(r io.Reader, wantKind uint16) (*fileReader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, FormatVersion)
	}
	if k := binary.LittleEndian.Uint16(hdr[6:]); k != wantKind {
		return nil, fmt.Errorf("%w: file kind %d, want %d", ErrCorrupt, k, wantKind)
	}
	return &fileReader{r: r}, nil
}

// readRecord returns the next record, io.EOF at a clean end of file, or an
// ErrCorrupt-wrapping error on a CRC mismatch or torn record.
func (fr *fileReader) readRecord() (typ byte, payload []byte, err error) {
	var pre [5]byte
	if _, err := io.ReadFull(fr.r, pre[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean boundary
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(fr.r, pre[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: torn record header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(pre[1:])
	if n > maxRecordLen {
		return 0, nil, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: torn record payload: %v", ErrCorrupt, err)
	}
	var post [4]byte
	if _, err := io.ReadFull(fr.r, post[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: torn record crc: %v", ErrCorrupt, err)
	}
	crc := crc32.Update(0, castagnoli, pre[:])
	crc = crc32.Update(crc, castagnoli, payload)
	if got := binary.LittleEndian.Uint32(post[:]); got != crc {
		return 0, nil, fmt.Errorf("%w: record crc %08x, computed %08x", ErrCorrupt, got, crc)
	}
	return pre[0], payload, nil
}
