package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

func TestStreamRoundTrip(t *testing.T) {
	state := testState(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, state); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Manifest.Hub != state.Manifest.Hub {
		t.Fatalf("hub config mangled: %+v vs %+v", loaded.Manifest.Hub, state.Manifest.Hub)
	}
	if !reflect.DeepEqual(loaded.Sessions, state.Sessions) {
		t.Fatalf("session records mangled:\n got %+v\nwant %+v", loaded.Sessions, state.Sessions)
	}
	if !reflect.DeepEqual(loaded.ModelMACs, state.ModelMACs) {
		t.Fatalf("model MACs mangled: %+v", loaded.ModelMACs)
	}
	rng := tensor.NewRNG(11)
	for key, orig := range state.Models {
		got, ok := loaded.Models[key]
		if !ok {
			t.Fatalf("model %q missing after stream round trip", key)
		}
		for trial := 0; trial < 3; trial++ {
			x := tensor.New(40, eeg.NumChannels)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			if p1, p2 := orig.Probs(x), got.Probs(x); !reflect.DeepEqual(p1, p2) {
				t.Fatalf("model %q probs diverge after stream round trip: %v vs %v", key, p1, p2)
			}
		}
	}
}

// TestStreamConsumesExactly pins the self-delimiting property: ReadStream
// stops at the final session record and leaves trailing bytes — a protocol
// ack sharing the connection — unread.
func TestStreamConsumesExactly(t *testing.T) {
	state := testState(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, state); err != nil {
		t.Fatal(err)
	}
	trailer := []byte("ack-from-the-same-connection")
	buf.Write(trailer)
	r := bytes.NewReader(buf.Bytes())
	if _, err := ReadStream(r); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("ReadStream consumed past the checkpoint: %d trailing bytes left, want %d", len(rest), len(trailer))
	}
}

// TestStreamRejectsDamage: a flipped bit anywhere fails the transfer with
// ErrCorrupt, and a truncated stream is reported as corrupt, never as a
// short-but-valid fleet.
func TestStreamRejectsDamage(t *testing.T) {
	state := testState(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, state); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	for _, offset := range []int{headerLen + 3, len(wire) / 2, len(wire) - 3} {
		bad := append([]byte(nil), wire...)
		bad[offset] ^= 0x40
		if _, err := ReadStream(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", offset, err)
		}
	}
	for _, cut := range []int{headerLen - 2, headerLen + 4, len(wire) / 3, len(wire) - 1} {
		if _, err := ReadStream(bytes.NewReader(wire[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestStreamRejectsEmptyHub pins manifest validation on the wire path: a
// stream whose manifest describes an impossible hub is rejected.
func TestStreamRejectsEmptyHub(t *testing.T) {
	state := testState(t)
	state.Manifest.Hub.Shards = 0
	var buf bytes.Buffer
	if err := WriteStream(&buf, state); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStream(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}
