package checkpoint

import (
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"cognitivearm/internal/obs"
)

// Checkpoint telemetry: every Save and Load reports to the process-global
// obs registry and event ring, labelled by kind (full vs incremental), so an
// operator can see from /metrics whether the incremental chain is actually
// saving bytes and from /events when each checkpoint landed and how big it
// was. Checkpoints are rare, off the tick path, and already dominated by
// disk I/O, so this is unconditional — there is no DisableTelemetry knob
// here.

type ckptObs struct {
	savesFull *obs.Counter
	savesInc  *obs.Counter
	saveErrs  *obs.Counter
	loads     *obs.Counter
	loadErrs  *obs.Counter
	bytesFull *obs.Counter
	bytesInc  *obs.Counter
	durFull   *obs.Histogram
	durInc    *obs.Histogram
	sizeFull  *obs.Histogram
	sizeInc   *obs.Histogram
	events    *obs.EventRing
}

var (
	ckptTelOnce sync.Once
	ckptTelVal  *ckptObs
)

// ckptTel returns the lazily-built checkpoint telemetry holder. It never
// returns nil and every handle field is populated from the default
// registry, so derived uses need no guard.
//
//cogarm:obsnonnil
func ckptTel() *ckptObs {
	ckptTelOnce.Do(func() {
		reg := obs.Default()
		// Checkpoint directories run hundreds of bytes (incremental, quiet
		// fleet) to hundreds of megabytes (full, dense fleet with NN models).
		sizeBounds := obs.ExponentialBounds(256, 4, 14)
		saves := func(kind string) *obs.Counter {
			return reg.Counter("cogarm_checkpoint_saves_total",
				"Checkpoints written, by kind (full = self-contained compaction, incremental = dirty sessions only).",
				obs.L("kind", kind))
		}
		bytes := func(kind string) *obs.Counter {
			return reg.Counter("cogarm_checkpoint_bytes_written_total",
				"Bytes written to published checkpoint directories, by kind.",
				obs.L("kind", kind))
		}
		dur := func(kind string) *obs.Histogram {
			return reg.Histogram("cogarm_checkpoint_save_seconds",
				"Wall time of checkpoint.Save (capture excluded), by kind.",
				obs.DurationBounds(), obs.L("kind", kind))
		}
		size := func(kind string) *obs.Histogram {
			return reg.Histogram("cogarm_checkpoint_size_bytes",
				"On-disk size of each published checkpoint directory, by kind.",
				sizeBounds, obs.L("kind", kind))
		}
		ckptTelVal = &ckptObs{
			savesFull: saves("full"),
			savesInc:  saves("incremental"),
			saveErrs: reg.Counter("cogarm_checkpoint_save_errors_total",
				"Checkpoint saves that failed before publishing."),
			loads: reg.Counter("cogarm_checkpoint_loads_total",
				"Checkpoint directories loaded successfully (including reference resolution)."),
			loadErrs: reg.Counter("cogarm_checkpoint_load_errors_total",
				"Checkpoint loads that failed (corruption, version mismatch, missing references)."),
			bytesFull: bytes("full"),
			bytesInc:  bytes("incremental"),
			durFull:   dur("full"),
			durInc:    dur("incremental"),
			sizeFull:  size("full"),
			sizeInc:   size("incremental"),
			events:    obs.DefaultEvents(),
		}
	})
	return ckptTelVal
}

// recordSave reports one published checkpoint: counters, size and duration
// histograms, and a lifecycle event carrying bytes + duration.
func recordSave(man *Manifest, dir string, start time.Time) {
	t := ckptTel()
	bytes := dirSize(dir)
	durNs := time.Since(start).Nanoseconds()
	if man.Base != 0 {
		t.savesInc.Inc()
		t.bytesInc.Add(uint64(bytes))
		t.durInc.ObserveDuration(durNs)
		t.sizeInc.Observe(float64(bytes))
		t.events.Record(obs.EvCheckpointIncremental, -1, 0, bytes, durNs)
		return
	}
	t.savesFull.Inc()
	t.bytesFull.Add(uint64(bytes))
	t.durFull.ObserveDuration(durNs)
	t.sizeFull.Observe(float64(bytes))
	t.events.Record(obs.EvCheckpointFull, -1, 0, bytes, durNs)
}

// dirSize sums the regular-file bytes under dir (best effort: a racing prune
// or unreadable entry degrades to a partial sum, never an error).
func dirSize(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
