package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"

	"cognitivearm/internal/wal"
)

// tailState decorates testState with the Refs view a replication capture
// carries: one ref per live session, volatile fields included.
func tailState(t *testing.T) *FleetState {
	t.Helper()
	state := testState(t)
	for i := range state.Sessions {
		rec := &state.Sessions[i]
		state.Manifest.Refs = append(state.Manifest.Refs, SessionRef{
			ID: rec.ID, Ver: rec.Ver, SampleAcc: rec.SampleAcc, IdleTicks: rec.IdleTicks,
		})
	}
	return state
}

func TestTailRoundTripAndModelDedup(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTailWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	state := tailState(t)

	models1, sessions1, root1, err := tw.WriteBatch(state)
	if err != nil {
		t.Fatal(err)
	}
	if models1 != 2 || sessions1 != 2 {
		t.Fatalf("first batch wrote %d models / %d sessions, want 2 / 2", models1, sessions1)
	}
	if root1 == ([wal.HashSize]byte{}) {
		t.Fatal("first batch sealed with a zero merkle root")
	}
	// Second interval: only one session is dirty, and both models already
	// rode the tail — they must not be re-sent.
	delta := tailState(t)
	delta.Sessions = delta.Sessions[:1]
	models2, sessions2, root2, err := tw.WriteBatch(delta)
	if err != nil {
		t.Fatal(err)
	}
	if models2 != 0 || sessions2 != 1 {
		t.Fatalf("second batch wrote %d models / %d sessions, want 0 / 1 (models deduplicated)", models2, sessions2)
	}
	if tw.Epoch() != 2 {
		t.Fatalf("writer epoch = %d, want 2", tw.Epoch())
	}

	tr, err := NewTailReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := tr.ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b1.Manifest.Seq != 1 {
		t.Fatalf("first batch epoch = %d, want 1", b1.Manifest.Seq)
	}
	if b1.Manifest.Format != 0 || b1.Manifest.Base != 0 || b1.Manifest.Increments != 0 {
		t.Fatalf("tail manifest leaked checkpoint-directory fields: %+v", b1.Manifest)
	}
	if len(b1.Models) != 2 || len(b1.Sessions) != 2 {
		t.Fatalf("first batch decoded %d models / %d sessions, want 2 / 2", len(b1.Models), len(b1.Sessions))
	}
	if b1.TailRoot != root1 {
		t.Fatalf("first batch verified root %x, sender framed %x", b1.TailRoot, root1)
	}
	if !reflect.DeepEqual(b1.Sessions, state.Sessions) {
		t.Fatalf("session records mangled through the tail:\n got %+v\nwant %+v", b1.Sessions, state.Sessions)
	}
	if !reflect.DeepEqual(b1.Manifest.Refs, state.Manifest.Refs) {
		t.Fatalf("live-view refs mangled through the tail: %+v", b1.Manifest.Refs)
	}
	if !reflect.DeepEqual(b1.ModelMACs, state.ModelMACs) {
		t.Fatalf("model MACs mangled: %+v", b1.ModelMACs)
	}
	b2, err := tr.ReadBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b2.Manifest.Seq != 2 {
		t.Fatalf("second batch epoch = %d, want 2", b2.Manifest.Seq)
	}
	if len(b2.Models) != 0 || len(b2.Sessions) != 1 {
		t.Fatalf("second batch decoded %d models / %d sessions, want 0 / 1", len(b2.Models), len(b2.Sessions))
	}
	if len(b2.Manifest.Refs) != 2 {
		t.Fatalf("second batch carries %d refs, want the full live view of 2", len(b2.Manifest.Refs))
	}
	if b2.TailRoot != root2 {
		t.Fatalf("second batch verified root %x, sender framed %x", b2.TailRoot, root2)
	}
	if root1 == root2 {
		t.Fatal("distinct batches sealed with the same merkle root")
	}
	// The sender closed cleanly between batches: io.EOF, not corruption.
	if _, err := tr.ReadBatch(); err != io.EOF {
		t.Fatalf("clean tail end returned %v, want io.EOF", err)
	}
}

func TestTailWriterRejectsUnresolvedState(t *testing.T) {
	tw, err := NewTailWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	state := tailState(t)
	state.ModelRefs = []ModelEntry{{Key: "cnn", Seq: 1}}
	if _, _, _, err := tw.WriteBatch(state); err == nil {
		t.Fatal("tail accepted a state with unresolved model refs")
	}
	if _, _, _, err := tw.WriteBatch(nil); err == nil {
		t.Fatal("tail accepted a nil state")
	}
}

func TestTailTruncationIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTailWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tw.WriteBatch(tailState(t)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A tear anywhere inside the batch must wrap ErrCorrupt — never a clean
	// EOF, never a hang, never a panic.
	for _, cut := range []int{headerLen + 2, headerLen + 40, len(full) / 2, len(full) - 2} {
		tr, err := NewTailReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: header rejected: %v", cut, err)
		}
		if _, err := tr.ReadBatch(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: ReadBatch returned %v, want ErrCorrupt", cut, err)
		}
	}
	// A tear inside the stream header fails construction.
	if _, err := NewTailReader(bytes.NewReader(full[:headerLen-2])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn header returned %v, want ErrCorrupt", err)
	}
}

// TestTailReaderDetectsDivergence: a seal whose root disagrees with the
// batch's records must be refused as divergence. The CRC of the tampered
// record is recomputed so it passes framing — only the Merkle check can
// catch it, which is exactly the attack/bitrot class the seal exists for.
func TestTailReaderDetectsDivergence(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTailWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tw.WriteBatch(tailState(t)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	const sealFrame = 5 + 4 + wal.HashSize + 4
	frame := full[len(full)-sealFrame:]
	if frame[0] != RecSeal {
		t.Fatalf("stream does not end in a seal record (type %d)", frame[0])
	}
	frame[5+4+3] ^= 0x01 // flip one byte of the framed root
	crc := crc32.Update(0, castagnoli, frame[:5+4+wal.HashSize])
	binary.LittleEndian.PutUint32(frame[len(frame)-4:], crc)

	tr, err := NewTailReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.ReadBatch()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered seal returned %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered seal error %q does not name divergence", err)
	}
}

func TestTailReaderRejectsNonManifestBatch(t *testing.T) {
	var buf bytes.Buffer
	fw, err := newFileWriter(&buf, KindReplica)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.writeRecord(RecSession, []byte("not a manifest")); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTailReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadBatch(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("batch opening with a session record returned %v, want ErrCorrupt", err)
	}
}

func TestTailReaderRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, testState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTailReader(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tail reader accepted a KindStream header: %v", err)
	}
}

// TestReadStreamTornMidRecord: a migration stream torn at any byte offset —
// mid-header, mid-record-header, mid-payload, mid-CRC — must surface
// ErrCorrupt. This is the wire shape a killed sender leaves behind, and the
// receiver's rollback accounting (restore-the-remainder) depends on the tear
// being detected rather than misparsed.
func TestReadStreamTornMidRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, testState(t)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cuts := []int{
		headerLen - 2,   // inside the file header
		headerLen + 2,   // inside the manifest record's framing
		headerLen + 100, // inside the manifest payload
		len(full) / 4,   // inside a model payload
		len(full) / 2,   // deeper into the models
		len(full) - 40,  // inside a session record
		len(full) - 2,   // inside the final CRC
	}
	for _, cut := range cuts {
		if _, err := ReadStream(bytes.NewReader(full[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stream torn at byte %d returned %v, want ErrCorrupt", cut, err)
		}
	}
}
