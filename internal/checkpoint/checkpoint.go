// Package checkpoint is the crash-safe persistence subsystem of the serving
// fleet: it snapshots a whole serve.Hub — every registry model, each
// session's ingest and debounce state, and the hub manifest — into a
// versioned, CRC-checked, atomically-renamed checkpoint directory, and loads
// it back so a restarted daemon resumes serving without retraining and with
// bitwise-identical subsequent predictions.
//
// # On-disk layout
//
// A checkpoint root holds numbered checkpoint directories:
//
//	<root>/
//	  ckpt-00000041/          ← one complete, immutable checkpoint
//	    MANIFEST              ← file kind 1: hub config, model index, counters
//	    model-0.bin           ← file kind 2: models.Save payload per registry key
//	    sessions.bin          ← file kind 3: one record per live session
//	  ckpt-00000042/
//	  .tmp-00000043/          ← in-progress write; never read
//
// Every file is framed by the record layer in format.go (magic, format
// version, per-record CRC-32C). A checkpoint becomes visible only by the
// atomic rename of its temp directory, so readers never observe a partial
// write; a crash mid-save leaves a .tmp-* directory that the next Save
// sweeps. Save prunes old checkpoints, keeping the newest DefaultKeep, and
// Load falls back to the previous checkpoint when the newest is damaged —
// corruption costs one checkpoint interval, never the fleet.
//
// The full normative format specification is in ARCHITECTURE.md.
//
// The package deliberately knows nothing about serve.Hub: it moves FleetState
// values to and from disk. internal/serve owns the conversion between a live
// hub and a FleetState (Hub.Checkpoint / RestoreHub), keeping the dependency
// one-directional.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cognitivearm/internal/control"
	"cognitivearm/internal/models"

	// Register the ensemble codec so checkpoints holding ensembles load.
	_ "cognitivearm/internal/ensemble"
)

// DefaultKeep is how many complete checkpoints Save retains. Two generations
// of fallback cover the realistic failure (a torn newest checkpoint) without
// letting the directory grow without bound.
const DefaultKeep = 3

// ErrNoCheckpoint reports an empty (or missing) checkpoint root.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// HubConfig mirrors serve.Config in plain persisted fields.
type HubConfig struct {
	Shards              int
	MaxSessionsPerShard int
	TickHz              float64
	MaxIdleTicks        int
	LatencyWindow       int
}

// ModelEntry indexes one serialized registry model.
type ModelEntry struct {
	// Key is the registry key sessions resolve the model by.
	Key string
	// File is the payload filename within the checkpoint directory.
	File string
	// MACs is the per-inference MAC estimate stored alongside the model.
	MACs int64
}

// ShardCounters is one shard's monotonic metrics baseline, restored so
// fleet-wide throughput counters survive a restart.
type ShardCounters struct {
	Ticks, Inferences, Batches, Evictions, SamplesIn uint64
}

// Manifest describes one checkpoint: everything needed to rebuild the hub
// shell before session records are replayed into it.
type Manifest struct {
	// Seq is the checkpoint sequence number (monotonic per root directory).
	Seq uint64
	// Hub is the serving configuration the fleet ran under.
	Hub HubConfig
	// NextID seeds the hub's session-ID allocator past every persisted ID.
	NextID uint64
	// Models indexes the model payload files.
	Models []ModelEntry
	// Sessions is the expected record count of sessions.bin; a mismatch
	// means a torn sessions file even when each present record's CRC holds.
	Sessions int
	// Shards holds per-shard counter baselines, indexed by shard.
	Shards []ShardCounters
}

// SessionRecord is the complete resumable state of one serving session.
type SessionRecord struct {
	// ID is the stable session identifier; Shard is its shard assignment,
	// preserved across restarts so restored fleets keep their balance.
	ID    uint64
	Shard int
	// ModelKey resolves the shared classifier; Tag is the caller's opaque
	// rebind hint (e.g. cogarmd marks sessions "demo:…" or "inlet" and uses
	// the tag to reattach a live source on restore).
	ModelKey string
	Tag      string
	// Channels and SampleRateHz reproduce the session's stream geometry.
	Channels     int
	SampleRateHz float64
	// NormMean and NormStd are the subject's normalisation constants.
	NormMean, NormStd []float64
	// SampleAcc is the fractional samples-per-tick carry; Fed and IdleTicks
	// reproduce the idle-eviction clock.
	SampleAcc float64
	Fed       bool
	IdleTicks int
	// Decoded, Agreed and Actions restore the session counters.
	Decoded, Agreed uint64
	Actions         []uint64
	// Windower and Debounce are the signal-path snapshots that make resumed
	// predictions bitwise-identical: partially filled rolling window,
	// per-channel IIR delay state, and the label-debounce ring.
	Windower control.WindowerState
	Debounce control.DebouncerState
	// Pending holds samples that were buffered in the session's source ring
	// but not yet ticked through the window at snapshot time; restore
	// prepends them to the new source so no sample is lost or reordered.
	Pending []PendingSample
}

// PendingSample is one buffered-but-unconsumed sample. It mirrors
// stream.Sample in plain persisted fields: stream.Sample itself implements
// encoding.BinaryUnmarshaler for its UDP wire format (but not the matching
// BinaryMarshaler), which would make gob encode it as a struct and refuse to
// decode it — so the checkpoint layer keeps its own symmetric type.
type PendingSample struct {
	Seq       uint64
	Timestamp float64
	Values    []float64
}

// FleetState is the in-memory image of one checkpoint: what serve.Hub
// captures on Checkpoint and what RestoreHub rebuilds from.
type FleetState struct {
	Manifest Manifest
	// Models maps registry keys to live classifiers (decoded on Load).
	Models map[string]models.Classifier
	// ModelMACs carries each model's per-inference MAC estimate.
	ModelMACs map[string]int64
	// Sessions holds every persisted session.
	Sessions []SessionRecord
}

const (
	manifestFile = "MANIFEST"
	sessionsFile = "sessions.bin"
	ckptPrefix   = "ckpt-"
	tmpPrefix    = ".tmp-"
)

// Save writes state as the next checkpoint under root, creating root if
// needed. The checkpoint is assembled in a temp directory, fsynced, and
// atomically renamed into place; only then are checkpoints older than the
// newest DefaultKeep pruned (and stale temp directories from crashed saves
// swept). It returns the path of the new checkpoint directory.
func Save(root string, state *FleetState) (string, error) {
	if state == nil {
		return "", fmt.Errorf("checkpoint: nil state")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	man := state.Manifest
	man.Sessions = len(state.Sessions)
	man.Models = man.Models[:0]

	// A unique temp dir per call keeps concurrent Saves into one root (e.g.
	// a periodic checkpoint racing a shutdown checkpoint) from trampling
	// each other's half-written files.
	tmp, err := os.MkdirTemp(root, tmpPrefix)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	cleanup := true
	defer func() {
		if cleanup {
			os.RemoveAll(tmp)
		}
	}()

	// Model payloads, in sorted key order for stable file naming.
	keys := make([]string, 0, len(state.Models))
	for k := range state.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, key := range keys {
		var payload bytes.Buffer
		if err := models.Save(&payload, state.Models[key]); err != nil {
			return "", fmt.Errorf("checkpoint: model %q: %w", key, err)
		}
		name := fmt.Sprintf("model-%d.bin", i)
		if err := writeRecordFile(filepath.Join(tmp, name), KindModel, RecModel, [][]byte{payload.Bytes()}); err != nil {
			return "", err
		}
		man.Models = append(man.Models, ModelEntry{Key: key, File: name, MACs: state.ModelMACs[key]})
	}

	// Session records.
	sessPayloads := make([][]byte, len(state.Sessions))
	for i := range state.Sessions {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&state.Sessions[i]); err != nil {
			return "", fmt.Errorf("checkpoint: session %d: %w", state.Sessions[i].ID, err)
		}
		sessPayloads[i] = buf.Bytes()
	}
	if err := writeRecordFile(filepath.Join(tmp, sessionsFile), KindSessions, RecSession, sessPayloads); err != nil {
		return "", err
	}

	// Manifest last (it indexes everything above), inside the publish loop:
	// a concurrent Save may claim our sequence number first, in which case
	// only the small manifest is rewritten with the next one and the rename
	// retried. Renaming onto an existing non-empty directory fails, which is
	// exactly the collision signal.
	var final string
	for attempt := 0; ; attempt++ {
		seq := uint64(1)
		if entries, err := listCheckpoints(root); err == nil && len(entries) > 0 {
			seq = entries[len(entries)-1].seq + 1
		}
		man.Seq = seq
		var mbuf bytes.Buffer
		if err := gob.NewEncoder(&mbuf).Encode(&man); err != nil {
			return "", fmt.Errorf("checkpoint: manifest: %w", err)
		}
		if err := writeRecordFile(filepath.Join(tmp, manifestFile), KindManifest, RecManifest, [][]byte{mbuf.Bytes()}); err != nil {
			return "", err
		}
		final = filepath.Join(root, fmt.Sprintf("%s%08d", ckptPrefix, seq))
		err := os.Rename(tmp, final)
		if err == nil {
			break
		}
		if attempt >= 100 || !errors.Is(err, os.ErrExist) && !isDirNotEmpty(err) {
			return "", fmt.Errorf("checkpoint: publish: %w", err)
		}
	}
	cleanup = false
	syncDir(root)
	prune(root, DefaultKeep)
	return final, nil
}

// isDirNotEmpty reports the rename-onto-occupied-directory failure
// (ENOTEMPTY on Linux, reported distinctly from os.ErrExist).
func isDirNotEmpty(err error) bool {
	return errors.Is(err, syscall.ENOTEMPTY)
}

// Load reads one checkpoint directory strictly: every file must parse, every
// CRC must hold, and the session count must match the manifest. Errors wrap
// ErrCorrupt or ErrVersion where applicable.
func Load(dir string) (*FleetState, error) {
	man, err := readManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	state := &FleetState{
		Manifest:  *man,
		Models:    make(map[string]models.Classifier, len(man.Models)),
		ModelMACs: make(map[string]int64, len(man.Models)),
	}
	for _, me := range man.Models {
		if me.File != filepath.Base(me.File) || me.File == "" {
			return nil, fmt.Errorf("%w: manifest references path %q", ErrCorrupt, me.File)
		}
		payloads, err := readRecordFile(filepath.Join(dir, me.File), KindModel, RecModel)
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", me.Key, err)
		}
		if len(payloads) != 1 {
			return nil, fmt.Errorf("%w: model file %q holds %d records, want 1", ErrCorrupt, me.File, len(payloads))
		}
		clf, err := models.Load(bytes.NewReader(payloads[0]))
		if err != nil {
			return nil, fmt.Errorf("%w: model %q: %v", ErrCorrupt, me.Key, err)
		}
		state.Models[me.Key] = clf
		state.ModelMACs[me.Key] = me.MACs
	}
	payloads, err := readRecordFile(filepath.Join(dir, sessionsFile), KindSessions, RecSession)
	if err != nil {
		return nil, err
	}
	if len(payloads) != man.Sessions {
		return nil, fmt.Errorf("%w: %d session records, manifest promises %d", ErrCorrupt, len(payloads), man.Sessions)
	}
	for i, p := range payloads {
		var rec SessionRecord
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: session record %d: %v", ErrCorrupt, i, err)
		}
		if _, ok := state.Models[rec.ModelKey]; !ok {
			return nil, fmt.Errorf("%w: session %d references unknown model %q", ErrCorrupt, rec.ID, rec.ModelKey)
		}
		state.Sessions = append(state.Sessions, rec)
	}
	return state, nil
}

// LoadLatest loads the newest valid checkpoint under root, walking backward
// past damaged ones (a torn or bit-flipped newest checkpoint costs one
// interval of state, not the fleet). It returns the loaded state and the
// directory it came from, or ErrNoCheckpoint when root holds none; if every
// present checkpoint is damaged, the newest one's error is returned.
func LoadLatest(root string) (*FleetState, string, error) {
	entries, err := listCheckpoints(root)
	if err != nil || len(entries) == 0 {
		return nil, "", ErrNoCheckpoint
	}
	var firstErr error
	for i := len(entries) - 1; i >= 0; i-- {
		dir := filepath.Join(root, entries[i].name)
		state, err := Load(dir)
		if err == nil {
			return state, dir, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("checkpoint: %s: %w", entries[i].name, err)
		}
	}
	return nil, "", firstErr
}

// Latest returns the newest checkpoint directory under root, without
// validating it.
func Latest(root string) (string, bool) {
	entries, err := listCheckpoints(root)
	if err != nil || len(entries) == 0 {
		return "", false
	}
	return filepath.Join(root, entries[len(entries)-1].name), true
}

type ckptEntry struct {
	name string
	seq  uint64
}

// listCheckpoints returns complete checkpoints sorted by ascending sequence.
func listCheckpoints(root string) ([]ckptEntry, error) {
	des, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []ckptEntry
	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), ckptPrefix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(de.Name(), ckptPrefix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, ckptEntry{name: de.Name(), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// prune removes checkpoints beyond the newest keep, plus abandoned temp
// directories from crashed saves.
func prune(root string, keep int) {
	entries, err := listCheckpoints(root)
	if err != nil {
		return
	}
	for i := 0; i+keep < len(entries); i++ {
		os.RemoveAll(filepath.Join(root, entries[i].name))
	}
	des, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		// Temp dirs belong to in-flight Saves; one that has sat for longer
		// than any plausible write is debris from a crashed process.
		if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > staleTmpAge {
			os.RemoveAll(filepath.Join(root, de.Name()))
		}
	}
}

// staleTmpAge is how old a temp directory must be before prune treats it as
// debris from a crashed Save rather than a concurrent in-flight one.
const staleTmpAge = 10 * time.Minute

// writeRecordFile writes one framed file and fsyncs it.
func writeRecordFile(path string, kind uint16, typ byte, payloads [][]byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	fw, err := newFileWriter(f, kind)
	if err == nil {
		for _, p := range payloads {
			if err = fw.writeRecord(typ, p); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readRecordFile reads and CRC-verifies every record of one framed file.
func readRecordFile(path string, kind uint16, wantTyp byte) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	fr, err := newFileReader(f, kind)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	var out [][]byte
	for {
		typ, payload, err := fr.readRecord()
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
				return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
			}
			break // clean EOF
		}
		if typ != wantTyp {
			return nil, fmt.Errorf("%s: %w: record type %d, want %d", filepath.Base(path), ErrCorrupt, typ, wantTyp)
		}
		out = append(out, payload)
	}
	return out, nil
}

// readManifest reads the single manifest record.
func readManifest(path string) (*Manifest, error) {
	payloads, err := readRecordFile(path, KindManifest, RecManifest)
	if err != nil {
		return nil, err
	}
	if len(payloads) != 1 {
		return nil, fmt.Errorf("%w: manifest holds %d records, want 1", ErrCorrupt, len(payloads))
	}
	var man Manifest
	if err := gob.NewDecoder(bytes.NewReader(payloads[0])).Decode(&man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if man.Hub.Shards < 1 || man.Hub.MaxSessionsPerShard < 1 || man.Hub.TickHz <= 0 {
		return nil, fmt.Errorf("%w: manifest hub config %+v", ErrCorrupt, man.Hub)
	}
	if len(man.Shards) != man.Hub.Shards {
		return nil, fmt.Errorf("%w: manifest has %d shard baselines for %d shards", ErrCorrupt, len(man.Shards), man.Hub.Shards)
	}
	return &man, nil
}

// syncDir best-effort fsyncs a directory so a just-published rename survives
// power loss. Failure is ignored: some filesystems refuse directory fsync,
// and the rename itself is already atomic on the journaled filesystems the
// daemon targets.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
