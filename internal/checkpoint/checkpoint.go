// Package checkpoint is the crash-safe persistence subsystem of the serving
// fleet: it snapshots a whole serve.Hub — every registry model, each
// session's ingest and debounce state, and the hub manifest — into a
// versioned, CRC-checked, atomically-renamed checkpoint directory, and loads
// it back so a restarted daemon resumes serving without retraining and with
// bitwise-identical subsequent predictions.
//
// # On-disk layout
//
// A checkpoint root holds numbered checkpoint directories:
//
//	<root>/
//	  ckpt-00000041/          ← one complete, immutable checkpoint
//	    MANIFEST              ← file kind 1: hub config, model index, counters
//	    model-0.bin           ← file kind 2: models.Save payload per registry key
//	    sessions.bin          ← file kind 3: one record per live session
//	  ckpt-00000042/
//	  .tmp-00000043/          ← in-progress write; never read
//
// Every file is framed by the record layer in format.go (magic, format
// version, per-record CRC-32C). A checkpoint becomes visible only by the
// atomic rename of its temp directory, so readers never observe a partial
// write; a crash mid-save leaves a .tmp-* directory that the next Save
// sweeps. Save prunes old checkpoints, keeping the newest DefaultKeep, and
// Load falls back to the previous checkpoint when the newest is damaged —
// corruption costs one checkpoint interval, never the fleet.
//
// The full normative format specification is in ARCHITECTURE.md.
//
// The package deliberately knows nothing about serve.Hub: it moves FleetState
// values to and from disk. internal/serve owns the conversion between a live
// hub and a FleetState (Hub.Checkpoint / RestoreHub), keeping the dependency
// one-directional.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cognitivearm/internal/control"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/wal"

	// Register the ensemble codec so checkpoints holding ensembles load.
	_ "cognitivearm/internal/ensemble"
)

// DefaultKeep is how many complete checkpoints Save retains. Two generations
// of fallback cover the realistic failure (a torn newest checkpoint) without
// letting the directory grow without bound.
const DefaultKeep = 3

// ErrNoCheckpoint reports an empty (or missing) checkpoint root.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// HubConfig mirrors serve.Config in plain persisted fields.
type HubConfig struct {
	Shards              int
	MaxSessionsPerShard int
	TickHz              float64
	MaxIdleTicks        int
	LatencyWindow       int
}

// ModelEntry indexes one serialized registry model.
type ModelEntry struct {
	// Key is the registry key sessions resolve the model by.
	Key string
	// File is the payload filename within the checkpoint directory that
	// holds the model — or, when Seq is non-zero, within checkpoint Seq's
	// directory under the same root. Models are immutable once resolved in
	// the registry, so incremental checkpoints reference them instead of
	// rewriting megabytes of identical weights every interval.
	File string
	// MACs is the per-inference MAC estimate stored alongside the model.
	MACs int64
	// Seq is the sequence number of the checkpoint directory holding File;
	// 0 means this checkpoint's own directory.
	Seq uint64
}

// ShardCounters is one shard's monotonic metrics baseline, restored so
// fleet-wide throughput counters survive a restart.
type ShardCounters struct {
	Ticks, Inferences, Batches, Evictions, SamplesIn uint64
}

// DirFormatV2 is the current checkpoint-directory format generation: a v2
// manifest may reference session records and model payloads stored by
// earlier checkpoints under the same root (incremental, dirty-only saves).
// Directories without a Format field (the original layout) are read as
// fully self-contained. The record framing (format.go) is unchanged.
const DirFormatV2 = 2

// DefaultCompactEvery bounds an incremental chain: after this many
// consecutive incremental checkpoints, the next Hub.Checkpoint performs a
// full rewrite, so a restore never resolves records across more than
// DefaultCompactEvery directories and pruning can eventually reclaim old
// ones.
const DefaultCompactEvery = 8

// SessionRef is one session's entry in a v2 manifest: where its full record
// lives, which version of the session it captures, and the fast-drifting
// scheduler fields that change every tick even when the signal path does not.
// An idle session's heavy state (rolling window, IIR delay lines, debounce
// ring, counters, pending samples) is immutable between checkpoints, so the
// manifest carries only this ~40-byte entry for it and the record bytes are
// referenced from the checkpoint that last wrote them.
type SessionRef struct {
	// ID identifies the session; Ver is its mutation counter at capture time
	// and must match the referenced record's Ver on load.
	ID, Ver uint64
	// Seq is the checkpoint whose sessions.bin holds the full record; 0
	// means this checkpoint's own.
	Seq uint64
	// SampleAcc and IdleTicks are the volatile overlay: they advance every
	// tick regardless of traffic, so they live here (rewritten each
	// checkpoint) and overwrite the referenced record's values on load —
	// which is what makes an incremental restore bitwise-identical to a
	// full one.
	SampleAcc float64
	IdleTicks int
}

// Manifest describes one checkpoint: everything needed to rebuild the hub
// shell before session records are replayed into it.
type Manifest struct {
	// Seq is the checkpoint sequence number (monotonic per root directory).
	Seq uint64
	// Hub is the serving configuration the fleet ran under.
	Hub HubConfig
	// NextID seeds the hub's session-ID allocator past every persisted ID.
	NextID uint64
	// Models indexes the model payload files (local or, for Seq != 0
	// entries of a v2 manifest, in an earlier checkpoint's directory).
	Models []ModelEntry
	// Sessions is the expected record count of this directory's
	// sessions.bin; a mismatch means a torn sessions file even when each
	// present record's CRC holds. In a v2 manifest this counts only the
	// dirty records written here, not the whole fleet.
	Sessions int
	// Shards holds per-shard counter baselines, indexed by shard.
	Shards []ShardCounters
	// Format is the directory-format generation (0 or 1 = self-contained
	// original layout; DirFormatV2 = may reference earlier checkpoints).
	Format int
	// Base is the Seq of the checkpoint this one increments on (0 = full
	// rewrite). Informational: refs carry absolute seqs, so resolution
	// never walks the Base chain.
	Base uint64
	// Increments counts consecutive incremental checkpoints since the last
	// full one; Hub.Checkpoint compacts (full rewrite) when it reaches
	// DefaultCompactEvery.
	Increments int
	// WalSeq is the last sealed write-ahead-log entry sequence this
	// checkpoint covers (0 = no WAL in play, or a pre-WAL manifest). WAL
	// replay applies only entries with seq > WalSeq, and WAL compaction may
	// truncate segments whose entries are all <= WalSeq.
	WalSeq uint64
	// Refs lists every live session (v2 only): the complete fleet view,
	// in ID order, with Seq pointing at the directory holding each full
	// record and the volatile overlay fields.
	Refs []SessionRef
}

// RefIndex returns the manifest's session references keyed by ID, with Seq
// resolved to an absolute sequence number (entries written by this
// checkpoint get its own Seq) — the view the next incremental capture
// compares live sessions against.
func (m *Manifest) RefIndex() map[uint64]SessionRef {
	out := make(map[uint64]SessionRef, len(m.Refs))
	for _, r := range m.Refs {
		if r.Seq == 0 {
			r.Seq = m.Seq
		}
		out[r.ID] = r
	}
	return out
}

// ModelIndex returns the manifest's model entries keyed by registry key,
// with Seq resolved to an absolute sequence number.
func (m *Manifest) ModelIndex() map[string]ModelEntry {
	out := make(map[string]ModelEntry, len(m.Models))
	for _, e := range m.Models {
		if e.Seq == 0 {
			e.Seq = m.Seq
		}
		out[e.Key] = e
	}
	return out
}

// SessionRecord is the complete resumable state of one serving session.
type SessionRecord struct {
	// ID is the stable session identifier; Shard is its shard assignment,
	// preserved across restarts so restored fleets keep their balance.
	ID    uint64
	Shard int
	// Ver is the session's mutation counter (serve bumps it whenever a tick
	// ingests samples). The incremental checkpoint path rewrites a record
	// only when Ver moved; restore resumes the counter so dirtiness stays
	// comparable across daemon restarts.
	Ver uint64
	// ModelKey resolves the shared classifier; Tag is the caller's opaque
	// rebind hint (e.g. cogarmd marks sessions "demo:…" or "inlet" and uses
	// the tag to reattach a live source on restore).
	ModelKey string
	Tag      string
	// Channels and SampleRateHz reproduce the session's stream geometry.
	Channels     int
	SampleRateHz float64
	// NormMean and NormStd are the subject's normalisation constants.
	NormMean, NormStd []float64
	// SampleAcc is the fractional samples-per-tick carry; Fed and IdleTicks
	// reproduce the idle-eviction clock.
	SampleAcc float64
	Fed       bool
	IdleTicks int
	// Decoded, Agreed and Actions restore the session counters.
	Decoded, Agreed uint64
	Actions         []uint64
	// Windower and Debounce are the signal-path snapshots that make resumed
	// predictions bitwise-identical: partially filled rolling window,
	// per-channel IIR delay state, and the label-debounce ring.
	Windower control.WindowerState
	Debounce control.DebouncerState
	// Pending holds samples that were buffered in the session's source ring
	// but not yet ticked through the window at snapshot time; restore
	// prepends them to the new source so no sample is lost or reordered.
	Pending []PendingSample
}

// PendingSample is one buffered-but-unconsumed sample. It mirrors
// stream.Sample in plain persisted fields: stream.Sample itself implements
// encoding.BinaryUnmarshaler for its UDP wire format (but not the matching
// BinaryMarshaler), which would make gob encode it as a struct and refuse to
// decode it — so the checkpoint layer keeps its own symmetric type.
type PendingSample struct {
	Seq       uint64
	Timestamp float64
	Values    []float64
}

// FleetState is the in-memory image of one checkpoint: what serve.Hub
// captures on Checkpoint and what RestoreHub rebuilds from. Load always
// returns a fully resolved state (every session record and model present,
// volatile overlays applied), whatever mix of local and referenced pieces
// the directory held.
type FleetState struct {
	Manifest Manifest
	// Models maps registry keys to live classifiers (decoded on Load). On
	// save, only the models to be written into this directory.
	Models map[string]models.Classifier
	// ModelMACs carries each model's per-inference MAC estimate.
	ModelMACs map[string]int64
	// ModelRefs lists models this (incremental) checkpoint references from
	// earlier directories instead of rewriting. Save copies them into the
	// manifest verbatim; a self-contained state leaves this nil.
	ModelRefs []ModelEntry
	// Sessions holds the session records to write into this directory —
	// the whole fleet for a full checkpoint, the dirty subset for an
	// incremental one (Manifest.Refs then carries the full fleet view).
	Sessions []SessionRecord
	// TailRoot is the verified Merkle root of the replication batch this
	// state was decoded from (TailReader.ReadBatch only; zero elsewhere).
	// A follower records it per-epoch so divergence from the primary is
	// attributable to a specific batch at promotion time.
	TailRoot [wal.HashSize]byte
}

const (
	manifestFile = "MANIFEST"
	sessionsFile = "sessions.bin"
	ckptPrefix   = "ckpt-"
	tmpPrefix    = ".tmp-"
)

// Save writes state as the next checkpoint under root, creating root if
// needed. The checkpoint is assembled in a temp directory, fsynced, and
// atomically renamed into place; only then are checkpoints older than the
// newest DefaultKeep pruned (and stale temp directories from crashed saves
// swept). It returns the path of the new checkpoint directory.
func Save(root string, state *FleetState) (string, error) {
	if state == nil {
		return "", fmt.Errorf("checkpoint: nil state")
	}
	start := time.Now()
	dir, err := save(root, state)
	if err != nil {
		ckptTel().saveErrs.Inc()
		return "", err
	}
	recordSave(&state.Manifest, dir, start)
	return dir, nil
}

// save is Save minus telemetry.
func save(root string, state *FleetState) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	man := state.Manifest
	man.Sessions = len(state.Sessions)
	// Referenced (unchanged) models first, then the locally written ones.
	man.Models = append([]ModelEntry(nil), state.ModelRefs...)

	// A unique temp dir per call keeps concurrent Saves into one root (e.g.
	// a periodic checkpoint racing a shutdown checkpoint) from trampling
	// each other's half-written files.
	tmp, err := os.MkdirTemp(root, tmpPrefix)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	cleanup := true
	defer func() {
		if cleanup {
			os.RemoveAll(tmp)
		}
	}()

	// Model payloads, in sorted key order for stable file naming.
	keys := make([]string, 0, len(state.Models))
	for k := range state.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, key := range keys {
		var payload bytes.Buffer
		if err := models.Save(&payload, state.Models[key]); err != nil {
			return "", fmt.Errorf("checkpoint: model %q: %w", key, err)
		}
		name := fmt.Sprintf("model-%d.bin", i)
		if err := writeRecordFile(filepath.Join(tmp, name), KindModel, RecModel, [][]byte{payload.Bytes()}); err != nil {
			return "", err
		}
		man.Models = append(man.Models, ModelEntry{Key: key, File: name, MACs: state.ModelMACs[key]})
	}

	// Session records.
	sessPayloads := make([][]byte, len(state.Sessions))
	for i := range state.Sessions {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&state.Sessions[i]); err != nil {
			return "", fmt.Errorf("checkpoint: session %d: %w", state.Sessions[i].ID, err)
		}
		sessPayloads[i] = buf.Bytes()
	}
	if err := writeRecordFile(filepath.Join(tmp, sessionsFile), KindSessions, RecSession, sessPayloads); err != nil {
		return "", err
	}

	// Manifest last (it indexes everything above), inside the publish loop:
	// a concurrent Save may claim our sequence number first, in which case
	// only the small manifest is rewritten with the next one and the rename
	// retried. Renaming onto an existing non-empty directory fails, which is
	// exactly the collision signal.
	var final string
	for attempt := 0; ; attempt++ {
		seq := uint64(1)
		if entries, err := listCheckpoints(root); err == nil && len(entries) > 0 {
			seq = entries[len(entries)-1].seq + 1
		}
		man.Seq = seq
		var mbuf bytes.Buffer
		if err := gob.NewEncoder(&mbuf).Encode(&man); err != nil {
			return "", fmt.Errorf("checkpoint: manifest: %w", err)
		}
		if err := writeRecordFile(filepath.Join(tmp, manifestFile), KindManifest, RecManifest, [][]byte{mbuf.Bytes()}); err != nil {
			return "", err
		}
		final = filepath.Join(root, dirName(seq))
		err := os.Rename(tmp, final)
		if err == nil {
			break
		}
		if attempt >= 100 || !errors.Is(err, os.ErrExist) && !isDirNotEmpty(err) {
			return "", fmt.Errorf("checkpoint: publish: %w", err)
		}
	}
	cleanup = false
	syncDir(root)
	prune(root, DefaultKeep)
	return final, nil
}

// isDirNotEmpty reports the rename-onto-occupied-directory failure
// (ENOTEMPTY on Linux, reported distinctly from os.ErrExist).
func isDirNotEmpty(err error) bool {
	return errors.Is(err, syscall.ENOTEMPTY)
}

// Load reads one checkpoint directory strictly: every file must parse, every
// CRC must hold, and the session count must match the manifest. For a v2
// (possibly incremental) checkpoint it additionally resolves every session
// and model reference against sibling directories under the same root,
// verifies each referenced record's version against the manifest, and applies
// the volatile overlay — the returned state is always fully self-contained.
// Errors wrap ErrCorrupt or ErrVersion where applicable.
func Load(dir string) (*FleetState, error) {
	state, err := load(dir)
	if err != nil {
		ckptTel().loadErrs.Inc()
		return nil, err
	}
	ckptTel().loads.Inc()
	ckptTel().events.Record(obs.EvCheckpointLoad, -1, 0, int64(len(state.Sessions)), 0)
	return state, nil
}

// load is Load minus telemetry.
func load(dir string) (*FleetState, error) {
	man, err := readManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	root := filepath.Dir(dir)
	state := &FleetState{
		Manifest:  *man,
		Models:    make(map[string]models.Classifier, len(man.Models)),
		ModelMACs: make(map[string]int64, len(man.Models)),
	}
	for _, me := range man.Models {
		if me.File != filepath.Base(me.File) || me.File == "" {
			return nil, fmt.Errorf("%w: manifest references path %q", ErrCorrupt, me.File)
		}
		mdir := dir
		if me.Seq != 0 && me.Seq != man.Seq {
			mdir = filepath.Join(root, dirName(me.Seq))
		}
		payloads, err := readRecordFile(filepath.Join(mdir, me.File), KindModel, RecModel)
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", me.Key, err)
		}
		if len(payloads) != 1 {
			return nil, fmt.Errorf("%w: model file %q holds %d records, want 1", ErrCorrupt, me.File, len(payloads))
		}
		clf, err := models.Load(bytes.NewReader(payloads[0]))
		if err != nil {
			return nil, fmt.Errorf("%w: model %q: %v", ErrCorrupt, me.Key, err)
		}
		state.Models[me.Key] = clf
		state.ModelMACs[me.Key] = me.MACs
	}
	local, err := readSessionRecords(filepath.Join(dir, sessionsFile))
	if err != nil {
		return nil, err
	}
	if len(local) != man.Sessions {
		return nil, fmt.Errorf("%w: %d session records, manifest promises %d", ErrCorrupt, len(local), man.Sessions)
	}
	checkModel := func(rec *SessionRecord) error {
		if _, ok := state.Models[rec.ModelKey]; !ok {
			return fmt.Errorf("%w: session %d references unknown model %q", ErrCorrupt, rec.ID, rec.ModelKey)
		}
		return nil
	}
	if man.Format < DirFormatV2 {
		// Self-contained original layout: the local records are the fleet.
		for i := range local {
			if err := checkModel(&local[i]); err != nil {
				return nil, err
			}
			state.Sessions = append(state.Sessions, local[i])
		}
		return state, nil
	}

	// v2: the manifest's refs are the fleet view; each resolves to a local
	// record or one stored by an earlier checkpoint, version-checked and
	// with the volatile scheduler fields overlaid.
	localByID := make(map[uint64]*SessionRecord, len(local))
	for i := range local {
		localByID[local[i].ID] = &local[i]
	}
	remote := map[uint64]map[uint64]*SessionRecord{}
	localUsed := 0
	for _, ref := range man.Refs {
		var rec *SessionRecord
		if ref.Seq == 0 || ref.Seq == man.Seq {
			rec = localByID[ref.ID]
			if rec == nil {
				return nil, fmt.Errorf("%w: manifest references local session %d not in sessions.bin", ErrCorrupt, ref.ID)
			}
			localUsed++
		} else {
			byID, ok := remote[ref.Seq]
			if !ok {
				recs, err := readSessionRecords(filepath.Join(root, dirName(ref.Seq), sessionsFile))
				if err != nil {
					return nil, fmt.Errorf("checkpoint %d (referenced): %w", ref.Seq, err)
				}
				byID = make(map[uint64]*SessionRecord, len(recs))
				for i := range recs {
					byID[recs[i].ID] = &recs[i]
				}
				remote[ref.Seq] = byID
			}
			rec = byID[ref.ID]
			if rec == nil {
				return nil, fmt.Errorf("%w: session %d not found in referenced checkpoint %d", ErrCorrupt, ref.ID, ref.Seq)
			}
		}
		if rec.Ver != ref.Ver {
			return nil, fmt.Errorf("%w: session %d version %d, manifest expects %d", ErrCorrupt, ref.ID, rec.Ver, ref.Ver)
		}
		if err := checkModel(rec); err != nil {
			return nil, err
		}
		// Volatile overlay: the manifest's scheduler fields are current even
		// when the record predates this checkpoint.
		out := *rec
		out.SampleAcc = ref.SampleAcc
		out.IdleTicks = ref.IdleTicks
		state.Sessions = append(state.Sessions, out)
	}
	if localUsed != len(local) {
		return nil, fmt.Errorf("%w: sessions.bin holds %d records but refs use %d", ErrCorrupt, len(local), localUsed)
	}
	return state, nil
}

// readSessionRecords reads and decodes every session record of one framed
// sessions file.
func readSessionRecords(path string) ([]SessionRecord, error) {
	payloads, err := readRecordFile(path, KindSessions, RecSession)
	if err != nil {
		return nil, err
	}
	recs := make([]SessionRecord, 0, len(payloads))
	for i, p := range payloads {
		var rec SessionRecord
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: session record %d: %v", ErrCorrupt, i, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// dirName renders the directory name of checkpoint seq.
func dirName(seq uint64) string {
	return fmt.Sprintf("%s%08d", ckptPrefix, seq)
}

// LoadLatest loads the newest valid checkpoint under root, walking backward
// past damaged ones (a torn or bit-flipped newest checkpoint costs one
// interval of state, not the fleet). It returns the loaded state and the
// directory it came from, or ErrNoCheckpoint when root holds none; if every
// present checkpoint is damaged, the newest one's error is returned.
func LoadLatest(root string) (*FleetState, string, error) {
	entries, err := listCheckpoints(root)
	if err != nil || len(entries) == 0 {
		return nil, "", ErrNoCheckpoint
	}
	var firstErr error
	for i := len(entries) - 1; i >= 0; i-- {
		dir := filepath.Join(root, entries[i].name)
		state, err := Load(dir)
		if err == nil {
			return state, dir, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("checkpoint: %s: %w", entries[i].name, err)
		}
	}
	return nil, "", firstErr
}

// Latest returns the newest checkpoint directory under root, without
// validating it.
func Latest(root string) (string, bool) {
	entries, err := listCheckpoints(root)
	if err != nil || len(entries) == 0 {
		return "", false
	}
	return filepath.Join(root, entries[len(entries)-1].name), true
}

// LatestManifest reads the newest valid manifest under root without loading
// models or session records — the cheap fleet view an incremental save
// compares live sessions against. Like LoadLatest it walks backward past
// checkpoints whose manifest is damaged; it returns ErrNoCheckpoint when
// none is readable (callers then write a full checkpoint).
func LatestManifest(root string) (*Manifest, error) {
	entries, err := listCheckpoints(root)
	if err != nil || len(entries) == 0 {
		return nil, ErrNoCheckpoint
	}
	var firstErr error
	for i := len(entries) - 1; i >= 0; i-- {
		man, err := readManifest(filepath.Join(root, entries[i].name, manifestFile))
		if err == nil {
			return man, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("checkpoint: %s: %w", entries[i].name, err)
		}
	}
	return nil, firstErr
}

type ckptEntry struct {
	name string
	seq  uint64
}

// listCheckpoints returns complete checkpoints sorted by ascending sequence.
func listCheckpoints(root string) ([]ckptEntry, error) {
	des, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []ckptEntry
	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), ckptPrefix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(de.Name(), ckptPrefix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, ckptEntry{name: de.Name(), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// prune removes checkpoints beyond the newest keep — except directories that
// a kept checkpoint's manifest still references for session records or model
// payloads (incremental chains) — plus abandoned temp directories from
// crashed saves. Referenced directories are reclaimed once every manifest
// referencing them rotates out, which compaction guarantees happens within
// DefaultCompactEvery + keep checkpoints.
func prune(root string, keep int) {
	entries, err := listCheckpoints(root)
	if err != nil {
		return
	}
	referenced := map[uint64]bool{}
	for i := len(entries) - keep; i < len(entries); i++ {
		if i < 0 {
			continue
		}
		man, err := readManifest(filepath.Join(root, entries[i].name, manifestFile))
		if err != nil {
			continue // unreadable manifest: nothing provable to protect
		}
		for _, r := range man.Refs {
			if r.Seq != 0 && r.Seq != man.Seq {
				referenced[r.Seq] = true
			}
		}
		for _, e := range man.Models {
			if e.Seq != 0 && e.Seq != man.Seq {
				referenced[e.Seq] = true
			}
		}
		if man.Base != 0 {
			referenced[man.Base] = true
		}
	}
	for i := 0; i+keep < len(entries); i++ {
		if referenced[entries[i].seq] {
			continue
		}
		os.RemoveAll(filepath.Join(root, entries[i].name))
	}
	des, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		// Temp dirs belong to in-flight Saves; one that has sat for longer
		// than any plausible write is debris from a crashed process.
		if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > staleTmpAge {
			os.RemoveAll(filepath.Join(root, de.Name()))
		}
	}
}

// staleTmpAge is how old a temp directory must be before prune treats it as
// debris from a crashed Save rather than a concurrent in-flight one.
const staleTmpAge = 10 * time.Minute

// writeRecordFile writes one framed file and fsyncs it.
func writeRecordFile(path string, kind uint16, typ byte, payloads [][]byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	fw, err := newFileWriter(f, kind)
	if err == nil {
		for _, p := range payloads {
			if err = fw.writeRecord(typ, p); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readRecordFile reads and CRC-verifies every record of one framed file.
func readRecordFile(path string, kind uint16, wantTyp byte) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	fr, err := newFileReader(f, kind)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	var out [][]byte
	for {
		typ, payload, err := fr.readRecord()
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
				return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
			}
			break // clean EOF
		}
		if typ != wantTyp {
			return nil, fmt.Errorf("%s: %w: record type %d, want %d", filepath.Base(path), ErrCorrupt, typ, wantTyp)
		}
		out = append(out, payload)
	}
	return out, nil
}

// readManifest reads the single manifest record.
func readManifest(path string) (*Manifest, error) {
	payloads, err := readRecordFile(path, KindManifest, RecManifest)
	if err != nil {
		return nil, err
	}
	if len(payloads) != 1 {
		return nil, fmt.Errorf("%w: manifest holds %d records, want 1", ErrCorrupt, len(payloads))
	}
	var man Manifest
	if err := gob.NewDecoder(bytes.NewReader(payloads[0])).Decode(&man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if man.Hub.Shards < 1 || man.Hub.MaxSessionsPerShard < 1 || man.Hub.TickHz <= 0 {
		return nil, fmt.Errorf("%w: manifest hub config %+v", ErrCorrupt, man.Hub)
	}
	if len(man.Shards) != man.Hub.Shards {
		return nil, fmt.Errorf("%w: manifest has %d shard baselines for %d shards", ErrCorrupt, len(man.Shards), man.Hub.Shards)
	}
	if man.Format > DirFormatV2 {
		return nil, fmt.Errorf("%w: directory format %d, reader supports <= %d", ErrVersion, man.Format, DirFormatV2)
	}
	return &man, nil
}

// syncDir best-effort fsyncs a directory so a just-published rename survives
// power loss. Failure is ignored: some filesystems refuse directory fsync,
// and the rename itself is already atomic on the journaled filesystems the
// daemon targets.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
