package checkpoint_test

import (
	"fmt"
	"os"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/tensor"
)

// Example persists a minimal fleet state and loads it back, demonstrating
// the Save → LoadLatest cycle serve.Hub.Checkpoint / serve.RestoreHubDir
// wrap. Real fleets are captured from a live hub; here the state is built by
// hand to show the shape of what lands on disk.
func Example() {
	rng := tensor.NewRNG(4)
	X := make([][]float64, 60)
	y := make([]int, len(X))
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = i % eeg.NumActions
	}
	forest, err := rf.Fit(X, y, eeg.NumActions, rf.Config{Trees: 3, MaxDepth: 3, MinSamplesSplit: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	clf := &models.RFClassifier{Forest: forest,
		Spec: models.Spec{Family: models.FamilyRF, WindowSize: 90, Trees: 3, MaxDepth: 3}}

	state := &checkpoint.FleetState{
		Manifest: checkpoint.Manifest{
			Hub:    checkpoint.HubConfig{Shards: 1, MaxSessionsPerShard: 4, TickHz: 15, LatencyWindow: 64},
			NextID: 1,
			Shards: []checkpoint.ShardCounters{{Ticks: 42}},
		},
		Models:    map[string]models.Classifier{"shared": clf},
		ModelMACs: map[string]int64{"shared": 9},
	}

	root, err := os.MkdirTemp("", "ckpt-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	if _, err := checkpoint.Save(root, state); err != nil {
		panic(err)
	}
	loaded, _, err := checkpoint.LoadLatest(root)
	if err != nil {
		panic(err)
	}
	fmt.Println("seq:", loaded.Manifest.Seq)
	fmt.Println("models:", len(loaded.Models))
	fmt.Println("shard 0 ticks:", loaded.Manifest.Shards[0].Ticks)
	// Output:
	// seq: 1
	// models: 1
	// shard 0 ticks: 42
}
