package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cognitivearm/internal/control"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/tensor"
)

// testState builds a small but fully populated fleet state: one random-weight
// CNN (untrained weights serialise the same as trained ones), one tiny
// forest, and two sessions with mid-stream signal state.
func testState(t *testing.T) *FleetState {
	t.Helper()
	spec := models.Spec{Family: models.FamilyCNN, WindowSize: 40, Optimizer: "adam", LR: 1e-3,
		ConvLayers: 1, Filters: 4, Kernel: 5, Stride: 2, Pool: "none"}
	net, err := models.BuildNet(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	cnn := &models.NNClassifier{Net: net, Spec: spec}

	rng := tensor.NewRNG(3)
	X := make([][]float64, 60)
	y := make([]int, len(X))
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = i % eeg.NumActions
	}
	forest, err := rf.Fit(X, y, eeg.NumActions, rf.Config{Trees: 5, MaxDepth: 4, MinSamplesSplit: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rfc := &models.RFClassifier{Forest: forest, Spec: models.Spec{Family: models.FamilyRF, WindowSize: 40, Trees: 5, MaxDepth: 4}}

	win, err := control.NewWindower(125, 4, 40, dataset.Stats{Mean: make([]float64, 4), Std: []float64{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ { // partially filled window + filter state
		win.Push([]float64{float64(i), 1, -1, 0.25 * float64(i)})
	}
	var deb control.Debouncer
	deb.Observe(eeg.Left)
	deb.Observe(eeg.Left)

	return &FleetState{
		Manifest: Manifest{
			Hub:    HubConfig{Shards: 2, MaxSessionsPerShard: 8, TickHz: 15, MaxIdleTicks: 30, LatencyWindow: 64},
			NextID: 9,
			Shards: []ShardCounters{{Ticks: 100, Inferences: 42, Batches: 21, SamplesIn: 830}, {Ticks: 100}},
		},
		Models:    map[string]models.Classifier{"cnn": cnn, "forest": rfc},
		ModelMACs: map[string]int64{"cnn": 1234, "forest": 20},
		Sessions: []SessionRecord{
			{
				ID: 3, Shard: 0, ModelKey: "cnn", Tag: "demo:1:0", Channels: 4, SampleRateHz: 125,
				NormMean: []float64{0, 1, 2, 3}, NormStd: []float64{1, 1, 2, 2},
				SampleAcc: 0.333, Fed: true, IdleTicks: 1, Decoded: 12, Agreed: 4,
				Actions:  []uint64{5, 4, 3},
				Windower: win.State(), Debounce: deb.State(),
				Pending: []PendingSample{{Seq: 9, Timestamp: 1.5, Values: []float64{1, 2, 3, 4}}},
			},
			{
				ID: 7, Shard: 1, ModelKey: "forest", Tag: "inlet", Channels: 4, SampleRateHz: 125,
				Actions:  []uint64{0, 0, 0},
				Windower: win.State(), Debounce: deb.State(),
			},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	state := testState(t)
	dir, err := Save(root, state)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Manifest.Seq != 1 {
		t.Fatalf("seq = %d, want 1", loaded.Manifest.Seq)
	}
	if loaded.Manifest.Hub != state.Manifest.Hub {
		t.Fatalf("hub config mangled: %+v vs %+v", loaded.Manifest.Hub, state.Manifest.Hub)
	}
	if loaded.Manifest.NextID != 9 {
		t.Fatalf("next ID = %d, want 9", loaded.Manifest.NextID)
	}
	if !reflect.DeepEqual(loaded.Manifest.Shards, state.Manifest.Shards) {
		t.Fatalf("shard counters mangled: %+v", loaded.Manifest.Shards)
	}
	if !reflect.DeepEqual(loaded.Sessions, state.Sessions) {
		t.Fatalf("session records mangled:\n got %+v\nwant %+v", loaded.Sessions, state.Sessions)
	}
	if !reflect.DeepEqual(loaded.ModelMACs, state.ModelMACs) {
		t.Fatalf("model MACs mangled: %+v", loaded.ModelMACs)
	}
	// Models must predict bitwise-identically after the round trip.
	rng := tensor.NewRNG(11)
	for key, orig := range state.Models {
		got, ok := loaded.Models[key]
		if !ok {
			t.Fatalf("model %q missing after load", key)
		}
		for trial := 0; trial < 5; trial++ {
			x := tensor.New(40, eeg.NumChannels)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			p1, p2 := orig.Probs(x), got.Probs(x)
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("model %q probs diverge after round trip: %v vs %v", key, p1, p2)
			}
		}
	}
}

func TestLoadLatestFallsBackPastCorruption(t *testing.T) {
	root := t.TempDir()
	state := testState(t)
	if _, err := Save(root, state); err != nil {
		t.Fatal(err)
	}
	second, err := Save(root, state)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(second, sessionsFile), -10)

	loaded, dir, err := LoadLatest(root)
	if err != nil {
		t.Fatalf("LoadLatest should fall back to the older checkpoint: %v", err)
	}
	if filepath.Base(dir) != "ckpt-00000001" {
		t.Fatalf("loaded %s, want the older ckpt-00000001", dir)
	}
	if len(loaded.Sessions) != 2 {
		t.Fatalf("fallback checkpoint has %d sessions, want 2", len(loaded.Sessions))
	}
}

func TestCorruptFilesAreRejected(t *testing.T) {
	for _, file := range []string{manifestFile, "model-0.bin", sessionsFile} {
		root := t.TempDir()
		dir, err := Save(root, testState(t))
		if err != nil {
			t.Fatal(err)
		}
		flipByte(t, filepath.Join(dir, file), -3)
		if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: corrupted load returned %v, want ErrCorrupt", file, err)
		}
	}
}

func TestTruncatedFilesAreRejected(t *testing.T) {
	// Mid-record truncation tears the framing; record-boundary truncation of
	// sessions.bin leaves valid records whose count contradicts the manifest.
	root := t.TempDir()
	dir, err := Save(root, testState(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, sessionsFile)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-record truncation returned %v, want ErrCorrupt", err)
	}

	root2 := t.TempDir()
	dir2, err := Save(root2, testState(t))
	if err != nil {
		t.Fatal(err)
	}
	truncateLastRecord(t, filepath.Join(dir2, sessionsFile))
	if _, err := Load(dir2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing session record returned %v, want ErrCorrupt (manifest count mismatch)", err)
	}
}

func TestVersionMismatchIsRejected(t *testing.T) {
	root := t.TempDir()
	dir, err := Save(root, testState(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[4:], FormatVersion+1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrVersion) {
		t.Fatalf("future-version load returned %v, want ErrVersion", err)
	}
}

func TestSavePrunesOldCheckpoints(t *testing.T) {
	root := t.TempDir()
	state := testState(t)
	var last string
	for i := 0; i < DefaultKeep+3; i++ {
		var err error
		if last, err = Save(root, state); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := listCheckpoints(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != DefaultKeep {
		t.Fatalf("%d checkpoints retained, want %d", len(entries), DefaultKeep)
	}
	if filepath.Base(last) != entries[len(entries)-1].name {
		t.Fatalf("newest retained is %s, want %s", entries[len(entries)-1].name, filepath.Base(last))
	}
	// Sequence numbers keep rising across pruning.
	if _, err := Save(root, state); err != nil {
		t.Fatal(err)
	}
	if dir, ok := Latest(root); !ok || filepath.Base(dir) != "ckpt-00000007" {
		t.Fatalf("latest = %q, want ckpt-00000007", dir)
	}
}

func TestAbandonedTempDirsAreSwept(t *testing.T) {
	root := t.TempDir()
	crashed := filepath.Join(root, tmpPrefix+"crashed")
	if err := os.MkdirAll(crashed, 0o755); err != nil {
		t.Fatal(err)
	}
	// Backdate it past the stale threshold: fresh temp dirs may belong to a
	// concurrent in-flight Save and must survive.
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(crashed, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(root, tmpPrefix+"inflight")
	if err := os.MkdirAll(fresh, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(root, testState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(crashed); !os.IsNotExist(err) {
		t.Fatalf("stale temp dir survived pruning (err=%v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp dir should survive pruning: %v", err)
	}
}

func TestNoCheckpoint(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty root returned %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing root returned %v, want ErrNoCheckpoint", err)
	}
}

// flipByte flips one bit of the byte at offset (negative = from the end).
func flipByte(t *testing.T, path string, offset int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if offset < 0 {
		offset += len(raw)
	}
	raw[offset] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateLastRecord removes the final complete record from a framed file,
// leaving everything before it intact.
func truncateLastRecord(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the records to find the start of the last one.
	off := headerLen
	last := off
	for off < len(raw) {
		last = off
		n := int(binary.LittleEndian.Uint32(raw[off+1:]))
		off += 5 + n + 4
	}
	if err := os.Truncate(path, int64(last)); err != nil {
		t.Fatal(err)
	}
}
