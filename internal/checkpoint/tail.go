package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"cognitivearm/internal/models"
	"cognitivearm/internal/wal"
)

// The replication tail: a long-lived stream of incremental checkpoint batches
// over one connection, built from the same dirty-record capture the v2
// checkpoint path computes every interval. Where KindStream frames exactly
// one self-contained FleetState, a KindReplica stream frames an unbounded
// sequence of deltas:
//
//	tail  := header(kind=5) batch*
//	batch := manifest-record model-record* session-record* seal-record
//
// Each batch's manifest carries the replication epoch in Seq (1, 2, 3, … per
// connection — the receiver rejects gaps, so a batch from a stale connection
// can never be applied over a newer tail), the full live-session view in Refs
// (which is how the receiver prunes closed sessions and overlays the volatile
// SampleAcc/IdleTicks fields), and in Models only the models not yet shipped
// on this connection: models are immutable once resolved, so the tail sends
// each one exactly once and later batches reference it by key. Session
// records are the dirty subset since the previous batch, usually empty or a
// handful — steady-state replication costs a manifest per interval, not a
// fleet rewrite.
//
// Every batch ends in a RecSeal carrying the Merkle root (internal/wal tree
// shape) over the batch's record payloads in wire order. The reader
// recomputes the root from what it decoded and rejects the batch on
// mismatch, and both ends expose the root, so a diverged follower is caught
// at apply time — promotion never has to trust an unverified stream.

// TailWriter ships incremental FleetState batches onto one stream. It is the
// sender half of warm-standby replication: construct one per connection,
// call WriteBatch with each dirty-only capture (serve.Hub.CaptureDelta), and
// discard the writer with the connection — per-connection epochs make a
// fresh connection a full resync automatically.
type TailWriter struct {
	fw    *fileWriter
	sent  map[string]struct{}
	epoch uint64
}

// NewTailWriter writes the replica-stream header onto w.
func NewTailWriter(w io.Writer) (*TailWriter, error) {
	fw, err := newFileWriter(w, KindReplica)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: tail header: %w", err)
	}
	return &TailWriter{fw: fw, sent: make(map[string]struct{})}, nil
}

// WriteBatch frames one replication batch from state: its Sessions are the
// dirty records for this interval, its Manifest.Refs the full live view. The
// state must be self-contained (no ModelRefs); models already shipped on
// this writer are deduplicated away. Returns the model and session record
// counts actually written plus the batch's Merkle root (also framed onto the
// wire as the closing seal record). A batch is all-or-nothing on the wire
// only in the sense that any error leaves the stream unusable — abandon the
// writer and its connection on error.
func (tw *TailWriter) WriteBatch(state *FleetState) (modelsSent, sessionsSent int, root [wal.HashSize]byte, err error) {
	if state == nil {
		return 0, 0, root, fmt.Errorf("checkpoint: nil state")
	}
	if len(state.ModelRefs) > 0 {
		return 0, 0, root, fmt.Errorf("checkpoint: tail requires a self-contained state (has %d model refs)", len(state.ModelRefs))
	}
	man := state.Manifest
	tw.epoch++
	man.Seq = tw.epoch
	man.Sessions = len(state.Sessions)
	man.Models = nil
	man.Format = 0
	man.Base = 0
	man.Increments = 0
	// man.Refs rides along as-is: the receiver's pruning and volatile
	// overlay depend on the full live view every batch.

	keys := make([]string, 0, len(state.Models))
	for k := range state.Models {
		if _, done := tw.sent[k]; !done {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		man.Models = append(man.Models, ModelEntry{Key: key, MACs: state.ModelMACs[key]})
	}

	var leaves [][wal.HashSize]byte
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&man); err != nil {
		return 0, 0, root, fmt.Errorf("checkpoint: tail manifest: %w", err)
	}
	if err := tw.fw.writeRecord(RecManifest, mbuf.Bytes()); err != nil {
		return 0, 0, root, fmt.Errorf("checkpoint: tail manifest: %w", err)
	}
	leaves = append(leaves, wal.HashLeaf(mbuf.Bytes()))
	for _, key := range keys {
		var payload bytes.Buffer
		if err := models.Save(&payload, state.Models[key]); err != nil {
			return 0, 0, root, fmt.Errorf("checkpoint: tail model %q: %w", key, err)
		}
		if err := tw.fw.writeRecord(RecModel, payload.Bytes()); err != nil {
			return 0, 0, root, fmt.Errorf("checkpoint: tail model %q: %w", key, err)
		}
		leaves = append(leaves, wal.HashLeaf(payload.Bytes()))
	}
	for i := range state.Sessions {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&state.Sessions[i]); err != nil {
			return 0, 0, root, fmt.Errorf("checkpoint: tail session %d: %w", state.Sessions[i].ID, err)
		}
		if err := tw.fw.writeRecord(RecSession, buf.Bytes()); err != nil {
			return 0, 0, root, fmt.Errorf("checkpoint: tail session %d: %w", state.Sessions[i].ID, err)
		}
		leaves = append(leaves, wal.HashLeaf(buf.Bytes()))
	}
	root = wal.Root(leaves)
	seal := make([]byte, 4+wal.HashSize)
	binary.LittleEndian.PutUint32(seal[:4], uint32(len(leaves)))
	copy(seal[4:], root[:])
	if err := tw.fw.writeRecord(RecSeal, seal); err != nil {
		return 0, 0, root, fmt.Errorf("checkpoint: tail seal: %w", err)
	}
	// Only a fully framed batch marks its models sent: on any error above the
	// stream is torn and the writer abandoned, so the accounting never drifts.
	for _, key := range keys {
		tw.sent[key] = struct{}{}
	}
	return len(keys), len(state.Sessions), root, nil
}

// Epoch returns the sequence number of the last batch written (0 before the
// first batch).
func (tw *TailWriter) Epoch() uint64 { return tw.epoch }

// TailReader consumes replication batches from one stream — the receiver
// half of warm-standby replication. Unlike ReadStream it does not require
// every session record's ModelKey to resolve within the same batch: the
// model may have arrived on an earlier batch of this tail, and the replica
// store holds the accumulated view.
type TailReader struct {
	fr *fileReader
}

// NewTailReader validates the replica-stream header on r.
func NewTailReader(r io.Reader) (*TailReader, error) {
	fr, err := newFileReader(r, KindReplica)
	if err != nil {
		return nil, err
	}
	return &TailReader{fr: fr}, nil
}

// ReadBatch decodes exactly one batch, blocking until its manifest record
// arrives. It returns io.EOF at a clean inter-batch boundary (the sender
// closed the connection between batches); a tear inside a batch wraps
// ErrCorrupt. The batch's closing seal is verified — a Merkle root
// recomputed from the decoded payloads that does not match what the sender
// framed is divergence, reported as ErrCorrupt before any of the batch can
// be applied. The returned state carries the batch's dirty session records
// in Sessions, the newly shipped models in Models, the full live view in
// Manifest.Refs, and the verified root in TailRoot.
func (tr *TailReader) ReadBatch() (*FleetState, error) {
	typ, payload, err := tr.fr.readRecord()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if typ != RecManifest {
		return nil, fmt.Errorf("%w: tail record type %d, want %d (manifest)", ErrCorrupt, typ, RecManifest)
	}
	var man Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&man); err != nil {
		return nil, fmt.Errorf("%w: tail manifest: %v", ErrCorrupt, err)
	}
	if man.Hub.Shards < 1 || man.Hub.MaxSessionsPerShard < 1 || man.Hub.TickHz <= 0 {
		return nil, fmt.Errorf("%w: tail manifest hub config %+v", ErrCorrupt, man.Hub)
	}
	if man.Seq == 0 {
		return nil, fmt.Errorf("%w: tail batch epoch 0", ErrCorrupt)
	}

	next := func(want byte, what string) ([]byte, error) {
		typ, payload, err := tr.fr.readRecord()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: tail truncated before %s", ErrCorrupt, what)
			}
			return nil, err
		}
		if typ != want {
			return nil, fmt.Errorf("%w: tail record type %d, want %d (%s)", ErrCorrupt, typ, want, what)
		}
		return payload, nil
	}

	state := &FleetState{
		Manifest:  man,
		Models:    make(map[string]models.Classifier, len(man.Models)),
		ModelMACs: make(map[string]int64, len(man.Models)),
	}
	leaves := [][wal.HashSize]byte{wal.HashLeaf(payload)}
	for _, me := range man.Models {
		payload, err := next(RecModel, fmt.Sprintf("model %q", me.Key))
		if err != nil {
			return nil, err
		}
		leaves = append(leaves, wal.HashLeaf(payload))
		clf, err := models.Load(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: tail model %q: %v", ErrCorrupt, me.Key, err)
		}
		state.Models[me.Key] = clf
		state.ModelMACs[me.Key] = me.MACs
	}
	for i := 0; i < man.Sessions; i++ {
		payload, err := next(RecSession, fmt.Sprintf("session record %d", i))
		if err != nil {
			return nil, err
		}
		leaves = append(leaves, wal.HashLeaf(payload))
		var rec SessionRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: tail session record %d: %v", ErrCorrupt, i, err)
		}
		state.Sessions = append(state.Sessions, rec)
	}
	seal, err := next(RecSeal, "batch seal")
	if err != nil {
		return nil, err
	}
	if len(seal) != 4+wal.HashSize {
		return nil, fmt.Errorf("%w: tail seal length %d", ErrCorrupt, len(seal))
	}
	if n := binary.LittleEndian.Uint32(seal[:4]); int(n) != len(leaves) {
		return nil, fmt.Errorf("%w: tail seal covers %d records, batch framed %d", ErrCorrupt, n, len(leaves))
	}
	var sent [wal.HashSize]byte
	copy(sent[:], seal[4:])
	if got := wal.Root(leaves); got != sent {
		return nil, fmt.Errorf("%w: replica stream diverged: batch merkle root mismatch (sender %x…, receiver %x…)",
			ErrCorrupt, sent[:6], got[:6])
	}
	state.TailRoot = sent
	return state, nil
}
