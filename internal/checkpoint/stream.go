package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"cognitivearm/internal/models"
)

// The streamed checkpoint variant: the same CRC-framed records a checkpoint
// directory holds, concatenated into one self-delimiting byte stream over any
// io.Writer/io.Reader pair. This is what makes per-session state cheap to
// ship between nodes — internal/cluster streams a FleetState (usually a
// handful of sessions plus the models they reference) over a TCP connection
// for live migration, and a replica could tail the same stream.
//
// Layout (normative spec in ARCHITECTURE.md):
//
//	stream := header(kind=4) manifest-record model-record* session-record*
//
// The manifest comes first and delimits the rest: its Models index (in
// order) announces how many model records follow, and its Sessions count how
// many session records. ReadStream therefore consumes exactly one checkpoint
// from the reader and leaves anything after it — e.g. a protocol ack on the
// same connection — unread. Every record carries its own CRC-32C, so a torn
// or bit-flipped transfer fails loudly instead of restoring a wrong fleet.

// WriteStream encodes state onto w in the streamed checkpoint format. Models
// are written in sorted key order, sessions in the order given. The stream is
// buffered record by record; w sees only complete frames.
func WriteStream(w io.Writer, state *FleetState) error {
	if state == nil {
		return fmt.Errorf("checkpoint: nil state")
	}
	if len(state.ModelRefs) > 0 {
		// Streams have no sibling directories to resolve references against.
		return fmt.Errorf("checkpoint: stream requires a self-contained state (has %d model refs)", len(state.ModelRefs))
	}
	man := state.Manifest
	man.Sessions = len(state.Sessions)
	man.Models = nil
	// A stream is always self-contained: drop any incremental bookkeeping a
	// directory-oriented capture may carry.
	man.Refs = nil
	man.Format = 0
	man.Base = 0
	man.Increments = 0

	keys := make([]string, 0, len(state.Models))
	for k := range state.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		// File is a directory-layout concern; in a stream, order alone
		// associates the Nth model record with the Nth manifest entry.
		man.Models = append(man.Models, ModelEntry{Key: key, MACs: state.ModelMACs[key]})
	}

	fw, err := newFileWriter(w, KindStream)
	if err != nil {
		return fmt.Errorf("checkpoint: stream header: %w", err)
	}
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&man); err != nil {
		return fmt.Errorf("checkpoint: stream manifest: %w", err)
	}
	if err := fw.writeRecord(RecManifest, mbuf.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: stream manifest: %w", err)
	}
	for _, key := range keys {
		var payload bytes.Buffer
		if err := models.Save(&payload, state.Models[key]); err != nil {
			return fmt.Errorf("checkpoint: stream model %q: %w", key, err)
		}
		if err := fw.writeRecord(RecModel, payload.Bytes()); err != nil {
			return fmt.Errorf("checkpoint: stream model %q: %w", key, err)
		}
	}
	for i := range state.Sessions {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&state.Sessions[i]); err != nil {
			return fmt.Errorf("checkpoint: stream session %d: %w", state.Sessions[i].ID, err)
		}
		if err := fw.writeRecord(RecSession, buf.Bytes()); err != nil {
			return fmt.Errorf("checkpoint: stream session %d: %w", state.Sessions[i].ID, err)
		}
	}
	return nil
}

// ReadStream decodes exactly one streamed checkpoint from r, leaving any
// bytes after the final session record unread. It applies the same strict
// validation as Load: every CRC must hold, record counts must match the
// manifest, and every session must reference a streamed model. Errors wrap
// ErrCorrupt or ErrVersion where applicable.
func ReadStream(r io.Reader) (*FleetState, error) {
	fr, err := newFileReader(r, KindStream)
	if err != nil {
		return nil, err
	}
	next := func(want byte, what string) ([]byte, error) {
		typ, payload, err := fr.readRecord()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: stream truncated before %s", ErrCorrupt, what)
			}
			return nil, err
		}
		if typ != want {
			return nil, fmt.Errorf("%w: record type %d, want %d (%s)", ErrCorrupt, typ, want, what)
		}
		return payload, nil
	}

	payload, err := next(RecManifest, "manifest")
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&man); err != nil {
		return nil, fmt.Errorf("%w: stream manifest: %v", ErrCorrupt, err)
	}
	if man.Hub.Shards < 1 || man.Hub.MaxSessionsPerShard < 1 || man.Hub.TickHz <= 0 {
		return nil, fmt.Errorf("%w: stream manifest hub config %+v", ErrCorrupt, man.Hub)
	}

	state := &FleetState{
		Manifest:  man,
		Models:    make(map[string]models.Classifier, len(man.Models)),
		ModelMACs: make(map[string]int64, len(man.Models)),
	}
	for _, me := range man.Models {
		payload, err := next(RecModel, fmt.Sprintf("model %q", me.Key))
		if err != nil {
			return nil, err
		}
		clf, err := models.Load(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: stream model %q: %v", ErrCorrupt, me.Key, err)
		}
		state.Models[me.Key] = clf
		state.ModelMACs[me.Key] = me.MACs
	}
	for i := 0; i < man.Sessions; i++ {
		payload, err := next(RecSession, fmt.Sprintf("session record %d", i))
		if err != nil {
			return nil, err
		}
		var rec SessionRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: stream session record %d: %v", ErrCorrupt, i, err)
		}
		if _, ok := state.Models[rec.ModelKey]; !ok {
			return nil, fmt.Errorf("%w: stream session %d references unknown model %q", ErrCorrupt, rec.ID, rec.ModelKey)
		}
		state.Sessions = append(state.Sessions, rec)
	}
	return state, nil
}
