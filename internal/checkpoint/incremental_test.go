package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// dirBytes sums the file sizes of one checkpoint directory.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// saveFullV2 writes testState as a self-contained v2 checkpoint with session
// versions and refs populated, returning its directory and manifest.
func saveFullV2(t *testing.T, root string) (string, *Manifest, *FleetState) {
	t.Helper()
	full := testState(t)
	full.Manifest.Format = DirFormatV2
	full.Sessions[0].Ver = 5
	full.Sessions[1].Ver = 2
	full.Manifest.Refs = []SessionRef{
		{ID: 3, Ver: 5, SampleAcc: full.Sessions[0].SampleAcc, IdleTicks: full.Sessions[0].IdleTicks},
		{ID: 7, Ver: 2},
	}
	dir, err := Save(root, full)
	if err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	return dir, man, full
}

// incrementalAgainst builds an incremental FleetState on top of base: session
// 3 rewritten at a new version, session 7 referenced with fresh volatile
// fields, and every model referenced instead of rewritten.
func incrementalAgainst(full *FleetState, base *Manifest) *FleetState {
	dirty := full.Sessions[0] // copy
	dirty.Ver = 6
	dirty.SampleAcc = 0.5
	dirty.IdleTicks = 0
	inc := &FleetState{
		Manifest: Manifest{
			Hub:        full.Manifest.Hub,
			NextID:     full.Manifest.NextID,
			Shards:     full.Manifest.Shards,
			Format:     DirFormatV2,
			Base:       base.Seq,
			Increments: base.Increments + 1,
			Refs: []SessionRef{
				{ID: 3, Ver: 6, SampleAcc: 0.5, IdleTicks: 0}, // local rewrite
				{ID: 7, Ver: 2, Seq: base.Seq, SampleAcc: 0.75, IdleTicks: 9},
			},
		},
		Sessions: []SessionRecord{dirty},
	}
	for _, e := range base.ModelIndex() {
		inc.ModelRefs = append(inc.ModelRefs, e)
	}
	return inc
}

// TestIncrementalSaveLoadResolvesReferences: an incremental checkpoint that
// rewrites one dirty session, references the other, and references every
// model must load into the exact fleet state — referenced heavy state
// bitwise-intact, volatile scheduler fields taken from the new manifest —
// while writing a small fraction of the full checkpoint's bytes.
func TestIncrementalSaveLoadResolvesReferences(t *testing.T) {
	root := t.TempDir()
	dir1, man1, full := saveFullV2(t, root)
	inc := incrementalAgainst(full, man1)
	dir2, err := Save(root, inc)
	if err != nil {
		t.Fatal(err)
	}

	state, from, err := LoadLatest(root)
	if err != nil {
		t.Fatal(err)
	}
	if from != dir2 {
		t.Fatalf("LoadLatest resolved %s, want %s", from, dir2)
	}
	if len(state.Sessions) != 2 {
		t.Fatalf("resolved %d sessions, want 2", len(state.Sessions))
	}
	byID := map[uint64]*SessionRecord{}
	for i := range state.Sessions {
		byID[state.Sessions[i].ID] = &state.Sessions[i]
	}
	got3, got7 := byID[3], byID[7]
	if got3 == nil || got7 == nil {
		t.Fatalf("sessions 3 and 7 must both resolve, got %v", byID)
	}
	if !reflect.DeepEqual(*got3, inc.Sessions[0]) {
		t.Fatalf("dirty session diverged:\n got %+v\nwant %+v", *got3, inc.Sessions[0])
	}
	// The referenced record must be the full checkpoint's bytes with only
	// the volatile overlay applied.
	want7 := full.Sessions[1]
	want7.Ver = 2
	want7.SampleAcc = 0.75
	want7.IdleTicks = 9
	if !reflect.DeepEqual(*got7, want7) {
		t.Fatalf("referenced session diverged:\n got %+v\nwant %+v", *got7, want7)
	}
	if len(state.Models) != 2 {
		t.Fatalf("resolved %d models, want 2", len(state.Models))
	}

	// Byte economy: the incremental directory holds one of the two session
	// records and no model payloads. (The fleet-scale ratio gate — ≤ ~15%
	// at 100 sessions with 10 dirty — lives in internal/serve's
	// TestIncrementalCheckpointWritesDirtyOnly, where record bytes dominate.)
	fullBytes, incBytes := dirBytes(t, dir1), dirBytes(t, dir2)
	if incBytes*2 > fullBytes {
		t.Fatalf("incremental checkpoint is %d bytes vs %d full — expected well under half", incBytes, fullBytes)
	}
	for _, name := range []string{"model-0.bin", "model-1.bin"} {
		if _, err := os.Stat(filepath.Join(dir2, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("incremental checkpoint rewrote model payload %s", name)
		}
	}
}

// TestIncrementalVersionMismatchRejected: a referenced record whose Ver does
// not match the manifest's expectation is corruption, not silently stale
// state.
func TestIncrementalVersionMismatchRejected(t *testing.T) {
	root := t.TempDir()
	_, man1, full := saveFullV2(t, root)
	inc := incrementalAgainst(full, man1)
	inc.Manifest.Refs[1].Ver = 99 // promises a version the base never wrote
	dir2, err := Save(root, inc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version-mismatched reference loaded: %v", err)
	}
}

// TestIncrementalBrokenChainFallsBack: deleting the base directory breaks the
// newest checkpoint's references; LoadLatest must fall back to an older
// self-contained checkpoint rather than fail the fleet.
func TestIncrementalBrokenChainFallsBack(t *testing.T) {
	root := t.TempDir()
	dir1, man1, full := saveFullV2(t, root)
	inc := incrementalAgainst(full, man1)
	if _, err := Save(root, inc); err != nil {
		t.Fatal(err)
	}
	// A second, self-contained full checkpoint, then an incremental on top
	// whose base we destroy.
	dir3, man3, full3 := saveFullV2(t, root)
	inc2 := incrementalAgainst(full3, man3)
	if _, err := Save(root, inc2); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir3); err != nil {
		t.Fatal(err)
	}
	state, from, err := LoadLatest(root)
	if err != nil {
		t.Fatalf("LoadLatest with broken newest chain: %v", err)
	}
	if from == dir1 {
		// Falling all the way back to dir1 is acceptable only if dir2 also
		// failed; dir2 references dir1, which still exists, so it should
		// resolve.
		t.Fatalf("fallback skipped a resolvable incremental checkpoint")
	}
	if len(state.Sessions) != 2 {
		t.Fatalf("fallback resolved %d sessions, want 2", len(state.Sessions))
	}
}

// TestPruneKeepsReferencedDirectories: directories older than DefaultKeep
// survive while a kept manifest still references their records, so an
// incremental chain never dangles.
func TestPruneKeepsReferencedDirectories(t *testing.T) {
	root := t.TempDir()
	dir1, man1, full := saveFullV2(t, root)
	// Enough incrementals against dir1 to push it past DefaultKeep.
	for i := 0; i < DefaultKeep+2; i++ {
		inc := incrementalAgainst(full, man1)
		inc.Manifest.Increments = i + 1
		if _, err := Save(root, inc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(dir1); err != nil {
		t.Fatalf("prune removed the base directory a kept manifest references: %v", err)
	}
	if _, _, err := LoadLatest(root); err != nil {
		t.Fatalf("newest incremental no longer loads after pruning: %v", err)
	}
}

// TestLatestManifestSkipsDamaged: LatestManifest must fall back past a
// checkpoint whose manifest is unreadable, mirroring LoadLatest.
func TestLatestManifestSkipsDamaged(t *testing.T) {
	root := t.TempDir()
	saveFullV2(t, root)
	dir2, _, _ := saveFullV2(t, root)
	if err := os.Truncate(filepath.Join(dir2, manifestFile), 3); err != nil {
		t.Fatal(err)
	}
	man, err := LatestManifest(root)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 1 {
		t.Fatalf("LatestManifest picked seq %d, want fallback to 1", man.Seq)
	}
}
