// Reading, recovery scanning, and integrity verification. Everything here
// operates on closed files or sequential streams outside the segment write
// lock — the walsafe analyzer enforces that no read or seek ever happens
// under it.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// errTorn classifies damage that crash recovery may truncate away: a short
// frame, an implausible length, or a CRC mismatch — the shapes a killed
// writer (or a faultnet byte-budgeted cut) leaves behind. Semantic damage
// (sequence gaps, Merkle mismatches, data after a footer) is ErrCorrupt
// instead: no crash produces it, so nothing should silently discard it.
var errTorn = errors.New("wal: torn frame")

// Entry is one decoded WAL entry.
type Entry struct {
	Seq     uint64
	Kind    Kind
	Data    []byte
	Segment string
	// Sealed reports whether a batch seal covers this entry. After Open's
	// recovery every on-disk entry is sealed; an offline Dump of a crashed
	// WAL can still surface the unsealed tail entries recovery would drop.
	Sealed bool
}

// segScan is the result of one sequential segment scan.
type segScan struct {
	size      int64 // bytes scanned from the start (== file size when clean)
	sealedEnd int64 // offset just past the last seal or footer (or header)
	headerOK  bool
	footer    bool

	firstSealed     uint64
	sealedLast      uint64
	sealedEntries   int
	unsealedEntries int
	roots           [][HashSize]byte

	entries []Entry // populated only when keep
}

func scanSegment(path string) (*segScan, error) {
	return scanSegmentFull(path, false)
}

// scanSegmentFull reads one segment front to back, checking framing, CRCs,
// entry-sequence continuity, seal counts and Merkle roots, and footer
// consistency. With keep it also retains decoded entries. On errTorn the
// returned scan is still valid up to the tear.
func scanSegmentFull(path string, keep bool) (*segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return &segScan{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	sc := &segScan{}
	if fi, err := f.Stat(); err == nil {
		sc.size = fi.Size()
	}
	name := filepath.Base(path)
	br := bufio.NewReaderSize(f, 64<<10)

	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return sc, fmt.Errorf("%w: %s: short header", errTorn, name)
	}
	if string(hdr[:4]) != walMagic {
		return sc, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, name)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != walVersion {
		return sc, fmt.Errorf("%w: %s: version %d", ErrVersion, name, v)
	}
	if k := binary.LittleEndian.Uint16(hdr[6:8]); k != kindSeg {
		return sc, fmt.Errorf("%w: %s: kind %d", ErrCorrupt, name, k)
	}
	sc.headerOK = true
	off := int64(headerLen)
	sc.sealedEnd = off

	var (
		pendLeaves [][HashSize]byte
		pendFirst  uint64
		lastEntry  uint64 // last entry seq seen in this segment
	)
	// torn finalizes the scan at a recoverable tear: the pending entry
	// count must ride along so recovery can report exactly what it drops.
	torn := func(format string, args ...any) (*segScan, error) {
		sc.unsealedEntries = len(pendLeaves)
		return sc, fmt.Errorf("%w: "+format, append([]any{errTorn}, args...)...)
	}
	for {
		var pre [5]byte
		b0, err := br.ReadByte()
		if err == io.EOF {
			break // clean end at a frame boundary
		} else if err != nil {
			return torn("%s at %d: %v", name, off, err)
		}
		pre[0] = b0
		if _, err := io.ReadFull(br, pre[1:]); err != nil {
			return torn("%s at %d: short length", name, off)
		}
		typ := pre[0]
		plen := binary.LittleEndian.Uint32(pre[1:5])
		if plen > maxRecordLen {
			return torn("%s at %d: implausible record length %d", name, off, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn("%s at %d: short payload", name, off)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return torn("%s at %d: short crc", name, off)
		}
		crc := crc32.Checksum(pre[:], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(crcBuf[:]) {
			return torn("%s at %d: crc mismatch", name, off)
		}
		frameEnd := off + frameOverhead + int64(plen)

		switch typ {
		case recEntry:
			if len(payload) < entryHdrLen {
				return sc, fmt.Errorf("%w: %s at %d: entry too short", ErrCorrupt, name, off)
			}
			seq := binary.LittleEndian.Uint64(payload[1:9])
			if lastEntry != 0 && seq != lastEntry+1 {
				return sc, fmt.Errorf("%w: %s at %d: entry seq %d after %d", ErrCorrupt, name, off, seq, lastEntry)
			}
			lastEntry = seq
			if len(pendLeaves) == 0 {
				pendFirst = seq
			}
			pendLeaves = append(pendLeaves, HashLeaf(payload))
			if keep {
				data := make([]byte, len(payload)-entryHdrLen)
				copy(data, payload[entryHdrLen:])
				sc.entries = append(sc.entries, Entry{
					Seq: seq, Kind: Kind(payload[0]), Data: data, Segment: name,
				})
			}
		case recSeal:
			if len(payload) != sealPayLen {
				return sc, fmt.Errorf("%w: %s at %d: seal size %d", ErrCorrupt, name, off, len(payload))
			}
			first := binary.LittleEndian.Uint64(payload[0:8])
			last := binary.LittleEndian.Uint64(payload[8:16])
			count := binary.LittleEndian.Uint32(payload[16:20])
			if int(count) != len(pendLeaves) || len(pendLeaves) == 0 ||
				first != pendFirst || last != lastEntry {
				return sc, fmt.Errorf("%w: %s at %d: seal [%d,%d]x%d does not match pending entries [%d,%d]x%d",
					ErrCorrupt, name, off, first, last, count, pendFirst, lastEntry, len(pendLeaves))
			}
			want := Root(pendLeaves)
			var got [HashSize]byte
			copy(got[:], payload[20:])
			if got != want {
				return sc, fmt.Errorf("%w: %s at %d: merkle root mismatch for batch [%d,%d] (stored %s, computed %s)",
					ErrCorrupt, name, off, first, last, hexRoot(got), hexRoot(want))
			}
			sc.roots = append(sc.roots, got)
			if sc.firstSealed == 0 {
				sc.firstSealed = first
			}
			sc.sealedLast = last
			sc.sealedEntries += int(count)
			sc.sealedEnd = frameEnd
			pendLeaves = pendLeaves[:0]
			pendFirst = 0
		case recFooter:
			if len(payload) != footerPayLen {
				return sc, fmt.Errorf("%w: %s at %d: footer size %d", ErrCorrupt, name, off, len(payload))
			}
			if len(pendLeaves) != 0 {
				return sc, fmt.Errorf("%w: %s at %d: footer over unsealed entries", ErrCorrupt, name, off)
			}
			batches := binary.LittleEndian.Uint32(payload[0:4])
			first := binary.LittleEndian.Uint64(payload[4:12])
			last := binary.LittleEndian.Uint64(payload[12:20])
			var got [HashSize]byte
			copy(got[:], payload[20:])
			if int(batches) != len(sc.roots) || first != sc.firstSealed || last != sc.sealedLast {
				return sc, fmt.Errorf("%w: %s at %d: footer [%d,%d]x%d does not match seals [%d,%d]x%d",
					ErrCorrupt, name, off, first, last, batches, sc.firstSealed, sc.sealedLast, len(sc.roots))
			}
			if want := Root(sc.roots); got != want {
				return sc, fmt.Errorf("%w: %s at %d: segment merkle root mismatch (stored %s, computed %s)",
					ErrCorrupt, name, off, hexRoot(got), hexRoot(want))
			}
			sc.footer = true
			sc.sealedEnd = frameEnd
			if _, err := br.ReadByte(); err != io.EOF {
				return sc, fmt.Errorf("%w: %s: data after footer", ErrCorrupt, name)
			}
			return sc, nil
		default:
			return sc, fmt.Errorf("%w: %s at %d: unknown record type %d", ErrCorrupt, name, off, typ)
		}
		off = frameEnd
	}
	sc.unsealedEntries = len(pendLeaves)
	return sc, nil
}

// hasTrailingFooter reports whether the file ends in a CRC-valid footer
// frame. A crash tears the end of a segment, so a tear with a valid footer
// still in place behind it is mid-file damage to a finalized segment — data
// corruption, never recoverable truncation.
func hasTrailingFooter(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	const flen = frameOverhead + footerPayLen
	if fi.Size() < headerLen+flen {
		return false
	}
	var buf [flen]byte
	if _, err := f.ReadAt(buf[:], fi.Size()-flen); err != nil {
		return false
	}
	if buf[0] != recFooter || binary.LittleEndian.Uint32(buf[1:5]) != footerPayLen {
		return false
	}
	crc := crc32.Checksum(buf[:flen-4], castagnoli)
	return crc == binary.LittleEndian.Uint32(buf[flen-4:])
}

// Dump replays every decodable entry in dir, in sequence order, through fn.
// Unsealed tail entries (possible only when the WAL was not reopened after
// a crash) are delivered with Sealed=false; a torn tail ends the dump
// cleanly. Structural corruption anywhere else, or an error from fn, aborts.
func Dump(dir string, fn func(Entry) error) error {
	names, err := segmentFiles(dir)
	if err != nil {
		return err
	}
	for i, name := range names {
		sc, err := scanSegmentFull(filepath.Join(dir, name), true)
		torn := err != nil && errors.Is(err, errTorn)
		if err != nil && !torn {
			return err
		}
		if torn && i != len(names)-1 {
			return fmt.Errorf("%w: %s is torn but is not the tail segment", ErrCorrupt, name)
		}
		for _, e := range sc.entries {
			e.Sealed = e.Seq <= sc.sealedLast
			if err := fn(e); err != nil {
				return err
			}
		}
		if torn {
			return nil
		}
	}
	return nil
}

// SegmentReport is one segment's verification result.
type SegmentReport struct {
	Name     string `json:"name"`
	Entries  int    `json:"sealed_entries"`
	Unsealed int    `json:"unsealed_entries,omitempty"`
	Batches  int    `json:"batches"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Root     string `json:"root,omitempty"`
	Footer   bool   `json:"footer"`
	Torn     bool   `json:"torn,omitempty"`
	Err      string `json:"error,omitempty"`
}

// Verify re-derives every batch and segment Merkle root in dir from the
// entry payloads and checks them against the stored seals and footers — a
// single flipped payload byte surfaces as a root (or CRC) mismatch on its
// segment. A torn tail on the final segment is reported but is not a
// failure (recovery handles it); everything else non-clean is. The error
// summarizes the first failure; the reports cover every segment regardless.
func Verify(dir string) ([]SegmentReport, error) {
	names, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	var reports []SegmentReport
	var firstErr error
	for i, name := range names {
		sc, scanErr := scanSegmentFull(filepath.Join(dir, name), false)
		r := SegmentReport{
			Name:     name,
			Entries:  sc.sealedEntries,
			Unsealed: sc.unsealedEntries,
			Batches:  len(sc.roots),
			FirstSeq: sc.firstSealed,
			LastSeq:  sc.sealedLast,
			Footer:   sc.footer,
		}
		if len(sc.roots) > 0 {
			r.Root = hexRoot(Root(sc.roots))
		}
		switch {
		case scanErr == nil:
		case errors.Is(scanErr, errTorn) && i == len(names)-1 &&
			!hasTrailingFooter(filepath.Join(dir, name)):
			r.Torn = true
		default:
			r.Err = scanErr.Error()
			if firstErr == nil {
				firstErr = scanErr
			}
		}
		reports = append(reports, r)
	}
	return reports, firstErr
}
