package wal

import (
	"crypto/sha256"
	"testing"
)

func leafOf(s string) [HashSize]byte { return HashLeaf([]byte(s)) }

func TestRootEmptyAndSingle(t *testing.T) {
	var zero [HashSize]byte
	if got := Root(nil); got != zero {
		t.Fatalf("Root(nil) = %x, want zero", got)
	}
	l := leafOf("a")
	if got := Root([][HashSize]byte{l}); got != l {
		t.Fatalf("single-leaf root should be the leaf")
	}
}

func TestRootPairAndDuplicateLast(t *testing.T) {
	a, b, c := leafOf("a"), leafOf("b"), leafOf("c")
	pair := func(x, y [HashSize]byte) [HashSize]byte {
		var buf [2 * HashSize]byte
		copy(buf[:HashSize], x[:])
		copy(buf[HashSize:], y[:])
		return sha256.Sum256(buf[:])
	}
	if got, want := Root([][HashSize]byte{a, b}), pair(a, b); got != want {
		t.Fatalf("two-leaf root mismatch")
	}
	// Odd level: c pairs with itself.
	want := pair(pair(a, b), pair(c, c))
	if got := Root([][HashSize]byte{a, b, c}); got != want {
		t.Fatalf("three-leaf duplicate-last root mismatch")
	}
}

func TestRootOrderAndContentSensitivity(t *testing.T) {
	a, b, c, d := leafOf("a"), leafOf("b"), leafOf("c"), leafOf("d")
	base := Root([][HashSize]byte{a, b, c, d})
	if base == Root([][HashSize]byte{b, a, c, d}) {
		t.Fatalf("root ignores leaf order")
	}
	if base == Root([][HashSize]byte{a, b, c, leafOf("e")}) {
		t.Fatalf("root ignores leaf content")
	}
	// Root must not mutate its input.
	leaves := [][HashSize]byte{a, b, c, d}
	Root(leaves)
	if leaves[0] != a || leaves[3] != d {
		t.Fatalf("Root mutated its input")
	}
}
