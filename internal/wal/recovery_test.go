package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cognitivearm/internal/cluster/faultnet"
)

// The crash-recovery matrix: the same scripted write sequence is killed by a
// faultnet byte-budgeted cut at every frame-boundary class — mid segment
// header, mid entry record, at an unsealed entry boundary, mid seal, at a
// sealed batch boundary, mid footer, and on both sides of a rotation — and
// recovery must truncate to the last sealed batch with a bitwise-identical
// dump of everything before it, report exactly what was dropped, and leave
// the log appendable.

// walScript drives a fixed write sequence, ignoring errors (after the cut,
// every operation fails — exactly like instructions after a kill -9 never
// executing). Returns the entry payloads in append order.
func walScript(l *Log) [][]byte {
	payloads := [][]byte{
		[]byte("alpha-entry-1"), []byte("beta-entry-2"), []byte("gamma-entry-3"),
		[]byte("delta-entry-4"), []byte("epsilon-entry-5"),
		[]byte("zeta-entry-6"), []byte("eta-entry-7"),
	}
	kinds := []Kind{KindSession, KindSession, KindAudit, KindSession, KindDecision, KindSession, KindAudit}
	step := 0
	app := func(n int) {
		for i := 0; i < n; i++ {
			l.Append(kinds[step], payloads[step])
			step++
		}
	}
	app(3)
	l.Seal() // batch 1: entries 1-3
	app(2)
	l.Seal()   // batch 2: entries 4-5
	l.Rotate() // segment 1 footered; segment 2 opened
	app(1)
	l.Seal() // batch 3: entry 6 (segment 2)
	app(1)   // entry 7 left unsealed
	return payloads
}

func TestTornTailMatrix(t *testing.T) {
	// Reference run, uncut: gives the frame offsets the budgets derive from.
	refDir := t.TempDir()
	rl, _, err := Open(Options{Dir: refDir, NoSync: true})
	if err != nil {
		t.Fatalf("reference Open: %v", err)
	}
	payloads := walScript(rl)
	rl.Close()
	seg1Raw, err := os.ReadFile(filepath.Join(refDir, segName(1)))
	if err != nil {
		t.Fatalf("read reference segment 1: %v", err)
	}
	offs1, types1 := frameOffsets(t, filepath.Join(refDir, segName(1)))
	// Expected frame sequence in segment 1: e1 e2 e3 seal e4 e5 seal footer.
	wantTypes := []byte{recEntry, recEntry, recEntry, recSeal, recEntry, recEntry, recSeal, recFooter}
	if !bytes.Equal(types1, wantTypes) {
		t.Fatalf("reference segment 1 frames = %v, want %v", types1, wantTypes)
	}
	seg1Size := int64(len(seg1Raw))

	// truncBytes: +1 = recovery must report cut bytes, 0 = must report a
	// clean tail, -1 = indifferent (an empty next segment is removed without
	// any real bytes lost).
	cases := []struct {
		name       string
		budget     int64 // total bytes allowed through the plan before the cut
		recovered  int   // sealed entries surviving recovery
		dropped    int   // valid-but-unsealed entries recovery discards
		truncBytes int
	}{
		{"mid-segment-header", 3, 0, 0, +1},
		{"mid-entry-record", offs1[0] + 6, 0, 0, +1},
		{"unsealed-entry-boundary", offs1[2], 0, 2, +1},
		{"mid-seal", offs1[3] + 10, 0, 3, +1},
		{"sealed-batch-boundary", offs1[4], 3, 0, 0},
		{"mid-footer", offs1[7] + 5, 5, 0, +1},
		{"rotation-boundary-empty-next", seg1Size, 5, 0, -1},
		{"mid-entry-after-rotation", seg1Size + headerLen + 4, 5, 0, +1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			plan := faultnet.NewPlan()
			plan.CutWritesAfter(tc.budget)
			cut := Options{Dir: dir, NoSync: true,
				wrap: func(w io.Writer) io.Writer { return faultnet.NewCutWriter(w, plan) }}
			if l, _, err := Open(cut); err == nil {
				walScript(l)
				l.Close() // kill: the fd drops; sticky errors forbid new bytes
			}

			l, info, err := Open(Options{Dir: dir, NoSync: true})
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer l.Close()

			if info.DroppedEntries != tc.dropped {
				t.Fatalf("DroppedEntries = %d, want %d (info %+v)", info.DroppedEntries, tc.dropped, info)
			}
			switch tc.truncBytes {
			case +1:
				if info.TruncatedBytes <= 0 || info.TornSegment == "" {
					t.Fatalf("expected a reported truncation, got %+v", info)
				}
			case 0:
				if info.TruncatedBytes != 0 || info.TornSegment != "" {
					t.Fatalf("unexpected truncation %+v", info)
				}
			}

			// Bitwise-identical restore of everything before the cut.
			got := collect(t, dir)
			if len(got) != tc.recovered {
				t.Fatalf("recovered %d entries, want %d", len(got), tc.recovered)
			}
			for i, e := range got {
				if e.Seq != uint64(i+1) || !bytes.Equal(e.Data, payloads[i]) || !e.Sealed {
					t.Fatalf("entry %d = {seq %d, sealed %v, data %q}, want %q",
						i, e.Seq, e.Sealed, e.Data, payloads[i])
				}
			}
			if info.LastSeq != uint64(tc.recovered) || info.SealedEntries != uint64(tc.recovered) {
				t.Fatalf("recovery info %+v, want last seq %d", info, tc.recovered)
			}
			// The recovered log verifies clean and stays appendable, with the
			// sequence continuing from the last sealed entry.
			if _, err := Verify(dir); err != nil {
				t.Fatalf("Verify after recovery: %v", err)
			}
			seq, err := l.Append(KindSession, []byte("post-recovery"))
			if err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if seq != info.LastSeq+1 {
				t.Fatalf("post-recovery seq = %d, want %d", seq, info.LastSeq+1)
			}
			if _, _, _, err := l.Seal(); err != nil {
				t.Fatalf("Seal after recovery: %v", err)
			}
			// And a second reopen is clean: recovery converged.
			l.Close()
			_, info2, err := Open(Options{Dir: dir, NoSync: true})
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			if info2.TruncatedBytes != 0 {
				t.Fatalf("second reopen still truncating: %+v", info2)
			}
		})
	}
}

// TestTornTailEveryByteOffset sweeps the cut across every byte of a small
// WAL stream — not just the curated boundary classes — asserting the
// recovery invariant holds at all offsets: recovered entries are exactly the
// sealed prefix, bitwise identical, and the log reopens appendable.
func TestTornTailEveryByteOffset(t *testing.T) {
	refDir := t.TempDir()
	rl, _, err := Open(Options{Dir: refDir, NoSync: true})
	if err != nil {
		t.Fatalf("reference Open: %v", err)
	}
	small := func(l *Log) {
		l.Append(KindSession, []byte("aa"))
		l.Append(KindSession, []byte("bb"))
		l.Seal()
		l.Append(KindSession, []byte("cc"))
		l.Seal()
	}
	small(rl)
	st := rl.Status()
	streamLen := st.ActiveBytes
	rl.Close()
	offs, _ := frameOffsets(t, filepath.Join(refDir, segName(1)))
	// Sealed boundaries after each Seal: end of frame 2 (seal 1) and end of
	// frame 4 (seal 2, == streamLen).
	sealEnds := []int64{offs[3], streamLen}
	wantAt := func(cut int64) int {
		n := 0
		for _, e := range sealEnds {
			if cut >= e {
				n++
			}
		}
		switch n {
		case 0:
			return 0
		case 1:
			return 2
		default:
			return 3
		}
	}
	payload := map[int]string{0: "aa", 1: "bb", 2: "cc"}

	for cut := int64(0); cut <= streamLen; cut++ {
		dir := t.TempDir()
		plan := faultnet.NewPlan()
		plan.CutWritesAfter(cut)
		opts := Options{Dir: dir, NoSync: true,
			wrap: func(w io.Writer) io.Writer { return faultnet.NewCutWriter(w, plan) }}
		if l, _, err := Open(opts); err == nil {
			small(l)
			l.Close()
		}
		l, info, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: recovery Open: %v", cut, err)
		}
		want := wantAt(cut)
		got := collect(t, dir)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d entries, want %d (info %+v)", cut, len(got), want, info)
		}
		for i, e := range got {
			if e.Seq != uint64(i+1) || string(e.Data) != payload[i] {
				t.Fatalf("cut %d: entry %d = %+v", cut, i, e)
			}
		}
		if seq, err := l.Append(KindAudit, []byte("z")); err != nil || seq != uint64(want)+1 {
			t.Fatalf("cut %d: post-recovery append = (%d, %v)", cut, seq, err)
		}
		l.Close()
	}
}
