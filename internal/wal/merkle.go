// Merkle batching over WAL entry hashes. Every appended entry contributes
// one SHA-256 leaf (hashed over the framed record payload, so kind and
// sequence number are covered, not just the caller's bytes); Seal folds the
// pending leaves into a batch root, and segment rotation folds the batch
// roots into a single segment root stored in the footer. A verifier can
// therefore prove an entire segment with one 32-byte comparison, or narrow a
// mismatch to a batch without replaying payloads.
//
// The tree shape follows the usual duplicate-last convention: leaves are
// combined pairwise (sha256(left || right)); an odd node at any level is
// paired with itself. A single leaf's root is the leaf hash. The empty root
// is all zeroes and never written — sealing an empty batch is a no-op.
package wal

import "crypto/sha256"

// HashSize is the width of every leaf, batch root, and segment root.
const HashSize = sha256.Size

// HashLeaf hashes one record payload into a Merkle leaf.
func HashLeaf(payload []byte) [HashSize]byte {
	return sha256.Sum256(payload)
}

// Root folds leaf hashes into a Merkle root, pairwise with duplicate-last.
// It does not modify leaves. Root(nil) is the zero hash.
func Root(leaves [][HashSize]byte) [HashSize]byte {
	switch len(leaves) {
	case 0:
		return [HashSize]byte{}
	case 1:
		return leaves[0]
	}
	level := append([][HashSize]byte(nil), leaves...)
	var buf [2 * HashSize]byte
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			right := i
			if i+1 < len(level) {
				right = i + 1
			}
			copy(buf[:HashSize], level[i][:])
			copy(buf[HashSize:], level[right][:])
			next = append(next, sha256.Sum256(buf[:]))
		}
		level = next
	}
	return level[0]
}
