// Audit-entry codecs. The serve journal drains the process event ring into
// KindAudit entries and emits one KindDecision entry per dirty session at
// each flush, turning the in-memory lifecycle trail into a durable,
// Merkle-verifiable record queryable with `cogarm wal dump`. Payloads are
// fixed-width little-endian — no reflection, no per-field framing — so a
// dump tool from any version can skip entries it does not understand by
// length alone.
package wal

import (
	"encoding/binary"
	"fmt"

	"cognitivearm/internal/obs"
)

const eventPayLen = 8 + 8 + 1 + 4 + 8 + 8 + 8 // Seq, Time, Type, Shard, Session, A, B

// EncodeEvent appends the fixed-binary form of ev to dst.
func EncodeEvent(dst []byte, ev obs.Event) []byte {
	var b [eventPayLen]byte
	binary.LittleEndian.PutUint64(b[0:8], ev.Seq)
	binary.LittleEndian.PutUint64(b[8:16], uint64(ev.Time))
	b[16] = byte(ev.Type)
	binary.LittleEndian.PutUint32(b[17:21], uint32(ev.Shard))
	binary.LittleEndian.PutUint64(b[21:29], ev.Session)
	binary.LittleEndian.PutUint64(b[29:37], uint64(ev.A))
	binary.LittleEndian.PutUint64(b[37:45], uint64(ev.B))
	return append(dst, b[:]...)
}

// DecodeEvent parses a KindAudit payload.
func DecodeEvent(p []byte) (obs.Event, error) {
	if len(p) != eventPayLen {
		return obs.Event{}, fmt.Errorf("wal: audit payload length %d, want %d", len(p), eventPayLen)
	}
	return obs.Event{
		Seq:     binary.LittleEndian.Uint64(p[0:8]),
		Time:    int64(binary.LittleEndian.Uint64(p[8:16])),
		Type:    obs.EventType(p[16]),
		Shard:   int32(binary.LittleEndian.Uint32(p[17:21])),
		Session: binary.LittleEndian.Uint64(p[21:29]),
		A:       int64(binary.LittleEndian.Uint64(p[29:37])),
		B:       int64(binary.LittleEndian.Uint64(p[37:45])),
	}, nil
}

// Decision summarizes one session's prediction activity as of a journal
// flush: cumulative decoded windows and debounced agreements, plus the
// session's mutation version. Granularity is the flush cadence, not per
// tick — the WAL must never tax the zero-alloc tick path, so decisions are
// journaled when the dirty session record is.
type Decision struct {
	Session uint64
	Ver     uint64
	Decoded uint64
	Agreed  uint64
}

const decisionPayLen = 8 * 4

// EncodeDecision appends the fixed-binary form of d to dst.
func EncodeDecision(dst []byte, d Decision) []byte {
	var b [decisionPayLen]byte
	binary.LittleEndian.PutUint64(b[0:8], d.Session)
	binary.LittleEndian.PutUint64(b[8:16], d.Ver)
	binary.LittleEndian.PutUint64(b[16:24], d.Decoded)
	binary.LittleEndian.PutUint64(b[24:32], d.Agreed)
	return append(dst, b[:]...)
}

// DecodeDecision parses a KindDecision payload.
func DecodeDecision(p []byte) (Decision, error) {
	if len(p) != decisionPayLen {
		return Decision{}, fmt.Errorf("wal: decision payload length %d, want %d", len(p), decisionPayLen)
	}
	return Decision{
		Session: binary.LittleEndian.Uint64(p[0:8]),
		Ver:     binary.LittleEndian.Uint64(p[8:16]),
		Decoded: binary.LittleEndian.Uint64(p[16:24]),
		Agreed:  binary.LittleEndian.Uint64(p[24:32]),
	}, nil
}
