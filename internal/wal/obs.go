package wal

import (
	"sync"

	"cognitivearm/internal/obs"
)

// WAL telemetry on the process-global registry. Appends and seals run on
// the journal cadence, not the tick path, so instrumentation is
// unconditional — the interesting numbers are fsync and seal latency (the
// durability cost), the segment/byte footprint (the compaction health), and
// the recovery truncation counter (the alerting hook: a nonzero rate means
// crashes are eating unsealed batches).

type walObs struct {
	entries     *obs.Counter
	bytes       *obs.Counter
	seals       *obs.Counter
	sealDur     *obs.Histogram
	fsyncDur    *obs.Histogram
	segments    *obs.Gauge
	activeBytes *obs.Gauge
	truncated   *obs.Counter
	events      *obs.EventRing
}

var (
	walTelOnce sync.Once
	walTelVal  *walObs
)

// walTel returns the lazily-built WAL telemetry holder. It never returns
// nil and every handle field is populated from the default registry, so
// derived uses need no guard.
//
//cogarm:obsnonnil
func walTel() *walObs {
	walTelOnce.Do(func() {
		reg := obs.Default()
		walTelVal = &walObs{
			entries: reg.Counter("cogarm_wal_entries_total",
				"Entries appended to the write-ahead log."),
			bytes: reg.Counter("cogarm_wal_bytes_written_total",
				"Framed bytes appended to WAL segments (headers, seals, and footers excluded)."),
			seals: reg.Counter("cogarm_wal_seals_total",
				"Merkle batches sealed (each seal is one durability point)."),
			sealDur: reg.Histogram("cogarm_wal_seal_seconds",
				"Wall time of one batch seal: root computation, seal record write, and fsync.",
				obs.DurationBounds()),
			fsyncDur: reg.Histogram("cogarm_wal_fsync_seconds",
				"Wall time of each WAL segment fsync.",
				obs.DurationBounds()),
			segments: reg.Gauge("cogarm_wal_segments",
				"Segment files currently retained (finalized plus active)."),
			activeBytes: reg.Gauge("cogarm_wal_active_bytes",
				"Total bytes across retained WAL segments."),
			truncated: reg.Counter("cogarm_wal_recovery_truncated_bytes_total",
				"Bytes cut from a torn tail by crash recovery. Alert on growth: every byte here was an acknowledged-but-unsealed write lost to a crash."),
			events: obs.DefaultEvents(),
		}
	})
	return walTelVal
}

// recordTruncate reports one recovery truncation: counter plus lifecycle
// event carrying the bytes cut and the valid-but-unsealed entries dropped.
func recordTruncate(bytes int64, entries int) {
	t := walTel()
	t.truncated.Add(uint64(bytes))
	t.events.Record(obs.EvWalTruncate, -1, 0, bytes, int64(entries))
}
